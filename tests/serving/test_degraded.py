"""Degraded-mode serving under partition loss.

The contract: with a machine down, the service keeps serving everything it
can — requests whose gathers avoid the lost partition stay full-fidelity,
requests that need it are retried / answered degraded from resident state /
shed per their SLO class — and every outcome is counted exactly once in the
availability ledger.  Nothing is ever silently wrong: a degraded answer is
labeled, a shed request has no prediction at all.
"""

import numpy as np
import pytest

from repro.core import Planner, RunConfig, ServingConfig
from repro.serving import InferenceService, Outage, poisson_requests
from repro.serving.workload import Request

SLO_CLASSES = ("interactive", "standard", "batch")


def build_service(tiny_dataset, **serving_kw):
    serving = ServingConfig(**{"batcher": "deadline", "max_batch": 8,
                               "max_wait_ms": 10.0, "max_in_flight": 4,
                               **serving_kw})
    cfg = RunConfig(num_machines=2, replication_factor=0.1, serving=serving)
    return Planner().build_service(tiny_dataset, cfg)


def make_slo_requests(ds, per_class=20, size=4, rate=2000.0, seed=3):
    """``per_class`` requests of each SLO class, distinct rids, arrivals
    interleaved by class."""
    out = []
    for i, slo in enumerate(SLO_CLASSES):
        for r in poisson_requests(np.arange(ds.num_vertices), per_class,
                                  size, rate_rps=rate, hot_fraction=0.02,
                                  hot_mass=0.8, drift_interval=20,
                                  seed=seed + i, slo=slo):
            out.append(Request(rid=len(out), seeds=r.seeds,
                               arrival=r.arrival, slo=slo))
    return out


def test_outage_validation(tiny_dataset):
    with pytest.raises(ValueError, match="machine"):
        Outage(machine=5, start=0.0).validate(2)
    with pytest.raises(ValueError, match="start"):
        Outage(machine=0, start=-1.0).validate(2)
    with pytest.raises(ValueError, match="end"):
        Outage(machine=0, start=2.0, end=1.0).validate(2)
    svc = build_service(tiny_dataset)
    with pytest.raises(ValueError, match="machine"):
        svc.run(make_slo_requests(tiny_dataset, per_class=2),
                outages=[(9, 0.0)])


def test_healthy_run_all_ok_and_bit_identical(tiny_dataset):
    reqs = make_slo_requests(tiny_dataset)
    rep0 = build_service(tiny_dataset).run(list(reqs))
    rep1 = build_service(tiny_dataset).run(list(reqs), outages=[])
    a = rep0.availability
    assert a.served_ok == len(reqs) and a.total == len(reqs)
    assert a.degraded == a.shed == a.retries == a.unavailable_rows == 0
    assert a.availability() == 1.0 and a.ok_fraction() == 1.0
    assert all(r.status == "ok" and r.retries == 0 for r in rep0.records)
    # The degraded-mode plumbing must not perturb the healthy path.
    assert [r.completed for r in rep0.records] == \
           [r.completed for r in rep1.records]
    for rid in rep0.predictions:
        assert np.array_equal(rep0.predictions[rid], rep1.predictions[rid])


class TestPermanentOutage:
    @pytest.fixture(scope="class")
    def served(self, request):
        ds = request.getfixturevalue("tiny_dataset")
        reqs = make_slo_requests(ds)
        rep = build_service(ds).run(list(reqs), outages=[Outage(1, 0.0)])
        return reqs, rep

    def test_every_request_accounted_once(self, served):
        reqs, rep = served
        a = rep.availability
        assert a.total == len(reqs)
        assert a.served_ok + a.degraded + a.shed == len(reqs)
        assert len(rep.records) == len(reqs)
        assert a.shed > 0 and a.degraded > 0

    def test_down_machine_serves_nothing(self, served):
        _reqs, rep = served
        assert all(r.machine == 0 for r in rep.records)

    def test_slo_policies_honored(self, served):
        _reqs, rep = served
        for r in rep.records:
            if r.slo == "standard":
                assert r.status in ("ok", "degraded") and r.retries == 0
            elif r.slo == "batch":
                assert r.status in ("ok", "shed") and r.retries == 0
            else:  # interactive: retry with backoff, then degrade
                assert r.status in ("ok", "degraded")
                if r.status == "degraded":
                    assert r.retries == 3  # default retry_limit
        retried = sum(r.retries for r in rep.records)
        assert rep.availability.retries == retried > 0

    def test_shed_requests_have_no_prediction(self, served):
        _reqs, rep = served
        shed = [r for r in rep.records if r.status == "shed"]
        assert shed
        for r in shed:
            assert r.rid not in rep.predictions

    def test_degraded_answers_are_labeled_and_complete(self, served):
        reqs, rep = served
        by_rid = {r.rid: r for r in reqs}
        degraded = [r for r in rep.records if r.status == "degraded"]
        assert degraded
        for r in degraded:
            preds = rep.predictions[r.rid]
            assert preds.shape == (len(by_rid[r.rid].seeds),)

    def test_unavailable_rows_accounting(self, served):
        _reqs, rep = served
        g = rep.gather
        assert g.unavailable_rows > 0
        assert g.unavailable_rows == rep.availability.unavailable_rows
        # Zero-filled rows moved out of remote_rows: the row identity
        # still balances with the unavailable bucket included.
        assert g.total_rows == (g.gpu_rows + g.cpu_rows + g.cached_rows
                                + g.remote_rows + g.coalesced_rows
                                + g.unavailable_rows)
        # Each unavailable row must come out of the bucket that claimed
        # it (remote for a first request, coalesced for a later one) —
        # subtracting them all from remote drove these negative.
        assert g.remote_rows >= 0 and g.coalesced_rows >= 0
        assert g.comm_rows() >= 0
        assert 0.0 <= g.cache_hit_rate() <= 1.0

    def test_availability_between_zero_and_one(self, served):
        _reqs, rep = served
        assert 0.0 < rep.availability.availability() < 1.0
        assert rep.summary()["availability"] \
            == rep.availability.availability()

    def test_deterministic_rerun(self, served, tiny_dataset):
        reqs, rep = served
        rep2 = build_service(tiny_dataset).run(
            list(reqs), outages=[Outage(1, 0.0)])
        assert [(r.rid, r.status, r.retries, r.completed)
                for r in rep.records] \
            == [(r.rid, r.status, r.retries, r.completed)
                for r in rep2.records]
        for rid in rep.predictions:
            assert np.array_equal(rep.predictions[rid],
                                  rep2.predictions[rid])


def test_finite_outage_recovers(tiny_dataset):
    reqs = make_slo_requests(tiny_dataset)
    rep = build_service(tiny_dataset).run(
        list(reqs), outages=[Outage(1, 0.0, 0.004)])
    a = rep.availability
    assert a.total == len(reqs)
    assert a.served_ok > 0
    by_rid = {r.rid: r for r in reqs}
    # Anything arriving comfortably after the up-transition is untouched.
    late = [r for r in rep.records if by_rid[r.rid].arrival > 0.006]
    assert late
    assert all(r.status == "ok" for r in late)


def test_all_machines_down_sheds_everything(tiny_dataset):
    reqs = make_slo_requests(tiny_dataset, per_class=5)
    rep = build_service(tiny_dataset).run(
        list(reqs), outages=[Outage(0, 0.0), Outage(1, 0.0)])
    a = rep.availability
    assert a.shed == a.total == len(reqs)
    assert a.availability() == 0.0
    assert not rep.predictions
    assert all(r.status == "shed" for r in rep.records)


def test_overlapping_outages_compose(tiny_dataset):
    # Two overlapping outage spans on the same machine: it must stay down
    # until the *last* one ends (depth-counted, not toggled).
    reqs = make_slo_requests(tiny_dataset)
    rep = build_service(tiny_dataset).run(
        list(reqs),
        outages=[Outage(1, 0.0, 0.05), Outage(1, 0.02, 0.03)])
    by_rid = {r.rid: r for r in reqs}
    for r in rep.records:
        if 0.031 < by_rid[r.rid].arrival < 0.045:
            # Inside the outer span, after the inner one ended: still down.
            assert r.machine == 0
