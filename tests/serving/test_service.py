"""End-to-end inference-service tests on the tiny dataset."""

import numpy as np
import pytest

from repro.core import Planner, RunConfig, ServingConfig
from repro.pipeline.events import Stage
from repro.serving import (
    ClosedLoopWorkload,
    InferenceService,
    forward_flops,
    poisson_requests,
)
from repro.graph.generators import streaming_request_stream


def build_service(tiny_dataset, planner=None, **serving_kw):
    serving = ServingConfig(**{"batcher": "deadline", "max_batch": 8,
                               "max_wait_ms": 10.0, "max_in_flight": 4,
                               **serving_kw})
    cfg = RunConfig(num_machines=2, replication_factor=0.1, serving=serving)
    if planner is None:
        planner = Planner()
    return planner.build_service(tiny_dataset, cfg)


def make_requests(tiny_dataset, n=50, size=4, rate=2000.0, seed=3):
    return poisson_requests(np.arange(tiny_dataset.num_vertices), n, size,
                            rate_rps=rate, hot_fraction=0.02, hot_mass=0.8,
                            drift_interval=20, seed=seed)


@pytest.fixture(scope="module")
def served(request):
    ds = request.getfixturevalue("tiny_dataset")
    svc = build_service(ds)
    reqs = make_requests(ds)
    return ds, svc, reqs, svc.run(reqs)


class TestEndToEnd:
    def test_every_request_answered(self, served):
        _ds, _svc, reqs, rep = served
        assert rep.num_requests == len(reqs)
        assert sorted(rep.predictions) == [r.rid for r in reqs]
        for r in reqs:
            preds = rep.predictions[r.rid]
            assert preds.shape == (len(r.seeds),)
            assert preds.min() >= 0

    def test_predictions_in_class_range(self, served):
        ds, _svc, _reqs, rep = served
        for preds in rep.predictions.values():
            assert preds.max() < ds.num_classes

    def test_lifecycle_ordering(self, served):
        _ds, _svc, _reqs, rep = served
        for r in rep.records:
            assert r.arrival <= r.formed <= r.started < r.completed

    def test_trace_validates_and_prices(self, served):
        _ds, svc, _reqs, rep = served
        trace = rep.trace
        assert trace.engine == "serving"
        assert trace.num_steps == rep.num_batches
        assert len(trace.machine_of_step) == trace.num_steps
        trace.validate()  # idempotent
        total = sum(svc.cost_model.event_duration(ev) for ev in trace.events)
        assert total > 0
        # No training-only stages in a serving trace.
        assert all(ev.stage is not Stage.ALLREDUCE for ev in trace.events)

    def test_gather_totals_consistent(self, served):
        _ds, _svc, _reqs, rep = served
        g = rep.gather
        assert g.total_rows == (g.gpu_rows + g.cpu_rows + g.cached_rows
                                + g.remote_rows + g.coalesced_rows)
        assert g.comm_rows() == g.remote_rows + g.refresh_rows

    def test_deterministic_rerun(self, tiny_dataset):
        reqs = make_requests(tiny_dataset)
        rep1 = build_service(tiny_dataset).run(list(reqs))
        rep2 = build_service(tiny_dataset).run(list(reqs))
        assert [r.completed for r in rep1.records] == \
               [r.completed for r in rep2.records]
        for rid in rep1.predictions:
            assert np.array_equal(rep1.predictions[rid], rep2.predictions[rid])


class TestSLO:
    def test_deadline_bounds_queue_wait(self, served):
        _ds, svc, _reqs, rep = served
        assert rep.max_queue_wait() <= svc.spec.max_wait_s + 1e-9

    def test_fixed_size_drains_at_end_of_stream(self, tiny_dataset):
        svc = build_service(tiny_dataset, batcher="fixed-size", max_batch=7)
        reqs = make_requests(tiny_dataset, n=20)  # 20 % 7 != 0
        rep = svc.run(reqs)
        assert rep.num_requests == 20


class TestPredictionsMatchMonolithic:
    def test_features_equal_direct_indexing(self, tiny_dataset):
        """The serving gather path returns bit-identical features, so
        predictions equal a monolithic forward pass on the same MFGs."""
        svc = build_service(tiny_dataset)
        feats_ref = svc.store.reordered.dataset.features
        seen = {}

        original = svc.store.execute

        def checking_execute(plan, **kwargs):
            out, stats = original(plan, **kwargs)
            assert np.array_equal(out, feats_ref[plan.ids])
            seen["n"] = seen.get("n", 0) + 1
            return out, stats

        svc.store.execute = checking_execute
        svc.run(make_requests(tiny_dataset, n=12, rate=50000.0))
        assert seen["n"] > 0


class TestClosedLoop:
    def test_all_requests_complete(self, tiny_dataset):
        svc = build_service(tiny_dataset)
        stream = streaming_request_stream(
            np.arange(tiny_dataset.num_vertices), 30, 4, seed=5)
        rep = svc.run(ClosedLoopWorkload(stream, num_clients=6,
                                         think_time_s=0.001))
        assert rep.num_requests == 30
        assert rep.throughput_rps() > 0

    def test_one_client_serializes(self, tiny_dataset):
        svc = build_service(tiny_dataset)
        stream = streaming_request_stream(
            np.arange(tiny_dataset.num_vertices), 8, 4, seed=5)
        rep = svc.run(ClosedLoopWorkload(stream, num_clients=1))
        spans = sorted((r.started, r.completed) for r in rep.records)
        for (s1, c1), (s2, _c2) in zip(spans, spans[1:]):
            assert s2 >= c1  # next request never overlaps the previous


class TestIdTranslation:
    """Request seeds are original-dataset ids; the service works in the
    reordered space and must translate at the API boundary."""

    def test_seeds_translated_to_reordered_space(self, tiny_dataset):
        from repro.serving import Request

        svc = build_service(tiny_dataset)
        rd = svc.store.reordered
        assert not np.array_equal(rd.new_of_old,
                                  np.arange(len(rd.new_of_old))), \
            "fixture must reorder non-trivially for this test to bite"
        captured = []
        original_plan = svc.store.plan_gather
        svc.store.plan_gather = lambda k, ids: (captured.append(ids),
                                                original_plan(k, ids))[1]
        seeds = np.array([5, 17, 42])
        svc.run([Request(rid=0, seeds=seeds, arrival=0.0)])
        # The micro-batch MFG was seeded with the *translated* ids (n_id
        # keeps seeds first), so original vertex v's features/neighborhood
        # really came from reordered row new_of_old[v].
        assert np.array_equal(np.sort(captured[0][:3]),
                              np.sort(rd.new_of_old[seeds]))

    def test_caller_request_object_untouched(self, tiny_dataset):
        from repro.serving import Request

        svc = build_service(tiny_dataset)
        seeds = np.array([3, 9])
        req = Request(rid=0, seeds=seeds.copy(), arrival=0.0)
        rep = svc.run([req])
        assert np.array_equal(req.seeds, seeds)
        assert rep.predictions[0].shape == (2,)

    def test_out_of_range_seeds_rejected(self, tiny_dataset):
        from repro.serving import Request

        svc = build_service(tiny_dataset)
        bad = Request(rid=0, seeds=np.array([tiny_dataset.num_vertices]),
                      arrival=0.0)
        with pytest.raises(ValueError, match="outside"):
            svc.run([bad])

    def test_duplicate_rid_rejected(self, tiny_dataset):
        from repro.serving import Request

        svc = build_service(tiny_dataset)
        reqs = [Request(rid=7, seeds=np.array([1]), arrival=0.0),
                Request(rid=7, seeds=np.array([2]), arrival=0.001)]
        with pytest.raises(ValueError, match="duplicate request id"):
            svc.run(reqs)


class TestRouting:
    def test_owner_routing_sends_to_seed_owner(self, tiny_dataset):
        svc = build_service(tiny_dataset, router="owner")
        reqs = make_requests(tiny_dataset, n=30)
        rep = svc.run(reqs)
        by_rid = {r.rid: r for r in rep.records}
        rd = svc.store.reordered
        for req in reqs:
            owners = rd.owner_of(rd.new_of_old[req.seeds])
            majority = np.bincount(owners, minlength=svc.num_machines).argmax()
            assert by_rid[req.rid].machine == majority


class TestPlannerIntegration:
    def test_serving_sweep_reuses_preprocessing(self, tiny_dataset):
        planner = Planner()
        build_service(tiny_dataset, planner=planner)
        for batcher in ("fixed-size", "cache-affinity"):
            build_service(tiny_dataset, planner=planner, batcher=batcher)
        # Three serving variants, one preprocessing pass.
        assert planner.stats["partition"].computed == 1
        assert planner.stats["reorder"].computed == 1
        assert planner.stats["cache-select"].computed == 1

    def test_vip_refresh_service_wires_request_vip(self, tiny_dataset):
        cfg = RunConfig(num_machines=2, replication_factor=0.1,
                        cache_policy="vip-refresh", refresh_interval=5,
                        serving=ServingConfig(max_batch=4, max_wait_ms=5.0))
        svc = Planner().build_service(tiny_dataset, cfg)
        assert svc.store._refresh_score_fn is not None
        rep = svc.run(make_requests(tiny_dataset, n=40))
        churn = svc.store.cache_churn()
        assert sum(c.refreshes for c in churn) > 0
        assert rep.num_requests == 40


class TestForwardFlops:
    def test_is_one_third_of_train_flops(self, tiny_dataset):
        from repro.distributed.executor import StepRecord
        from repro.distributed.feature_store import GatherStats
        from repro.sampling import NeighborSampler

        sampler = NeighborSampler(tiny_dataset.graph, (3, 2), seed=0)
        mfg = sampler.sample(np.arange(10))
        rec = StepRecord(
            machine=0, step=0, batch_size=10, mfg_vertices=mfg.num_vertices,
            mfg_edges=mfg.num_edges, candidate_edges=0,
            block_sizes=tuple((b.num_src, b.num_dst, b.num_edges)
                              for b in mfg.blocks),
            gather=GatherStats(0, 0, 0, 0, 0, np.zeros(1, dtype=np.int64)),
        )
        assert forward_flops(mfg, 16, 32, 4) == pytest.approx(
            rec.flops(16, 32, 4) / 3.0)
