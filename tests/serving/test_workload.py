"""Load-generator tests: arrival shapes, determinism, closed-loop protocol."""

import numpy as np
import pytest

from repro.serving import ClosedLoopWorkload, Request, poisson_requests, trace_requests


CAND = np.arange(500)


class TestRequest:
    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError, match="no seeds"):
            Request(rid=0, seeds=np.empty(0, dtype=np.int64), arrival=0.0)

    def test_coerces_seed_dtype(self):
        req = Request(rid=0, seeds=[3, 1, 2], arrival=0.0)
        assert req.seeds.dtype == np.int64
        assert req.num_seeds == 3


class TestPoissonRequests:
    def test_shape_and_monotone_arrivals(self):
        reqs = poisson_requests(CAND, 40, 6, rate_rps=100.0, seed=1)
        assert len(reqs) == 40
        assert [r.rid for r in reqs] == list(range(40))
        arrivals = [r.arrival for r in reqs]
        assert arrivals == sorted(arrivals)
        for r in reqs:
            assert len(r.seeds) == 6
            assert len(np.unique(r.seeds)) == 6

    def test_rate_controls_mean_gap(self):
        fast = poisson_requests(CAND, 200, 4, rate_rps=1000.0, seed=2)
        slow = poisson_requests(CAND, 200, 4, rate_rps=10.0, seed=2)
        assert fast[-1].arrival < slow[-1].arrival / 10

    def test_deterministic(self):
        a = poisson_requests(CAND, 30, 4, rate_rps=50.0, seed=9)
        b = poisson_requests(CAND, 30, 4, rate_rps=50.0, seed=9)
        assert all(x.arrival == y.arrival and np.array_equal(x.seeds, y.seeds)
                   for x, y in zip(a, b))

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate_rps"):
            poisson_requests(CAND, 10, 4, rate_rps=0.0)


class TestTraceRequests:
    def test_builds_from_trace(self):
        reqs = trace_requests([0.0, 0.5, 1.5], [np.array([1]), np.array([2]),
                                                np.array([3])])
        assert [r.arrival for r in reqs] == [0.0, 0.5, 1.5]

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            trace_requests([1.0, 0.5], [np.array([1]), np.array([2])])

    def test_rejects_short_seed_stream(self):
        with pytest.raises(ValueError, match="ran out"):
            trace_requests([0.0, 1.0], [np.array([1])])


class TestClosedLoop:
    def test_initial_one_per_client(self):
        batches = [np.array([i]) for i in range(10)]
        wl = ClosedLoopWorkload(batches, num_clients=3, think_time_s=0.5)
        first = wl.initial()
        assert len(first) == 3
        assert [r.client for r in first] == [0, 1, 2]
        assert all(r.arrival == 0.0 for r in first)

    def test_on_complete_issues_next_after_think_time(self):
        batches = [np.array([i]) for i in range(4)]
        wl = ClosedLoopWorkload(batches, num_clients=2, think_time_s=0.25)
        first = wl.initial()
        nxt = wl.on_complete(first[0], now=1.0)
        assert nxt.client == 0
        assert nxt.arrival == 1.25
        assert nxt.rid == 2  # rids are global issue order

    def test_exhausted_stream_returns_none(self):
        wl = ClosedLoopWorkload([np.array([1])], num_clients=1)
        first = wl.initial()
        assert wl.on_complete(first[0], now=0.0) is None

    def test_initial_truncated_by_short_stream(self):
        wl = ClosedLoopWorkload([np.array([1])], num_clients=4)
        assert len(wl.initial()) == 1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError, match="num_clients"):
            ClosedLoopWorkload([], num_clients=0)
        with pytest.raises(ValueError, match="think_time"):
            ClosedLoopWorkload([], num_clients=1, think_time_s=-1.0)
