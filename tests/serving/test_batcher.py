"""Micro-batcher tests: flush triggers, packing, affinity scoring."""

import numpy as np
import pytest

from repro.core import ServingConfig
from repro.distributed import PartitionedFeatureStore
from repro.serving import BATCHERS, Request, make_batcher, one_hop_union
from repro.serving.batcher import DeadlineBatcher, FixedSizeBatcher


SPEC = ServingConfig(batcher="deadline", max_batch=4, max_wait_ms=10.0,
                     max_in_flight=2)


def reqs(n, arrival=0.0, gap=0.0, seed_of=None):
    return [Request(rid=i, seeds=np.array([seed_of(i) if seed_of else i]),
                    arrival=arrival + i * gap) for i in range(n)]


@pytest.fixture(scope="module")
def bound_store(request):
    rd = request.getfixturevalue("tiny_reordered")
    return PartitionedFeatureStore.build(rd)


class TestRegistry:
    def test_known_names(self):
        for name in ("fixed-size", "deadline", "cache-affinity"):
            assert name in BATCHERS

    def test_unknown_name_lists_valid(self):
        with pytest.raises(ValueError, match="micro-batcher"):
            BATCHERS.get("nagle")


class TestFixedSize:
    def test_waits_for_full_batch(self):
        b = FixedSizeBatcher(SPEC)
        queue = reqs(3)
        assert b.flush(queue, now=100.0) == []
        assert len(queue) == 3
        assert b.next_deadline(queue) is None

    def test_flushes_full_batches_only(self):
        b = FixedSizeBatcher(SPEC)
        queue = reqs(10)
        groups = b.flush(queue, now=0.0)
        assert [len(g) for g in groups] == [4, 4]
        assert len(queue) == 2  # remainder stays queued
        assert [r.rid for g in groups for r in g] == list(range(8))

    def test_respects_max_in_flight(self):
        b = FixedSizeBatcher(SPEC)
        queue = reqs(20)
        groups = b.flush(queue, now=0.0)
        assert len(groups) == SPEC.max_in_flight
        assert len(queue) == 20 - SPEC.max_in_flight * SPEC.max_batch

    def test_force_drains_partial(self):
        b = FixedSizeBatcher(SPEC)
        queue = reqs(3)
        groups = b.flush(queue, now=0.0, force=True)
        assert [len(g) for g in groups] == [3]
        assert queue == []


class TestDeadline:
    def test_not_due_before_deadline(self):
        b = DeadlineBatcher(SPEC)
        queue = reqs(2, arrival=1.0)
        assert b.flush(queue, now=1.0 + 0.5 * SPEC.max_wait_s) == []

    def test_due_at_oldest_deadline(self):
        b = DeadlineBatcher(SPEC)
        queue = reqs(2, arrival=1.0)
        groups = b.flush(queue, now=1.0 + SPEC.max_wait_s)
        assert [len(g) for g in groups] == [2]
        assert queue == []

    def test_full_window_triggers_early(self):
        b = DeadlineBatcher(SPEC)
        queue = reqs(SPEC.max_batch * SPEC.max_in_flight, arrival=5.0)
        groups = b.flush(queue, now=5.0)  # no waiting needed
        assert [len(g) for g in groups] == [4, 4]

    def test_single_full_batch_does_not_trigger(self):
        """Accumulation up to a whole window is the coalescing payoff."""
        b = DeadlineBatcher(SPEC)
        queue = reqs(SPEC.max_batch, arrival=5.0)
        assert b.flush(queue, now=5.0) == []

    def test_next_deadline_tracks_oldest(self):
        b = DeadlineBatcher(SPEC)
        queue = reqs(3, arrival=2.0, gap=0.001)
        assert b.next_deadline(queue) == pytest.approx(2.0 + SPEC.max_wait_s)
        assert b.next_deadline([]) is None

    def test_cap_leaves_excess_queued(self):
        b = DeadlineBatcher(SPEC)
        queue = reqs(11)
        groups = b.flush(queue, now=1000.0)
        assert sum(len(g) for g in groups) == 8
        assert len(queue) == 3


class TestCacheAffinity:
    def test_one_hop_union_contains_seeds_and_neighbors(self, tiny_graph):
        seeds = np.array([0, 5])
        hood = one_hop_union(tiny_graph, seeds)
        assert np.all(np.isin(seeds, hood))
        for s in seeds:
            nbrs = tiny_graph.indices[tiny_graph.indptr[s]:tiny_graph.indptr[s + 1]]
            assert np.all(np.isin(nbrs, hood))

    def test_unbound_batcher_raises(self):
        batcher = BATCHERS.get("cache-affinity")(SPEC)
        with pytest.raises(RuntimeError, match="bind"):
            batcher.affinity(Request(rid=0, seeds=np.array([0]), arrival=0.0))

    def test_local_requests_score_higher(self, bound_store, tiny_reordered):
        batcher = make_batcher("cache-affinity", SPEC, store=bound_store,
                               machine=0)
        lo, hi = tiny_reordered.part_range(0)
        local = Request(rid=0, seeds=np.arange(lo, lo + 4), arrival=0.0)
        lo1, _ = tiny_reordered.part_range(1)
        remote = Request(rid=1, seeds=np.arange(lo1, lo1 + 4), arrival=0.0)
        assert batcher.affinity(local) > batcher.affinity(remote)

    def test_packs_by_affinity_order(self, bound_store, tiny_reordered):
        batcher = make_batcher("cache-affinity", SPEC, store=bound_store,
                               machine=0)
        lo, hi = tiny_reordered.part_range(0)
        lo1, _ = tiny_reordered.part_range(1)
        # Interleave local (high-affinity) and remote (low-affinity) requests.
        queue = []
        for i in range(8):
            base = lo if i % 2 == 0 else lo1
            queue.append(Request(rid=i, seeds=np.array([base + i]), arrival=0.0))
        groups = batcher.flush(queue, now=1000.0)
        assert [len(g) for g in groups] == [4, 4]
        scores = [np.mean([batcher.affinity(r) for r in g]) for g in groups]
        assert scores[0] >= scores[1]
        # Local-partition requests are concentrated in the first group.
        first_rids = {r.rid for r in groups[0]}
        assert first_rids == {0, 2, 4, 6}
