"""Shared fixtures: small deterministic datasets and prebuilt substrates.

Everything here is session-scoped and tiny (hundreds of vertices) so the
whole suite stays fast; benchmark-scale datasets are exercised only under
``benchmarks/``.
"""

import numpy as np
import pytest

from repro.graph import erdos_renyi, load_dataset, power_law_community_graph
from repro.partition import metis_like_partition, reorder_dataset
from repro.vip import partitionwise_vip


@pytest.fixture(scope="session")
def tiny_dataset():
    return load_dataset("tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_graph(tiny_dataset):
    return tiny_dataset.graph


@pytest.fixture(scope="session")
def small_er_graph():
    return erdos_renyi(200, 6.0, seed=7)


@pytest.fixture(scope="session")
def community_graph():
    g, comm = power_law_community_graph(600, 8.0, num_communities=6,
                                        intra_fraction=0.9, seed=3)
    return g, comm


@pytest.fixture(scope="session")
def tiny_partition(tiny_dataset):
    return metis_like_partition(tiny_dataset.graph, 4, seed=0)


@pytest.fixture(scope="session")
def tiny_reordered(tiny_dataset, tiny_partition):
    vip = partitionwise_vip(tiny_dataset.graph, tiny_partition,
                            tiny_dataset.train_idx, (5, 5), 32)
    score = np.zeros(tiny_dataset.num_vertices)
    for k in range(tiny_partition.num_parts):
        mask = tiny_partition.assignment == k
        score[mask] = vip[k][mask]
    return reorder_dataset(tiny_dataset, tiny_partition, within_part_score=score)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
