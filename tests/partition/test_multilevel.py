"""Multilevel (METIS-like) partitioner tests."""

import numpy as np
import pytest

from repro.partition import (
    evaluate_partition,
    metis_like_partition,
    random_partition,
)


class TestBasics:
    def test_single_part(self, tiny_graph):
        p = metis_like_partition(tiny_graph, 1, seed=0)
        assert p.num_parts == 1
        assert np.all(p.assignment == 0)

    def test_covers_all_vertices(self, tiny_graph):
        p = metis_like_partition(tiny_graph, 4, seed=0)
        assert p.num_vertices == tiny_graph.num_vertices
        assert set(np.unique(p.assignment)) == {0, 1, 2, 3}

    def test_rejects_bad_args(self, tiny_graph):
        with pytest.raises(ValueError, match="num_parts"):
            metis_like_partition(tiny_graph, 0)
        with pytest.raises(ValueError, match="cannot split"):
            metis_like_partition(tiny_graph, tiny_graph.num_vertices + 1)
        with pytest.raises(ValueError, match="balance_tolerance"):
            metis_like_partition(tiny_graph, 2, balance_tolerance=0.9)

    def test_deterministic(self, tiny_graph):
        a = metis_like_partition(tiny_graph, 4, seed=11)
        b = metis_like_partition(tiny_graph, 4, seed=11)
        assert np.array_equal(a.assignment, b.assignment)


class TestQuality:
    def test_beats_random_cut(self, community_graph):
        g, _ = community_graph
        p = metis_like_partition(g, 4, seed=0)
        pr = random_partition(g.num_vertices, 4, seed=0)
        cut = evaluate_partition(g, p).edge_cut_fraction
        cut_r = evaluate_partition(g, pr).edge_cut_fraction
        assert cut < 0.6 * cut_r

    def test_recovers_planted_communities_approximately(self, community_graph):
        g, _ = community_graph
        p = metis_like_partition(g, 3, seed=0)
        # Planted intra-fraction is 0.9; a decent 3-way cut stays well under
        # the random baseline of 2/3.
        assert evaluate_partition(g, p).edge_cut_fraction < 0.45

    def test_vertex_balance_within_tolerance(self, community_graph):
        g, _ = community_graph
        p = metis_like_partition(g, 4, balance_tolerance=1.1, seed=0)
        assert evaluate_partition(g, p).vertex_balance <= 1.1 + 1e-9

    def test_multi_constraint_balance(self, tiny_dataset):
        ds = tiny_dataset
        role = np.zeros((ds.num_vertices, 2))
        role[:, 0] = 1.0
        role[ds.train_idx, 1] = 1.0
        p = metis_like_partition(ds.graph, 4, vertex_weights=role,
                                 balance_tolerance=1.15, seed=0)
        rep = evaluate_partition(ds.graph, p, {"train": ds.train_idx})
        assert rep.vertex_balance <= 1.2
        assert rep.role_balance["train"] <= 1.3  # small counts: coarse quanta

    def test_rejects_negative_weights(self, tiny_graph):
        w = -np.ones((tiny_graph.num_vertices, 1))
        with pytest.raises(ValueError, match="non-negative"):
            metis_like_partition(tiny_graph, 2, vertex_weights=w)

    def test_weight_shape_mismatch(self, tiny_graph):
        with pytest.raises(ValueError, match="rows"):
            metis_like_partition(tiny_graph, 2, vertex_weights=np.ones((3, 1)))
