"""Partition-contiguous (VIP) reordering tests — §4.1 invariants."""

import numpy as np
import pytest

from repro.partition import Partition, reorder_dataset


class TestReorderInvariants:
    def test_assignment_contiguous(self, tiny_reordered):
        assert np.all(np.diff(tiny_reordered.partition.assignment) >= 0)

    def test_permutation_inverse(self, tiny_reordered, tiny_dataset):
        n = tiny_dataset.num_vertices
        rd = tiny_reordered
        assert np.array_equal(rd.new_of_old[rd.old_of_new], np.arange(n))
        assert np.array_equal(rd.old_of_new[rd.new_of_old], np.arange(n))

    def test_features_follow_vertices(self, tiny_reordered, tiny_dataset):
        rd = tiny_reordered
        for v_old in (0, 17, 123, 399):
            v_new = rd.new_of_old[v_old]
            assert np.array_equal(rd.dataset.features[v_new],
                                  tiny_dataset.features[v_old])
            assert rd.dataset.labels[v_new] == tiny_dataset.labels[v_old]

    def test_graph_structure_preserved(self, tiny_reordered, tiny_dataset):
        rd = tiny_reordered
        for v_old in (5, 50, 250):
            v_new = rd.new_of_old[v_old]
            expect = set(rd.new_of_old[tiny_dataset.graph.neighbors(v_old)].tolist())
            assert expect == set(rd.dataset.graph.neighbors(v_new).tolist())

    def test_splits_remapped(self, tiny_reordered, tiny_dataset):
        rd = tiny_reordered
        assert np.array_equal(
            np.sort(rd.old_of_new[rd.dataset.train_idx]),
            np.sort(tiny_dataset.train_idx))

    def test_owner_and_local_index(self, tiny_reordered):
        rd = tiny_reordered
        ids = np.arange(rd.dataset.num_vertices)
        owners = rd.owner_of(ids)
        assert np.array_equal(owners, rd.partition.assignment)
        local = rd.local_index(ids)
        for k in range(rd.num_parts):
            lo, hi = rd.part_range(k)
            assert np.array_equal(local[lo:hi], np.arange(hi - lo))

    def test_part_sizes_match(self, tiny_reordered, tiny_partition):
        for k in range(4):
            assert tiny_reordered.part_size(k) == int(
                (tiny_partition.assignment == k).sum())

    def test_local_train_ids(self, tiny_reordered):
        rd = tiny_reordered
        got = np.sort(np.concatenate([rd.local_train_ids(k) for k in range(rd.num_parts)]))
        assert np.array_equal(got, rd.dataset.train_idx)


class TestScoreOrdering:
    def test_descending_within_part(self, tiny_dataset, tiny_partition):
        rng = np.random.default_rng(1)
        score = rng.random(tiny_dataset.num_vertices)
        rd = reorder_dataset(tiny_dataset, tiny_partition, within_part_score=score)
        for k in range(4):
            lo, hi = rd.part_range(k)
            s = score[rd.old_of_new[lo:hi]]
            assert np.all(np.diff(s) <= 1e-15)

    def test_no_score_keeps_id_order(self, tiny_dataset, tiny_partition):
        rd = reorder_dataset(tiny_dataset, tiny_partition)
        for k in range(4):
            lo, hi = rd.part_range(k)
            assert np.all(np.diff(rd.old_of_new[lo:hi]) > 0)

    def test_rejects_mismatched_inputs(self, tiny_dataset):
        bad = Partition(np.zeros(10, dtype=np.int64), 1)
        with pytest.raises(ValueError, match="covers"):
            reorder_dataset(tiny_dataset, bad)
        ok = Partition(np.zeros(tiny_dataset.num_vertices, dtype=np.int64), 1)
        with pytest.raises(ValueError, match="one entry per vertex"):
            reorder_dataset(tiny_dataset, ok, within_part_score=np.ones(3))
