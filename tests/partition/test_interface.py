"""Partition datatype and metric tests."""

import numpy as np
import pytest

from repro.graph import CSRGraph
from repro.partition import Partition, balance, edge_cut, evaluate_partition


def two_triangles():
    """Two triangles joined by a single bridge edge."""
    edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]
    src = [a for a, b in edges] + [b for a, b in edges]
    dst = [b for a, b in edges] + [a for a, b in edges]
    return CSRGraph.from_edges(src, dst, 6)


class TestPartition:
    def test_validation(self):
        with pytest.raises(ValueError, match="num_parts"):
            Partition(np.zeros(3, dtype=np.int64), 0)
        with pytest.raises(ValueError, match="assignment"):
            Partition(np.array([0, 2]), 2)

    def test_members_and_sizes(self):
        p = Partition(np.array([1, 0, 1, 0]), 2)
        assert list(p.members(0)) == [1, 3]
        assert list(p.members(1)) == [0, 2]
        assert list(p.sizes()) == [2, 2]

    def test_owner_of(self):
        p = Partition(np.array([0, 1, 1]), 2)
        assert list(p.owner_of(np.array([2, 0]))) == [1, 0]


class TestMetrics:
    def test_edge_cut_bridge_only(self):
        g = two_triangles()
        p = Partition(np.array([0, 0, 0, 1, 1, 1]), 2)
        assert edge_cut(g, p) == 1

    def test_edge_cut_worst_case(self):
        g = two_triangles()
        p = Partition(np.array([0, 1, 0, 1, 0, 1]), 2)
        assert edge_cut(g, p) > 1

    def test_balance_perfect(self):
        p = Partition(np.array([0, 0, 1, 1]), 2)
        assert balance(p) == pytest.approx(1.0)

    def test_balance_weighted(self):
        p = Partition(np.array([0, 0, 1, 1]), 2)
        w = np.array([3.0, 3.0, 1.0, 1.0])
        assert balance(p, w) == pytest.approx(6.0 / 4.0)

    def test_evaluate_partition_report(self):
        g = two_triangles()
        p = Partition(np.array([0, 0, 0, 1, 1, 1]), 2)
        rep = evaluate_partition(g, p, {"train": np.array([0, 3])})
        assert rep.edge_cut == 1
        assert rep.edge_cut_fraction == pytest.approx(1 / 7)
        assert rep.vertex_balance == pytest.approx(1.0)
        assert rep.role_balance["train"] == pytest.approx(1.0)
        assert len(rep.as_rows()) >= 5
