"""Baseline partitioner tests."""

import numpy as np
import pytest

from repro.partition import (
    bfs_partition,
    evaluate_partition,
    hash_partition,
    ldg_partition,
    random_partition,
)


class TestRandomAndHash:
    def test_random_balanced(self):
        p = random_partition(103, 4, seed=0)
        assert p.sizes().max() - p.sizes().min() <= 1

    def test_hash_deterministic(self):
        a = hash_partition(50, 3)
        b = hash_partition(50, 3)
        assert np.array_equal(a.assignment, b.assignment)

    def test_rejects_nonpositive_parts(self):
        with pytest.raises(ValueError):
            random_partition(10, 0)
        with pytest.raises(ValueError):
            hash_partition(10, -1)


class TestBFS:
    def test_covers_and_roughly_balanced(self, community_graph):
        g, _ = community_graph
        p = bfs_partition(g, 4, seed=0)
        assert np.all(p.assignment >= 0)
        assert evaluate_partition(g, p).vertex_balance < 1.3

    def test_locality_beats_random(self, community_graph):
        g, _ = community_graph
        cut_bfs = evaluate_partition(g, bfs_partition(g, 4, seed=0)).edge_cut_fraction
        cut_rnd = evaluate_partition(
            g, random_partition(g.num_vertices, 4, seed=0)).edge_cut_fraction
        assert cut_bfs < cut_rnd


class TestLDG:
    def test_covers_and_balanced(self, community_graph):
        g, _ = community_graph
        p = ldg_partition(g, 4, seed=0)
        assert np.all(p.assignment >= 0)
        assert evaluate_partition(g, p).vertex_balance < 1.25

    def test_locality_beats_random(self, community_graph):
        g, _ = community_graph
        cut_ldg = evaluate_partition(g, ldg_partition(g, 4, seed=0)).edge_cut_fraction
        cut_rnd = evaluate_partition(
            g, random_partition(g.num_vertices, 4, seed=0)).edge_cut_fraction
        assert cut_ldg < cut_rnd

    def test_too_many_parts(self, tiny_graph):
        with pytest.raises(ValueError, match="cannot split"):
            ldg_partition(tiny_graph, tiny_graph.num_vertices + 1)
