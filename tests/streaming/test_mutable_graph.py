"""Delta-CSR overlay semantics, enforced against a pure-Python set oracle.

:class:`MutableGraph` is the substrate under incremental VIP and streaming
serving, so its contract is checked the hard way: a hypothesis property
replays random insert/delete/remove-vertex batches through both the overlay
and a dict-of-sets oracle and demands *exact* agreement on materialization,
degrees, and — the part everything downstream leans on — the dirty frontier
at every historical version, including mutations that cancel out inside the
window (those must NOT be reported).  Directed and undirected graphs, with
and without auto-compaction, plus unit tests for tombstones, log trimming,
the frozen sampler read path, and ``from_edges`` dedup/self-loop handling.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import CSRGraph, erdos_renyi
from repro.graph.mutable import DeltaRecord, EdgeBatch, MutableGraph
from repro.sampling import NeighborSampler, sample_neighbors


# ----------------------------------------------------------------------
# Oracle
# ----------------------------------------------------------------------
class SetOracle:
    """Reference semantics: adjacency as a dict of Python sets."""

    def __init__(self, graph: CSRGraph, undirected: bool):
        self.und = undirected
        self.n = graph.num_vertices
        self.rows = {v: set(graph.neighbors(v).tolist())
                     for v in range(self.n)}
        self.dead = set()

    def snapshot(self):
        return ({v: tuple(sorted(r)) for v, r in self.rows.items()}, self.n)

    def _pairs(self, src, dst):
        pairs = list(zip(src, dst))
        if self.und:
            pairs = pairs + [(d, s) for s, d in pairs]
        return pairs

    def add_edges(self, src, dst):
        for s, d in self._pairs(src, dst):
            self.rows[s].add(d)

    def remove_edges(self, src, dst):
        for s, d in self._pairs(src, dst):
            self.rows[s].discard(d)

    def remove_vertices(self, vertices):
        for v in vertices:
            self.dead.add(v)
            self.rows[v] = set()
        gone = set(vertices)
        for r in self.rows.values():
            r -= gone

    def add_vertices(self, count):
        for v in range(self.n, self.n + count):
            self.rows[v] = set()
        self.n += count

    def alive(self):
        return [v for v in range(self.n) if v not in self.dead]

    def edges(self):
        src = [v for v, r in self.rows.items() for _ in r]
        dst = [u for r in self.rows.values() for u in sorted(r)]
        return np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)

    def materialize(self):
        src, dst = self.edges()
        return CSRGraph.from_edges(src, dst, self.n, dedup=True)


def random_base(n, avg_deg, directed, seed):
    rng = np.random.default_rng(seed)
    if directed:
        m = int(avg_deg * n)
        return CSRGraph.from_edges(rng.integers(0, n, m),
                                   rng.integers(0, n, m), n, dedup=True)
    return erdos_renyi(n, avg_deg, seed=seed)


@st.composite
def churn_script(draw):
    """A base graph plus a script of mutation ops."""
    n = draw(st.integers(min_value=2, max_value=50))
    directed = draw(st.booleans())
    g = random_base(n, draw(st.floats(0.0, 6.0)), directed,
                    draw(st.integers(0, 2**16)))
    num_ops = draw(st.integers(min_value=1, max_value=6))
    rng_seed = draw(st.integers(0, 2**16))
    ops = draw(st.lists(
        st.sampled_from(["add", "del", "addverts", "rmvert", "mixed"]),
        min_size=num_ops, max_size=num_ops))
    compact_cutoff = draw(st.sampled_from([None, 0.3]))
    return g, directed, ops, rng_seed, compact_cutoff


def run_script(g, directed, ops, rng_seed, compact_cutoff):
    """Replay the script on both implementations, snapshotting the oracle
    at every version."""
    rng = np.random.default_rng(rng_seed)
    mg = MutableGraph(g, undirected=not directed,
                      compact_cutoff=compact_cutoff)
    oracle = SetOracle(g, undirected=not directed)
    snaps = {0: oracle.snapshot()}
    for op in ops:
        alive = oracle.alive()
        if not alive:
            break
        k = int(rng.integers(1, 6))
        pick = lambda: rng.choice(alive, size=k)  # noqa: E731
        if op == "add":
            s, d = pick(), pick()
            mg.add_edges(s, d)
            oracle.add_edges(s, d)
        elif op == "del":
            # half absent-edge deletes (no-ops), half real ones
            s, d = pick(), pick()
            real = [(v, u) for v in alive for u in oracle.rows[v]][:k]
            if real:
                s = np.concatenate([s, [p[0] for p in real]])
                d = np.concatenate([d, [p[1] for p in real]])
            mg.remove_edges(s, d)
            oracle.remove_edges(s, d)
        elif op == "addverts":
            mg.add_vertices(2)
            oracle.add_vertices(2)
        elif op == "rmvert":
            victim = [int(rng.choice(alive))]
            mg.remove_vertices(victim)
            oracle.remove_vertices(victim)
        else:  # mixed add+delete in one batch
            batch = EdgeBatch(add_src=pick(), add_dst=pick(),
                              del_src=pick(), del_dst=pick())
            mg.apply(batch)
            oracle.add_edges(batch.add_src, batch.add_dst)
            oracle.remove_edges(batch.del_src, batch.del_dst)
        snaps[mg.version] = oracle.snapshot()
    return mg, oracle, snaps


def expected_dirty(oracle, snaps, version):
    cur, _ = oracle.snapshot()
    then, _ = snaps[version]
    return np.array(sorted(v for v in cur
                           if cur[v] != then.get(v, ())), dtype=np.int64)


class TestOracleParity:
    @settings(max_examples=80, deadline=None)
    @given(churn_script())
    def test_matches_set_oracle(self, script):
        mg, oracle, snaps = run_script(*script)
        ref = oracle.materialize()
        mat = mg.materialize()
        assert mat.num_vertices == ref.num_vertices
        assert np.array_equal(mat.indptr, ref.indptr)
        assert np.array_equal(mat.indices, ref.indices)
        assert np.array_equal(mg.degrees, ref.degrees)
        for v in range(mg.num_vertices):
            assert tuple(mg.neighbors(v).tolist()) == \
                snaps[mg.version][0][v]
        # Exact dirty frontier at every historical version.
        for version in snaps:
            assert np.array_equal(mg.dirty_frontier(version),
                                  expected_dirty(oracle, snaps, version)), \
                f"frontier mismatch at version {version}"

    @settings(max_examples=30, deadline=None)
    @given(churn_script())
    def test_frozen_read_path_matches_materialized(self, script):
        """row_starts/take_edges (the sampler protocol) must read the same
        adjacency as the materialized CSR."""
        mg, _, _ = run_script(*script)
        mat = mg.materialize()
        targets = np.arange(mg.num_vertices, dtype=np.int64)
        starts = mg.row_starts(targets)
        counts = mg.degrees
        for v in range(mg.num_vertices):
            pos = starts[v] + np.arange(counts[v])
            assert np.array_equal(np.sort(mg.take_edges(pos)),
                                  mat.neighbors(v))


class TestRevertNotDirty:
    def test_cancelled_mutations_not_reported(self):
        g = erdos_renyi(30, 4.0, seed=1)
        mg = MutableGraph(g, undirected=True)
        before = mg.neighbors(3).copy()
        mg.add_edges([3], [7])
        mg.remove_edges([3], [7])
        assert np.array_equal(mg.neighbors(3), before)
        assert len(mg.dirty_frontier(0)) == 0
        # ...but relative to the intermediate version the change is real
        assert 3 in mg.dirty_frontier(1)

    def test_delete_then_readd_existing_edge(self):
        g = erdos_renyi(30, 4.0, seed=2)
        v = int(np.argmax(g.degrees))
        u = int(g.neighbors(v)[0])
        mg = MutableGraph(g, undirected=True)
        mg.remove_edges([v], [u])
        mg.add_edges([v], [u])
        assert len(mg.dirty_frontier(0)) == 0
        assert np.array_equal(mg.materialize().indices, g.indices)


class TestTombstones:
    def test_removed_vertex_rejects_new_edges(self):
        g = erdos_renyi(20, 3.0, seed=0)
        mg = MutableGraph(g, undirected=True)
        mg.remove_vertices([5])
        assert mg.is_tombstoned(5)
        assert len(mg.neighbors(5)) == 0
        with pytest.raises(ValueError, match="removed vertex"):
            mg.add_edges([5], [1])
        with pytest.raises(ValueError, match="already removed"):
            mg.remove_vertices([5])

    def test_remove_clears_incident_rows(self):
        g = erdos_renyi(20, 5.0, seed=3)
        v = int(np.argmax(g.degrees))
        nbrs = g.neighbors(v)
        mg = MutableGraph(g, undirected=True)
        mg.remove_vertices([v])
        for u in nbrs:
            assert v not in mg.neighbors(int(u))

    def test_out_of_range_endpoint_raises(self):
        g = erdos_renyi(10, 2.0, seed=0)
        mg = MutableGraph(g, undirected=True)
        with pytest.raises(ValueError):
            mg.add_edges([0], [10])
        with pytest.raises(ValueError):
            mg.add_edges([-1], [0])


class TestCompaction:
    def test_compact_preserves_log_and_frontier(self):
        g = erdos_renyi(40, 4.0, seed=4)
        mg = MutableGraph(g, undirected=True, compact_cutoff=None)
        rng = np.random.default_rng(0)
        mg.add_edges(rng.integers(0, 40, 10), rng.integers(0, 40, 10))
        frontier_before = mg.dirty_frontier(0)
        assert mg.overlay_entries > 0
        mg.compact()
        assert mg.overlay_entries == 0
        assert np.array_equal(mg.dirty_frontier(0), frontier_before)
        assert all(isinstance(r, DeltaRecord) for r in mg.log)

    def test_auto_compact_fires(self):
        g = erdos_renyi(30, 3.0, seed=5)
        mg = MutableGraph(g, undirected=True, compact_cutoff=0.0)
        mg.add_edges([0, 1], [2, 3])
        assert mg.overlay_entries == 0  # compacted after every batch

    def test_trim_log_invalidates_old_versions(self):
        g = erdos_renyi(20, 3.0, seed=6)
        mg = MutableGraph(g, undirected=True)
        mg.add_edges([0], [5])
        mg.add_edges([1], [6])
        assert mg.trim_log(1) == 1
        mg.dirty_frontier(1)  # still answerable
        with pytest.raises(ValueError, match="predates"):
            mg.dirty_frontier(0)


class TestFromEdgesDedup:
    """``CSRGraph.from_edges(dedup=True)`` is the canonicalization under
    both ``materialize`` and ``compact`` — duplicates collapse, self-loops
    are kept (one copy), rows come out sorted."""

    def test_duplicates_collapse(self):
        g = CSRGraph.from_edges([0, 0, 0, 1], [1, 1, 1, 0], 3, dedup=True)
        assert g.num_edges == 2
        assert np.array_equal(g.neighbors(0), [1])

    def test_self_loops_dedup_to_one(self):
        g = CSRGraph.from_edges([2, 2, 2], [2, 2, 2], 3, dedup=True)
        assert g.num_edges == 1
        assert np.array_equal(g.neighbors(2), [2])

    def test_rows_sorted_unique(self):
        g = CSRGraph.from_edges([0, 0, 0], [3, 1, 3], 4, dedup=True)
        assert np.array_equal(g.neighbors(0), [1, 3])

    def test_overlay_dedups_via_compact(self):
        base = erdos_renyi(10, 2.0, seed=0)
        mg = MutableGraph(base, undirected=True)
        mg.add_edges([0, 0, 0], [4, 4, 4])  # duplicate inserts
        assert int(np.sum(mg.neighbors(0) == 4)) == 1
        compacted = mg.compact()
        assert int(np.sum(compacted.neighbors(0) == 4)) == 1


class TestSamplerParity:
    def test_empty_overlay_rng_stream_identical(self):
        """Wrapping a graph without mutating it must not perturb sampled
        neighbor streams — positions index the base CSR directly."""
        g = erdos_renyi(100, 8.0, seed=7)
        mg = MutableGraph(g, undirected=True)
        seeds = np.array([3, 17, 41, 99], dtype=np.int64)
        a = sample_neighbors(g, seeds, 5, np.random.default_rng(123))
        b = sample_neighbors(mg, seeds, 5, np.random.default_rng(123))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_sampler_sees_overlay_edges(self):
        g = erdos_renyi(50, 3.0, seed=8)
        mg = MutableGraph(g, undirected=True)
        mg.add_edges([0], [49])
        src, dst = sample_neighbors(mg, np.array([0]), -1,
                                    np.random.default_rng(0))
        assert 49 in dst

    def test_neighbor_sampler_grows_with_graph(self):
        g = erdos_renyi(30, 3.0, seed=9)
        mg = MutableGraph(g, undirected=True)
        sampler = NeighborSampler(mg, [3, 3])
        sampler.sample(np.array([0, 1]))
        new = mg.add_vertices(5)
        mg.add_edges([int(new[0])], [0])
        mfg = sampler.sample(np.array([int(new[0])]))
        assert mfg.n_id.max() >= 0
