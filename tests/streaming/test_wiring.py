"""End-to-end streaming wiring: config, generator, serving, and training.

The overlay and the incremental refresh are exercised in isolation by their
own suites; this file checks the seams — :class:`StreamingConfig`
validation through :meth:`RunConfig.validate`, the :func:`edge_stream`
live-mutation contract, ``InferenceService.run(..., mutations=...)`` in
both refresh modes, and :meth:`SalientPP.apply_graph_updates` keeping the
per-partition VIP matrix bit-identical to a from-scratch recompute on the
compacted graph.
"""

import numpy as np
import pytest

from repro.core import RunConfig, StreamingConfig
from repro.graph import erdos_renyi, load_dataset, power_law_community_graph
from repro.graph.generators import edge_stream
from repro.graph.mutable import EdgeBatch, MutableGraph
from repro.vip.analytic import (
    uniform_minibatch_probability,
    vip_probabilities,
)


class TestStreamingConfig:
    def test_defaults_validate(self):
        RunConfig(streaming=StreamingConfig()).validate()

    def test_bad_churn_cutoff_rejected(self):
        with pytest.raises(ValueError, match="churn_cutoff"):
            RunConfig(streaming=StreamingConfig(churn_cutoff=1.5)).validate()

    def test_bad_compact_cutoff_rejected(self):
        with pytest.raises(ValueError, match="compact_cutoff"):
            RunConfig(
                streaming=StreamingConfig(compact_cutoff=-0.1)).validate()


class TestEdgeStream:
    def test_live_apply_contract(self):
        """Batches are generated against the *current* graph: applying each
        one before drawing the next never references missing vertices, and
        deletions name edges that exist at generation time."""
        g = erdos_renyi(200, 6.0, seed=0)
        mg = MutableGraph(g, undirected=True, compact_cutoff=None)
        n_ops = 0
        for batch in edge_stream(mg, num_batches=5, batch_edges=20, seed=1):
            for s, d in zip(batch.del_src, batch.del_dst):
                assert d in mg.neighbors(int(s))
            mg.apply(batch)
            n_ops += batch.num_ops
        assert n_ops > 0
        assert mg.version == 5

    def test_community_local_insertions(self):
        g, comm = power_law_community_graph(300, 6.0, num_communities=5,
                                            intra_fraction=0.9, seed=2)
        mg = MutableGraph(g, undirected=True, compact_cutoff=None)
        intra = total = 0
        for batch in edge_stream(mg, num_batches=4, batch_edges=25,
                                 delete_fraction=0.0, community=comm,
                                 seed=3):
            intra += int(np.sum(comm[batch.add_src] == comm[batch.add_dst]))
            total += len(batch.add_src)
            mg.apply(batch)
        assert total > 0 and intra == total

    def test_pool_restricted(self):
        g = erdos_renyi(100, 5.0, seed=4)
        mg = MutableGraph(g, undirected=True, compact_cutoff=None)
        pool = np.arange(20)
        for batch in edge_stream(mg, num_batches=3, batch_edges=10,
                                 pool=pool, seed=5):
            for arr in (batch.add_src, batch.add_dst, batch.del_src):
                assert len(arr) == 0 or arr.max() < 20
            mg.apply(batch)


@pytest.fixture(scope="module")
def built_system():
    from repro import SalientPP

    ds = load_dataset("tiny", seed=0)
    cfg = RunConfig(num_machines=2, replication_factor=0.2, batch_size=16)
    return SalientPP.build(ds, cfg), ds


class TestServingMutations:
    def _run(self, system, refresh):
        from dataclasses import replace

        from repro.serving import InferenceService
        from repro.serving.workload import poisson_requests

        system.config = replace(
            system.config, streaming=StreamingConfig(
                refresh_on_mutation=refresh))
        svc = InferenceService.from_system(system)
        N = system.dataset.graph.num_vertices
        wl = poisson_requests(np.arange(N), 30, 4, rate_rps=50.0, seed=3)
        rng = np.random.default_rng(0)
        muts = [(0.1 + 0.2 * i,
                 EdgeBatch(add_src=rng.integers(0, N, 6),
                           add_dst=rng.integers(0, N, 6)))
                for i in range(3)]
        report = svc.run(wl, mutations=muts)
        return svc, report

    def test_mutations_applied_with_refresh(self, built_system):
        system, _ = built_system
        svc, report = self._run(system, refresh=True)
        assert svc.mutations_applied == 3
        assert isinstance(svc.graph, MutableGraph)
        assert len(report.records) > 0

    def test_stale_cache_mode_freezes_vip_graph(self, built_system):
        system, _ = built_system
        svc, report = self._run(system, refresh=False)
        assert svc.mutations_applied == 3
        # VIP scoring still runs against the frozen pre-churn base
        assert svc._stale_vip_graph is not None
        assert not isinstance(svc._stale_vip_graph, MutableGraph)
        assert len(report.records) > 0

    def test_out_of_range_mutation_rejected(self, built_system):
        system, _ = built_system
        from repro.serving import InferenceService
        from repro.serving.workload import poisson_requests

        svc = InferenceService.from_system(system)
        N = system.dataset.graph.num_vertices
        wl = poisson_requests(np.arange(N), 5, 4, rate_rps=50.0, seed=3)
        with pytest.raises(ValueError):
            svc.run(wl, mutations=[
                (0.1, EdgeBatch(add_src=[0], add_dst=[N + 7]))])


class TestTrainingMutations:
    def test_vip_matrix_tracks_full_recompute(self, built_system):
        system, _ = built_system
        N = system.reordered.dataset.graph.num_vertices
        rng = np.random.default_rng(7)
        for _ in range(2):
            system.apply_graph_updates(
                EdgeBatch(add_src=rng.integers(0, N, 10),
                          add_dst=rng.integers(0, N, 10),
                          del_src=rng.integers(0, N, 3),
                          del_dst=rng.integers(0, N, 3)))
        mg = system.reordered.dataset.graph
        assert isinstance(mg, MutableGraph)
        assert all(s.graph is mg for s in system.trainer.samplers)
        mat = mg.materialize()
        tr = system.trainer
        for k in range(len(tr.local_train)):
            p0 = uniform_minibatch_probability(
                mat.num_vertices, tr.local_train[k], tr.batch_size)
            ref = vip_probabilities(mat, p0, tr.fanouts).access
            assert np.array_equal(system.vip_matrix[k], ref)
        # training still runs on the mutated graph
        result = system.train_epoch(0, dry_run=True)
        assert result.epoch_time > 0

    def test_live_backend_guard(self, built_system):
        system, _ = built_system

        class FakeLive:
            is_live = True

            def close(self):
                pass

        system._backend = FakeLive()
        try:
            with pytest.raises(RuntimeError, match="live cluster backend"):
                system.apply_graph_updates(
                    EdgeBatch(add_src=[0], add_dst=[1]))
        finally:
            system._backend = None
