"""Incremental VIP ≡ full Proposition 1 on the compacted graph, bit for bit.

The whole point of :func:`incremental_vip` is that a dirty-frontier refresh
is *indistinguishable* from throwing the snapshot away and re-running
:func:`vip_probabilities` on ``materialize()`` — not approximately, not "to
float tolerance": the incremental path replays the identical IEEE operation
sequence on changed rows only, so the arrays must match bit for bit.  This
file is the enforcement: a hypothesis differential suite over random graphs
(directed + undirected), random insert/delete churn, full-expansion ``-1``
fanouts, drifting seed distributions, chained multi-round refreshes, and
both churn-cutoff extremes (1.0 pins the incremental path, 0.0 pins the
full-recompute fallback — both must agree with the oracle).  Plus the
:class:`TransitionTable` version-token regression (satellite: stale
transitions must not survive a graph mutation).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import CSRGraph, erdos_renyi
from repro.graph.mutable import EdgeBatch, MutableGraph
from repro.vip import (
    incremental_vip,
    snapshot_vip,
    transition_table,
    vip_probabilities,
)


def assert_snapshot_matches_full(snap, mgraph):
    """The snapshot must be bit-identical to a fresh full evaluation on the
    materialized (compacted) graph."""
    ref = vip_probabilities(mgraph.materialize(), snap.initial, snap.fanouts)
    assert np.array_equal(snap.result.total, ref.total)
    assert len(snap.result.hopwise) == len(ref.hopwise)
    for a, b in zip(snap.result.hopwise, ref.hopwise):
        assert np.array_equal(a, b)
    assert np.array_equal(snap.access, ref.access)


def random_base(n, avg_deg, directed, seed):
    rng = np.random.default_rng(seed)
    if directed:
        m = int(avg_deg * n)
        return CSRGraph.from_edges(rng.integers(0, n, m),
                                   rng.integers(0, n, m), n, dedup=True)
    return erdos_renyi(n, avg_deg, seed=seed)


def sparse_p0(n, support, seed):
    rng = np.random.default_rng(seed)
    p0 = np.zeros(n)
    if support:
        idx = rng.choice(n, size=min(support, n), replace=False)
        p0[idx] = rng.random(len(idx))
    return p0


def random_batch(rng, alive, size):
    pick = lambda: rng.choice(alive, size=size)  # noqa: E731
    return EdgeBatch(add_src=pick(), add_dst=pick(),
                     del_src=pick(), del_dst=pick())


fanout_lists = st.lists(st.sampled_from([-1, 1, 2, 3, 7]),
                        min_size=1, max_size=3)


@st.composite
def churn_case(draw):
    n = draw(st.integers(min_value=2, max_value=60))
    directed = draw(st.booleans())
    g = random_base(n, draw(st.floats(0.0, 6.0)), directed,
                    draw(st.integers(0, 2**16)))
    fanouts = draw(fanout_lists)
    p0_seed = draw(st.integers(0, 2**16))
    support = draw(st.integers(0, n))
    churn_seed = draw(st.integers(0, 2**16))
    rounds = draw(st.integers(min_value=1, max_value=3))
    cutoff = draw(st.sampled_from([1.0, 0.0]))
    return g, directed, fanouts, p0_seed, support, churn_seed, rounds, cutoff


class TestIncrementalParity:
    @settings(max_examples=60, deadline=None)
    @given(churn_case())
    def test_bit_identical_across_churn(self, case):
        (g, directed, fanouts, p0_seed, support, churn_seed, rounds,
         cutoff) = case
        rng = np.random.default_rng(churn_seed)
        mg = MutableGraph(g, undirected=not directed, compact_cutoff=None)
        p0 = sparse_p0(mg.num_vertices, support, p0_seed)
        snap = snapshot_vip(mg, p0, fanouts)
        assert_snapshot_matches_full(snap, mg)
        for _ in range(rounds):
            alive = [v for v in range(mg.num_vertices)
                     if not mg.is_tombstoned(v)]
            if not alive:
                break
            mg.apply(random_batch(rng, alive, int(rng.integers(1, 8))))
            still = [v for v in alive if not mg.is_tombstoned(v)]
            if rng.random() < 0.3 and len(still) > 1:
                mg.remove_vertices([int(rng.choice(still))])
            snap = incremental_vip(mg, snap, churn_cutoff=cutoff)
            assert_snapshot_matches_full(snap, mg)

    @settings(max_examples=25, deadline=None)
    @given(churn_case())
    def test_bit_identical_with_p0_drift(self, case):
        """Seed-distribution drift (the training-set swap case) rides the
        same refresh and must stay exact."""
        (g, directed, fanouts, p0_seed, support, churn_seed, rounds,
         cutoff) = case
        rng = np.random.default_rng(churn_seed)
        mg = MutableGraph(g, undirected=not directed, compact_cutoff=None)
        snap = snapshot_vip(mg, sparse_p0(mg.num_vertices, support, p0_seed),
                            fanouts)
        for i in range(rounds):
            alive = [v for v in range(mg.num_vertices)
                     if not mg.is_tombstoned(v)]
            mg.apply(random_batch(rng, alive, int(rng.integers(1, 6))))
            p0 = sparse_p0(mg.num_vertices, support, p0_seed + i + 1)
            snap = incremental_vip(mg, snap, p0, churn_cutoff=cutoff)
            assert_snapshot_matches_full(snap, mg)

    @settings(max_examples=20, deadline=None)
    @given(churn_case())
    def test_survives_vertex_growth_and_compaction(self, case):
        (g, directed, fanouts, p0_seed, support, churn_seed, rounds,
         cutoff) = case
        rng = np.random.default_rng(churn_seed)
        mg = MutableGraph(g, undirected=not directed, compact_cutoff=None)
        snap = snapshot_vip(mg, sparse_p0(mg.num_vertices, support, p0_seed),
                            fanouts)
        new = mg.add_vertices(3)
        old = [v for v in range(len(snap.initial))
               if not mg.is_tombstoned(v)]
        mg.add_edges([int(new[0]), int(new[1])],
                     [int(rng.choice(old)), int(rng.choice(old))])
        snap = incremental_vip(mg, snap, churn_cutoff=cutoff)
        assert_snapshot_matches_full(snap, mg)
        mg.compact()
        alive = [v for v in range(mg.num_vertices)
                 if not mg.is_tombstoned(v)]
        mg.apply(random_batch(rng, alive, 4))
        snap = incremental_vip(mg, snap, churn_cutoff=cutoff)
        assert_snapshot_matches_full(snap, mg)


class TestPairwiseSumTreeShape:
    def test_dead_source_insert_still_recomputed(self):
        """Regression: inserting an edge from a source with ``p0 = 0`` adds
        an exactly-zero log term, yet the row's value can still move by a
        ULP — numpy sums pairwise, so changing the segment *length* regroups
        the other operands.  A refresh that skips "dead" churn on that
        argument silently diverges from the oracle; dirty rows must always
        be recomputed.  This (graph, edge) pair is a found instance where
        the hop value provably moves."""
        g = erdos_renyi(30, 6.0, seed=1)
        rng = np.random.default_rng(1)
        p0 = np.zeros(30)
        p0[rng.choice(30, 20, replace=False)] = rng.random(20)
        assert p0[2] == 0.0
        before = vip_probabilities(g, p0, [3])
        mg = MutableGraph(g, undirected=True, compact_cutoff=None)
        snap = snapshot_vip(mg, p0, [3])
        mg.add_edges([2], [13])
        out = incremental_vip(mg, snap, churn_cutoff=1.0)
        assert out.stats.mode == "incremental"
        # The zero term really does perturb the row's value...
        ref = vip_probabilities(mg.materialize(), p0, [3])
        assert before.hopwise[0][13] != ref.hopwise[0][13]
        # ...and the refresh tracks it bit for bit.
        assert_snapshot_matches_full(out, mg)


class TestRefreshModes:
    def _setup(self):
        g = erdos_renyi(80, 5.0, seed=11)
        mg = MutableGraph(g, undirected=True, compact_cutoff=None)
        p0 = sparse_p0(80, 12, seed=1)
        return mg, snapshot_vip(mg, p0, (3, 3))

    def test_noop_without_churn(self):
        mg, snap = self._setup()
        again = incremental_vip(mg, snap)
        assert again.stats.mode == "noop"
        assert np.array_equal(again.result.total, snap.result.total)

    def test_incremental_mode_touches_few_rows(self):
        mg, snap = self._setup()
        mg.add_edges([0], [40])
        out = incremental_vip(mg, snap, churn_cutoff=1.0)
        assert out.stats.mode == "incremental"
        assert out.stats.rows_recomputed < mg.num_vertices * len(snap.fanouts)
        assert_snapshot_matches_full(out, mg)

    def test_full_fallback_past_cutoff(self):
        mg, snap = self._setup()
        rng = np.random.default_rng(0)
        mg.add_edges(rng.integers(0, 80, 400), rng.integers(0, 80, 400))
        out = incremental_vip(mg, snap, churn_cutoff=0.0)
        assert out.stats.mode == "full"
        assert_snapshot_matches_full(out, mg)

    def test_trimmed_log_rejected(self):
        """A snapshot older than the delta log cannot be refreshed
        incrementally — the frontier query must refuse, not silently
        under-report."""
        mg, snap = self._setup()
        mg.add_edges([0], [40])
        mg.add_edges([1], [41])
        mg.trim_log(mg.version)
        mg.add_edges([2], [42])
        with pytest.raises(ValueError, match="predates"):
            incremental_vip(mg, snap)


class TestTransitionTableVersion:
    """Satellite regression: the per-graph transition cache must notice
    mutation.  ``CSRGraph.version`` is the token; ``bump_version`` is what
    in-place mutators call."""

    def test_cache_hit_at_same_version(self):
        g = erdos_renyi(40, 4.0, seed=0)
        assert transition_table(g) is transition_table(g)

    def test_bump_version_invalidates(self):
        g = erdos_renyi(40, 4.0, seed=0)
        t1 = transition_table(g)
        vt1 = t1.vertex_transition(5).copy()
        # Mutate the CSR arrays in place (sever one high-degree vertex's
        # row tail) and bump — the stale table must be discarded.
        g.bump_version()
        t2 = transition_table(g)
        assert t2 is not t1
        assert t2.version == g.version
        assert np.array_equal(vt1, t2.vertex_transition(5))  # same content

    def test_stale_transitions_would_differ(self):
        """The failure the token prevents: a transition row computed before
        a degree change is wrong afterwards, so serving it from a cache
        keyed only on object identity would corrupt every consumer."""
        g1 = CSRGraph.from_edges([0, 0], [1, 2], 3, dedup=True)
        g2 = CSRGraph.from_edges([0, 0, 1, 1], [1, 2, 0, 2], 3, dedup=True)
        stale = transition_table(g1).vertex_transition(1)
        fresh = transition_table(g2).vertex_transition(1)
        assert not np.array_equal(stale, fresh)
