"""Layer, model, module, and optimizer tests."""

import numpy as np
import pytest

from repro.graph import make_tiny
from repro.nn import (
    Adam,
    GAT,
    GIN,
    GraphSAGE,
    Linear,
    MLP,
    Parameter,
    SGD,
    Tensor,
    accuracy,
    build_model,
    cross_entropy,
)
from repro.nn.layers import GATConv, GINConv, SAGEConv
from repro.sampling import NeighborSampler


@pytest.fixture(scope="module")
def tiny_mfg():
    ds = make_tiny(seed=0)
    s = NeighborSampler(ds.graph, (4, 3), seed=0)
    return ds, s.sample(ds.train_idx[:32])


class TestLinearAndModule:
    def test_linear_shapes(self):
        lin = Linear(5, 3, seed=0)
        out = lin(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_parameter_registration(self):
        lin = Linear(4, 2, seed=0)
        names = dict(lin.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert lin.num_parameters() == 4 * 2 + 2

    def test_state_dict_roundtrip(self):
        a = Linear(4, 2, seed=0)
        b = Linear(4, 2, seed=1)
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_raises(self):
        a = Linear(4, 2, seed=0)
        state = a.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            a.load_state_dict(state)

    def test_train_eval_mode_propagates(self):
        m = GraphSAGE(4, 8, 2, 2, dropout=0.5, seed=0)
        m.eval()
        assert not m.training
        assert not m.dropout.training
        m.train()
        assert m.dropout.training


class TestConvolutions:
    @pytest.mark.parametrize("conv_cls", [SAGEConv, GATConv, GINConv])
    def test_output_shape(self, tiny_mfg, conv_cls):
        ds, mfg = tiny_mfg
        blk = mfg.blocks[-1]
        conv = conv_cls(ds.feature_dim, 8, seed=0)
        x = Tensor(ds.features[mfg.n_id].astype(np.float64))
        out = conv(x, blk)
        assert out.shape == (blk.num_dst, 8)

    def test_sage_mean_semantics(self):
        """SAGE on a single dst with known neighbors = W_s x + W_n mean."""
        from repro.sampling.mfg import MFGBlock
        conv = SAGEConv(2, 2, seed=0)
        x = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 2.0]])
        blk = MFGBlock(np.array([0, 2]), np.array([1, 2]), num_src=3, num_dst=1)
        out = conv(Tensor(x), blk)
        mean_n = x[1:3].mean(axis=0)
        expect = (x[:1] @ conv.lin_self.weight.data + conv.lin_self.bias.data
                  + mean_n[None] @ conv.lin_neigh.weight.data)
        assert np.allclose(out.data, expect)

    def test_gat_attention_rows_normalized(self, tiny_mfg):
        ds, mfg = tiny_mfg
        conv = GATConv(ds.feature_dim, 4, seed=0)
        out = conv(Tensor(ds.features[mfg.n_id].astype(np.float64)), mfg.blocks[-1])
        assert np.all(np.isfinite(out.data))

    def test_gradients_flow_through_convs(self, tiny_mfg):
        ds, mfg = tiny_mfg
        for conv_cls in (SAGEConv, GATConv, GINConv):
            conv = conv_cls(ds.feature_dim, 4, seed=0)
            x = Tensor(ds.features[mfg.n_id].astype(np.float64))
            out = conv(x, mfg.blocks[-1])
            out.sum().backward()
            for name, p in conv.named_parameters():
                assert p.grad is not None, f"{conv_cls.__name__}.{name} got no grad"


class TestModels:
    @pytest.mark.parametrize("arch", ["sage", "gat", "gin"])
    def test_forward_shapes(self, tiny_mfg, arch):
        ds, mfg = tiny_mfg
        model = build_model(arch, ds.feature_dim, 16, ds.num_classes, 2, seed=0)
        out = model(ds.features[mfg.n_id], mfg)
        assert out.shape == (mfg.batch_size, ds.num_classes)

    def test_layer_count_must_match_blocks(self, tiny_mfg):
        ds, mfg = tiny_mfg
        model = GraphSAGE(ds.feature_dim, 16, ds.num_classes, 3, seed=0)
        with pytest.raises(ValueError, match="blocks"):
            model(ds.features[mfg.n_id], mfg)

    def test_feature_row_mismatch(self, tiny_mfg):
        ds, mfg = tiny_mfg
        model = GraphSAGE(ds.feature_dim, 16, ds.num_classes, 2, seed=0)
        with pytest.raises(ValueError, match="rows"):
            model(ds.features[mfg.n_id[:-1]], mfg)

    def test_unknown_arch(self):
        with pytest.raises(KeyError, match="unknown architecture"):
            build_model("transformer", 4, 8, 2, 2)

    def test_overfits_tiny(self):
        """A 2-layer SAGE must overfit 32 training vertices quickly."""
        ds = make_tiny(seed=0)
        s = NeighborSampler(ds.graph, (5, 5), seed=0)
        model = GraphSAGE(ds.feature_dim, 32, ds.num_classes, 2, seed=0)
        opt = Adam(model.parameters(), lr=0.02)
        ids = ds.train_idx[:32]
        for _ in range(30):
            mfg = s.sample(ids)
            loss = cross_entropy(model(ds.features[mfg.n_id], mfg), ds.labels[mfg.seeds])
            model.zero_grad(); loss.backward(); opt.step()
        model.eval()
        mfg = s.sample(ids)
        assert accuracy(model(ds.features[mfg.n_id], mfg), ds.labels[mfg.seeds]) > 0.9

    def test_gnn_beats_mlp_on_structural_data(self):
        """With weak per-vertex features (high noise, no smoothing), only
        neighborhood aggregation can denoise the class signal: SAGE > MLP."""
        from dataclasses import replace
        from repro.graph.datasets import make_features, make_synthetic_dataset

        base = make_synthetic_dataset(
            "t", num_vertices=600, avg_degree=12.0, feature_dim=8,
            num_classes=4, num_communities=8, label_noise=0.0,
            train_frac=0.3, val_frac=0.05, test_frac=0.2, seed=5)
        noisy = make_features(base.graph, base.labels, 8, 4, seed=9,
                              class_separation=1.0, smoothing=0.0, noise=3.0)
        ds = replace(base, features=noisy)
        s = NeighborSampler(ds.graph, (8, 8), seed=0)

        def train(model):
            opt = Adam(model.parameters(), lr=0.01)
            for epoch in range(10):
                for mfg in s.batches(ds.train_idx, 64, epoch=epoch, seed=2):
                    out = model(ds.features[mfg.n_id], mfg)
                    loss = cross_entropy(out, ds.labels[mfg.seeds])
                    model.zero_grad(); loss.backward(); opt.step()
            model.eval()
            mfg = s.sample(ds.test_idx)
            return accuracy(model(ds.features[mfg.n_id], mfg), ds.labels[mfg.seeds])

        acc_sage = train(GraphSAGE(ds.feature_dim, 32, ds.num_classes, 2, seed=3))
        acc_mlp = train(MLP(ds.feature_dim, 32, ds.num_classes, seed=3))
        assert acc_sage > acc_mlp


class TestOptimizers:
    def quad_problem(self):
        target = np.array([3.0, -2.0])
        p = Parameter(np.zeros(2))
        return p, target

    def test_sgd_converges(self):
        p, target = self.quad_problem()
        opt = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(200):
            p.grad = 2 * (p.data - target)
            opt.step()
        assert np.allclose(p.data, target, atol=1e-3)

    def test_adam_converges(self):
        p, target = self.quad_problem()
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            p.grad = 2 * (p.data - target)
            opt.step()
        assert np.allclose(p.data, target, atol=1e-2)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 10.0

    def test_skips_none_grad(self):
        p = Parameter(np.ones(2))
        opt = Adam([p], lr=0.1)
        opt.step()  # no grad: no movement
        assert np.allclose(p.data, 1.0)

    def test_rejects_empty_params_and_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=0.0)
