"""Functional op tests: segment reductions, softmax, losses, dropout."""

import numpy as np
import pytest

from repro.nn import Tensor, accuracy, cross_entropy
from repro.nn import functional as F


def numgrad(f, x, eps=1e-6):
    g = np.zeros_like(x, dtype=np.float64)
    for idx in np.ndindex(*x.shape):
        xp = x.copy(); xp[idx] += eps
        xm = x.copy(); xm[idx] -= eps
        g[idx] = (f(xp) - f(xm)) / (2 * eps)
    return g


class TestSegmentOps:
    def test_segment_sum_matches_loop(self, rng):
        x = rng.normal(size=(7, 3))
        ptr = np.array([0, 2, 2, 5, 7])  # includes an empty segment
        out = F.segment_sum(Tensor(x), ptr)
        expect = np.stack([x[0:2].sum(0), np.zeros(3), x[2:5].sum(0), x[5:7].sum(0)])
        assert np.allclose(out.data, expect)

    def test_segment_sum_grad(self, rng):
        x = rng.normal(size=(6, 2))
        ptr = np.array([0, 3, 6])

        def f(xv):
            return F.segment_sum(Tensor(xv, requires_grad=True), ptr).sum().item()
        t = Tensor(x, requires_grad=True)
        F.segment_sum(t, ptr).sum().backward()
        assert np.allclose(t.grad, numgrad(f, x), atol=1e-6)

    def test_segment_mean_empty_is_zero(self, rng):
        x = rng.normal(size=(4, 2))
        ptr = np.array([0, 0, 4])
        out = F.segment_mean(Tensor(x), ptr)
        assert np.allclose(out.data[0], 0.0)
        assert np.allclose(out.data[1], x.mean(axis=0))

    def test_segment_softmax_sums_to_one(self, rng):
        x = rng.normal(size=(9, 1))
        ptr = np.array([0, 4, 9])
        out = F.segment_softmax(Tensor(x), ptr)
        assert out.data[0:4].sum() == pytest.approx(1.0)
        assert out.data[4:9].sum() == pytest.approx(1.0)

    def test_segment_softmax_grad(self, rng):
        x = rng.normal(size=(6, 1))
        ptr = np.array([0, 2, 6])
        w = rng.normal(size=(6, 1))

        def f(xv):
            t = Tensor(xv, requires_grad=True)
            return (F.segment_softmax(t, ptr) * Tensor(w)).sum().item()
        t = Tensor(x, requires_grad=True)
        (F.segment_softmax(t, ptr) * Tensor(w)).sum().backward()
        assert np.allclose(t.grad, numgrad(f, x), atol=1e-6)

    def test_ptr_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.segment_sum(Tensor(np.ones((3, 2))), np.array([0, 2]))


class TestConcat:
    def test_concat_grad_splits(self, rng):
        a = rng.normal(size=(3, 2))
        b = rng.normal(size=(3, 4))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        out = F.concat([ta, tb], axis=1)
        assert out.shape == (3, 6)
        out.sum().backward()
        assert np.allclose(ta.grad, 1.0) and ta.grad.shape == a.shape
        assert np.allclose(tb.grad, 1.0) and tb.grad.shape == b.shape


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_training_scales(self, rng):
        x = Tensor(np.ones((400, 50)))
        out = F.dropout(x, 0.25, rng, training=True)
        kept = out.data != 0
        assert 0.70 < kept.mean() < 0.80
        assert np.allclose(out.data[kept], 1.0 / 0.75)

    def test_rejects_bad_p(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(2)), 1.0, rng)


class TestLosses:
    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(5, 3))
        labels = np.array([0, 2, 1, 1, 0])
        loss = cross_entropy(Tensor(logits), labels)
        # Manual
        z = logits - logits.max(axis=1, keepdims=True)
        logp = z - np.log(np.exp(z).sum(axis=1, keepdims=True))
        manual = -logp[np.arange(5), labels].mean()
        assert loss.item() == pytest.approx(manual)

    def test_cross_entropy_grad(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = np.array([1, 0, 2, 1])

        def f(lv):
            return cross_entropy(Tensor(lv, requires_grad=True), labels).item()
        t = Tensor(logits, requires_grad=True)
        cross_entropy(t, labels).backward()
        assert np.allclose(t.grad, numgrad(f, logits), atol=1e-6)

    def test_cross_entropy_validates(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.ones((3, 2))), np.array([0, 1]))

    def test_log_softmax_rows_normalized(self, rng):
        out = F.log_softmax(Tensor(rng.normal(size=(4, 5))))
        assert np.allclose(np.exp(out.data).sum(axis=1), 1.0)

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 1.0]])
        assert accuracy(logits, np.array([0, 1, 0])) == pytest.approx(1.0)
        assert accuracy(logits, np.array([1, 1, 0])) == pytest.approx(2 / 3)
        assert np.isnan(accuracy(np.zeros((0, 2)), np.array([])))
