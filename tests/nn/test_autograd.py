"""Numerical gradient checks for every autograd op."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


def numgrad(f, x, eps=1e-6):
    g = np.zeros_like(x, dtype=np.float64)
    for idx in np.ndindex(*x.shape):
        xp = x.copy(); xp[idx] += eps
        xm = x.copy(); xm[idx] -= eps
        g[idx] = (f(xp) - f(xm)) / (2 * eps)
    return g


def check(build, x_shape, seed=0, atol=1e-6):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=x_shape)

    def scalar(xv):
        t = Tensor(xv, requires_grad=True)
        return build(t).sum().item()

    t = Tensor(x, requires_grad=True)
    out = build(t).sum()
    out.backward()
    assert np.allclose(t.grad, numgrad(scalar, x), atol=atol), \
        f"max err {np.abs(t.grad - numgrad(scalar, x)).max()}"


class TestArithmetic:
    def test_add_broadcast(self):
        b = Tensor(np.random.default_rng(1).normal(size=3))
        check(lambda t: t + b, (4, 3))

    def test_add_scalar(self):
        check(lambda t: t + 2.5, (3, 2))

    def test_mul(self):
        other = Tensor(np.random.default_rng(2).normal(size=(4, 3)))
        check(lambda t: t * other, (4, 3))

    def test_mul_broadcast_grad_to_smaller(self):
        rng = np.random.default_rng(3)
        big = rng.normal(size=(5, 3))

        def build(t):
            return Tensor(big) * t  # t is (3,)
        check(build, (3,))

    def test_neg_sub(self):
        check(lambda t: (-t) - 1.0, (2, 3))

    def test_rsub(self):
        check(lambda t: 1.0 - t, (2, 2))

    def test_div_scalar(self):
        check(lambda t: t / 4.0, (2, 3))

    def test_reciprocal(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(0.5, 2.0, size=(3, 3))
        t = Tensor(x, requires_grad=True)
        t.reciprocal().sum().backward()
        assert np.allclose(t.grad, -1.0 / x**2, atol=1e-8)

    def test_matmul_both_sides(self):
        rng = np.random.default_rng(5)
        B = rng.normal(size=(3, 2))
        check(lambda t: t @ Tensor(B), (4, 3))
        A = rng.normal(size=(4, 3))
        check(lambda t: Tensor(A) @ t, (3, 2))

    def test_matmul_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            Tensor(np.ones(3)) @ Tensor(np.ones((3, 2)))


class TestReductionsAndShape:
    def test_sum_all(self):
        check(lambda t: t.sum() * 2.0, (3, 4))

    def test_sum_axis(self):
        check(lambda t: t.sum(axis=0), (3, 4))
        check(lambda t: t.sum(axis=1, keepdims=True), (3, 4))

    def test_mean(self):
        check(lambda t: t.mean(axis=1), (3, 4))

    def test_reshape(self):
        check(lambda t: t.reshape(6, 2) @ Tensor(np.ones((2, 1))), (3, 4))

    def test_transpose(self):
        check(lambda t: t.T @ Tensor(np.ones((3, 1))), (3, 4))


class TestNonlinearities:
    def test_relu(self):
        check(lambda t: t.relu(), (4, 4), seed=7)

    def test_leaky_relu(self):
        check(lambda t: t.leaky_relu(0.1), (4, 4), seed=8)

    def test_exp_log_tanh(self):
        check(lambda t: t.exp(), (3, 3))
        rng = np.random.default_rng(9)
        x = rng.uniform(0.5, 2.0, size=(3, 3))
        t = Tensor(x, requires_grad=True)
        t.log().sum().backward()
        assert np.allclose(t.grad, 1.0 / x)
        check(lambda t: t.tanh(), (3, 3))


class TestIndexing:
    def test_gather_rows_scatter_backward(self):
        idx = np.array([0, 2, 2, 1])
        check(lambda t: t.gather_rows(idx), (3, 2))

    def test_slice_rows(self):
        check(lambda t: t.slice_rows(1, 3), (4, 2))


class TestEngine:
    def test_grad_accumulates_over_reuse(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        (t * 2 + t * 3).sum().backward()
        assert np.allclose(t.grad, 5.0)

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError, match="does not require grad"):
            Tensor(np.ones(2)).backward()

    def test_grad_shape_validated(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError, match="grad shape"):
            t.backward(np.ones(3))

    def test_detach_stops_gradient(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        out = (t.detach() * 2).sum()
        assert not out.requires_grad

    def test_diamond_graph(self):
        """f = (t*2) + (t*3) through shared subexpression."""
        t = Tensor(np.array([[1.0]]), requires_grad=True)
        a = t * 2
        out = a + a * 3  # a reused
        out.sum().backward()
        assert t.grad.item() == pytest.approx(8.0)
