"""Active-set Proposition 1 ≡ dense Proposition 1, bit for bit.

The optimized :func:`vip_probabilities` (frontier-driven hops, vertex-
factored transitions, shared :class:`TransitionTable`) must reproduce the
seed implementation :func:`vip_probabilities_dense` exactly — not "close",
*identical* — for every graph, seed distribution, fanout list (including
full expansion), and transition override.  This file is the enforcement:
hypothesis property tests over random graphs plus directed-graph, cutoff-
extreme, and transition-dedup cases, and the reference test for the
vectorized :func:`expected_remote_volume`.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import CSRGraph, erdos_renyi
from repro.partition import Partition, metis_like_partition
from repro.vip import (
    expected_remote_volume,
    partitionwise_vip,
    partitionwise_vip_dense,
    transition_probabilities,
    transition_table,
    uniform_minibatch_probability,
    vip_for_training_set,
    vip_probabilities,
    vip_probabilities_dense,
)
from repro.vip.analytic import _compute_edge_transition


def assert_results_identical(a, b):
    assert np.array_equal(a.total, b.total)
    assert len(a.hopwise) == len(b.hopwise)
    for ha, hb in zip(a.hopwise, b.hopwise):
        assert np.array_equal(ha, hb)
    assert np.array_equal(a.initial, b.initial)


@st.composite
def graph_and_p0(draw):
    """A random undirected graph with a sparse-ish initial distribution
    (the partition-restricted shape Proposition 1 sees in production)."""
    n = draw(st.integers(min_value=2, max_value=120))
    avg_deg = draw(st.floats(min_value=0.0, max_value=8.0))
    g = erdos_renyi(n, avg_deg, seed=draw(st.integers(0, 2**16)))
    support = draw(st.integers(min_value=0, max_value=n))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    p0 = np.zeros(n)
    if support:
        idx = rng.choice(n, size=support, replace=False)
        p0[idx] = rng.random(support)
    return g, p0


fanout_lists = st.lists(
    st.sampled_from([-1, 1, 2, 3, 5, 17]), min_size=1, max_size=4
)


class TestActiveSetParity:
    @settings(max_examples=60, deadline=None)
    @given(graph_and_p0(), fanout_lists,
           st.sampled_from([0.0, 0.05, 0.5, 1.0]))
    def test_matches_dense(self, gp, fanouts, cutoff):
        g, p0 = gp
        dense = vip_probabilities_dense(g, p0, fanouts)
        active = vip_probabilities(g, p0, fanouts, sparse_cutoff=cutoff)
        assert_results_identical(active, dense)

    @settings(max_examples=25, deadline=None)
    @given(graph_and_p0(), fanout_lists)
    def test_matches_dense_with_transition_override(self, gp, fanouts):
        g, p0 = gp
        rng = np.random.default_rng(0)
        override = [rng.random(g.num_edges) for _ in fanouts]
        dense = vip_probabilities_dense(g, p0, fanouts, transition=override)
        for cutoff in (0.0, 1.0):
            active = vip_probabilities(g, p0, fanouts, transition=override,
                                       sparse_cutoff=cutoff)
            assert_results_identical(active, dense)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 80), st.floats(0.5, 6.0), st.integers(0, 2**16),
           fanout_lists)
    def test_matches_dense_directed(self, n, avg_deg, seed, fanouts):
        """Directed graphs: frontier expansion must go through the reverse
        adjacency, not the (asymmetric) forward rows."""
        rng = np.random.default_rng(seed)
        m = int(avg_deg * n)
        g = CSRGraph.from_edges(rng.integers(0, n, m), rng.integers(0, n, m),
                                n, dedup=True)
        p0 = np.zeros(n)
        hot = rng.choice(n, size=max(1, n // 8), replace=False)
        p0[hot] = rng.random(len(hot))
        dense = vip_probabilities_dense(g, p0, fanouts)
        for cutoff in (0.0, 1.0):
            active = vip_probabilities(g, p0, fanouts, sparse_cutoff=cutoff)
            assert_results_identical(active, dense)

    def test_partition_restricted_p0(self, tiny_dataset, tiny_partition):
        """The production shape: p0 confined to one partition's training
        set, evaluated per partition (both paths, both cutoff extremes)."""
        ds = tiny_dataset
        train = ds.train_idx
        owner = tiny_partition.assignment[train]
        for k in range(tiny_partition.num_parts):
            p0 = uniform_minibatch_probability(
                ds.num_vertices, train[owner == k], 32)
            dense = vip_probabilities_dense(ds.graph, p0, (5, 4, 3))
            for cutoff in (0.0, 0.05, 1.0):
                active = vip_probabilities(ds.graph, p0, (5, 4, 3),
                                           sparse_cutoff=cutoff)
                assert_results_identical(active, dense)

    def test_partitionwise_matrix_bit_identical(self, tiny_dataset,
                                                tiny_partition):
        ds = tiny_dataset
        dense = partitionwise_vip_dense(ds.graph, tiny_partition, ds.train_idx,
                                        (5, 5), 32)
        active = partitionwise_vip(ds.graph, tiny_partition, ds.train_idx,
                                   (5, 5), 32)
        assert np.array_equal(dense, active)

    def test_vip_for_training_set_uses_active_path(self, tiny_dataset):
        ds = tiny_dataset
        res = vip_for_training_set(ds.graph, ds.train_idx[:10], (3, 3), 8)
        ref = vip_probabilities_dense(
            ds.graph,
            uniform_minibatch_probability(ds.num_vertices, ds.train_idx[:10], 8),
            (3, 3),
        )
        assert_results_identical(res, ref)

    @settings(max_examples=20, deadline=None)
    @given(graph_and_p0())
    def test_rejects_bad_inputs_like_dense(self, gp):
        g, p0 = gp
        with pytest.raises(ValueError, match="one probability per vertex"):
            vip_probabilities(g, np.zeros(g.num_vertices + 1), (2,))
        with pytest.raises(ValueError, match="one edge array per hop"):
            vip_probabilities(g, p0, (2, 2), transition=[np.ones(g.num_edges)])
        with pytest.raises(ValueError, match="one entry per edge"):
            vip_probabilities(g, p0, (2,), transition=[np.ones(g.num_edges + 1)])


class TestTransitionCache:
    def test_repeated_fanouts_compute_once(self):
        """Fanouts (5, 5, 5) must not recompute an identical transition
        array three times — one compute, the rest cache hits."""
        g = erdos_renyi(150, 5.0, seed=2)
        table = transition_table(g)
        p0 = uniform_minibatch_probability(150, np.arange(0, 150, 5), 16)
        vip_probabilities(g, p0, (5, 5, 5))
        assert table.vertex_computes == 1
        assert table.vertex_hits >= 2
        # Same story for the per-edge arrays the public API hands out.
        t1 = transition_probabilities(g, 5)
        t2 = transition_probabilities(g, 5)
        assert t1 is t2
        assert table.edge_computes == 1

    def test_partitionwise_shares_transitions_across_partitions(self):
        """K seeded recursions over L distinct fanouts compute at most L
        transition vectors for the whole matrix (was K x L passes)."""
        g = erdos_renyi(200, 6.0, seed=4)
        part = metis_like_partition(g, 4, seed=0)
        table = transition_table(g)
        before = table.vertex_computes
        partitionwise_vip(g, part, np.arange(0, 200, 3), (5, 4, 3), 16)
        assert table.vertex_computes - before <= 3

    def test_negative_fanouts_share_one_entry(self):
        g = erdos_renyi(60, 3.0, seed=1)
        table = transition_table(g)
        assert transition_probabilities(g, -1) is transition_probabilities(g, -2)
        assert table.edge_computes == 1

    def test_cached_arrays_match_uncached_and_are_readonly(self):
        g = erdos_renyi(80, 4.0, seed=9)
        for fanout in (1, 3, -1):
            cached = transition_probabilities(g, fanout)
            assert np.array_equal(cached, _compute_edge_transition(g, fanout))
            assert not cached.flags.writeable
        with pytest.raises(ValueError, match="fanout"):
            transition_probabilities(g, 0)

    def test_vertex_factoring_matches_edge_transition(self):
        """Gathering the per-vertex factorization along ``indices`` is the
        per-edge array, bit for bit (the active path's correctness core)."""
        g = erdos_renyi(100, 5.0, seed=3)
        table = transition_table(g)
        for fanout in (1, 2, 7, -1):
            per_edge = table.edge_transition(fanout)
            per_vertex = table.vertex_transition(fanout)
            assert np.array_equal(per_vertex[g.indices], per_edge)

    def test_table_is_per_graph(self):
        g1 = erdos_renyi(50, 3.0, seed=1)
        g2 = erdos_renyi(50, 3.0, seed=2)
        assert transition_table(g1) is transition_table(g1)
        assert transition_table(g1) is not transition_table(g2)


class TestExpectedRemoteVolume:
    @staticmethod
    def _reference(vip_matrix, partition, steps, cached=None):
        """The seed implementation: one boolean mask per machine."""
        K, _ = vip_matrix.shape
        owner = partition.assignment
        total = 0.0
        for k in range(K):
            remote = owner != k
            if cached is not None:
                remote = remote & ~cached[k]
            total += float(steps[k]) * float(vip_matrix[k, remote].sum())
        return total

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 6), st.integers(5, 60), st.integers(0, 2**16))
    def test_matches_reference(self, K, n, seed):
        rng = np.random.default_rng(seed)
        part = Partition(rng.integers(0, K, n), K)
        vip = rng.random((K, n))
        steps = rng.integers(1, 10, K)
        cached = rng.random((K, n)) < 0.3
        got = expected_remote_volume(vip, part, steps)
        assert got == pytest.approx(self._reference(vip, part, steps))
        got_cached = expected_remote_volume(vip, part, steps, cached)
        assert got_cached == pytest.approx(
            self._reference(vip, part, steps, cached))
        assert got_cached <= got + 1e-9

    def test_rejects_shape_mismatches(self):
        part = Partition(np.zeros(10, dtype=np.int64), 2)
        vip = np.zeros((2, 10))
        with pytest.raises(ValueError, match="steps_per_epoch"):
            expected_remote_volume(vip, part, np.ones(3))
        with pytest.raises(ValueError, match="cached"):
            expected_remote_volume(vip, part, np.ones(2),
                                   cached=np.zeros((2, 9), dtype=bool))
        with pytest.raises(ValueError, match="2-D"):
            expected_remote_volume(np.zeros(10), part, np.ones(2))
