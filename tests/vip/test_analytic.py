"""Analytic VIP (Proposition 1) tests: closed forms, ranges, monotonicity."""

import numpy as np
import pytest

from repro.graph import CSRGraph, erdos_renyi
from repro.partition import Partition
from repro.vip import (
    expected_remote_volume,
    partitionwise_vip,
    transition_probabilities,
    uniform_minibatch_probability,
    vip_for_training_set,
    vip_probabilities,
)


def star_graph(leaves):
    hub = np.zeros(leaves, dtype=np.int64)
    leaf = np.arange(1, leaves + 1, dtype=np.int64)
    return CSRGraph.from_edges(np.r_[hub, leaf], np.r_[leaf, hub], leaves + 1)


def path_graph(n):
    src = np.arange(n - 1)
    dst = np.arange(1, n)
    return CSRGraph.from_edges(np.r_[src, dst], np.r_[dst, src], n)


class TestTransitionProbabilities:
    def test_uniform_graphsage(self):
        g = star_graph(4)  # hub degree 4, leaves degree 1
        t = transition_probabilities(g, 2)
        # Edge (hub -> leaf) in CSR row hub has value min(1, 2/deg(leaf)) = 1.
        hub_edges = t[g.indptr[0]:g.indptr[1]]
        assert np.allclose(hub_edges, 1.0)
        # Edge (leaf -> hub): probability hub samples the leaf = 2/4.
        leaf_edges = t[g.indptr[1]:g.indptr[2]]
        assert np.allclose(leaf_edges, 0.5)

    def test_full_expansion(self):
        g = star_graph(3)
        assert np.allclose(transition_probabilities(g, -1), 1.0)

    def test_rejects_zero_fanout(self):
        with pytest.raises(ValueError, match="fanout"):
            transition_probabilities(star_graph(2), 0)


class TestClosedForms:
    def test_star_one_hop(self):
        """Hub in minibatch w.p. q: leaf inclusion after 1 hop = q*min(1,f/d)."""
        leaves = 10
        g = star_graph(leaves)
        q = 0.4
        p0 = np.zeros(leaves + 1)
        p0[0] = q
        res = vip_probabilities(g, p0, (3,))
        expect_leaf = q * 3.0 / leaves
        assert np.allclose(res.hopwise[0][1:], expect_leaf)
        # Hub is not reachable at hop 1 (leaves have p0 = 0).
        assert res.hopwise[0][0] == pytest.approx(0.0)

    def test_path_full_expansion_is_reachability(self):
        """With fanout >= max degree, hop-h inclusion = exact reachability."""
        g = path_graph(6)
        p0 = np.zeros(6)
        p0[0] = 1.0
        res = vip_probabilities(g, p0, (-1, -1))
        # Hop 1 reaches vertex 1 surely; hop 2 reaches 0 and 2 surely.
        assert res.hopwise[0][1] == pytest.approx(1.0)
        assert res.hopwise[1][2] == pytest.approx(1.0)
        assert res.hopwise[1][0] == pytest.approx(1.0)  # back to the seed
        assert res.total[2] == pytest.approx(1.0)
        assert res.total[5] == pytest.approx(0.0)

    def test_random_walk_linearization(self):
        """Single seed, fanout 1: p[1] equals the walk transition row."""
        g = path_graph(5)
        p0 = np.zeros(5)
        p0[2] = 1.0
        res = vip_probabilities(g, p0, (1,))
        # Vertex 2 has two neighbors; each is sampled w.p. 1/2.
        assert res.hopwise[0][1] == pytest.approx(0.5)
        assert res.hopwise[0][3] == pytest.approx(0.5)


class TestRangesAndMonotonicity:
    def test_probabilities_in_unit_interval(self, small_er_graph, rng):
        g = small_er_graph
        p0 = rng.random(g.num_vertices) * 0.3
        res = vip_probabilities(g, p0, (4, 3, 2))
        for arr in [res.total] + res.hopwise:
            assert np.all(arr >= 0.0) and np.all(arr <= 1.0)

    def test_monotone_in_fanout(self, small_er_graph):
        g = small_er_graph
        train = np.arange(0, g.num_vertices, 4)
        lo = vip_for_training_set(g, train, (2, 2), 10).total
        hi = vip_for_training_set(g, train, (5, 5), 10).total
        assert np.all(hi >= lo - 1e-12)

    def test_monotone_in_batch_size(self, small_er_graph):
        g = small_er_graph
        train = np.arange(0, g.num_vertices, 3)
        lo = vip_for_training_set(g, train, (3, 3), 5).total
        hi = vip_for_training_set(g, train, (3, 3), 20).total
        assert np.all(hi >= lo - 1e-12)

    def test_custom_transition_override(self, small_er_graph):
        g = small_er_graph
        p0 = uniform_minibatch_probability(g.num_vertices, np.arange(20), 10)
        uniform = vip_probabilities(g, p0, (3,))
        custom = vip_probabilities(g, p0, (3,),
                                   transition=[transition_probabilities(g, 3)])
        assert np.allclose(uniform.total, custom.total)

    def test_rejects_bad_inputs(self, small_er_graph):
        g = small_er_graph
        with pytest.raises(ValueError, match="one probability per vertex"):
            vip_probabilities(g, np.zeros(3), (2,))
        with pytest.raises(ValueError, match="entries must lie"):
            vip_probabilities(g, np.full(g.num_vertices, 1.5), (2,))
        with pytest.raises(ValueError, match="one edge array per hop"):
            vip_probabilities(g, np.zeros(g.num_vertices), (2, 2),
                              transition=[np.ones(g.num_edges)])


class TestPartitionwise:
    def test_rows_cover_partitions(self, tiny_dataset, tiny_partition):
        ds = tiny_dataset
        vip = partitionwise_vip(ds.graph, tiny_partition, ds.train_idx, (5, 5), 32)
        assert vip.shape == (4, ds.num_vertices)
        # Each row is seeded by local training vertices only: the initial
        # probability mass lives inside the partition.
        for k in range(4):
            local_train = ds.train_idx[tiny_partition.assignment[ds.train_idx] == k]
            assert vip[k][local_train].min() > 0

    def test_empty_partition_training_set(self, tiny_dataset):
        ds = tiny_dataset
        # All train vertices in part 0: row 1 must be all zeros.
        assignment = np.zeros(ds.num_vertices, dtype=np.int64)
        part = Partition(assignment, 2)
        vip = partitionwise_vip(ds.graph, part, ds.train_idx, (3,), 8)
        assert np.all(vip[1] == 0)

    def test_expected_remote_volume_decreases_with_cache(self, tiny_dataset, tiny_partition):
        ds = tiny_dataset
        vip = partitionwise_vip(ds.graph, tiny_partition, ds.train_idx, (5, 5), 32)
        steps = np.full(4, 3)
        base = expected_remote_volume(vip, tiny_partition, steps)
        cached = np.zeros((4, ds.num_vertices), dtype=bool)
        for k in range(4):
            remote = np.flatnonzero(tiny_partition.assignment != k)
            top = remote[np.argsort(-vip[k][remote])[:50]]
            cached[k][top] = True
        with_cache = expected_remote_volume(vip, tiny_partition, steps, cached)
        assert with_cache < base
