"""Communication-volume evaluation tests (the Figure 2 harness)."""

import numpy as np
import pytest

from repro.vip import (
    NoCachePolicy,
    VIPAnalyticPolicy,
    evaluate_policies,
    geometric_mean_improvement,
    record_access_trace,
    remote_volume_for_caches,
)


@pytest.fixture(scope="module")
def trace_setup(request):
    ds = request.getfixturevalue("tiny_dataset")
    part = request.getfixturevalue("tiny_partition")
    trace = record_access_trace(ds.graph, part, ds.train_idx, (5, 5), 16,
                                epochs=2, seed=0)
    return ds, part, trace


class TestTrace:
    def test_counts_bounded_by_steps(self, trace_setup):
        ds, part, trace = trace_setup
        for k in range(part.num_parts):
            assert trace.counts[k].max() <= trace.steps[k]

    def test_local_train_always_accessed(self, trace_setup):
        ds, part, trace = trace_setup
        # Every vertex appears at least in its own minibatch once per epoch.
        for k in range(part.num_parts):
            local_train = ds.train_idx[part.assignment[ds.train_idx] == k]
            sampled = local_train[: 16 * (len(local_train) // 16)]
            if len(sampled):
                assert trace.counts[k][sampled].min() >= trace.epochs

    def test_volume_upper_bound_no_cache(self, trace_setup):
        ds, part, trace = trace_setup
        K = part.num_parts
        empty = [np.empty(0, dtype=np.int64)] * K
        base = remote_volume_for_caches(trace, part, empty)
        assert base > 0
        # Caching any remote vertex can only reduce volume.
        some = []
        for k in range(K):
            remote = np.flatnonzero(part.assignment != k)
            some.append(remote[:20])
        assert remote_volume_for_caches(trace, part, some) <= base


class TestEvaluatePolicies:
    def test_ordering_oracle_vip_none(self, trace_setup):
        ds, part, trace = trace_setup
        res = evaluate_policies(
            ds.graph, part, ds.train_idx, (5, 5), 16,
            {"vip": VIPAnalyticPolicy()}, alphas=[0.3], trace=trace, seed=0,
        )
        vols = {r.policy: r.volume for r in res if r.alpha in (0.0, 0.3)}
        assert vols["oracle"] <= vols["vip"] + 1e-9
        assert vols["vip"] <= vols["none"] + 1e-9

    def test_monotone_in_alpha(self, trace_setup):
        ds, part, trace = trace_setup
        res = evaluate_policies(
            ds.graph, part, ds.train_idx, (5, 5), 16,
            {"vip": VIPAnalyticPolicy()}, alphas=[0.1, 0.3, 0.6],
            trace=trace, seed=0, include_oracle=False,
        )
        vip = sorted([r for r in res if r.policy == "vip"], key=lambda r: r.alpha)
        vols = [r.volume for r in vip]
        assert vols == sorted(vols, reverse=True)

    def test_geometric_mean(self, trace_setup):
        ds, part, trace = trace_setup
        res = evaluate_policies(
            ds.graph, part, ds.train_idx, (5, 5), 16,
            {"vip": VIPAnalyticPolicy()}, alphas=[0.2, 0.4],
            trace=trace, seed=0,
        )
        g = geometric_mean_improvement(res, "vip")
        assert g >= 1.0
        with pytest.raises(ValueError, match="no results"):
            geometric_mean_improvement(res, "bogus")

    def test_no_cache_policy_matches_baseline(self, trace_setup):
        ds, part, trace = trace_setup
        res = evaluate_policies(
            ds.graph, part, ds.train_idx, (5, 5), 16,
            {"nc": NoCachePolicy()}, alphas=[0.5], trace=trace, seed=0,
            include_oracle=False,
        )
        vols = {r.policy: r.volume for r in res}
        assert vols["nc"] == pytest.approx(vols["none"])
