"""Monte-Carlo validation of Proposition 1 against the real random process.

The heart of the paper: the analytic VIP model must describe the actual
node-wise neighborhood-expansion process.  Hop-1 probabilities are exact
under independent Bernoulli seed sets; multi-hop probabilities carry the
paper's independence approximation, so they are validated on accuracy in the
realistic small-probability regime and on *ranking* fidelity (what the
caching policy consumes) elsewhere.
"""

import numpy as np
import pytest

from repro.graph import erdos_renyi, power_law_community_graph
from repro.sampling import sample_neighbors
from repro.vip import montecarlo_inclusion_frequency, vip_probabilities


@pytest.fixture(scope="module")
def pl_graph():
    g, _ = power_law_community_graph(800, 8.0, num_communities=8, seed=1)
    return g


def union_with_seeds(res, p0):
    """1 - (1-p0) * prod_h (1-p[h]) — inclusion in seeds or any hop."""
    out = 1.0 - (1.0 - p0) * np.prod([1.0 - h for h in res.hopwise], axis=0)
    return out


class TestHopOneExactness:
    def test_hop1_matches_simulation(self, pl_graph, rng):
        g = pl_graph
        p0 = np.zeros(g.num_vertices)
        train = rng.choice(g.num_vertices, 100, replace=False)
        p0[train] = 0.1
        res = vip_probabilities(g, p0, (4,))

        trials = 3000
        hits = np.zeros(g.num_vertices)
        for _ in range(trials):
            seeds = np.flatnonzero(rng.random(g.num_vertices) < p0)
            _, src = sample_neighbors(g, seeds, 4, rng)
            hits[np.unique(src)] += 1
        emp = hits / trials
        # Exact up to binomial noise; tolerance = ~4.5 sigma of the largest p.
        sigma = np.sqrt(np.maximum(res.hopwise[0] * (1 - res.hopwise[0]), 1e-4) / trials)
        assert np.all(np.abs(res.hopwise[0] - emp) < 4.5 * sigma + 5e-3)


class TestMultiHop:
    def test_small_probability_regime_accuracy(self, pl_graph, rng):
        g = pl_graph
        p0 = np.zeros(g.num_vertices)
        train = rng.choice(g.num_vertices, 160, replace=False)
        p0[train] = 0.02  # B/|T| regime of the paper
        res = vip_probabilities(g, p0, (3, 2))
        mc = montecarlo_inclusion_frequency(
            g, train, (3, 2), 0, trials=3000, seed=5, initial=p0)
        analytic = union_with_seeds(res, p0)
        # Mean absolute error well under the mean probability.
        assert np.abs(analytic - mc).mean() < 0.25 * max(analytic.mean(), 1e-6)

    def test_ranking_fidelity(self, pl_graph, rng):
        """What caching consumes is the ranking: analytic VIP must order
        vertices like their true access frequencies."""
        g = pl_graph
        train = rng.choice(g.num_vertices, 120, replace=False)
        p0 = np.zeros(g.num_vertices)
        p0[train] = 0.05
        res = vip_probabilities(g, p0, (4, 3))
        mc = montecarlo_inclusion_frequency(
            g, train, (4, 3), 0, trials=2500, seed=6, initial=p0)
        analytic = union_with_seeds(res, p0)
        corr = np.corrcoef(analytic, mc)[0, 1]
        assert corr > 0.95
        # Spearman (rank) correlation on the frequently-accessed vertices.
        sel = mc > np.quantile(mc, 0.5)
        ra = np.argsort(np.argsort(analytic[sel]))
        rm = np.argsort(np.argsort(mc[sel]))
        spearman = np.corrcoef(ra, rm)[0, 1]
        assert spearman > 0.8

    def test_full_expansion_reachability_bound(self, rng):
        """With full expansion the analytic union over-approximates (hop
        events are positively correlated), but never under-approximates the
        true reachability by more than noise."""
        g = erdos_renyi(200, 4.0, seed=2)
        train = rng.choice(g.num_vertices, 20, replace=False)
        p0 = np.zeros(g.num_vertices)
        p0[train] = 0.3
        res = vip_probabilities(g, p0, (-1, -1))
        mc = montecarlo_inclusion_frequency(
            g, train, (-1, -1), 0, trials=1500, seed=7, initial=p0)
        analytic = union_with_seeds(res, p0)
        assert np.all(analytic >= mc - 0.08)


class TestMinibatchWithoutReplacement:
    def test_fixed_size_minibatch_mode(self, pl_graph):
        """The train-set/batch-size entry point (no `initial`) draws fixed
        minibatches without replacement; frequencies still track VIP."""
        g = pl_graph
        train = np.arange(0, g.num_vertices, 5)
        from repro.vip import vip_for_training_set

        res = vip_for_training_set(g, train, (4, 3), batch_size=16)
        mc = montecarlo_inclusion_frequency(g, train, (4, 3), 16,
                                            trials=1500, seed=9)
        analytic = union_with_seeds(res, res.initial)
        corr = np.corrcoef(analytic, mc)[0, 1]
        assert corr > 0.9
