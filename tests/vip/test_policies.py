"""Caching-policy tests: selection contract and the Figure-2 ordering."""

import numpy as np
import pytest

from repro.vip import (
    CacheContext,
    DegreePolicy,
    HaloPolicy,
    NoCachePolicy,
    NumPathsPolicy,
    OraclePolicy,
    SimulationPolicy,
    VIPAnalyticPolicy,
    WeightedReversePageRankPolicy,
    build_caches,
    cache_budget,
    default_policies,
)


@pytest.fixture(scope="module")
def ctx(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    tiny_partition = request.getfixturevalue("tiny_partition")
    return CacheContext(
        graph=tiny_dataset.graph,
        partition=tiny_partition,
        train_idx=tiny_dataset.train_idx,
        fanouts=(5, 5),
        batch_size=16,
        seed=0,
    )


class TestBudget:
    def test_cache_budget(self):
        assert cache_budget(1000, 4, 0.2) == 50
        assert cache_budget(1000, 4, 0.0) == 0

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError, match="replication factor"):
            cache_budget(100, 2, -0.1)


class TestSelectionContract:
    @pytest.mark.parametrize("factory", list(default_policies().values()))
    def test_never_caches_local_or_overflows(self, ctx, factory):
        policy = factory()
        budget = 30
        for k in range(ctx.partition.num_parts):
            sel = policy.select(ctx, k, budget)
            assert len(sel) <= budget
            if len(sel):
                assert np.all(ctx.partition.assignment[sel] != k)
                assert np.all(np.diff(sel) > 0)  # sorted unique

    def test_zero_budget(self, ctx):
        assert len(VIPAnalyticPolicy().select(ctx, 0, 0)) == 0

    def test_none_policy_empty(self, ctx):
        assert len(NoCachePolicy().select(ctx, 0, 100)) == 0

    def test_build_caches(self, ctx):
        caches = build_caches(VIPAnalyticPolicy(), ctx, alpha=0.2)
        assert len(caches) == ctx.partition.num_parts
        budget = cache_budget(ctx.graph.num_vertices, ctx.partition.num_parts, 0.2)
        assert all(len(c) <= budget for c in caches)


class TestPolicySemantics:
    def test_degree_restricted_to_reachable(self, ctx):
        s = DegreePolicy().scores(ctx, 0)
        # Unreachable vertices score zero.
        assert (s == 0).sum() >= 0
        positive = np.flatnonzero(s > 0)
        assert len(positive) > 0

    def test_halo_support_is_one_hop(self, ctx):
        s = HaloPolicy().scores(ctx, 0)
        support = np.flatnonzero(s > 0)
        local = np.flatnonzero(ctx.partition.assignment == 0)
        one_hop = set(local.tolist())
        for v in local:
            one_hop.update(ctx.graph.neighbors(v).tolist())
        assert set(support.tolist()) <= one_hop

    def test_wpr_mass_positive_near_train(self, ctx):
        s = WeightedReversePageRankPolicy().scores(ctx, 0)
        assert s[ctx.local_train(0)].min() > 0

    def test_numpaths_counts_paths(self, ctx):
        s = NumPathsPolicy().scores(ctx, 0)
        assert s.max() > 0

    def test_sim_counts_are_integers(self, ctx):
        s = SimulationPolicy(epochs=1).scores(ctx, 0)
        assert np.all(s >= 0)
        assert np.allclose(s, np.round(s))

    def test_vip_scores_are_probabilities(self, ctx):
        s = VIPAnalyticPolicy().scores(ctx, 0)
        assert np.all((0 <= s) & (s <= 1))

    def test_oracle_uses_injected_counts(self, ctx):
        counts = np.zeros((ctx.partition.num_parts, ctx.graph.num_vertices))
        remote = np.flatnonzero(ctx.partition.assignment != 0)
        counts[0, remote[:5]] = 10.0
        sel = OraclePolicy(counts).select(ctx, 0, 3)
        assert set(sel.tolist()) <= set(remote[:5].tolist())
