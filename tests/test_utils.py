"""Tests for shared utilities: RNG management, tables, validation."""

import numpy as np
import pytest

from repro.utils import (
    Table,
    as_generator,
    check_in_range,
    check_positive,
    check_probability_vector,
    derive_seed,
    format_bytes,
    format_count,
    format_seconds,
    spawn_generators,
)
from repro.utils.rng import machine_stream_seed, permutation_from_order


class TestRNG:
    def test_as_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_as_generator_from_int_deterministic(self):
        assert as_generator(5).integers(0, 100) == as_generator(5).integers(0, 100)

    def test_spawn_generators_independent(self):
        a, b = spawn_generators(0, 2)
        assert a.integers(0, 2**31) != b.integers(0, 2**31)

    def test_spawn_count(self):
        assert len(spawn_generators(1, 5)) == 5
        assert spawn_generators(1, 0) == []
        with pytest.raises(ValueError):
            spawn_generators(1, -1)

    def test_spawn_from_generator(self):
        gens = spawn_generators(np.random.default_rng(3), 3)
        assert len(gens) == 3

    def test_derive_seed_stable(self):
        assert derive_seed(7, "sampler", 3) == derive_seed(7, "sampler", 3)
        assert derive_seed(7, "sampler", 3) != derive_seed(7, "sampler", 4)
        assert derive_seed(7, "a") != derive_seed(7, "b")
        assert derive_seed(None, "x") == derive_seed(None, "x")

    def test_permutation_from_order(self):
        order = np.array([2, 0, 1])
        inv = permutation_from_order(order)
        assert np.array_equal(inv[order], np.arange(3))

    def test_machine_stream_seed_is_derive_seed(self):
        # The contract every cluster backend relies on: machine k's stream
        # seed is exactly derive_seed(run_seed, stream, k).
        assert machine_stream_seed(123, "sampler", 2) == derive_seed(123, "sampler", 2)
        assert machine_stream_seed(None, "order", 0) == derive_seed(None, "order", 0)

    def test_machine_stream_seeds_distinct_per_machine_and_stream(self):
        seeds = {machine_stream_seed(7, stream, k)
                 for stream in ("sampler", "order", "model")
                 for k in range(8)}
        assert len(seeds) == 24

    def test_machine_stream_seeds_spawn_order_independent(self):
        # Creating the generators in any machine order yields the same
        # per-machine streams: the seed is a pure function of
        # (run seed, stream, machine), never of construction order.
        def draws(machine_order):
            out = {}
            for k in machine_order:
                gen = np.random.default_rng(machine_stream_seed(0, "sampler", k))
                out[k] = gen.integers(0, 2**31, size=16)
            return out

        fwd = draws(range(4))
        rev = draws(reversed(range(4)))
        for k in range(4):
            assert np.array_equal(fwd[k], rev[k])


class TestTable:
    def test_render_includes_rows(self):
        t = Table(["a", "b"], title="T")
        t.add_row(["x", 1.5])
        t.add_rows([["y", None], ["z", True]])
        out = t.render()
        assert "T" in out and "x" in out and "1.500" in out
        assert "-" in out  # None rendering
        assert "yes" in out

    def test_ragged_rows_padded(self):
        t = Table(["a", "b", "c"])
        t.add_row(["only"])
        assert "only" in t.render()


class TestFormatters:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert "MiB" in format_bytes(5 * 1024**2)
        assert "GiB" in format_bytes(3 * 1024**3)

    def test_seconds(self):
        assert "us" in format_seconds(5e-7)
        assert "ms" in format_seconds(0.005)
        assert format_seconds(2.0) == "2.00 s"
        assert "min" in format_seconds(300)

    def test_count(self):
        assert format_count(999) == "999"
        assert format_count(1500) == "1.50K"
        assert format_count(2.5e6) == "2.50M"
        assert format_count(3e9) == "3.00B"


class TestValidation:
    def test_check_positive(self):
        check_positive(1, "x")
        check_positive(0, "x", strict=False)
        with pytest.raises(ValueError, match="positive"):
            check_positive(0, "x")
        with pytest.raises(ValueError, match="non-negative"):
            check_positive(-1, "x", strict=False)

    def test_check_in_range(self):
        check_in_range(0.5, "x", 0, 1)
        with pytest.raises(ValueError):
            check_in_range(2, "x", 0, 1)
        with pytest.raises(ValueError):
            check_in_range(0, "x", 0, 1, inclusive=False)

    def test_check_probability_vector(self):
        out = check_probability_vector(np.array([0.0, 0.5, 1.0]), "p")
        assert np.all((0 <= out) & (out <= 1))
        with pytest.raises(ValueError, match="lie in"):
            check_probability_vector(np.array([1.5]), "p")
        with pytest.raises(ValueError, match="sum"):
            check_probability_vector(np.array([0.5, 0.2]), "p", allow_improper=False)
