"""Cross-module integration tests: the full preprocessing + training +
timing pipeline under varied configurations."""

import numpy as np
import pytest

from repro.core import RunConfig, SalientPP, make_partition
from repro.pipeline import PipelineMode


class TestEndToEndConsistency:
    def test_vip_reorder_changes_layout_not_results(self, tiny_dataset):
        """VIP reordering is a relabeling: training behaviour (losses over
        epochs) must be statistically equivalent and the realized cache
        identical in size."""
        cfgs = [RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16,
                          hidden_dim=16, replication_factor=0.2,
                          vip_reorder=flag, seed=0) for flag in (True, False)]
        systems = [SalientPP.build(tiny_dataset, c) for c in cfgs]
        assert systems[0].realized_alpha == pytest.approx(
            systems[1].realized_alpha, abs=1e-9)

    def test_network_bandwidth_only_affects_timing(self, tiny_dataset):
        slow = RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16,
                         hidden_dim=16, network_gbps=1.0, seed=1)
        fast = RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16,
                         hidden_dim=16, network_gbps=25.0, seed=1)
        part = make_partition(tiny_dataset, slow.resolve(tiny_dataset))
        s = SalientPP.build(tiny_dataset, slow, partition=part)
        f = SalientPP.build(tiny_dataset, fast, partition=part)
        rs = s.train_epoch(0)
        rf = f.train_epoch(0)
        # Identical functional outcome, different simulated time.
        assert rs.loss == pytest.approx(rf.loss, abs=0.0)
        assert rs.epoch_time > rf.epoch_time

    def test_blocking_comm_slower_than_full_pipeline(self, tiny_dataset):
        part = make_partition(
            tiny_dataset,
            RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16,
                      hidden_dim=16).resolve(tiny_dataset))
        times = {}
        for mode in (PipelineMode.FULL, PipelineMode.BLOCKING_COMM,
                     PipelineMode.OFF):
            cfg = RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16,
                            hidden_dim=16, pipeline=mode, seed=2)
            sys_ = SalientPP.build(tiny_dataset, cfg, partition=part)
            times[mode] = sys_.mean_epoch_time(epochs=1)
        assert times[PipelineMode.FULL] <= times[PipelineMode.BLOCKING_COMM]
        assert times[PipelineMode.BLOCKING_COMM] <= times[PipelineMode.OFF]

    def test_alpha_monotone_epoch_time(self, tiny_dataset):
        part = make_partition(
            tiny_dataset,
            RunConfig(num_machines=4, fanouts=(4, 3), batch_size=8,
                      hidden_dim=16).resolve(tiny_dataset))
        times = []
        for alpha in (0.0, 0.25, 0.75):
            cfg = RunConfig(num_machines=4, fanouts=(4, 3), batch_size=8,
                            hidden_dim=16, replication_factor=alpha, seed=3)
            sys_ = SalientPP.build(tiny_dataset, cfg, partition=part)
            times.append(sys_.mean_epoch_time(epochs=1))
        # More caching never slows the simulated epoch (modulo exact ties).
        assert times[1] <= times[0] + 1e-9
        assert times[2] <= times[1] + 1e-9

    def test_partitioner_choices_run(self, tiny_dataset):
        for partitioner in ("metis", "random", "ldg", "bfs"):
            cfg = RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16,
                            hidden_dim=16, partitioner=partitioner)
            sys_ = SalientPP.build(tiny_dataset, cfg)
            assert sys_.train_epoch(0, dry_run=True).epoch_time > 0

    @pytest.mark.parametrize("arch", ["sage", "gat", "gin"])
    def test_architectures_train_distributed(self, tiny_dataset, arch):
        cfg = RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16,
                        hidden_dim=16, arch=arch, replication_factor=0.1)
        sys_ = SalientPP.build(tiny_dataset, cfg)
        res = sys_.train_epoch(0)
        assert np.isfinite(res.loss)
        assert sys_.trainer.models_in_sync()
