"""Planner, plan fingerprints, artifact cache, and serialization tests."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    ArtifactCache,
    PREPROCESS_STAGES,
    Planner,
    RunConfig,
    SalientPP,
    load_artifact,
    make_partition,
    progressive_variants,
    save_artifact,
)


@pytest.fixture()
def cfg():
    return RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16,
                     hidden_dim=16, replication_factor=0.2, gpu_fraction=0.5)


def _volumes(report):
    """Per-step workload volumes — the EpochReport identity the planner must
    preserve across cache tiers."""
    return [
        (r.machine, r.step, r.batch_size, r.mfg_vertices, r.mfg_edges,
         r.gather.gpu_rows, r.gather.cpu_rows, r.gather.cached_rows,
         r.gather.remote_rows, tuple(r.gather.remote_per_peer))
        for r in report.records
    ]


class TestPlan:
    def test_deterministic_fingerprints(self, tiny_dataset, cfg):
        p = Planner()
        a, b = p.plan(tiny_dataset, cfg), p.plan(tiny_dataset, cfg)
        for s in a.stages:
            assert a.fingerprint(s) == b.fingerprint(s)

    def test_seed_changes_all_preprocessing(self, tiny_dataset, cfg):
        p = Planner()
        a = p.plan(tiny_dataset, cfg)
        b = p.plan(tiny_dataset, replace(cfg, seed=1))
        assert a.fingerprint("partition") != b.fingerprint("partition")

    def test_unread_field_preserves_upstream_stages(self, tiny_dataset, cfg):
        """An α/β-style sweep re-keys only the stages that read the field."""
        p = Planner()
        a = p.plan(tiny_dataset, cfg)
        b = p.plan(tiny_dataset, replace(cfg, gpu_fraction=0.1))
        for s in PREPROCESS_STAGES:
            assert a.fingerprint(s) == b.fingerprint(s)
        assert a.fingerprint("store") != b.fingerprint("store")

        c = p.plan(tiny_dataset, replace(cfg, replication_factor=0.3))
        for s in ("partition", "vip", "reorder"):
            assert a.fingerprint(s) == c.fingerprint(s)
        assert a.fingerprint("cache-select") != c.fingerprint("cache-select")

    def test_describe_lists_stages(self, tiny_dataset, cfg):
        text = Planner().plan(tiny_dataset, cfg).describe()
        for s in ("partition", "vip", "reorder", "cache-select", "store",
                  "trainer"):
            assert s in text

    def test_plan_validates_config(self, tiny_dataset, cfg):
        with pytest.raises(ValueError, match="partitioner"):
            Planner().plan(tiny_dataset, replace(cfg, partitioner="nope"))


class TestLadderReuse:
    def test_ladder_recomputes_each_heavy_stage_once(self, tiny_dataset):
        """The Table-1 acceptance criterion: 4 variants, partition / VIP /
        reorder computed at most once each."""
        p = Planner()
        for _, cfg in progressive_variants(2, 0.3):
            cfg = replace(cfg, fanouts=(4, 3), batch_size=16, hidden_dim=16)
            p.build(tiny_dataset, cfg)
        for stage in ("partition", "vip", "reorder"):
            assert p.stats[stage].computed == 1, stage
            assert p.stats[stage].memory_hits == 3, stage
        assert p.stats["cache-select"].computed == 1  # only "+ Feature caching"
        assert p.stats["store"].computed == 4
        assert p.stats["trainer"].computed == 4

    def test_policy_sweep_shares_vip_selection(self, tiny_dataset, cfg):
        """Static 'vip' and every dynamic policy warm-start from the same
        analytic-VIP selection, so a policy sweep selects caches once."""
        p = Planner()
        for pol in ("vip", "lru", "lfu", "clock", "vip-refresh"):
            p.build(tiny_dataset, replace(cfg, cache_policy=pol))
        assert p.stats["cache-select"].computed == 1
        assert p.stats["cache-select"].memory_hits == 4
        # A differently-scored policy still gets its own selection.
        p.build(tiny_dataset, replace(cfg, cache_policy="degree"))
        assert p.stats["cache-select"].computed == 2

    def test_memory_tier_caps_heavy_artifacts(self, tiny_dataset, cfg):
        cache = ArtifactCache(memory_caps={"reorder": 2})
        p = Planner(cache)
        for K in (1, 2, 4):
            p.build(tiny_dataset, replace(cfg, num_machines=K))
        held = [k for k, _ in cache._memory.items() if k[0] == "reorder"]
        assert len(held) == 2  # FIFO-evicted down to the cap

    def test_injected_partition_is_content_addressed(self, tiny_dataset, cfg):
        part = make_partition(tiny_dataset, cfg.resolve(tiny_dataset))
        p = Planner()
        p.build(tiny_dataset, cfg, partition=part)
        p.build(tiny_dataset, cfg, partition=part)
        assert p.stats["partition"].computed == 0
        assert p.stats["partition"].memory_hits == 2

    def test_injected_partition_machine_mismatch(self, tiny_dataset, cfg):
        part = make_partition(tiny_dataset, cfg.resolve(tiny_dataset))
        with pytest.raises(ValueError, match="parts"):
            Planner().build(tiny_dataset, replace(cfg, num_machines=4),
                            partition=part)

    def test_execute_rejects_artifact_not_in_plan(self, tiny_dataset, cfg):
        """Injecting into execute() an artifact the plan was not made with
        must raise, not poison the shared cache."""
        p = Planner()
        plan = p.plan(tiny_dataset, cfg)  # no injection: config-derived fp
        part = make_partition(tiny_dataset, cfg.resolve(tiny_dataset))
        with pytest.raises(ValueError, match="fingerprint"):
            p.execute(plan, partition=part)


class TestWarmDiskRebuild:
    def test_identical_epoch_volumes(self, tiny_dataset, cfg, tmp_path):
        """Acceptance criterion: a warm on-disk rebuild skips every
        preprocessing stage and yields identical EpochReport volumes."""
        cold = Planner(ArtifactCache(str(tmp_path)))
        rep_cold = cold.build(tiny_dataset, cfg).train_epoch(0).report

        warm = Planner(ArtifactCache(str(tmp_path)))
        rep_warm = warm.build(tiny_dataset, cfg).train_epoch(0).report

        for stage in PREPROCESS_STAGES:
            assert warm.stats[stage].computed == 0, stage
            assert warm.stats[stage].disk_hits == 1, stage
        assert _volumes(rep_cold) == _volumes(rep_warm)
        assert rep_cold.mean_loss == rep_warm.mean_loss

    def test_half_written_disk_entry_is_a_miss(self, tiny_dataset, cfg,
                                               tmp_path):
        """A crash between the npz and JSON writes must degrade to a
        recompute, not poison the cache."""
        import os

        Planner(ArtifactCache(str(tmp_path))).build(tiny_dataset, cfg)
        for f in os.listdir(tmp_path):
            if f.endswith(".json"):
                os.remove(tmp_path / f)
        p = Planner(ArtifactCache(str(tmp_path)))
        p.build(tiny_dataset, cfg)
        assert p.stats["partition"].computed == 1
        assert p.stats["partition"].disk_hits == 0

    def test_corrupt_disk_entry_is_a_miss(self, tiny_dataset, cfg, tmp_path):
        """A torn/garbage sidecar degrades to a recompute, never an error."""
        import os

        Planner(ArtifactCache(str(tmp_path))).build(tiny_dataset, cfg)
        for f in os.listdir(tmp_path):
            if f.endswith(".json"):
                (tmp_path / f).write_text("{ not json")
        p = Planner(ArtifactCache(str(tmp_path)))
        p.build(tiny_dataset, cfg)
        assert all(p.stats[s].disk_hits == 0 for s in PREPROCESS_STAGES)

    def test_build_wrapper_matches_planner(self, tiny_dataset, cfg):
        """SalientPP.build stays a thin, equivalent wrapper."""
        rep_a = SalientPP.build(tiny_dataset, cfg).train_epoch(0).report
        rep_b = Planner().build(tiny_dataset, cfg).train_epoch(0).report
        assert _volumes(rep_a) == _volumes(rep_b)


class TestArtifactRoundTrip:
    def test_partition_roundtrip(self, tiny_dataset, cfg, tmp_path):
        p = Planner()
        part = p.artifact(tiny_dataset, cfg, "partition")
        path = str(tmp_path / "part")
        save_artifact(path, "partition", part)
        back = load_artifact(path, "partition")
        assert back.num_parts == part.num_parts
        assert back.assignment.dtype == part.assignment.dtype
        assert back.assignment.tobytes() == part.assignment.tobytes()

    def test_vip_roundtrip(self, tiny_dataset, cfg, tmp_path):
        p = Planner()
        vip = p.artifact(tiny_dataset, cfg, "vip")
        path = str(tmp_path / "vip")
        save_artifact(path, "vip", vip)
        back = load_artifact(path, "vip")
        assert back.dtype == vip.dtype and back.shape == vip.shape
        assert back.tobytes() == vip.tobytes()

    def test_reorder_roundtrip(self, tiny_dataset, cfg, tmp_path):
        p = Planner()
        reordered = p.artifact(tiny_dataset, cfg, "reorder")
        path = str(tmp_path / "order")
        save_artifact(path, "reorder", reordered.old_of_new)
        back = load_artifact(path, "reorder")
        assert back.tobytes() == reordered.old_of_new.tobytes()

    def test_cache_selection_roundtrip(self, tiny_dataset, cfg, tmp_path):
        p = Planner()
        caches = p.artifact(tiny_dataset, cfg, "cache-select")
        path = str(tmp_path / "caches")
        save_artifact(path, "cache-select", caches)
        back = load_artifact(path, "cache-select")
        assert len(back) == len(caches)
        for a, b in zip(caches, back):
            assert np.asarray(a).tobytes() == np.asarray(b).tobytes()

    def test_store_exposes_serializable_selection(self, tiny_dataset, cfg):
        system = SalientPP.build(tiny_dataset, cfg)
        sel = system.store.cache_selection()
        assert len(sel) == cfg.num_machines
        for ids, built in zip(sel, system.store.build_cache_selection):
            assert ids.dtype == np.int64
            np.testing.assert_array_equal(ids, built)

    def test_kind_mismatch_rejected(self, tiny_dataset, cfg, tmp_path):
        p = Planner()
        part = p.artifact(tiny_dataset, cfg, "partition")
        path = str(tmp_path / "part")
        save_artifact(path, "partition", part)
        with pytest.raises(ValueError, match="not"):
            load_artifact(path, "vip")

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="artifact kind"):
            save_artifact(str(tmp_path / "x"), "frobnicate", None)

    def test_artifact_unknown_stage(self, tiny_dataset, cfg):
        with pytest.raises(ValueError, match="stage"):
            Planner().artifact(tiny_dataset, cfg, "store")
