"""End-to-end system tests on the tiny dataset."""

import numpy as np
import pytest

from repro.baselines import DistDGL
from repro.core import RunConfig, Salient, SalientPP, make_partition, table1_alpha
from repro.core.config import progressive_variants
from repro.pipeline import PipelineMode


@pytest.fixture(scope="module")
def built_systems(request):
    ds = request.getfixturevalue("tiny_dataset")
    cfg = RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16,
                    hidden_dim=16, replication_factor=0.2, gpu_fraction=0.5)
    part = make_partition(ds, cfg.resolve(ds))
    spp = SalientPP.build(ds, cfg, partition=part)
    sal = Salient.build(ds, RunConfig(num_machines=2, fanouts=(4, 3),
                                      batch_size=16, hidden_dim=16),
                        partition=part)
    return ds, part, spp, sal


class TestBuild:
    def test_build_shapes(self, built_systems):
        ds, part, spp, sal = built_systems
        assert spp.store.num_machines == 2
        assert spp.realized_alpha > 0
        assert sal.store.is_replicated

    def test_memory_multiples(self, built_systems):
        ds, part, spp, sal = built_systems
        assert sal.memory_multiple == pytest.approx(2.0)
        assert 1.0 < spp.memory_multiple < 1.3

    def test_partition_machine_mismatch_raises(self, built_systems):
        ds, part, *_ = built_systems
        with pytest.raises(ValueError, match="parts"):
            SalientPP.build(ds, RunConfig(num_machines=4, fanouts=(4, 3),
                                          batch_size=16, hidden_dim=16),
                            partition=part)

    def test_unknown_partitioner(self, tiny_dataset):
        with pytest.raises(ValueError, match="partitioner"):
            make_partition(tiny_dataset,
                           RunConfig(num_machines=2, partitioner="spectral"))


class TestTraining:
    def test_train_epoch_returns_timing_and_loss(self, built_systems):
        ds, part, spp, sal = built_systems
        res = spp.train_epoch(0)
        assert res.epoch_time > 0
        assert res.loss is not None

    def test_dry_run_has_no_loss(self, built_systems):
        *_, spp, sal = built_systems
        res = spp.train_epoch(1, dry_run=True)
        assert res.loss is None
        assert res.epoch_time > 0

    def test_mean_epoch_time(self, built_systems):
        *_, spp, sal = built_systems
        assert spp.mean_epoch_time(epochs=2) > 0

    def test_evaluate(self, built_systems):
        *_, spp, sal = built_systems
        spp.train(4)
        assert spp.evaluate("test") > 0.4


class TestVariantOrdering:
    def test_ladder_timing_order(self, tiny_dataset):
        """Partitioned-blocking must be slowest; caching must recover most
        of the gap — Table 1's qualitative claim, on the tiny dataset."""
        ds = tiny_dataset
        base = RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16,
                         hidden_dim=16)
        part = make_partition(ds, base.resolve(ds))
        times = {}
        for name, cfg in progressive_variants(2, 0.3):
            from dataclasses import replace
            cfg = replace(cfg, fanouts=(4, 3), batch_size=16, hidden_dim=16)
            sys_ = SalientPP.build(ds, cfg, partition=part)
            times[name] = sys_.mean_epoch_time(epochs=1)
        assert times["+ Partitioned features"] > times["SALIENT (full replication)"]
        assert times["+ Pipelined communication"] <= times["+ Partitioned features"]
        assert times["+ Feature caching"] <= times["+ Pipelined communication"]


class TestDistDGLBaseline:
    def test_slower_than_salientpp(self, built_systems):
        ds, part, spp, sal = built_systems
        ddgl = DistDGL.build(ds, RunConfig(num_machines=2, fanouts=(4, 3),
                                           batch_size=16, hidden_dim=16),
                             partition=part)
        assert ddgl.config.pipeline is PipelineMode.OFF
        t_dgl = ddgl.mean_epoch_time(epochs=1)
        t_spp = spp.mean_epoch_time(epochs=1)
        assert t_dgl > 2.0 * t_spp

    def test_same_training_math(self, built_systems):
        """The baseline's functional layer is identical — accuracy parity."""
        ds, part, spp, sal = built_systems
        ddgl = DistDGL.build(ds, RunConfig(num_machines=2, fanouts=(4, 3),
                                           batch_size=16, hidden_dim=16,
                                           seed=0),
                             partition=part)
        rep = ddgl.train_epoch(0)
        assert rep.loss is not None


class TestCachePolicyThroughConfig:
    @pytest.mark.parametrize("policy", ["vip", "degree", "halo", "wpr",
                                        "numpaths", "sim"])
    def test_policies_build_and_run(self, tiny_dataset, policy):
        cfg = RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16,
                        hidden_dim=16, replication_factor=0.2,
                        cache_policy=policy)
        sys_ = SalientPP.build(tiny_dataset, cfg)
        res = sys_.train_epoch(0, dry_run=True)
        assert res.epoch_time > 0
