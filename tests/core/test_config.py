"""RunConfig and progressive-ladder tests."""

from dataclasses import replace

import pytest

from repro.core import RunConfig, progressive_variants, table1_alpha
from repro.pipeline import PipelineMode


class TestRunConfig:
    def test_resolve_fills_defaults(self, tiny_dataset):
        cfg = RunConfig(num_machines=2).resolve(tiny_dataset)
        assert cfg.fanouts is not None
        assert cfg.batch_size > 0
        assert cfg.hidden_dim > 0

    def test_resolve_keeps_explicit_values(self, tiny_dataset):
        cfg = RunConfig(num_machines=2, fanouts=(2, 2), batch_size=8,
                        hidden_dim=12).resolve(tiny_dataset)
        assert cfg.fanouts == (2, 2)
        assert cfg.batch_size == 8
        assert cfg.hidden_dim == 12

    def test_cluster_network_bandwidth(self):
        cfg = RunConfig(num_machines=4, network_gbps=4.0)
        assert cfg.cluster().network.bandwidth == pytest.approx(4e9 / 8)

    def test_describe(self):
        cfg = RunConfig(num_machines=2, replication_factor=0.16)
        assert "vip" in cfg.describe()
        assert "K=2" in cfg.describe()

    def test_describe_vip_refresh_interval(self):
        cfg = RunConfig(replication_factor=0.1, cache_policy="vip-refresh",
                        refresh_interval=25)
        assert "every 25 batches" in cfg.describe()

    @pytest.mark.parametrize("policy", ["lru", "lfu", "clock"])
    def test_describe_replacement_aging_interval(self, policy):
        cfg = RunConfig(replication_factor=0.1, cache_policy=policy,
                        cache_aging_interval=32)
        assert "aging every 32 batches" in cfg.describe()
        cfg = RunConfig(replication_factor=0.1, cache_policy=policy,
                        cache_aging_interval=0)
        assert "no aging" in cfg.describe()


class TestEngineConfig:
    def test_describe_engine_knobs(self):
        cfg = RunConfig(engine="pipelined", pipeline_depth=4)
        assert "pipelined(depth=4)" in cfg.describe()
        cfg = RunConfig(engine="async", staleness=3)
        assert "async(staleness=3)" in cfg.describe()

    def test_unknown_engine_lists_names(self):
        with pytest.raises(ValueError) as exc:
            RunConfig(engine="warp-speed").validate()
        msg = str(exc.value)
        assert "unknown execution engine" in msg
        for name in ("bsp", "pipelined", "async"):
            assert name in msg

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError, match="staleness"):
            RunConfig(staleness=-1).validate()

    def test_pipelined_engine_requires_full_pipeline_mode(self):
        for mode in (PipelineMode.OFF, PipelineMode.BLOCKING_COMM):
            with pytest.raises(ValueError, match="pipelined engine"):
                RunConfig(engine="pipelined", pipeline=mode).validate()
        RunConfig(engine="pipelined", pipeline=PipelineMode.FULL).validate()

    def test_engine_in_trainer_fingerprint_slice(self):
        from repro.core import STAGE_CONFIG_FIELDS

        for fieldname in ("engine", "pipeline_depth", "staleness"):
            assert fieldname in STAGE_CONFIG_FIELDS["trainer"]


class TestValidate:
    def test_unknown_partitioner_lists_sorted_names(self):
        from repro.partition import PARTITIONERS

        with pytest.raises(ValueError) as exc:
            RunConfig(partitioner="spectral").validate()
        msg = str(exc.value)
        assert "unknown partitioner 'spectral'" in msg
        names = sorted(PARTITIONERS.names())
        assert str(names) in msg  # full sorted list, verbatim
        for n in ("metis", "random", "ldg", "bfs", "hash"):
            assert n in msg

    def test_unknown_cache_policy_lists_both_registries(self):
        from repro.distributed.dynamic_cache import DYNAMIC_CACHE_POLICIES
        from repro.vip import STATIC_CACHE_POLICIES

        with pytest.raises(ValueError) as exc:
            RunConfig(cache_policy="belady").validate()
        msg = str(exc.value)
        assert "unknown cache policy 'belady'" in msg
        assert str(sorted(STATIC_CACHE_POLICIES.names())) in msg
        assert str(sorted(DYNAMIC_CACHE_POLICIES.names())) in msg

    def test_resolve_validates(self, tiny_dataset):
        """Bad configs fail at construction, not deep inside a stage."""
        with pytest.raises(ValueError, match="cache policy"):
            RunConfig(cache_policy="belady").resolve(tiny_dataset)

    def test_validate_returns_self(self):
        cfg = RunConfig()
        assert cfg.validate() is cfg

    @pytest.mark.parametrize("bad", [
        dict(num_machines=0),
        dict(fanouts=()),
        dict(fanouts=(4, 0)),
        dict(batch_size=0),
        dict(hidden_dim=0),
        dict(dropout=1.0),
        dict(lr=0.0),
        dict(replication_factor=-0.1),
        dict(gpu_fraction=1.5),
        dict(refresh_interval=0),
        dict(cache_aging_interval=-1),
        dict(pipeline_depth=0),
        dict(network_gbps=0.0),
    ])
    def test_out_of_range_fields_raise(self, bad):
        with pytest.raises(ValueError):
            replace(RunConfig(), **bad).validate()


class TestLadder:
    def test_four_variants_in_order(self):
        ladder = progressive_variants(8, 0.32)
        names = [n for n, _ in ladder]
        assert names[0].startswith("SALIENT")
        assert names[1] == "+ Partitioned features"
        assert names[2] == "+ Pipelined communication"
        assert names[3] == "+ Feature caching"
        cfgs = [c for _, c in ladder]
        assert cfgs[0].full_replication
        assert cfgs[1].pipeline is PipelineMode.BLOCKING_COMM
        assert cfgs[2].pipeline is PipelineMode.FULL
        assert cfgs[3].replication_factor == pytest.approx(0.32)

    def test_table1_alpha_schedule(self):
        assert table1_alpha(2) == pytest.approx(0.08)
        assert table1_alpha(4) == pytest.approx(0.16)
        assert table1_alpha(8) == pytest.approx(0.32)
        assert table1_alpha(16) == pytest.approx(0.32)


class TestServingConfig:
    def test_default_validates(self):
        from repro.core import ServingConfig

        cfg = ServingConfig()
        assert cfg.validate() is cfg
        assert RunConfig().serving is not None

    def test_max_wait_s_converts_ms(self):
        from repro.core import ServingConfig

        assert ServingConfig(max_wait_ms=250.0).max_wait_s == 0.25

    def test_unknown_batcher_lists_names(self):
        from repro.core import ServingConfig

        with pytest.raises(ValueError) as exc:
            ServingConfig(batcher="nagle").validate()
        assert "micro-batcher" in str(exc.value)
        assert "deadline" in str(exc.value)

    def test_unknown_router_rejected(self):
        from repro.core import ServingConfig

        with pytest.raises(ValueError, match="router"):
            ServingConfig(router="hash").validate()

    @pytest.mark.parametrize("bad", [
        dict(max_batch=0),
        dict(max_wait_ms=0.0),
        dict(max_in_flight=0),
        dict(fanouts=()),
        dict(fanouts=(4, 0)),
    ])
    def test_out_of_range_serving_fields_raise(self, bad):
        from repro.core import ServingConfig

        with pytest.raises(ValueError):
            ServingConfig(**bad).validate()

    def test_run_config_validates_serving_slice(self):
        from repro.core import ServingConfig

        cfg = RunConfig(serving=ServingConfig(batcher="nagle"))
        with pytest.raises(ValueError, match="micro-batcher"):
            cfg.validate()

    def test_serving_absent_from_preprocessing_fingerprints(self):
        """Serving knobs must not re-key any preprocessing stage, so
        serving sweeps reuse every artifact."""
        from repro.core import STAGE_CONFIG_FIELDS

        for stage, fields in STAGE_CONFIG_FIELDS.items():
            assert "serving" not in fields, stage
