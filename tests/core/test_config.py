"""RunConfig and progressive-ladder tests."""

import pytest

from repro.core import RunConfig, progressive_variants, table1_alpha
from repro.pipeline import PipelineMode


class TestRunConfig:
    def test_resolve_fills_defaults(self, tiny_dataset):
        cfg = RunConfig(num_machines=2).resolve(tiny_dataset)
        assert cfg.fanouts is not None
        assert cfg.batch_size > 0
        assert cfg.hidden_dim > 0

    def test_resolve_keeps_explicit_values(self, tiny_dataset):
        cfg = RunConfig(num_machines=2, fanouts=(2, 2), batch_size=8,
                        hidden_dim=12).resolve(tiny_dataset)
        assert cfg.fanouts == (2, 2)
        assert cfg.batch_size == 8
        assert cfg.hidden_dim == 12

    def test_cluster_network_bandwidth(self):
        cfg = RunConfig(num_machines=4, network_gbps=4.0)
        assert cfg.cluster().network.bandwidth == pytest.approx(4e9 / 8)

    def test_describe(self):
        cfg = RunConfig(num_machines=2, replication_factor=0.16)
        assert "vip" in cfg.describe()
        assert "K=2" in cfg.describe()


class TestLadder:
    def test_four_variants_in_order(self):
        ladder = progressive_variants(8, 0.32)
        names = [n for n, _ in ladder]
        assert names[0].startswith("SALIENT")
        assert names[1] == "+ Partitioned features"
        assert names[2] == "+ Pipelined communication"
        assert names[3] == "+ Feature caching"
        cfgs = [c for _, c in ladder]
        assert cfgs[0].full_replication
        assert cfgs[1].pipeline is PipelineMode.BLOCKING_COMM
        assert cfgs[2].pipeline is PipelineMode.FULL
        assert cfgs[3].replication_factor == pytest.approx(0.32)

    def test_table1_alpha_schedule(self):
        assert table1_alpha(2) == pytest.approx(0.08)
        assert table1_alpha(4) == pytest.approx(0.16)
        assert table1_alpha(8) == pytest.approx(0.32)
        assert table1_alpha(16) == pytest.approx(0.32)
