"""Metrics unit tests: registry semantics, the log-bucket histogram's
quantile error bound, snapshot merging, and the serving percentile
regression (streaming percentiles within one bucket width of exact)."""

import numpy as np
import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serving.metrics import (
    LATENCY_HIST_GROWTH,
    RequestRecord,
    ServingReport,
    latency_histogram,
)


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        c.inc(3)
        assert reg.counter("a.b") is c
        assert reg.counter("a.b").value == 3

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.1)
        snap = reg.snapshot()
        assert snap["c"]["value"] == 2
        assert snap["g"]["value"] == 1.5
        assert snap["h"]["count"] == 1
        reg.reset()
        assert reg.counter("c").value == 0
        assert reg.histogram("h").count == 0

    def test_merge_snapshot_accumulates(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(41)
        b.gauge("g").set(7)
        for v in (0.001, 0.002, 0.004):
            b.histogram("h").observe(v)
        a.merge_snapshot(b.snapshot())
        assert a.counter("c").value == 42
        assert a.gauge("g").value == 7
        assert a.histogram("h").count == 3
        assert a.histogram("h").min == pytest.approx(0.001)

    def test_merge_snapshot_unknown_kind_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown kind"):
            reg.merge_snapshot({"x": {"kind": "mystery"}})


class TestInstruments:
    def test_counter_gauge_basics(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        g = Gauge("g")
        g.set(2.0)
        g.inc()
        g.dec(0.5)
        assert g.value == pytest.approx(2.5)

    def test_histogram_underflow_bucket(self):
        h = Histogram("h", lo=1e-6)
        h.observe(0.0)
        h.observe(1e-9)
        assert h.buckets.get(0) == 2

    def test_histogram_bucket_edges(self):
        h = Histogram("h", lo=1.0, growth=2.0)
        # (1,2] -> bucket 1, (2,4] -> bucket 2; exact edges stay put.
        assert h.bucket_index(2.0) == 1
        assert h.bucket_index(2.0000001) == 2
        assert h.upper_edge(3) == pytest.approx(8.0)

    def test_histogram_merge_geometry_checked(self):
        a = Histogram("h", lo=1e-6, growth=2.0)
        b = Histogram("h", lo=1e-6, growth=4.0)
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(b)


class TestQuantileBound:
    """The histogram's contract: every quantile is within one bucket width
    (relative error < growth - 1) of the exact order statistic."""

    @pytest.mark.parametrize("growth", [2.0 ** 0.125, 2.0 ** (1 / 64)])
    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_lognormal_quantiles(self, growth, q):
        rng = np.random.default_rng(7)
        samples = np.exp(rng.normal(-6.0, 1.2, size=5000))  # ~ms scale
        h = Histogram("h", lo=1e-6, growth=growth)
        for v in samples:
            h.observe(v)
        # The histogram targets the order statistic at the next rank at
        # or above q*(n-1)+1 — numpy's 'higher' interpolation — and
        # answers with that sample's bucket upper edge, so the estimate
        # sits within one bucket ratio *above* that order statistic.
        exact = float(np.quantile(samples, q, method="higher"))
        est = h.quantile(q)
        assert exact <= est <= exact * growth

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram("h")
        h.observe(0.5)
        assert h.quantile(0.0) == 0.5
        assert h.quantile(1.0) == 0.5
        assert h.mean == 0.5

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.quantile(0.5) == 0.0
        assert h.to_dict()["min"] is None


class TestServingPercentileRegression:
    """Satellite: ServingReport percentiles moved from retain-all-samples
    to the streaming histogram — pin p50/p95/p99 within one bucket width
    of the exact order statistics."""

    @staticmethod
    def _report(latencies) -> ServingReport:
        records = [
            RequestRecord(rid=i, machine=0, num_seeds=1, arrival=0.0,
                          formed=0.0, started=0.0, completed=float(lat))
            for i, lat in enumerate(latencies)
        ]
        return ServingReport(records=records, predictions={}, trace=None,
                             gather=None, num_windows=0, num_batches=0,
                             makespan=1.0)

    def test_percentiles_within_one_bucket_of_exact(self):
        rng = np.random.default_rng(3)
        latencies = np.exp(rng.normal(-5.5, 0.8, size=4000))
        report = self._report(latencies)
        for p in (50.0, 95.0, 99.0):
            # Exact = the order statistic the histogram's rank targets
            # (numpy's 'higher' method); the streaming estimate is its
            # bucket's upper edge, one bucket width above it at most.
            exact = float(np.percentile(latencies, p, method="higher"))
            est = report.latency_percentile(p)
            assert exact <= est <= exact * LATENCY_HIST_GROWTH, f"p{p}"
            # And against the interpolated percentile it stays within one
            # bucket plus the inter-sample gap — sanity that the two
            # conventions agree to ~1% on a smooth distribution.
            interp = float(np.percentile(latencies, p))
            assert abs(est - interp) / interp < 0.02, f"p{p}"

    def test_report_uses_service_filled_histogram(self):
        """When the service hands over its streaming histogram, the report
        must not rebuild one from records."""
        hist = latency_histogram()
        hist.observe(0.25)
        report = self._report([])
        report.latency_hist = hist
        assert report.latency_percentile(50.0) == pytest.approx(0.25)

    def test_empty_report_percentiles_zero(self):
        report = self._report([])
        assert report.p50 == 0.0 and report.p99 == 0.0

    def test_order_preserved_for_distinct_tails(self):
        """The fine serving geometry must keep strictly-ordered tails
        strictly ordered (the serving benchmark asserts '<', not '<=')."""
        rng = np.random.default_rng(11)
        base = np.exp(rng.normal(-5.0, 0.6, size=2000))
        better = self._report(base)
        worse = self._report(base * 1.05)  # 5% slower everywhere
        assert better.p50 < worse.p50
        assert better.p99 < worse.p99
