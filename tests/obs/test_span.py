"""Tracer unit tests: no-op fast path, nesting, explicit parents, the
wire codec, and cross-process clock rebasing."""

import pytest

from repro.obs import OBS, ObsRuntime
from repro.obs.span import (
    NULL_SPAN,
    Tracer,
    clock_anchor,
    rebase_ns,
    spans_from_wire,
    spans_to_wire,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with the global runtime disabled/empty."""
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


class TestDisabledFastPath:
    def test_disabled_span_is_the_shared_null(self):
        assert OBS.span("anything", attr=1) is NULL_SPAN
        assert OBS.tracer.span("anything") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as sp:
            assert sp is NULL_SPAN
            assert sp.set(x=1) is NULL_SPAN
        assert sp.span_id == 0
        assert not sp

    def test_disabled_records_nothing(self):
        with OBS.span("a"):
            with OBS.span("b"):
                pass
        assert OBS.tracer.spans == []


class TestRecording:
    def test_nesting_sets_parent_links(self):
        OBS.enable(lane="t")
        with OBS.span("outer") as outer:
            with OBS.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = OBS.tracer.drain()
        by_name = {s.name: s for s in spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id == 0
        assert by_name["outer"].end_ns >= by_name["outer"].start_ns
        assert by_name["outer"].lane == "t"

    def test_explicit_parent_overrides_stack(self):
        OBS.enable()
        with OBS.span("root") as root:
            with OBS.span("adopted", parent_id=12345) as sp:
                assert sp.parent_id == 12345
                assert sp.parent_id != root.span_id

    def test_attrs_and_set(self):
        OBS.enable()
        with OBS.span("s", a=1) as sp:
            sp.set(b="two")
        rec = OBS.tracer.drain()[0]
        assert rec.attrs == {"a": 1, "b": "two"}

    def test_hist_observes_duration(self):
        OBS.enable()
        with OBS.span("s", hist="test.wall_s"):
            pass
        h = OBS.metrics.get("test.wall_s")
        assert h is not None and h.count == 1
        assert h.sum >= 0.0

    def test_sim_spans_carry_sim_clock(self):
        OBS.enable()
        rec = OBS.tracer.add_sim_span("sim", 1.5, 2.0, lane="sim:m0")
        assert rec.duration_s == pytest.approx(0.5)
        assert rec.start_ns == rec.end_ns == 0

    def test_drain_clears(self):
        OBS.enable()
        with OBS.span("s"):
            pass
        assert len(OBS.tracer.drain()) == 1
        assert OBS.tracer.drain() == []


class TestWireCodec:
    def test_round_trip(self):
        tracer = Tracer(lane="worker-3")
        tracer.enabled = True
        tracer.metrics = None
        with tracer.span("w", step=4, note="x"):
            pass
        tracer.add_sim_span("sim", 0.1, 0.2)
        wired = spans_to_wire(tracer.drain())
        back = spans_from_wire(wired)
        assert [s.name for s in back] == ["w", "sim"]
        assert back[0].attrs == {"step": 4, "note": "x"}
        assert back[0].lane == "worker-3"
        assert back[1].sim_start == pytest.approx(0.1)

    def test_exotic_attrs_become_repr(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("w", arr=[1, 2, 3]):
            pass
        wired = spans_to_wire(tracer.drain())
        assert wired[0]["attrs"]["arr"] == "[1, 2, 3]"


class TestClockRebase:
    def test_identity_when_anchors_match(self):
        anchor = (1000, 5000)
        assert rebase_ns(1234, anchor, anchor) == 1234

    def test_rebase_preserves_wall_instant(self):
        # Remote perf clock started 1e9 ns later than ours; same wall clock.
        local = (2_000_000, 9_000_000_000)
        remote = (1_000_000, 9_000_000_000)
        # A remote event at remote perf t maps to local perf t + 1e6.
        assert rebase_ns(5_000_000, remote, local) == 6_000_000

    def test_anchor_shape(self):
        perf, wall = clock_anchor()
        assert isinstance(perf, int) and isinstance(wall, int)
        assert wall > 10 ** 18  # time_ns is past 2001

    def test_merge_remote_rebases_and_retags(self):
        local_rt = ObsRuntime()
        local_rt.enable(lane="coordinator")
        remote = Tracer(lane="worker-0", trace_id="deadbeef")
        remote.enabled = True
        remote.metrics = None
        with remote.span("w"):
            pass
        sim = remote.add_sim_span("sim", 0.0, 1.0)
        remote_anchor = clock_anchor()
        n = local_rt.tracer.merge_remote(remote.drain(), remote_anchor,
                                         clock_anchor())
        assert n == 2
        merged = {s.name: s for s in local_rt.tracer.spans}
        assert merged["w"].trace_id == local_rt.tracer.trace_id
        assert merged["w"].lane == "worker-0"
        # Sim spans pass through untouched.
        assert merged["sim"].sim_end == sim.sim_end
