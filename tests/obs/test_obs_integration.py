"""Observability integration + acceptance tests.

The acceptance contract from the telemetry PR: a traced multiproc K=4
epoch exports one Chrome-trace document with a coordinator lane and one
lane per worker process; worker spans are offset-aligned into the
coordinator's clock (they land inside the coordinator's epoch span);
lane spans cover >= 95% of the measured epoch wall; and — the
zero-overhead side — running with observability *enabled* changes no
math: per-step losses stay bit-identical to the in-process oracle that
ran with observability off.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import Planner, RunConfig, SalientPP, ServingConfig
from repro.graph.datasets import make_papers_mini
from repro.obs import OBS
from repro.obs.exporters import (
    chrome_trace,
    lane_intervals,
    validate_chrome_trace,
)
from repro.obs.report import union_length
from repro.serving import poisson_requests

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

K = 4

#: Worker clocks rebase through a shared wall clock read back-to-back with
#: the perf clock; the anchor error is microseconds, but allow generous
#: slack for pipe delivery on a loaded CI box.
ALIGN_SLACK_NS = 50_000_000  # 50 ms


@pytest.fixture(autouse=True)
def _clean_obs():
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


def _config(**overrides) -> RunConfig:
    base = dict(num_machines=K, fanouts=(4, 3), batch_size=32,
                hidden_dim=16, replication_factor=0.05, gpu_fraction=0.5,
                seed=0)
    base.update(overrides)
    return RunConfig(**base)


@pytest.fixture(scope="module")
def papers_mini():
    return make_papers_mini(seed=1, scale=0.04)


class TestMultiprocAcceptance:
    @pytest.fixture(scope="class")
    def traced_run(self, papers_mini):
        """One traced multiproc epoch + the untraced in-process oracle."""
        planner = Planner()
        cfg = _config()
        ref = SalientPP.build(papers_mini, cfg, planner=planner)
        ref_result = ref.train_epoch(0)

        OBS.disable()
        OBS.reset()
        OBS.enable(lane="coordinator")
        mp = SalientPP.build(
            papers_mini, dataclasses.replace(cfg, backend="multiproc"),
            planner=planner)
        try:
            mp_result = mp.train_epoch(0)
        finally:
            mp.shutdown()
        OBS.disable()
        spans = list(OBS.tracer.spans)
        doc = chrome_trace(spans, OBS.metrics)
        snapshot = OBS.metrics.snapshot()
        OBS.reset()
        return ref_result, mp_result, spans, doc, snapshot

    def test_chrome_trace_schema_valid(self, traced_run):
        _ref, _mp, _spans, doc, _snap = traced_run
        assert validate_chrome_trace(doc) == []

    def test_one_lane_per_process(self, traced_run):
        _ref, _mp, _spans, doc, _snap = traced_run
        lanes = set(lane_intervals(doc))
        assert {"coordinator"} | {f"worker-{k}" for k in range(K)} <= lanes

    def test_worker_spans_offset_aligned(self, traced_run):
        """Rebasing worked iff every worker span lands inside the
        coordinator's epoch span (modulo anchor slack) — raw
        perf_counter origins differ per process by arbitrary amounts."""
        _ref, _mp, spans, _doc, _snap = traced_run
        epoch = next(s for s in spans if s.name == "mp.epoch")
        for rec in spans:
            if not rec.lane.startswith("worker-"):
                continue
            assert rec.start_ns >= epoch.start_ns - ALIGN_SLACK_NS, rec.name
            assert rec.end_ns <= epoch.end_ns + ALIGN_SLACK_NS, rec.name

    def test_worker_epochs_parent_on_coordinator_epoch(self, traced_run):
        _ref, _mp, spans, _doc, _snap = traced_run
        epoch = next(s for s in spans if s.name == "mp.epoch")
        workers = [s for s in spans if s.name == "worker.epoch"]
        assert len(workers) == K
        assert {s.lane for s in workers} == \
            {f"worker-{k}" for k in range(K)}
        assert all(s.parent_id == epoch.span_id for s in workers)
        assert all(s.trace_id == epoch.trace_id for s in workers)

    def test_lanes_cover_epoch_wall(self, traced_run):
        """Coordinator + worker lanes together cover >= 95% of the
        measured epoch wall (the mp.epoch span)."""
        _ref, _mp, spans, _doc, _snap = traced_run
        epoch = next(s for s in spans if s.name == "mp.epoch")
        wall = epoch.end_ns - epoch.start_ns
        assert wall > 0
        intervals = [
            (max(s.start_ns, epoch.start_ns), min(s.end_ns, epoch.end_ns))
            for s in spans
            if s.sim_start is None and s.end_ns > s.start_ns
        ]
        covered = union_length([iv for iv in intervals if iv[1] > iv[0]])
        assert covered / wall >= 0.95

    def test_enabled_run_is_bit_identical_to_oracle(self, traced_run):
        """Observability on changes no math: multiproc losses (traced)
        equal the in-process oracle's (untraced), bitwise."""
        ref, mp, _spans, _doc, _snap = traced_run
        key = lambda rep: [(r.machine, r.step, r.loss)  # noqa: E731
                           for r in rep.records]
        assert key(mp.report) == key(ref.report)
        assert mp.report.mean_loss == ref.report.mean_loss
        assert mp.epoch_time == ref.epoch_time

    def test_worker_metrics_merged_into_coordinator(self, traced_run):
        _ref, mp, _spans, _doc, snap = traced_run
        total_rows = sum(r.gather.total_rows for r in mp.report.records)
        assert snap["store.gather_rows"]["value"] == total_rows
        assert snap["shm.slab_writes"]["value"] == \
            K * len({r.step for r in mp.report.records})
        assert snap["mp.wire_sent_bytes"]["value"] > 0
        assert snap["mp.wire_received_bytes"]["value"] > 0
        assert snap["mp.workers_alive"]["value"] == K
        assert snap["worker.step_wall_s"]["count"] == \
            K * len({r.step for r in mp.report.records})

    def test_disabled_run_records_nothing(self, papers_mini):
        """The default (observability off) leaves zero telemetry — the
        no-op fast path really is a no-op."""
        planner = Planner()
        mp = SalientPP.build(
            papers_mini, _config(backend="multiproc"), planner=planner)
        try:
            mp.train_epoch(0, dry_run=True)
        finally:
            mp.shutdown()
        assert OBS.tracer.spans == []
        assert OBS.metrics.snapshot() == {}


class TestInProcessSpans:
    def test_engine_and_planner_spans(self, papers_mini):
        OBS.enable()
        system = SalientPP.build(papers_mini, _config(), planner=Planner())
        system.train_epoch(0, dry_run=True)
        names = {s.name for s in OBS.tracer.spans}
        assert "system.train_epoch" in names
        assert "engine.epoch" in names
        assert "engine.step" in names
        assert any(n.startswith("planner.") for n in names)
        # Feature-store counters registered by the gather path.
        assert OBS.metrics.counter("store.gathers").value > 0

    def test_pipelined_engine_window_spans(self, papers_mini):
        OBS.enable()
        system = SalientPP.build(
            papers_mini, _config(engine="pipelined", pipeline_depth=2),
            planner=Planner())
        system.train_epoch(0, dry_run=True)
        names = {s.name for s in OBS.tracer.spans}
        assert "engine.window" in names


class TestServingSpans:
    def test_request_lifecycle_sim_spans(self, request):
        tiny = request.getfixturevalue("tiny_dataset")
        serving = ServingConfig(batcher="deadline", max_batch=8,
                                max_wait_ms=10.0, max_in_flight=4)
        cfg = RunConfig(num_machines=2, replication_factor=0.1,
                        serving=serving)
        svc = Planner().build_service(tiny, cfg)
        reqs = poisson_requests(np.arange(tiny.num_vertices), 30, 4,
                                rate_rps=2000.0, seed=3)
        OBS.enable()
        report = svc.run(list(reqs))
        OBS.disable()
        spans = OBS.tracer.spans
        names = {s.name for s in spans}
        assert {"serve.window", "serve.sample", "serve.fetch",
                "serve.forward", "serve.request"} <= names
        req_spans = [s for s in spans if s.name == "serve.request"]
        assert len(req_spans) == report.num_requests
        # Every request span is sim-clock and parented on its window.
        window_ids = {s.span_id for s in spans if s.name == "serve.window"}
        assert all(s.sim_start is not None for s in req_spans)
        assert all(s.parent_id in window_ids for s in req_spans)
        # Sim spans land on per-machine sim lanes in the export.
        doc = chrome_trace(spans)
        assert validate_chrome_trace(doc) == []
        lanes = set(lane_intervals(doc))
        assert any(lane.startswith("sim:machine-") for lane in lanes)
        # Span lifecycle respects the simulated clock ordering.
        for s in req_spans:
            assert s.sim_end >= s.sim_start
