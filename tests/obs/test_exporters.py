"""Exporter tests: Chrome trace_event structure + schema validator,
Prometheus text exposition, the JSONL stream, and the report CLI."""

import json

import pytest

from repro.obs import MetricsRegistry, ObsRuntime
from repro.obs.exporters import (
    chrome_trace,
    lane_intervals,
    prometheus_text,
    save_chrome_trace,
    validate_chrome_trace,
    write_jsonl,
)
from repro.obs.report import load_events, main, render_report, union_length


@pytest.fixture
def runtime() -> ObsRuntime:
    rt = ObsRuntime()
    rt.enable(lane="coordinator")
    with rt.tracer.span("outer", epoch=0):
        with rt.tracer.span("inner"):
            pass
    rt.tracer.add_sim_span("serve.window", 0.0, 0.002, lane="machine-0")
    rt.metrics.counter("store.remote_rows", help="rows").inc(12)
    rt.metrics.gauge("mp.workers_alive").set(4)
    h = rt.metrics.histogram("engine.step_wall_s")
    for v in (0.01, 0.02, 0.04):
        h.observe(v)
    return rt


class TestChromeTrace:
    def test_valid_and_lane_structure(self, runtime):
        doc = chrome_trace(runtime.tracer.spans, runtime.metrics)
        assert validate_chrome_trace(doc) == []
        lanes = {ev["args"]["name"] for ev in doc["traceEvents"]
                 if ev.get("ph") == "M" and ev["name"] == "process_name"}
        assert lanes == {"coordinator", "sim:machine-0"}
        assert doc["otherData"]["trace_id"] == runtime.tracer.trace_id
        assert "store.remote_rows" in doc["otherData"]["metrics"]

    def test_parent_links_ride_in_args(self, runtime):
        doc = chrome_trace(runtime.tracer.spans)
        inner = [ev for ev in doc["traceEvents"]
                 if ev.get("ph") == "X" and ev["name"] == "inner"][0]
        outer = [ev for ev in doc["traceEvents"]
                 if ev.get("ph") == "X" and ev["name"] == "outer"][0]
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]

    def test_timestamps_rebased_to_trace_start(self, runtime):
        doc = chrome_trace(runtime.tracer.spans)
        wall_ts = [ev["ts"] for ev in doc["traceEvents"]
                   if ev.get("ph") == "X" and not ev["name"].startswith("serve")]
        assert min(wall_ts) == 0.0

    def test_sim_spans_use_sim_clock(self, runtime):
        doc = chrome_trace(runtime.tracer.spans)
        sim = [ev for ev in doc["traceEvents"]
               if ev.get("ph") == "X" and ev["name"] == "serve.window"][0]
        assert sim["ts"] == pytest.approx(0.0)
        assert sim["dur"] == pytest.approx(2000.0)  # 2 ms in µs

    def test_lane_intervals(self, runtime):
        doc = chrome_trace(runtime.tracer.spans)
        ivs = lane_intervals(doc)
        assert set(ivs) == {"coordinator", "sim:machine-0"}
        assert len(ivs["coordinator"]) == 2

    def test_validator_catches_problems(self):
        assert validate_chrome_trace([]) == ["document is not a JSON object"]
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
        bad = {"traceEvents": [
            {"ph": "X", "name": "s", "pid": 1, "tid": 0, "ts": 0.0,
             "dur": -1.0},
        ]}
        problems = validate_chrome_trace(bad)
        assert any("negative duration" in p for p in problems)
        assert any("process_name" in p for p in problems)

    def test_save_round_trips(self, runtime, tmp_path):
        path = str(tmp_path / "trace.json")
        save_chrome_trace(path, runtime.tracer.spans, runtime.metrics)
        with open(path) as fh:
            doc = json.load(fh)
        assert validate_chrome_trace(doc) == []


class TestPrometheus:
    def test_exposition_format(self, runtime):
        text = prometheus_text(runtime.metrics)
        assert "# TYPE repro_store_remote_rows_total counter" in text
        assert "repro_store_remote_rows_total 12" in text
        assert "repro_mp_workers_alive 4" in text
        assert "# TYPE repro_engine_step_wall_s histogram" in text
        assert 'repro_engine_step_wall_s_bucket{le="+Inf"} 3' in text
        assert "repro_engine_step_wall_s_count 3" in text
        assert text.endswith("\n")

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == "\n"


class TestJsonlAndReport:
    def test_jsonl_appends_discriminated_rows(self, runtime, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        n = write_jsonl(path, runtime.tracer.spans, runtime.metrics,
                        meta={"run": "test"})
        rows = [json.loads(line) for line in open(path)]
        assert len(rows) == n
        kinds = {r["kind"] for r in rows}
        assert kinds == {"meta", "span", "metric"}
        # Append-only: a second write adds, never truncates.
        write_jsonl(path, runtime.tracer.spans)
        assert len(open(path).readlines()) > n

    def test_union_length(self):
        assert union_length([(0, 10), (5, 15), (20, 25)]) == 20
        assert union_length([]) == 0.0

    def test_load_events_both_formats(self, runtime, tmp_path):
        jpath = str(tmp_path / "t.json")
        lpath = str(tmp_path / "t.jsonl")
        save_chrome_trace(jpath, runtime.tracer.spans, runtime.metrics)
        write_jsonl(lpath, runtime.tracer.spans, runtime.metrics)
        for path in (jpath, lpath):
            spans, metrics = load_events(path)
            assert {s["name"] for s in spans} == \
                {"outer", "inner", "serve.window"}
            assert "engine.step_wall_s" in metrics

    def test_render_report(self, runtime, tmp_path):
        path = str(tmp_path / "t.json")
        save_chrome_trace(path, runtime.tracer.spans, runtime.metrics)
        spans, metrics = load_events(path)
        text = render_report(spans, metrics)
        assert "coordinator" in text
        assert "slowest" in text
        assert "engine.step_wall_s" in text and "p99=" in text

    def test_cli_main(self, runtime, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(path, runtime.tracer.spans, runtime.metrics)
        assert main([path, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "trace window" in out
        assert "metrics:" in out

    def test_render_report_empty(self):
        assert render_report([], {}) == "no spans recorded"
