"""Property-based sampler tests (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import erdos_renyi
from repro.sampling import NeighborSampler, sample_neighbors


@given(
    n=st.integers(20, 80),
    avg_deg=st.floats(2.0, 8.0),
    fanout=st.integers(1, 6),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_sample_neighbors_contract(n, avg_deg, fanout, seed):
    g = erdos_renyi(n, avg_deg, seed=seed)
    rng = np.random.default_rng(seed + 1)
    targets = np.arange(0, n, 3)
    ptr, src = sample_neighbors(g, targets, fanout, rng)
    counts = np.diff(ptr)
    # Exactly min(deg, fanout) per vertex.
    assert np.array_equal(counts, np.minimum(g.degrees[targets], fanout))
    for i, v in enumerate(targets):
        picked = src[ptr[i]:ptr[i + 1]]
        # Without replacement, all real neighbors.
        assert len(np.unique(picked)) == len(picked)
        assert set(picked.tolist()) <= set(g.neighbors(v).tolist())


@given(
    n=st.integers(30, 80),
    seed=st.integers(0, 2**31 - 1),
    fanouts=st.lists(st.integers(1, 4), min_size=1, max_size=3),
)
@settings(max_examples=30, deadline=None)
def test_mfg_structural_invariants(n, seed, fanouts):
    g = erdos_renyi(n, 5.0, seed=seed)
    s = NeighborSampler(g, tuple(fanouts), seed=seed)
    seeds = np.arange(0, n, 5)
    mfg = s.sample(seeds)
    mfg.validate()
    # n_id unique; seeds first; hop sets nested (monotone sizes).
    assert len(np.unique(mfg.n_id)) == len(mfg.n_id)
    assert np.array_equal(mfg.n_id[:len(seeds)], seeds)
    sizes = mfg.hop_sizes()
    assert all(a <= b for a, b in zip(sizes, sizes[1:]))
    # Every block's destinations form a prefix of its sources.
    for blk in mfg.blocks:
        assert blk.num_dst <= blk.num_src
