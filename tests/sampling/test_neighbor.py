"""Node-wise sampler tests: distribution contract and MFG structure."""

import numpy as np
import pytest

from repro.graph import CSRGraph, erdos_renyi
from repro.sampling import NeighborSampler, num_batches, sample_neighbors


def star_graph(leaves):
    """Vertex 0 connected to 1..leaves (undirected)."""
    hub = np.zeros(leaves, dtype=np.int64)
    leaf = np.arange(1, leaves + 1, dtype=np.int64)
    return CSRGraph.from_edges(np.r_[hub, leaf], np.r_[leaf, hub], leaves + 1)


class TestSampleNeighbors:
    def test_counts_exact(self, small_er_graph, rng):
        g = small_er_graph
        targets = np.arange(g.num_vertices)
        ptr, src = sample_neighbors(g, targets, 3, rng)
        counts = np.diff(ptr)
        assert np.array_equal(counts, np.minimum(g.degrees, 3))
        assert len(src) == ptr[-1]

    def test_without_replacement(self, rng):
        g = star_graph(20)
        for _ in range(10):
            ptr, src = sample_neighbors(g, np.array([0]), 5, rng)
            assert len(np.unique(src)) == 5

    def test_samples_are_neighbors(self, small_er_graph, rng):
        g = small_er_graph
        targets = np.arange(0, g.num_vertices, 7)
        ptr, src = sample_neighbors(g, targets, 4, rng)
        for i, v in enumerate(targets):
            got = set(src[ptr[i]:ptr[i + 1]].tolist())
            assert got <= set(g.neighbors(v).tolist())

    def test_full_expansion(self, small_er_graph, rng):
        g = small_er_graph
        targets = np.arange(g.num_vertices)
        ptr, src = sample_neighbors(g, targets, -1, rng)
        assert np.array_equal(np.diff(ptr), g.degrees)

    def test_uniformity(self, rng):
        """Each leaf of a star is picked with probability f/d."""
        g = star_graph(10)
        hits = np.zeros(11)
        trials = 4000
        for _ in range(trials):
            _, src = sample_neighbors(g, np.array([0]), 3, rng)
            hits[src] += 1
        freq = hits[1:] / trials
        assert np.allclose(freq, 0.3, atol=0.035)  # ~4-sigma band

    def test_empty_frontier(self, small_er_graph, rng):
        ptr, src = sample_neighbors(small_er_graph, np.array([], dtype=np.int64), 3, rng)
        assert len(src) == 0 and list(ptr) == [0]


class TestSampleArena:
    """Arena-backed sampling is bit-identical to the allocating path."""

    def test_results_and_rng_stream_identical(self, small_er_graph):
        from repro.sampling.neighbor import SampleArena

        g = small_er_graph
        arena = SampleArena()
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        targets = np.random.default_rng(2).choice(
            g.num_vertices, 60, replace=False)
        # Mixed fanouts exercise the key-selection and the take-all paths;
        # the shared arena must not perturb either the outputs or how many
        # variates each call consumes.
        for fanout in (3, -1, 5, 1, 50, 2):
            ptr_a, src_a = sample_neighbors(g, targets, fanout, rng_a)
            ptr_b, src_b = sample_neighbors(g, targets, fanout, rng_b,
                                            arena=arena)
            assert np.array_equal(ptr_a, ptr_b)
            assert np.array_equal(src_a, src_b)
        assert rng_a.random() == rng_b.random()  # streams stayed aligned

    def test_segment_ids_with_empty_rows(self):
        """The scatter/cumsum segment builder handles empty segments
        (including runs of them at either end) exactly like np.repeat."""
        from repro.sampling.neighbor import SampleArena, _segment_ids

        arena = SampleArena()
        for counts in ([0, 3, 0, 0, 2, 1, 0], [0, 0, 1], [2], [5, 0],
                       [1, 1, 1], [0, 4]):
            counts = np.asarray(counts, dtype=np.int64)
            offsets = np.zeros(len(counts) + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            want = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
            got = _segment_ids(arena, offsets, int(counts.sum()))
            assert np.array_equal(got, want), counts

    def test_buffers_are_reused(self, small_er_graph, rng):
        from repro.sampling.neighbor import SampleArena

        arena = SampleArena()
        big = arena.i64("seg", 100)
        again = arena.i64("seg", 40)
        assert again.base is big.base  # same backing allocation
        assert len(arena.ramp(64)) == 64
        assert np.array_equal(arena.ramp(8), np.arange(8))

    def test_outputs_not_aliased_to_arena(self, small_er_graph, rng):
        """Returned arrays must survive later calls on the same arena."""
        from repro.sampling.neighbor import SampleArena

        g = small_er_graph
        arena = SampleArena()
        targets = np.arange(0, g.num_vertices, 3)
        ptr1, src1 = sample_neighbors(g, targets, -1, rng, arena=arena)
        keep = src1.copy()
        sample_neighbors(g, targets, 4, rng, arena=arena)
        sample_neighbors(g, np.arange(g.num_vertices), -1, rng, arena=arena)
        assert np.array_equal(src1, keep)


class TestNeighborSampler:
    def test_mfg_structure(self, small_er_graph):
        s = NeighborSampler(small_er_graph, (4, 3), seed=0)
        seeds = np.arange(10)
        mfg = s.sample(seeds)
        mfg.validate()
        assert np.array_equal(mfg.n_id[:10], seeds)
        assert mfg.num_hops == 2
        sizes = mfg.hop_sizes()
        assert sizes[0] == 10 and all(a <= b for a, b in zip(sizes, sizes[1:]))

    def test_fanout_bounds_per_block(self, small_er_graph):
        s = NeighborSampler(small_er_graph, (4, 3), seed=0)
        mfg = s.sample(np.arange(20))
        for blk, f in zip(mfg.blocks, (4, 3)):
            assert blk.neighbor_counts().max() <= f

    def test_n_id_unique(self, small_er_graph):
        s = NeighborSampler(small_er_graph, (4, 3, 2), seed=0)
        mfg = s.sample(np.arange(15))
        assert len(np.unique(mfg.n_id)) == len(mfg.n_id)

    def test_block_edges_reference_real_neighbors(self, small_er_graph):
        s = NeighborSampler(small_er_graph, (4, 3), seed=1)
        mfg = s.sample(np.arange(12))
        blk = mfg.blocks[0]
        for i in range(blk.num_dst):
            v = mfg.n_id[i]
            nb = mfg.n_id[blk.src_index[blk.dst_ptr[i]:blk.dst_ptr[i + 1]]]
            assert set(nb.tolist()) <= set(small_er_graph.neighbors(v).tolist())

    def test_deterministic_given_seed(self, small_er_graph):
        a = NeighborSampler(small_er_graph, (4, 3), seed=42).sample(np.arange(10))
        b = NeighborSampler(small_er_graph, (4, 3), seed=42).sample(np.arange(10))
        assert np.array_equal(a.n_id, b.n_id)
        assert all(np.array_equal(x.src_index, y.src_index)
                   for x, y in zip(a.blocks, b.blocks))

    def test_rejects_duplicate_seeds(self, small_er_graph):
        s = NeighborSampler(small_er_graph, (3,), seed=0)
        with pytest.raises(ValueError, match="unique"):
            s.sample(np.array([1, 1, 2]))

    def test_rejects_bad_fanouts(self, small_er_graph):
        with pytest.raises(ValueError):
            NeighborSampler(small_er_graph, ())
        with pytest.raises(ValueError):
            NeighborSampler(small_er_graph, (3, 0))


class TestBatches:
    def test_epoch_coverage(self, small_er_graph):
        s = NeighborSampler(small_er_graph, (3,), seed=0)
        ids = np.arange(0, 50)
        seen = []
        for mfg in s.batches(ids, 16, epoch=0, seed=1):
            seen.extend(mfg.seeds.tolist())
        assert sorted(seen) == list(range(50))

    def test_drop_last(self, small_er_graph):
        s = NeighborSampler(small_er_graph, (3,), seed=0)
        batches = list(s.batches(np.arange(50), 16, drop_last=True))
        assert len(batches) == 3
        assert all(b.batch_size == 16 for b in batches)

    def test_shuffle_differs_by_epoch(self, small_er_graph):
        s = NeighborSampler(small_er_graph, (3,), seed=0)
        a = next(iter(s.batches(np.arange(50), 16, epoch=0, seed=9)))
        b = next(iter(s.batches(np.arange(50), 16, epoch=1, seed=9)))
        assert not np.array_equal(a.seeds, b.seeds)

    def test_shuffle_reproducible(self, small_er_graph):
        s = NeighborSampler(small_er_graph, (3,), seed=0)
        a = next(iter(s.batches(np.arange(50), 16, epoch=3, seed=9)))
        s2 = NeighborSampler(small_er_graph, (3,), seed=0)
        b = next(iter(s2.batches(np.arange(50), 16, epoch=3, seed=9)))
        assert np.array_equal(a.seeds, b.seeds)

    def test_num_batches(self):
        assert num_batches(50, 16) == 4
        assert num_batches(50, 16, drop_last=True) == 3
        assert num_batches(48, 16) == 3

    def test_rejects_bad_batch_size(self, small_er_graph):
        s = NeighborSampler(small_er_graph, (3,), seed=0)
        with pytest.raises(ValueError, match="batch_size"):
            list(s.batches(np.arange(10), 0))
