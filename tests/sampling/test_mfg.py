"""MFG datatype validation tests."""

import numpy as np
import pytest

from repro.sampling import MFG, MFGBlock


def make_block(num_src=5, num_dst=2):
    return MFGBlock(dst_ptr=np.array([0, 2, 4]),
                    src_index=np.array([2, 3, 0, 4]),
                    num_src=num_src, num_dst=num_dst)


class TestMFGBlock:
    def test_basic(self):
        blk = make_block()
        assert blk.num_edges == 4
        assert list(blk.neighbor_counts()) == [2, 2]

    def test_rejects_bad_ptr_length(self):
        with pytest.raises(ValueError, match="dst_ptr length"):
            MFGBlock(np.array([0, 2]), np.array([0, 1]), num_src=3, num_dst=2)

    def test_rejects_ptr_total_mismatch(self):
        with pytest.raises(ValueError, match="dst_ptr\\[-1\\]"):
            MFGBlock(np.array([0, 1, 3]), np.array([0]), num_src=3, num_dst=2)

    def test_rejects_dst_exceeding_src(self):
        with pytest.raises(ValueError, match="prefix"):
            MFGBlock(np.array([0, 0, 0]), np.empty(0, dtype=np.int64),
                     num_src=1, num_dst=2)

    def test_rejects_src_index_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            MFGBlock(np.array([0, 1]), np.array([9]), num_src=3, num_dst=1)


class TestMFG:
    def test_properties(self):
        blk = make_block()
        mfg = MFG(n_id=np.arange(5), blocks=[blk], seeds=np.arange(2))
        assert mfg.num_vertices == 5
        assert mfg.batch_size == 2
        assert mfg.num_edges == 4
        assert mfg.hop_sizes() == [2, 5]
        mfg.validate()

    def test_validate_catches_hop_mismatch(self):
        blk1 = make_block(num_src=5, num_dst=2)
        blk2 = MFGBlock(np.array([0, 1, 2, 3]), np.array([0, 1, 2]),
                        num_src=6, num_dst=3)  # expects prev hop size 5
        mfg = MFG(n_id=np.arange(6), blocks=[blk1, blk2], seeds=np.arange(2))
        with pytest.raises(AssertionError, match="previous hop"):
            mfg.validate()
