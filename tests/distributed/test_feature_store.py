"""Feature store tests: gather correctness for all storage tiers."""

import numpy as np
import pytest

from repro.distributed import PartitionedFeatureStore
from repro.vip import CacheContext, VIPAnalyticPolicy, build_caches


@pytest.fixture(scope="module")
def store_setup(request):
    rd = request.getfixturevalue("tiny_reordered")
    ctx = CacheContext(rd.dataset.graph, rd.partition, rd.dataset.train_idx,
                       (5, 5), 16, seed=0)
    caches = build_caches(VIPAnalyticPolicy(), ctx, alpha=0.25)
    store = PartitionedFeatureStore.build(rd, gpu_fraction=0.4, caches=caches)
    return rd, store


class TestGatherCorrectness:
    def test_matches_direct_indexing(self, store_setup, rng):
        rd, store = store_setup
        ids = rng.choice(rd.dataset.num_vertices, 200, replace=False)
        for k in range(store.num_machines):
            feats, stats = store.gather(k, ids)
            assert np.array_equal(feats, rd.dataset.features[ids])

    def test_stats_partition_rows(self, store_setup, rng):
        rd, store = store_setup
        ids = rng.choice(rd.dataset.num_vertices, 150, replace=False)
        for k in range(store.num_machines):
            _, stats = store.gather(k, ids)
            assert stats.total_rows == len(ids)
            assert (stats.gpu_rows + stats.cpu_rows + stats.cached_rows
                    + stats.remote_rows) == len(ids)
            assert stats.remote_per_peer[k] == 0
            assert stats.remote_per_peer.sum() == stats.remote_rows

    def test_gpu_prefix_counting(self, store_setup):
        rd, store = store_setup
        k = 0
        lo, hi = rd.part_range(k)
        gpu_rows = store.stores[k].gpu_rows
        # All-GPU-resident ids.
        ids = np.arange(lo, lo + min(gpu_rows, 5))
        _, stats = store.gather(k, ids)
        assert stats.gpu_rows == len(ids) and stats.cpu_rows == 0
        # All-CPU-resident ids.
        ids = np.arange(lo + gpu_rows, min(lo + gpu_rows + 5, hi))
        _, stats = store.gather(k, ids)
        assert stats.cpu_rows == len(ids) and stats.gpu_rows == 0

    def test_cached_rows_detected(self, store_setup):
        rd, store = store_setup
        k = 0
        cached_ids = store.stores[k].cache_ids[:5]
        if len(cached_ids):
            feats, stats = store.gather(k, cached_ids)
            assert stats.cached_rows == len(cached_ids)
            assert stats.remote_rows == 0
            assert np.array_equal(feats, rd.dataset.features[cached_ids])

    def test_remote_attribution_by_owner(self, store_setup):
        rd, store = store_setup
        k = 0
        lo1, hi1 = rd.part_range(1)
        # Remote ids owned by partition 1, excluding machine 0's cache.
        ids = np.array([v for v in range(lo1, hi1)
                        if not store.stores[0].is_cached(np.array([v]))[0]][:7])
        _, stats = store.gather(0, ids)
        assert stats.remote_per_peer[1] == len(ids)
        assert stats.remote_rows == len(ids)


class TestStatsEdgeCases:
    """GatherStats / FetchPlan arithmetic on empty and all-cached gathers."""

    def test_empty_gather(self, store_setup):
        rd, store = store_setup
        ids = np.empty(0, dtype=np.int64)
        plan = store.plan_gather(0, ids)
        assert plan.num_rows == 0
        feats, stats = store.execute(plan)
        assert feats.shape == (0, rd.dataset.feature_dim)
        assert stats.total_rows == 0
        assert stats.remote_fraction() == 0.0  # no division by zero
        assert stats.comm_rows() == 0
        assert stats.refresh_fetch_rows == 0
        assert stats.remote_per_peer.sum() == 0

    def test_all_cached_gather(self, store_setup):
        rd, store = store_setup
        cached_ids = store.stores[0].cache_ids
        assert len(cached_ids) > 0, "fixture must cache something"
        plan = store.plan_gather(0, cached_ids)
        assert plan.num_rows == len(cached_ids)
        assert len(plan.remote_ids) == 0 and len(plan.local_ids) == 0
        _, stats = store.execute(plan)
        assert stats.cached_rows == stats.total_rows == len(cached_ids)
        assert stats.remote_rows == 0
        assert stats.remote_fraction() == 0.0
        assert stats.comm_rows() == 0

    def test_remote_fraction_counts_only_demand(self, store_setup, rng):
        rd, store = store_setup
        ids = rng.choice(rd.dataset.num_vertices, 100, replace=False)
        _, stats = store.gather(0, ids)
        assert stats.remote_fraction() == stats.remote_rows / stats.total_rows
        # comm_rows adds refresh traffic on top of demand (zero for static).
        assert stats.comm_rows() == stats.remote_rows

    def test_plan_num_rows_matches_request(self, store_setup, rng):
        rd, store = store_setup
        ids = rng.choice(rd.dataset.num_vertices, 37, replace=False)
        plan = store.plan_gather(1, ids)
        assert plan.num_rows == 37
        assert (len(plan.local_ids) + len(plan.cached_ids)
                + len(plan.remote_ids)) == 37


class TestHitMask:
    def test_local_and_cached_ids_hit(self, store_setup):
        rd, store = store_setup
        lo, hi = rd.part_range(0)
        local = np.arange(lo, min(lo + 5, hi))
        assert store.hit_mask(0, local).all()
        cached = store.stores[0].cache_ids[:5]
        assert store.hit_mask(0, cached).all()

    def test_uncached_remote_ids_miss(self, store_setup):
        rd, store = store_setup
        lo, hi = rd.part_range(0)
        remote = np.setdiff1d(np.arange(rd.dataset.num_vertices),
                              np.arange(lo, hi))
        remote = np.setdiff1d(remote, store.stores[0].cache_ids)[:10]
        assert not store.hit_mask(0, remote).any()

    def test_read_only(self, store_setup):
        rd, store = store_setup
        before = store.stores[0].cache_ids.copy()
        store.hit_mask(0, np.arange(rd.dataset.num_vertices))
        assert np.array_equal(store.stores[0].cache_ids, before)


class TestBuildValidation:
    def test_rejects_local_vertices_in_cache(self, tiny_reordered):
        rd = tiny_reordered
        lo, hi = rd.part_range(0)
        with pytest.raises(ValueError, match="local"):
            PartitionedFeatureStore.build(
                rd, caches=[np.array([lo])] + [np.empty(0, dtype=np.int64)] * 3)

    def test_rejects_wrong_cache_count(self, tiny_reordered):
        with pytest.raises(ValueError, match="one cache per machine"):
            PartitionedFeatureStore.build(tiny_reordered, caches=[np.empty(0, dtype=np.int64)])

    def test_rejects_bad_gpu_fraction(self, tiny_reordered):
        with pytest.raises(ValueError, match="gpu_fraction"):
            PartitionedFeatureStore.build(tiny_reordered, gpu_fraction=1.5)


class TestMemoryAccounting:
    def test_partitioned_memory_multiple(self, store_setup):
        rd, store = store_setup
        assert store.memory_multiple() == pytest.approx(
            1.0 + store.replication_factor(), rel=0.05)

    def test_replication_factor_close_to_alpha(self, store_setup):
        rd, store = store_setup
        assert 0.0 < store.replication_factor() <= 0.25 + 1e-9


class TestReplicatedStore:
    def test_full_replication_gather(self, tiny_reordered, rng):
        rd = tiny_reordered
        store = PartitionedFeatureStore.build_replicated(rd)
        assert store.is_replicated
        ids = rng.choice(rd.dataset.num_vertices, 100, replace=False)
        for k in range(store.num_machines):
            feats, stats = store.gather(k, ids)
            assert np.array_equal(feats, rd.dataset.features[ids])
            assert stats.remote_rows == 0 and stats.cached_rows == 0

    def test_full_replication_memory_is_k(self, tiny_reordered):
        store = PartitionedFeatureStore.build_replicated(tiny_reordered)
        assert store.memory_multiple() == pytest.approx(store.num_machines)
