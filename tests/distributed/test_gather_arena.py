"""Arena-backed gathers ≡ allocating gathers, bit for bit.

``execute(plan, out=...)`` / ``gather_into`` / ``execute_coalesced(outs=...)``
must be indistinguishable from the allocating path in every observable way:
returned features, :class:`GatherStats` (including dynamic-cache churn), and
the cache state left behind.  Two identically built stores are driven with
the same request sequence — one allocating, one through a shared
:class:`GatherArena` — and compared step by step.

Also covers the rewritten :meth:`FetchPlan.coalesce` (one concatenated
``unique(..., return_inverse=True)`` pass) against the seed's
``searchsorted``-per-plan bookkeeping.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import (
    DynamicCacheSpec,
    FetchPlan,
    GatherArena,
    PartitionedFeatureStore,
)
from repro.graph.datasets import make_synthetic_dataset
from repro.partition import metis_like_partition, reorder_dataset
from repro.vip import CacheContext, VIPAnalyticPolicy, build_caches


@pytest.fixture(scope="module")
def reordered():
    ds = make_synthetic_dataset(
        "arena-mini", num_vertices=900, avg_degree=7.0, feature_dim=12,
        num_classes=5, num_communities=6, intra_fraction=0.85, power=2.5,
        train_frac=0.4, seed=5,
    )
    part = metis_like_partition(ds.graph, 3, seed=0)
    return reorder_dataset(ds, part)


def build_store(rd, dynamic=None, alpha=0.3):
    caches = None
    if alpha > 0:
        ctx = CacheContext(rd.dataset.graph, rd.partition,
                           rd.dataset.train_idx, (4, 3), 16, seed=0)
        caches = build_caches(VIPAnalyticPolicy(), ctx, alpha=alpha)
    return PartitionedFeatureStore.build(rd, gpu_fraction=0.5, caches=caches,
                                         dynamic=dynamic)


def request_stream(rd, num_requests, seed):
    rng = np.random.default_rng(seed)
    n = rd.dataset.num_vertices
    for _ in range(num_requests):
        machine = int(rng.integers(0, rd.num_parts))
        size = int(rng.integers(1, 60))
        yield machine, np.sort(rng.choice(n, size=size, replace=False))


def assert_same_gather(a, b):
    feats_a, stats_a = a
    feats_b, stats_b = b
    assert np.array_equal(feats_a, feats_b)
    assert (stats_a.total_rows, stats_a.gpu_rows, stats_a.cpu_rows,
            stats_a.cached_rows, stats_a.remote_rows, stats_a.cache_insertions,
            stats_a.cache_evictions, stats_a.coalesced_rows) == \
           (stats_b.total_rows, stats_b.gpu_rows, stats_b.cpu_rows,
            stats_b.cached_rows, stats_b.remote_rows, stats_b.cache_insertions,
            stats_b.cache_evictions, stats_b.coalesced_rows)
    assert np.array_equal(stats_a.remote_per_peer, stats_b.remote_per_peer)
    if stats_a.refresh_fetch_per_peer is None:
        assert stats_b.refresh_fetch_per_peer is None
    else:
        assert np.array_equal(stats_a.refresh_fetch_per_peer,
                              stats_b.refresh_fetch_per_peer)


DYNAMIC_SPECS = [
    None,
    DynamicCacheSpec(policy="lru", capacity=100, admit_threshold=0),
    DynamicCacheSpec(policy="lfu", capacity=100, aging_interval=5),
    DynamicCacheSpec(policy="vip-refresh", capacity=100, refresh_interval=4),
]


class TestGatherInto:
    @pytest.mark.parametrize("dynamic", DYNAMIC_SPECS,
                             ids=["static", "lru", "lfu", "vip-refresh"])
    def test_bit_identical_including_churn(self, reordered, dynamic):
        """Twin stores, same request stream: the arena store's features,
        stats, churn counters, and final cache contents all match the
        allocating store's — across admissions, evictions, and refreshes."""
        rd = reordered
        plain = build_store(rd, dynamic=dynamic)
        arena_store = build_store(rd, dynamic=dynamic)
        arena = GatherArena()
        for machine, ids in request_stream(rd, 40, seed=7):
            ref = plain.gather(machine, ids)
            out = arena.out(machine, len(ids), arena_store.feature_dim,
                            arena_store.stores[machine].local_features.dtype)
            got = arena_store.gather_into(machine, ids, out)
            assert got[0] is out  # filled in place, not reallocated
            assert_same_gather(ref, got)
        if dynamic is not None:
            for sp, sa in zip(plain.stores, arena_store.stores):
                assert np.array_equal(sp.cache.ids, sa.cache.ids)
                for f in ("hits", "misses", "insertions", "evictions",
                          "refreshes", "refresh_fetch_rows"):
                    assert getattr(sp.cache.churn, f) == \
                           getattr(sa.cache.churn, f), f

    def test_out_validation(self, reordered):
        store = build_store(reordered, alpha=0.0)
        ids = np.arange(10, dtype=np.int64)
        plan = store.plan_gather(0, ids)
        with pytest.raises(ValueError, match="shape"):
            store.execute(plan, out=np.empty((9, store.feature_dim),
                                             dtype=np.float32))
        with pytest.raises(ValueError, match="dtype"):
            store.execute(plan, out=np.empty((10, store.feature_dim),
                                             dtype=np.float64))

    def test_arena_grows_and_reuses(self, reordered):
        store = build_store(reordered, alpha=0.0)
        dtype = store.stores[0].local_features.dtype
        arena = GatherArena()
        small = arena.out("k", 8, store.feature_dim, dtype)
        grown = arena.out("k", 32, store.feature_dim, dtype)
        again = arena.out("k", 16, store.feature_dim, dtype)
        assert grown.base is again.base  # grown once, then reused
        assert small.shape == (8, store.feature_dim)


class TestCoalesceRewrite:
    @staticmethod
    def _seed_coalesce(plans):
        """The pre-rewrite bookkeeping: per-plan searchsorted + masks."""
        unique_remote = np.unique(
            np.concatenate([p.remote_ids for p in plans]))
        seen = np.zeros(len(unique_remote), dtype=bool)
        first_request = []
        for p in plans:
            slots = np.searchsorted(unique_remote, p.remote_ids)
            fresh = ~seen[slots]
            seen[slots] = True
            first_request.append(fresh)
        return unique_remote, first_request

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 14), st.integers(0, 2**16))
    def test_matches_seed_bookkeeping(self, reordered, depth, seed):
        """Depths past 10 are the satellite's target regime; the unique-
        with-inverse pass must reproduce the seed's pools and attribution
        masks exactly."""
        rd = reordered
        store = build_store(rd, alpha=0.2)
        rng = np.random.default_rng(seed)
        n = rd.dataset.num_vertices
        plans = [
            store.plan_gather(
                0, np.sort(rng.choice(n, size=int(rng.integers(1, 80)),
                                      replace=False)))
            for _ in range(depth)
        ]
        cplan = FetchPlan.coalesce(plans)
        ref_unique, ref_fresh = self._seed_coalesce(plans)
        assert np.array_equal(cplan.unique_remote_ids, ref_unique)
        for i, (fresh, want) in enumerate(zip(cplan.first_request, ref_fresh)):
            assert np.array_equal(fresh, want)
            assert np.array_equal(
                cplan.unique_remote_ids[cplan.plan_slots(i)],
                plans[i].remote_ids,
            )

    def test_execute_coalesced_outs_variant(self, reordered):
        """outs= fills the caller's buffers with the exact same features
        and stats as the allocating execute_coalesced."""
        rd = reordered
        plain = build_store(rd, alpha=0.2)
        arena_store = build_store(rd, alpha=0.2)
        rng = np.random.default_rng(3)
        n = rd.dataset.num_vertices
        ids = [np.sort(rng.choice(n, size=50, replace=False))
               for _ in range(6)]
        ref = plain.execute_coalesced(
            FetchPlan.coalesce([plain.plan_gather(1, i) for i in ids]))
        arena = GatherArena()
        plans = [arena_store.plan_gather(1, i) for i in ids]
        dtype = arena_store.stores[1].local_features.dtype
        outs = [arena.out((1, j), len(p.ids), arena_store.feature_dim, dtype)
                for j, p in enumerate(plans)]
        got = arena_store.execute_coalesced(FetchPlan.coalesce(plans),
                                            outs=outs)
        assert len(ref) == len(got)
        for (a, b), out in zip(zip(ref, got), outs):
            assert b[0] is out
            assert_same_gather(a, b)

    def test_outs_length_mismatch_raises(self, reordered):
        store = build_store(reordered, alpha=0.0)
        ids = np.arange(20, dtype=np.int64)
        cplan = FetchPlan.coalesce([store.plan_gather(0, ids)])
        with pytest.raises(ValueError, match="one matrix per sub-plan"):
            store.execute_coalesced(cplan, outs=[])

    def test_plan_slots_fallback_without_stored_slots(self, reordered):
        """Hand-built coalesced plans (slots=None) still execute: the
        searchsorted fallback reproduces the stored slot arrays."""
        from repro.distributed import CoalescedFetchPlan

        store = build_store(reordered, alpha=0.2)
        rng = np.random.default_rng(5)
        n = reordered.dataset.num_vertices
        plans = [store.plan_gather(2, np.sort(rng.choice(n, 40, replace=False)))
                 for _ in range(3)]
        cplan = FetchPlan.coalesce(plans)
        legacy = CoalescedFetchPlan(
            machine=cplan.machine, plans=cplan.plans,
            unique_remote_ids=cplan.unique_remote_ids,
            first_request=cplan.first_request,
        )
        for i in range(3):
            assert np.array_equal(legacy.plan_slots(i), cplan.plan_slots(i))
        ref = store.execute_coalesced(cplan)
        got = store.execute_coalesced(legacy)
        for a, b in zip(ref, got):
            assert_same_gather(a, b)
