"""Property and protocol tests for the shared-memory gradient plane.

The hypothesis suite drives arbitrary field layouts (shapes, dtypes, worker
counts) through write/average/read round trips and demands bit-exact
results against the in-process collective's reference semantics
(:func:`average_gradient_arrays`).  The protocol tests exercise the seqlock
doorbell: mid-write reads, stale step tags, torn reads under a genuinely
concurrent writer thread, and the ``None``-gradient (zeros) contract.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.comm import average_gradient_arrays
from repro.distributed.shm_plane import (
    HEADER_NBYTES,
    GradientPlane,
    GradSlab,
    SlabLayout,
    SlabStateError,
    TornReadError,
)

# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _make_plane(templates, num_workers):
    layout = SlabLayout.from_templates(templates)
    buf = memoryview(bytearray(layout.plane_nbytes(num_workers)))
    plane = GradientPlane(buf, num_workers, layout)
    plane.reset()
    return plane


def _random_grads(rng, templates):
    return [rng.standard_normal(t.shape).astype(t.dtype) for t in templates]


_TEMPLATE_DTYPES = [np.dtype(s) for s in ("float32", "float64")]


@st.composite
def _layouts(draw):
    """A plausible parameter list: 1-6 fields, mixed dtypes and ranks."""
    num_fields = draw(st.integers(min_value=1, max_value=6))
    templates = []
    for _ in range(num_fields):
        # Real parameters are rank >= 1 (rank-0 "gradients" would also be
        # misread as scalar-None contributions by the reference collective).
        rank = draw(st.integers(min_value=1, max_value=2))
        shape = tuple(draw(st.integers(min_value=1, max_value=7))
                      for _ in range(rank))
        dtype = draw(st.sampled_from(_TEMPLATE_DTYPES))
        templates.append(np.zeros(shape, dtype=dtype))
    return templates


# ----------------------------------------------------------------------
# layout
# ----------------------------------------------------------------------


@given(_layouts())
@settings(max_examples=50, deadline=None)
def test_layout_fields_disjoint_and_aligned(templates):
    layout = SlabLayout.from_templates(templates)
    spans = []
    for f, t in zip(layout.fields, templates):
        dt = np.dtype(f.dtype)
        assert f.offset % dt.itemsize == 0
        assert f.shape == t.shape
        spans.append((f.offset, f.offset + t.size * dt.itemsize))
    for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
        assert a1 <= b0  # back to back, never overlapping
    assert layout.payload_nbytes == spans[-1][1]
    assert layout.slab_nbytes % 64 == 0
    assert layout.slab_nbytes >= HEADER_NBYTES + layout.payload_nbytes
    assert layout.plane_nbytes(4) == 5 * layout.slab_nbytes


def test_plane_rejects_short_buffer():
    templates = [np.zeros((3, 3), dtype=np.float64)]
    layout = SlabLayout.from_templates(templates)
    buf = memoryview(bytearray(layout.plane_nbytes(2) - 1))
    with pytest.raises(ValueError, match="disagree on the slab layout"):
        GradientPlane(buf, 2, layout)


# ----------------------------------------------------------------------
# round trips (hypothesis)
# ----------------------------------------------------------------------


@given(_layouts(), st.integers(min_value=1, max_value=5),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_write_average_read_matches_reference(templates, num_workers, seed):
    """The plane's whole per-step cycle is bit-identical to the in-process
    collective: worker writes -> coordinator average -> worker read."""
    rng = np.random.default_rng(seed)
    plane = _make_plane(templates, num_workers)
    per_machine = [_random_grads(rng, templates) for _ in range(num_workers)]

    for k, grads in enumerate(per_machine):
        plane.worker_slabs[k].write(grads, step=0)
    plane.average(0)

    reference = average_gradient_arrays(per_machine, templates)
    outs = [np.empty_like(t) for t in templates]
    plane.avg_slab.read_into(outs, step=0)
    for got, want in zip(outs, reference):
        np.testing.assert_array_equal(got, want)


@given(_layouts(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_slab_roundtrip_is_exact(templates, seed):
    rng = np.random.default_rng(seed)
    plane = _make_plane(templates, 1)
    slab = plane.worker_slabs[0]
    for step in range(3):
        grads = _random_grads(rng, templates)
        slab.write(grads, step=step)
        outs = [np.empty_like(t) for t in templates]
        slab.read_into(outs, step=step)
        for got, want in zip(outs, grads):
            np.testing.assert_array_equal(got, want)
        assert slab.seq == 2 * (step + 1)  # two bumps per write, always even


def test_none_gradients_average_as_zeros():
    """A ``None`` gradient (parameter untouched by the batch) contributes
    zeros — exactly the scalar-0.0 contribution of the reference."""
    templates = [np.zeros((2, 2), dtype=np.float64),
                 np.zeros(3, dtype=np.float64)]
    rng = np.random.default_rng(7)
    plane = _make_plane(templates, 3)
    per_machine = [
        _random_grads(rng, templates),
        [None, rng.standard_normal(3)],
        [None, None],
    ]
    for k, grads in enumerate(per_machine):
        plane.worker_slabs[k].write(grads, step=5)
    plane.average(5)
    reference = average_gradient_arrays(per_machine, templates)
    outs = [np.empty_like(t) for t in templates]
    plane.avg_slab.read_into(outs, step=5)
    for got, want in zip(outs, reference):
        np.testing.assert_array_equal(got, want)


# ----------------------------------------------------------------------
# seqlock protocol
# ----------------------------------------------------------------------


def test_read_rejects_unpublished_step():
    templates = [np.zeros(4, dtype=np.float64)]
    plane = _make_plane(templates, 1)
    outs = [np.empty(4, dtype=np.float64)]
    with pytest.raises(SlabStateError, match="holds step -1"):
        plane.worker_slabs[0].read_into(outs, step=0)


def test_read_rejects_stale_step_tag():
    templates = [np.zeros(4, dtype=np.float64)]
    plane = _make_plane(templates, 1)
    slab = plane.worker_slabs[0]
    slab.write([np.ones(4)], step=0)
    outs = [np.empty(4, dtype=np.float64)]
    with pytest.raises(SlabStateError, match="holds step 0, expected 1"):
        slab.read_into(outs, step=1)


def test_read_rejects_write_in_flight():
    templates = [np.zeros(4, dtype=np.float64)]
    plane = _make_plane(templates, 1)
    slab = plane.worker_slabs[0]
    slab.write([np.ones(4)], step=0)
    slab.begin_write()  # seq now odd: writer died mid-write
    outs = [np.empty(4, dtype=np.float64)]
    with pytest.raises(SlabStateError, match="write in flight"):
        slab.read_into(outs, step=0)


def test_average_attributes_violation_to_machine():
    templates = [np.zeros(4, dtype=np.float64)]
    plane = _make_plane(templates, 3)
    for k in range(3):
        plane.worker_slabs[k].write([np.full(4, float(k))], step=0)
    plane.worker_slabs[1].begin_write()  # machine 1 desynchronized
    with pytest.raises(SlabStateError) as excinfo:
        plane.average(0)
    assert excinfo.value.machine == 1


def test_torn_read_detected_under_concurrent_writer():
    """A writer thread racing the reader must surface as TornReadError (or
    a stale-step SlabStateError if the reader starts after a republish) —
    never as a silently inconsistent payload."""
    templates = [np.zeros((64, 64), dtype=np.float64)]
    layout = SlabLayout.from_templates(templates)
    buf = memoryview(bytearray(layout.plane_nbytes(1)))
    plane = GradientPlane(buf, 1, layout)
    plane.reset()
    slab = plane.worker_slabs[0]
    # A second slab object over the same bytes — the reader's own mapping,
    # as another process would hold one over the shared segment.
    reader_slab = GradSlab(buf[:layout.slab_nbytes], layout)
    stop = threading.Event()

    def writer():
        step = 0
        while not stop.is_set():
            slab.write([np.full((64, 64), float(step))], step=step)
            step += 1

    slab.write([np.zeros((64, 64))], step=0)
    t = threading.Thread(target=writer)
    t.start()
    outs = [np.empty((64, 64), dtype=np.float64)]
    attempts = 0
    try:
        for _ in range(2000):
            step = reader_slab.step
            attempts += 1
            try:
                reader_slab.read_into(outs, step=step)
            except TornReadError:
                continue  # the race fired and was detected — the contract
            except SlabStateError:
                continue  # republished between the step peek and the check
            # A read that *claims* success must be internally consistent:
            # every element equals the single step it was written under.
            assert np.all(outs[0] == outs[0].flat[0])
    finally:
        stop.set()
        t.join()
    assert attempts == 2000


def test_reset_clears_doorbell():
    templates = [np.zeros(4, dtype=np.float64)]
    plane = _make_plane(templates, 2)
    plane.worker_slabs[0].write([np.ones(4)], step=3)
    plane.reset()
    assert plane.worker_slabs[0].seq == 0
    assert plane.worker_slabs[0].step == -1
    assert plane.avg_slab.step == -1


def test_write_rejects_wrong_arity():
    templates = [np.zeros(4, dtype=np.float64)]
    plane = _make_plane(templates, 1)
    with pytest.raises(ValueError, match="expected 1 gradient arrays"):
        plane.worker_slabs[0].write([np.ones(4), np.ones(4)], step=0)


def test_release_allows_buffer_close():
    """After release() no view pins the buffer — the shared segment can be
    closed without BufferError (the coordinator teardown path)."""
    import multiprocessing.shared_memory as shm_mod

    templates = [np.zeros((8, 8), dtype=np.float64)]
    layout = SlabLayout.from_templates(templates)
    shm = shm_mod.SharedMemory(create=True, size=layout.plane_nbytes(2))
    try:
        plane = GradientPlane(shm.buf, 2, layout)
        plane.reset()
        plane.worker_slabs[0].write([np.ones((8, 8))], step=0)
        plane.release()
        shm.close()  # raises BufferError if any view survived
    finally:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
