"""Checkpoint/replay recovery: the fault-tolerant runtime's acceptance suite.

The headline contract: a multiproc training run interrupted by a mid-epoch
worker fault — kill, hang, corrupt wire frame, or torn gradient slab — and
driven by :class:`RecoveryManager` completes with per-step losses
**bit-identical** to a fault-free run's.  Checkpoints restore every RNG
stream cursor, so the replayed epoch samples the same neighborhoods, drops
the same activations, and lands on the same floats.

Everything else here guards the machinery: deterministic backoff, the
restart budget, checkpoint persistence through the ArtifactCache (including
a full warm start from disk into a fresh cluster), and zero leaked
processes or shared memory after any outcome.
"""

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import RunConfig, SalientPP
from repro.core.planner import ArtifactCache
from repro.distributed import (
    FaultPlan,
    MultiprocBackend,
    RecoveryManager,
    RecoveryPolicy,
    WorkerFailedError,
    load_checkpoint,
    save_checkpoint,
)
from repro.graph.datasets import make_tiny


def _build_system(num_machines=2):
    ds = make_tiny(seed=3, num_vertices=2000)
    cfg = RunConfig(
        num_machines=num_machines,
        fanouts=(4, 3),
        batch_size=16,
        hidden_dim=16,
        replication_factor=0.05,
        gpu_fraction=0.5,
        seed=0,
    )
    return SalientPP.build(ds, cfg)


def _losses(reports):
    return [[rec.loss for rec in rep.records] for rep in reports]


def _assert_fully_torn_down(backend):
    assert not backend.is_live
    assert all(not p.is_alive() for p in backend.processes)
    for name in backend.segment_names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        assert not os.path.exists(f"/dev/shm/{name}")


#: Fast-paced policy so tests never sleep for real seconds.
_FAST = RecoveryPolicy(max_restarts=3, backoff_base_s=0.01,
                       backoff_max_s=0.02, jitter=0.0)


@pytest.fixture(scope="module")
def oracle_losses():
    """Fault-free per-step losses, keyed by (num_machines, epochs)."""
    memo = {}

    def run(num_machines, epochs):
        key = (num_machines, epochs)
        if key not in memo:
            backend = MultiprocBackend(_build_system(num_machines),
                                       timeout_s=60.0)
            try:
                memo[key] = _losses(
                    [backend.run_epoch(e) for e in range(epochs)])
            finally:
                backend.close()
        return memo[key]

    return run


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------

class TestRecoveryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_restarts"):
            RecoveryPolicy(max_restarts=-1).validate()
        with pytest.raises(ValueError, match="backoff_base_s"):
            RecoveryPolicy(backoff_base_s=0.0).validate()
        with pytest.raises(ValueError, match="backoff_factor"):
            RecoveryPolicy(backoff_factor=0.5).validate()
        with pytest.raises(ValueError, match="backoff_max_s"):
            RecoveryPolicy(backoff_base_s=1.0, backoff_max_s=0.5).validate()
        with pytest.raises(ValueError, match="jitter"):
            RecoveryPolicy(jitter=1.0).validate()
        with pytest.raises(ValueError, match="checkpoint_interval"):
            RecoveryPolicy(checkpoint_interval=0).validate()

    def test_backoff_deterministic_and_bounded(self):
        pol = RecoveryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             backoff_max_s=0.5, jitter=0.25, seed=7)
        delays = [pol.backoff_s(i) for i in range(8)]
        assert delays == [pol.backoff_s(i) for i in range(8)]  # reruns match
        for i, d in enumerate(delays):
            base = min(0.5, 0.1 * 2.0 ** i)
            assert base * 0.75 <= d <= base * 1.25
        # A different seed jitters differently; zero jitter is exact.
        assert delays != [RecoveryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.5,
            jitter=0.25, seed=8).backoff_s(i) for i in range(8)]
        assert RecoveryPolicy(jitter=0.0, backoff_base_s=0.1).backoff_s(0) \
            == pytest.approx(0.1)

    def test_from_config(self):
        from repro.core.config import RecoveryConfig

        pol = RecoveryPolicy.from_config(
            RecoveryConfig(max_restarts=5, backoff_base_s=0.2,
                           checkpoint_interval=3), seed=11)
        assert pol.max_restarts == 5
        assert pol.backoff_base_s == 0.2
        assert pol.checkpoint_interval == 3
        assert pol.seed == 11


def test_manager_requires_recoverable_backend():
    backend = MultiprocBackend(_build_system(), timeout_s=30.0)
    with pytest.raises(ValueError, match="recoverable=True"):
        RecoveryManager(backend)
    backend.close()


def test_recovery_config_requires_multiproc_backend():
    from repro.core.config import RecoveryConfig

    cfg = RunConfig(num_machines=2,
                    recovery=RecoveryConfig(enabled=True))
    with pytest.raises(ValueError, match="multiproc"):
        cfg.validate()


# ----------------------------------------------------------------------
# the acceptance test: K=4, mid-epoch kill, bit-identical replay
# ----------------------------------------------------------------------

def test_kill_mid_epoch_replay_bit_identical_k4(oracle_losses):
    epochs = 3
    backend = MultiprocBackend(
        _build_system(num_machines=4), timeout_s=60.0, recoverable=True,
        faults=FaultPlan.single("kill", machine=2, epoch=1, step=1))
    sleeps = []
    manager = RecoveryManager(backend, _FAST, sleep=sleeps.append)
    reports = manager.train(epochs)
    assert _losses(reports) == oracle_losses(4, epochs)
    assert manager.restarts == 1
    assert backend.restarts_total >= 1
    assert len(sleeps) == 1 and sleeps[0] == _FAST.backoff_s(0)
    [rec] = manager.recoveries
    assert rec["machine"] == 2
    assert rec["epoch"] == 1 and rec["resume_epoch"] == 1
    assert rec["replay_s"] is not None
    assert manager.mttr_s() is not None and manager.mttr_s() > 0
    backend.close()
    _assert_fully_torn_down(backend)


# ----------------------------------------------------------------------
# the full chaos sweep: every fault kind recovers, machine-attributed
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kind", ["kill", "hang", "corrupt", "torn"])
def test_fault_sweep_recovers_bit_identical(kind, oracle_losses):
    epochs = 2
    # The hang relies on the coordinator's receive deadline, so keep it
    # short; every other kind is detected instantly.
    timeout_s = 3.0 if kind == "hang" else 60.0
    backend = MultiprocBackend(
        _build_system(), timeout_s=timeout_s, recoverable=True,
        faults=FaultPlan.single(kind, machine=1, epoch=0, step=1,
                                duration_s=120.0))
    manager = RecoveryManager(backend, _FAST, sleep=lambda _s: None)
    reports = manager.train(epochs)
    assert _losses(reports) == oracle_losses(2, epochs)
    [rec] = manager.recoveries
    assert rec["machine"] == 1
    # Epoch-0 faults replay from initial state (no checkpoint exists yet).
    assert rec["resume_epoch"] == 0
    backend.close()
    _assert_fully_torn_down(backend)


@pytest.mark.parametrize("kind", ["hang", "corrupt", "torn"])
def test_fault_sweep_fail_fast_attributes_machine(kind):
    # Without recoverable=True every kind keeps the original fail-stop
    # contract: machine-attributed error, full teardown, nothing leaked.
    # (The kill kind is already covered by test_multiproc_faults.)
    timeout_s = 3.0 if kind == "hang" else 60.0
    backend = MultiprocBackend(
        _build_system(), timeout_s=timeout_s,
        faults=FaultPlan.single(kind, machine=1, epoch=0, step=1,
                                duration_s=120.0))
    with pytest.raises(WorkerFailedError) as excinfo:
        backend.run_epoch(0)
    assert excinfo.value.machine == 1
    _assert_fully_torn_down(backend)


def test_multi_fault_budget_and_exhaustion(oracle_losses):
    # Two faults, budget of one restart: the first recovers, the second
    # exhausts the budget — the backend closes and the failure re-raises
    # machine-attributed.
    faults = FaultPlan([
        *FaultPlan.single("kill", machine=0, epoch=0, step=1),
        *FaultPlan.single("kill", machine=1, epoch=1, step=0),
    ])
    backend = MultiprocBackend(_build_system(), timeout_s=60.0,
                               recoverable=True, faults=faults)
    policy = RecoveryPolicy(max_restarts=1, backoff_base_s=0.01,
                            backoff_max_s=0.02, jitter=0.0)
    manager = RecoveryManager(backend, policy, sleep=lambda _s: None)
    with pytest.raises(WorkerFailedError) as excinfo:
        manager.train(3)
    assert excinfo.value.machine == 1
    assert manager.restarts == 1
    _assert_fully_torn_down(backend)


# ----------------------------------------------------------------------
# checkpoint persistence
# ----------------------------------------------------------------------

def _checkpoints_equal(a, b):
    assert a["epoch"] == b["epoch"]
    assert sorted(a["model"]) == sorted(b["model"])
    for name in a["model"]:
        assert np.array_equal(np.asarray(a["model"][name]),
                              np.asarray(b["model"][name]))
    assert a["adam"]["t"] == b["adam"]["t"]
    for key in ("m", "v"):
        assert len(a["adam"][key]) == len(b["adam"][key])
        for x, y in zip(a["adam"][key], b["adam"][key]):
            assert np.array_equal(np.asarray(x), np.asarray(y))
    assert list(a["samplers"]) == list(b["samplers"])
    assert [list(s) for s in a["layer_rngs"]] \
        == [list(s) for s in b["layer_rngs"]]
    assert a["cache_fp"] == b["cache_fp"]


def test_checkpoint_disk_round_trip(tmp_path):
    cache = ArtifactCache(cache_dir=str(tmp_path))
    backend = MultiprocBackend(_build_system(), timeout_s=60.0,
                               recoverable=True)
    try:
        backend.run_epoch(0)
        ckpt = backend.capture_checkpoint(0)
        fp = backend._pool_key
        save_checkpoint(cache, fp, ckpt)
        assert load_checkpoint(cache, fp) is ckpt  # memory tier hit
        cache.clear_memory()
        loaded = load_checkpoint(cache, fp)
        assert loaded is not None
        _checkpoints_equal(loaded, ckpt)
        assert load_checkpoint(cache, "no-such-cluster") is None
    finally:
        backend.close()


def test_warm_start_from_disk_bit_identical(tmp_path, oracle_losses):
    # Train two epochs with persistence, lose the whole run (coordinator
    # included), then warm-start a fresh cluster from disk: the combined
    # losses must be bit-identical to an uninterrupted three-epoch run.
    cache = ArtifactCache(cache_dir=str(tmp_path))
    backend1 = MultiprocBackend(_build_system(), timeout_s=60.0,
                                recoverable=True)
    manager1 = RecoveryManager(backend1, _FAST, cache=cache)
    reports1 = manager1.train(2)
    backend1.close()
    _assert_fully_torn_down(backend1)

    cache.clear_memory()  # the "new process" only has the disk tier
    backend2 = MultiprocBackend(_build_system(), timeout_s=60.0,
                                recoverable=True)
    manager2 = RecoveryManager(backend2, _FAST, cache=cache)
    resume = manager2.load_persisted()
    assert resume == 2
    reports2 = manager2.train(3, start_epoch=resume)
    assert _losses(reports1) + _losses(reports2) == oracle_losses(2, 3)
    backend2.close()
    _assert_fully_torn_down(backend2)


def test_checkpoint_refused_for_mismatched_cluster(tmp_path):
    backend = MultiprocBackend(_build_system(), timeout_s=60.0,
                               recoverable=True)
    backend.run_epoch(0)
    ckpt = backend.capture_checkpoint(0)
    ckpt["cache_fp"] = "0" * 64  # some other cluster's cache selection
    with pytest.raises(WorkerFailedError, match="fingerprint"):
        backend.recover(ckpt)
    _assert_fully_torn_down(backend)
    backend.close()  # idempotent after the failed recovery
    _assert_fully_torn_down(backend)
