"""Distributed trainer tests: convergence, replica sync, cache transparency."""

import numpy as np
import pytest

from repro.distributed import DistributedTrainer, PartitionedFeatureStore
from repro.vip import CacheContext, VIPAnalyticPolicy, build_caches


def make_trainer(rd, alpha=0.0, gpu_fraction=0.0, seed=0, **kw):
    caches = None
    if alpha > 0:
        ctx = CacheContext(rd.dataset.graph, rd.partition, rd.dataset.train_idx,
                           (5, 5), 16, seed=0)
        caches = build_caches(VIPAnalyticPolicy(), ctx, alpha=alpha)
    store = PartitionedFeatureStore.build(rd, gpu_fraction=gpu_fraction, caches=caches)
    return DistributedTrainer(rd, store, fanouts=(5, 5), batch_size=16,
                              hidden_dim=16, lr=0.01, seed=seed, **kw)


class TestTraining:
    def test_loss_decreases(self, tiny_reordered):
        tr = make_trainer(tiny_reordered)
        reports = tr.train(4)
        assert reports[-1].mean_loss < reports[0].mean_loss

    def test_replicas_stay_in_sync(self, tiny_reordered):
        tr = make_trainer(tiny_reordered)
        tr.train(2)
        assert tr.models_in_sync()

    def test_evaluate_accuracy_reasonable(self, tiny_reordered):
        tr = make_trainer(tiny_reordered)
        tr.train(6)
        acc = tr.evaluate("test")
        assert acc > 0.5  # 4 classes, strong planted signal

    def test_steps_per_epoch(self, tiny_reordered):
        tr = make_trainer(tiny_reordered)
        counts = [len(ids) // 16 for ids in tr.local_train]
        assert tr.steps_per_epoch() == min(counts)


class TestCacheTransparency:
    def test_caching_never_changes_training(self, tiny_reordered):
        """The paper's correctness claim (§5.3): caching affects where bytes
        live, never what the model computes.  Same seeds with and without a
        cache must give bit-identical losses."""
        a = make_trainer(tiny_reordered, alpha=0.0, seed=7)
        b = make_trainer(tiny_reordered, alpha=0.5, seed=7)
        ra = a.train(2)
        rb = b.train(2)
        for ea, eb in zip(ra, rb):
            assert ea.mean_loss == pytest.approx(eb.mean_loss, abs=0.0)

    def test_gpu_fraction_never_changes_training(self, tiny_reordered):
        a = make_trainer(tiny_reordered, gpu_fraction=0.0, seed=3)
        b = make_trainer(tiny_reordered, gpu_fraction=1.0, seed=3)
        assert a.train(1)[0].mean_loss == pytest.approx(b.train(1)[0].mean_loss, abs=0.0)

    def test_caching_reduces_remote_rows(self, tiny_reordered):
        a = make_trainer(tiny_reordered, alpha=0.0, seed=1)
        b = make_trainer(tiny_reordered, alpha=0.5, seed=1)
        ra = a.train_epoch(0, dry_run=True)
        rb = b.train_epoch(0, dry_run=True)
        assert rb.total_remote_rows() < ra.total_remote_rows()
        assert rb.total_cached_rows() > 0


class TestDryRun:
    def test_dry_run_records_same_volumes(self, tiny_reordered):
        a = make_trainer(tiny_reordered, seed=11)
        b = make_trainer(tiny_reordered, seed=11)
        real = a.train_epoch(0, dry_run=False)
        dry = b.train_epoch(0, dry_run=True)
        assert dry.mean_loss is None
        for r1, r2 in zip(real.records, dry.records):
            assert r1.mfg_vertices == r2.mfg_vertices
            assert r1.gather.remote_rows == r2.gather.remote_rows
            assert r1.candidate_edges == r2.candidate_edges

    def test_ledger_volumes_match_stats(self, tiny_reordered):
        tr = make_trainer(tiny_reordered)
        rep = tr.train_epoch(0, dry_run=True)
        total_remote = sum(r.gather.remote_rows for r in rep.records)
        assert rep.ledger.total_feature_bytes() == total_remote * tr.store.bytes_per_row

    def test_flops_positive_and_scale(self, tiny_reordered):
        tr = make_trainer(tiny_reordered)
        rep = tr.train_epoch(0, dry_run=True)
        rec = rep.records[0]
        f1 = rec.flops(16, 16, 4)
        f2 = rec.flops(16, 64, 4)
        assert 0 < f1 < f2
