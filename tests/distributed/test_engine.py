"""Execution-engine tests: gather plan/execute parity, coalescing, and the
bsp / pipelined / async schedule semantics.

The anchor is *parity with the seed*: ``execute(plan_gather(...))`` must be
indistinguishable from the pre-split monolithic ``gather`` (reimplemented
inline here as the frozen reference), and the ``bsp`` engine must reproduce
the pre-refactor trainer's :class:`EpochReport` exactly — same losses, same
volumes, same ledger bytes under the same seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import (
    ENGINES,
    DistributedTrainer,
    FetchPlan,
    PartitionedFeatureStore,
    make_engine,
)
from repro.distributed.comm import CommLedger, all_reduce_gradients
from repro.distributed.dynamic_cache import DynamicCacheSpec
from repro.distributed.feature_store import GatherStats
from repro.graph.datasets import make_synthetic_dataset
from repro.nn.functional import cross_entropy
from repro.partition import metis_like_partition, reorder_dataset
from repro.pipeline.events import Stage
from repro.utils.rng import derive_seed
from repro.vip import CacheContext, VIPAnalyticPolicy, build_caches


# ----------------------------------------------------------------------
# Shared substrate: a dataset big enough for several steps per machine
# (the tiny fixture yields one step, which cannot exercise coalescing).

@pytest.fixture(scope="module")
def multi_step_reordered():
    ds = make_synthetic_dataset(
        "engine-mini", num_vertices=3000, avg_degree=8.0, feature_dim=16,
        num_classes=6, num_communities=8, intra_fraction=0.9, power=2.5,
        train_frac=0.4, seed=3,
    )
    part = metis_like_partition(ds.graph, 4, seed=0)
    return reorder_dataset(ds, part)


def make_store(rd, alpha=0.0, gpu_fraction=0.0, dynamic=None):
    caches = None
    if alpha > 0:
        ctx = CacheContext(rd.dataset.graph, rd.partition, rd.dataset.train_idx,
                           (5, 4), 32, seed=0)
        caches = build_caches(VIPAnalyticPolicy(), ctx, alpha=alpha)
    return PartitionedFeatureStore.build(
        rd, gpu_fraction=gpu_fraction, caches=caches, dynamic=dynamic,
    )


def make_trainer(rd, engine="bsp", seed=0, **kw):
    store_kw = {k: kw.pop(k) for k in ("alpha", "gpu_fraction", "dynamic")
                if k in kw}
    store = make_store(rd, **store_kw)
    return DistributedTrainer(rd, store, fanouts=(5, 4), batch_size=32,
                              hidden_dim=16, lr=0.01, seed=seed,
                              engine=engine, **kw)


def reference_gather(store: PartitionedFeatureStore, machine: int,
                     ids: np.ndarray):
    """The seed repo's monolithic gather, frozen as the parity reference
    (classification inline, stats taken before any cache maintenance)."""
    ids = np.asarray(ids, dtype=np.int64)
    ms = store.stores[machine]
    out = np.empty((len(ids), store.feature_dim), dtype=ms.local_features.dtype)

    local_mask = ms.is_local(ids)
    local_ids = ids[local_mask]
    out[local_mask] = ms.local_rows(local_ids)
    gpu_rows = int(np.count_nonzero(local_ids - ms.lo < ms.gpu_rows))

    nonlocal_mask = ~local_mask
    nl_ids = ids[nonlocal_mask]
    cached_mask_nl = ms.is_cached(nl_ids)
    cached_ids = nl_ids[cached_mask_nl]
    out[np.flatnonzero(nonlocal_mask)[cached_mask_nl]] = ms.cached_rows(cached_ids)

    remote_pos = np.flatnonzero(nonlocal_mask)[~cached_mask_nl]
    remote_ids = nl_ids[~cached_mask_nl]
    remote_rows, remote_per_peer = store._fetch_remote_rows(machine, remote_ids)
    out[remote_pos] = remote_rows

    stats = GatherStats(
        total_rows=len(ids), gpu_rows=gpu_rows,
        cpu_rows=len(local_ids) - gpu_rows,
        cached_rows=len(cached_ids), remote_rows=len(remote_ids),
        remote_per_peer=remote_per_peer,
    )
    if ms.has_dynamic_cache:
        store._maintain_dynamic_cache(ms, stats, cached_ids, remote_ids, out,
                                      remote_pos, nl_ids)
    return out, stats


def assert_stats_equal(a: GatherStats, b: GatherStats):
    assert (a.total_rows, a.gpu_rows, a.cpu_rows, a.cached_rows,
            a.remote_rows, a.cache_insertions, a.cache_evictions,
            a.coalesced_rows) == \
           (b.total_rows, b.gpu_rows, b.cpu_rows, b.cached_rows,
            b.remote_rows, b.cache_insertions, b.cache_evictions,
            b.coalesced_rows)
    assert np.array_equal(a.remote_per_peer, b.remote_per_peer)
    if a.refresh_fetch_per_peer is None:
        assert b.refresh_fetch_per_peer is None
    else:
        assert np.array_equal(a.refresh_fetch_per_peer, b.refresh_fetch_per_peer)


# ----------------------------------------------------------------------
class TestPlanExecuteParity:
    """execute(plan_gather(...)) ≡ the seed gather, property-tested."""

    @given(
        machine=st.integers(0, 3),
        alpha=st.sampled_from([0.0, 0.1, 0.3]),
        gpu_fraction=st.sampled_from([0.0, 0.5, 1.0]),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_static_store_parity(self, multi_step_reordered, machine, alpha,
                                 gpu_fraction, seed):
        rd = multi_step_reordered
        store = make_store(rd, alpha=alpha, gpu_fraction=gpu_fraction)
        rng = np.random.default_rng(seed)
        n = rd.dataset.num_vertices
        ids = rng.choice(n, size=rng.integers(1, 400), replace=False)
        feats, stats = store.execute(store.plan_gather(machine, ids))
        ref_feats, ref_stats = reference_gather(store, machine, ids)
        assert np.array_equal(feats, ref_feats)
        assert np.array_equal(feats, rd.dataset.features[ids])
        assert_stats_equal(stats, ref_stats)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_dynamic_store_parity(self, multi_step_reordered, seed):
        """Parity must hold through a *sequence* of gathers on dynamic
        caches (admissions/evictions change the state between requests)."""
        rd = multi_step_reordered
        spec = DynamicCacheSpec(policy="lru", capacity=80)
        store_a = make_store(rd, alpha=0.1, dynamic=spec)
        store_b = make_store(rd, alpha=0.1, dynamic=spec)
        rng = np.random.default_rng(seed)
        n = rd.dataset.num_vertices
        for _ in range(4):
            machine = int(rng.integers(0, 4))
            ids = rng.choice(n, size=int(rng.integers(1, 300)), replace=False)
            feats, stats = store_a.execute(store_a.plan_gather(machine, ids))
            ref_feats, ref_stats = reference_gather(store_b, machine, ids)
            assert np.array_equal(feats, ref_feats)
            assert_stats_equal(stats, ref_stats)

    def test_gather_is_plan_execute(self, multi_step_reordered):
        rd = multi_step_reordered
        s1, s2 = make_store(rd, alpha=0.2), make_store(rd, alpha=0.2)
        ids = np.arange(0, rd.dataset.num_vertices, 7)
        f1, st1 = s1.gather(0, ids)
        f2, st2 = s2.execute(s2.plan_gather(0, ids))
        assert np.array_equal(f1, f2)
        assert_stats_equal(st1, st2)

    def test_plan_is_pure(self, multi_step_reordered):
        """Planning moves no bytes and never mutates a dynamic cache."""
        rd = multi_step_reordered
        store = make_store(rd, alpha=0.1,
                           dynamic=DynamicCacheSpec(policy="lfu", capacity=100))
        before = [s.cache_ids.copy() for s in store.stores]
        for machine in range(4):
            store.plan_gather(machine, np.arange(0, rd.dataset.num_vertices, 5))
        for prev, s in zip(before, store.stores):
            assert np.array_equal(prev, s.cache_ids)


class TestCoalescing:
    @given(
        machine=st.integers(0, 3),
        depth=st.integers(2, 6),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_coalesced_features_and_accounting(self, multi_step_reordered,
                                               machine, depth, seed):
        rd = multi_step_reordered
        store = make_store(rd, alpha=0.1)
        rng = np.random.default_rng(seed)
        n = rd.dataset.num_vertices
        id_sets = [rng.choice(n, size=int(rng.integers(50, 300)), replace=False)
                   for _ in range(depth)]
        plans = [store.plan_gather(machine, ids) for ids in id_sets]
        cplan = FetchPlan.coalesce(plans)
        results = store.execute_coalesced(cplan)
        unique_remote = len(np.unique(np.concatenate(
            [p.remote_ids for p in plans])))
        total_remote = sum(s.remote_rows for _, s in results)
        total_coalesced = sum(s.coalesced_rows for _, s in results)
        # Features: bit-identical to direct monolithic indexing.
        for ids, (feats, _) in zip(id_sets, results):
            assert np.array_equal(feats, rd.dataset.features[ids])
        # Accounting: wire rows = deduplicated union; nothing lost.
        assert total_remote == unique_remote
        assert total_remote + total_coalesced == sum(
            len(p.remote_ids) for p in plans)
        assert cplan.duplicate_rows() == total_coalesced
        # Per-plan invariants: categories partition the request.
        for p, (_, s) in zip(plans, results):
            assert (s.gpu_rows + s.cpu_rows + s.cached_rows + s.remote_rows
                    + s.coalesced_rows) == s.total_rows == len(p.ids)

    def test_coalesce_rejects_mixed_machines(self, multi_step_reordered):
        rd = multi_step_reordered
        store = make_store(rd)
        ids = np.arange(0, 100)
        with pytest.raises(ValueError, match="one machine"):
            FetchPlan.coalesce([store.plan_gather(0, ids),
                                store.plan_gather(1, ids)])
        with pytest.raises(ValueError, match="empty"):
            FetchPlan.coalesce([])


# ----------------------------------------------------------------------
def seed_trainer_epoch(tr: DistributedTrainer, epoch: int):
    """The pre-refactor trainer loop, frozen as the bsp parity reference
    (gather, train, all-reduce per step; same seed derivations)."""
    steps = tr.steps_per_epoch()
    ledger = CommLedger(tr.num_machines)
    iterators = [
        tr.samplers[k].batches(
            tr.local_train[k], tr.batch_size, drop_last=True, epoch=epoch,
            seed=derive_seed(tr.seed, "order", k),
        )
        for k in range(tr.num_machines)
    ]
    losses, volumes = [], []
    for _step in range(steps):
        for k in range(tr.num_machines):
            mfg = next(iterators[k])
            feats, stats = tr.store.gather(k, mfg.n_id)
            ledger.record_feature_fetch(k, stats.remote_per_peer,
                                        tr.store.bytes_per_row)
            if stats.refresh_fetch_per_peer is not None:
                ledger.record_feature_fetch(k, stats.refresh_fetch_per_peer,
                                            tr.store.bytes_per_row)
            model = tr.models[k]
            model.train()
            logits = model(feats, mfg)
            loss = cross_entropy(logits, tr.ds.labels[mfg.seeds])
            model.zero_grad()
            loss.backward()
            losses.append(loss.item())
            volumes.append((mfg.num_vertices, stats.remote_rows,
                            stats.cached_rows))
        all_reduce_gradients(tr.models, ledger)
        for opt in tr.optimizers:
            opt.step()
    return losses, volumes, ledger


class TestBSPParity:
    @pytest.mark.parametrize("alpha,dynamic", [
        (0.0, None),
        (0.2, None),
        (0.1, DynamicCacheSpec(policy="lru", capacity=100)),
    ])
    def test_bsp_matches_seed_trainer(self, multi_step_reordered, alpha, dynamic):
        """Same seeds → same losses, volumes, and ledger bytes as the
        pre-refactor lock-step loop."""
        rd = multi_step_reordered
        ref = make_trainer(rd, engine="bsp", alpha=alpha, dynamic=dynamic, seed=7)
        new = make_trainer(rd, engine="bsp", alpha=alpha, dynamic=dynamic, seed=7)
        for epoch in range(2):
            ref_losses, ref_vols, ref_ledger = seed_trainer_epoch(ref, epoch)
            rep = new.train_epoch(epoch)
            assert [r.loss for r in rep.records] == ref_losses
            assert [(r.mfg_vertices, r.gather.remote_rows, r.gather.cached_rows)
                    for r in rep.records] == ref_vols
            assert np.array_equal(rep.ledger.feature_bytes,
                                  ref_ledger.feature_bytes)
            assert np.array_equal(rep.ledger.request_bytes,
                                  ref_ledger.request_bytes)
            assert np.array_equal(rep.ledger.gradient_bytes,
                                  ref_ledger.gradient_bytes)
            assert rep.mean_loss == pytest.approx(float(np.mean(ref_losses)),
                                                  abs=0.0)

    def test_bsp_emits_per_step_trace(self, multi_step_reordered):
        rep = make_trainer(multi_step_reordered).train_epoch(0, dry_run=True)
        trace = rep.events
        assert trace is not None and trace.engine == "bsp"
        assert trace.windows == [(s, s + 1) for s in range(rep.steps_per_machine)]
        assert trace.allreduce_steps == list(range(rep.steps_per_machine))


class TestPipelinedEngine:
    def test_losses_match_bsp_exactly(self, multi_step_reordered):
        rd = multi_step_reordered
        bsp = make_trainer(rd, engine="bsp", alpha=0.1, seed=5)
        pipe = make_trainer(rd, engine="pipelined", pipeline_depth=4,
                            alpha=0.1, seed=5)
        for epoch in range(2):
            rb, rp = bsp.train_epoch(epoch), pipe.train_epoch(epoch)
            assert [r.loss for r in rb.records] == [r.loss for r in rp.records]
            assert rb.mean_loss == rp.mean_loss

    def test_coalescing_reduces_remote_rows(self, multi_step_reordered):
        rd = multi_step_reordered
        rb = make_trainer(rd, engine="bsp").train_epoch(0, dry_run=True)
        rp = make_trainer(rd, engine="pipelined",
                          pipeline_depth=4).train_epoch(0, dry_run=True)
        assert rp.total_remote_rows() < rb.total_remote_rows()
        assert rp.total_coalesced_rows() > 0
        assert (rp.total_remote_rows() + rp.total_coalesced_rows()
                == rb.total_remote_rows())
        assert (rp.ledger.total_feature_bytes()
                < rb.ledger.total_feature_bytes())

    def test_depth_one_degenerates_to_bsp_volumes(self, multi_step_reordered):
        rd = multi_step_reordered
        rb = make_trainer(rd, engine="bsp").train_epoch(0, dry_run=True)
        rp = make_trainer(rd, engine="pipelined",
                          pipeline_depth=1).train_epoch(0, dry_run=True)
        assert rp.total_remote_rows() == rb.total_remote_rows()
        assert rp.total_coalesced_rows() == 0

    def test_windowed_trace(self, multi_step_reordered):
        rd = multi_step_reordered
        rp = make_trainer(rd, engine="pipelined",
                          pipeline_depth=4).train_epoch(0, dry_run=True)
        steps = rp.steps_per_machine
        expected = [(w, min(w + 4, steps)) for w in range(0, steps, 4)]
        assert rp.events.windows == expected


class TestAsyncEngine:
    def test_loss_decreases_and_resyncs(self, multi_step_reordered):
        tr = make_trainer(multi_step_reordered, engine="async", staleness=3)
        reports = tr.train(3)
        assert reports[-1].mean_loss < reports[0].mean_loss
        assert tr.models_in_sync()  # epoch end always re-converges

    def test_allreduce_events_thin_out(self, multi_step_reordered):
        rd = multi_step_reordered
        ra = make_trainer(rd, engine="async",
                          staleness=3).train_epoch(0, dry_run=True)
        rb = make_trainer(rd, engine="bsp").train_epoch(0, dry_run=True)
        steps = rb.steps_per_machine
        assert len(rb.events.allreduce_steps) == steps
        assert len(ra.events.allreduce_steps) < steps
        assert ra.events.allreduce_steps[-1] == steps - 1
        n_ar = sum(1 for ev in ra.events.events if ev.stage is Stage.ALLREDUCE)
        assert n_ar == len(ra.events.allreduce_steps)

    def test_staleness_zero_syncs_every_step(self, multi_step_reordered):
        ra = make_trainer(multi_step_reordered, engine="async",
                          staleness=0).train_epoch(0, dry_run=True)
        assert ra.events.allreduce_steps == list(range(ra.steps_per_machine))


class TestEngineRegistry:
    def test_registered_names(self):
        assert {"bsp", "pipelined", "async"} <= set(ENGINES.names())

    def test_unknown_engine_raises_with_names(self, multi_step_reordered):
        with pytest.raises(ValueError, match="bsp"):
            make_trainer(multi_step_reordered, engine="warp-speed")

    def test_make_engine_routes_knobs(self, multi_step_reordered):
        tr = make_trainer(multi_step_reordered)
        eng = make_engine("pipelined", tr, pipeline_depth=7)
        assert eng.depth == 7
        eng = make_engine("async", tr, staleness=5)
        assert eng.staleness == 5

    def test_bad_knobs_raise(self, multi_step_reordered):
        tr = make_trainer(multi_step_reordered)
        with pytest.raises(ValueError, match="depth"):
            make_engine("pipelined", tr, pipeline_depth=0)
        with pytest.raises(ValueError, match="staleness"):
            make_engine("async", tr, staleness=-1)
