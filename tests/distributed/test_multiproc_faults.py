"""Fault injection and resource hygiene for the multiproc backend.

A worker hard-killed mid-epoch must surface as a clean
:class:`WorkerFailedError` naming the machine, after which the backend is
fully torn down: every worker process dead, every pipe closed, every
shared-memory segment unlinked, and further ``run_epoch`` calls refused.
Normal shutdown must leave the same nothing behind — including no
``resource_tracker`` "leaked shared_memory" noise at interpreter exit.
"""

import os
import subprocess
import sys
from multiprocessing import shared_memory

import pytest

from repro.core import RunConfig, SalientPP
from repro.distributed import MultiprocBackend, WorkerFailedError
from repro.graph.datasets import make_tiny


def _build_system():
    ds = make_tiny(seed=3, num_vertices=2000)
    cfg = RunConfig(
        num_machines=2,
        fanouts=(4, 3),
        batch_size=16,
        hidden_dim=16,
        replication_factor=0.05,
        gpu_fraction=0.5,
        seed=0,
    )
    return SalientPP.build(ds, cfg)


def _assert_fully_torn_down(backend):
    assert not backend.is_live
    assert all(not p.is_alive() for p in backend.processes)
    for name in backend.segment_names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        assert not os.path.exists(f"/dev/shm/{name}")


def test_worker_killed_mid_epoch_raises_and_tears_down():
    system = _build_system()
    backend = MultiprocBackend(system, timeout_s=30.0,
                               fault_injection={1: (0, 2)})
    with pytest.raises(WorkerFailedError) as excinfo:
        backend.run_epoch(0)
    assert excinfo.value.machine == 1
    assert "worker 1" in str(excinfo.value)
    _assert_fully_torn_down(backend)
    # The backend is spent: it refuses to run again rather than hang on
    # dead pipes.
    with pytest.raises(RuntimeError, match="closed"):
        backend.run_epoch(1)


def test_external_kill_between_epochs():
    system = _build_system()
    backend = MultiprocBackend(system, timeout_s=30.0)
    report = backend.run_epoch(0)
    assert report.mean_loss is not None
    backend.processes[0].kill()
    with pytest.raises(WorkerFailedError) as excinfo:
        backend.run_epoch(1)
    assert excinfo.value.machine == 0
    _assert_fully_torn_down(backend)


def test_clean_shutdown_leaves_nothing_behind():
    system = _build_system()
    backend = MultiprocBackend(system, timeout_s=30.0)
    backend.run_epoch(0)
    assert backend.is_live
    # feat0, feat1 + graph (indptr/indices) + labels + gradient plane
    assert len(backend.segment_names) == 2 + 3 + 1
    names = list(backend.segment_names)
    backend.close()
    backend.close()  # idempotent
    assert not backend.is_live
    assert all(not p.is_alive() for p in backend.processes)
    for name in names:
        assert not os.path.exists(f"/dev/shm/{name}")


def test_system_context_manager_shuts_down_backend():
    import dataclasses

    ds = make_tiny(seed=3, num_vertices=2000)
    cfg = RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16,
                    hidden_dim=16, replication_factor=0.05, gpu_fraction=0.5)
    with SalientPP.build(ds, dataclasses.replace(cfg, backend="multiproc")) as system:
        system.train_epoch(0)
        backend = system.backend()
        assert backend.is_live
    _assert_fully_torn_down(backend)


def test_training_set_swap_refused_while_live():
    system = _build_system()
    backend = MultiprocBackend(system, timeout_s=30.0)
    system._backend = backend
    backend.run_epoch(0)
    train_idx = system.trainer.ds.train_idx
    try:
        with pytest.raises(RuntimeError, match="live cluster backend"):
            system.update_training_set(train_idx)
    finally:
        system.shutdown()
    # After shutdown the swap is allowed again.
    system.update_training_set(train_idx)


_TRACKER_SCRIPT = """
import dataclasses
from repro.core import RunConfig, SalientPP
from repro.graph.datasets import make_tiny

ds = make_tiny(seed=3, num_vertices=1500)
cfg = RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16, hidden_dim=16,
                replication_factor=0.05, gpu_fraction=0.5, backend="multiproc")
with SalientPP.build(ds, cfg) as system:
    report = system.train_epoch(0).report
    assert report.mean_loss is not None
print("OK")
"""


def test_no_resource_tracker_leak_warnings():
    # Run a full epoch + shutdown in a fresh interpreter: at exit, the
    # multiprocessing resource tracker prints (and KeyErrors) on any
    # segment whose register/unregister accounting went wrong.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath("src")
    proc = subprocess.run(
        [sys.executable, "-c", _TRACKER_SCRIPT],
        capture_output=True, text=True, timeout=300, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
    )
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout
    assert "leaked" not in proc.stderr, proc.stderr
    assert "KeyError" not in proc.stderr, proc.stderr
    assert "Traceback" not in proc.stderr, proc.stderr
