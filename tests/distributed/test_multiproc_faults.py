"""Fault injection and resource hygiene for the multiproc backend.

A worker hard-killed mid-epoch must surface as a clean
:class:`WorkerFailedError` naming the machine, after which the backend is
fully torn down: every worker process dead, every pipe closed, every
shared-memory segment unlinked, and further ``run_epoch`` calls refused.
Normal shutdown must leave the same nothing behind — including no
``resource_tracker`` "leaked shared_memory" noise at interpreter exit.
"""

import os
import subprocess
import sys
import time
from multiprocessing import shared_memory

import pytest

from repro.core import RunConfig, SalientPP
from repro.distributed import FaultPlan, MultiprocBackend, WorkerFailedError
from repro.distributed.multiproc import WORKER_POOL
from repro.graph.datasets import make_tiny


def _build_system():
    ds = make_tiny(seed=3, num_vertices=2000)
    cfg = RunConfig(
        num_machines=2,
        fanouts=(4, 3),
        batch_size=16,
        hidden_dim=16,
        replication_factor=0.05,
        gpu_fraction=0.5,
        seed=0,
    )
    return SalientPP.build(ds, cfg)


def _assert_fully_torn_down(backend):
    assert not backend.is_live
    assert all(not p.is_alive() for p in backend.processes)
    for name in backend.segment_names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        assert not os.path.exists(f"/dev/shm/{name}")


def test_worker_killed_mid_epoch_raises_and_tears_down():
    system = _build_system()
    backend = MultiprocBackend(system, timeout_s=30.0,
                               fault_injection={1: (0, 2)})
    with pytest.raises(WorkerFailedError) as excinfo:
        backend.run_epoch(0)
    assert excinfo.value.machine == 1
    assert "worker 1" in str(excinfo.value)
    _assert_fully_torn_down(backend)
    # The backend is spent: it refuses to run again rather than hang on
    # dead pipes.
    with pytest.raises(RuntimeError, match="closed"):
        backend.run_epoch(1)


def test_external_kill_between_epochs():
    system = _build_system()
    backend = MultiprocBackend(system, timeout_s=30.0)
    report = backend.run_epoch(0)
    assert report.mean_loss is not None
    backend.processes[0].kill()
    with pytest.raises(WorkerFailedError) as excinfo:
        backend.run_epoch(1)
    assert excinfo.value.machine == 0
    _assert_fully_torn_down(backend)


def test_clean_shutdown_leaves_nothing_behind():
    system = _build_system()
    backend = MultiprocBackend(system, timeout_s=30.0)
    backend.run_epoch(0)
    assert backend.is_live
    # feat0, feat1 + graph (indptr/indices) + labels + gradient plane
    assert len(backend.segment_names) == 2 + 3 + 1
    names = list(backend.segment_names)
    backend.close()
    backend.close()  # idempotent
    assert not backend.is_live
    assert all(not p.is_alive() for p in backend.processes)
    for name in names:
        assert not os.path.exists(f"/dev/shm/{name}")


def test_system_context_manager_shuts_down_backend():
    import dataclasses

    ds = make_tiny(seed=3, num_vertices=2000)
    cfg = RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16,
                    hidden_dim=16, replication_factor=0.05, gpu_fraction=0.5)
    with SalientPP.build(ds, dataclasses.replace(cfg, backend="multiproc")) as system:
        system.train_epoch(0)
        backend = system.backend()
        assert backend.is_live
    _assert_fully_torn_down(backend)


def test_training_set_swap_refused_while_live():
    system = _build_system()
    backend = MultiprocBackend(system, timeout_s=30.0)
    system._backend = backend
    backend.run_epoch(0)
    train_idx = system.trainer.ds.train_idx
    try:
        with pytest.raises(RuntimeError, match="live cluster backend"):
            system.update_training_set(train_idx)
    finally:
        system.shutdown()
    # After shutdown the swap is allowed again.
    system.update_training_set(train_idx)


def test_hang_detected_within_receive_deadline():
    # A worker sleeping past timeout_s must be detected by the receive
    # deadline — within roughly one pump interval of it, not the hang
    # duration — attributed to the right machine, and the sleeping process
    # reaped at teardown (no orphan survives a 120 s nap).
    system = _build_system()
    backend = MultiprocBackend(
        system, timeout_s=2.0,
        faults=FaultPlan.single("hang", machine=1, epoch=0, step=1,
                                duration_s=120.0))
    t0 = time.monotonic()
    with pytest.raises(WorkerFailedError) as excinfo:
        backend.run_epoch(0)
    elapsed = time.monotonic() - t0
    assert excinfo.value.machine == 1
    assert "no message" in str(excinfo.value)
    # Budget: epoch work before the hang + the 2 s deadline + one ~1 s
    # pump interval + teardown (terminate, not the full join escalation).
    assert elapsed < 10.0, f"hang took {elapsed:.1f}s to surface"
    _assert_fully_torn_down(backend)


# ----------------------------------------------------------------------
# warm-pool lifecycle
# ----------------------------------------------------------------------

def _park_clusters(n):
    """Park ``n`` clean same-fingerprint clusters; returns the pool key
    and the parked worker pids.  The backends run concurrently — a closed
    backend's parked cluster would otherwise just be re-acquired (and
    re-parked) by the next one."""
    backends = []
    for _ in range(n):
        backend = MultiprocBackend(_build_system(), timeout_s=30.0,
                                   keep_warm=True)
        backend.run_epoch(0)
        backends.append(backend)
    key = backends[0]._pool_key
    for backend in backends:
        assert backend._pool_key == key
        backend.close()
    pids = {proc.pid for workers in WORKER_POOL._clusters.get(key, [])
            for proc, _conn in workers}
    return key, pids


def test_faulted_unrecovered_cluster_never_parked():
    before = WORKER_POOL.num_parked
    backend = MultiprocBackend(
        _build_system(), timeout_s=30.0, keep_warm=True, recoverable=True,
        faults=FaultPlan.single("kill", machine=1, epoch=0, step=1))
    with pytest.raises(WorkerFailedError):
        backend.run_epoch(0)
    backend.close()  # faulted, unrecovered: torn down, never parked
    assert WORKER_POOL.num_parked == before
    _assert_fully_torn_down(backend)


def test_unfired_fault_plan_is_never_parked():
    before = WORKER_POOL.num_parked
    backend = MultiprocBackend(
        _build_system(), timeout_s=30.0, keep_warm=True,
        faults=FaultPlan.single("kill", machine=1, epoch=7, step=0))
    backend.run_epoch(0)  # the scheduled fault never fires
    backend.close()
    # A worker still holding an unfired fault schedule must not reenter
    # the generic pool.
    assert WORKER_POOL.num_parked == before
    _assert_fully_torn_down(backend)


def test_recovered_then_clean_cluster_parks():
    try:
        before = WORKER_POOL.num_parked
        backend = MultiprocBackend(
            _build_system(), timeout_s=30.0, keep_warm=True,
            recoverable=True,
            faults=FaultPlan.single("kill", machine=1, epoch=0, step=1))
        with pytest.raises(WorkerFailedError):
            backend.run_epoch(0)
        backend.recover(None)
        report = backend.run_epoch(0)  # replay, fault schedule cleared
        assert report.mean_loss is not None
        backend.close()
        # Recovered and idle: as parkable as any clean cluster (the
        # replacement rank was bound with an empty fault schedule).
        assert WORKER_POOL.num_parked == before + 2
    finally:
        WORKER_POOL.clear()


def test_recovery_prefers_warm_spares():
    try:
        _key, parked_pids = _park_clusters(2)
        assert len(parked_pids) == 4  # two K=2 clusters
        backend = MultiprocBackend(
            _build_system(), timeout_s=30.0, recoverable=True,
            faults=FaultPlan.single("kill", machine=1, epoch=0, step=1))
        with pytest.raises(WorkerFailedError):
            backend.run_epoch(0)
        assert backend.reused_pool  # started on the first parked cluster
        recovered_before = backend.processes[1].pid
        assert backend.recover(None) == 1
        replacement = backend.processes[1].pid
        assert replacement != recovered_before
        # The replacement came from the second parked cluster, not a fresh
        # spawn.
        assert replacement in parked_pids
        report = backend.run_epoch(0)
        assert report.mean_loss is not None
        backend.close()
        _assert_fully_torn_down(backend)
    finally:
        WORKER_POOL.clear()


_TRACKER_SCRIPT = """
import dataclasses
from repro.core import RunConfig, SalientPP
from repro.graph.datasets import make_tiny

ds = make_tiny(seed=3, num_vertices=1500)
cfg = RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16, hidden_dim=16,
                replication_factor=0.05, gpu_fraction=0.5, backend="multiproc")
with SalientPP.build(ds, cfg) as system:
    report = system.train_epoch(0).report
    assert report.mean_loss is not None
print("OK")
"""


def test_no_resource_tracker_leak_warnings():
    # Run a full epoch + shutdown in a fresh interpreter: at exit, the
    # multiprocessing resource tracker prints (and KeyErrors) on any
    # segment whose register/unregister accounting went wrong.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath("src")
    proc = subprocess.run(
        [sys.executable, "-c", _TRACKER_SCRIPT],
        capture_output=True, text=True, timeout=300, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
    )
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout
    assert "leaked" not in proc.stderr, proc.stderr
    assert "KeyError" not in proc.stderr, proc.stderr
    assert "Traceback" not in proc.stderr, proc.stderr
