"""Collective-communication tests."""

import numpy as np
import pytest

from repro.distributed import CommLedger, all_reduce_gradients, broadcast_state, gradient_nbytes
from repro.nn import Linear


def make_replicas(k=3):
    models = [Linear(4, 2, seed=i) for i in range(k)]
    broadcast_state(models)
    return models


class TestAllReduce:
    def test_averages_gradients(self):
        models = make_replicas(3)
        for i, m in enumerate(models):
            m.weight.grad = np.full((4, 2), float(i))
            m.bias.grad = np.full(2, float(i))
        all_reduce_gradients(models)
        for m in models:
            assert np.allclose(m.weight.grad, 1.0)
            assert np.allclose(m.bias.grad, 1.0)

    def test_missing_grads_count_as_zero(self):
        models = make_replicas(2)
        models[0].weight.grad = np.ones((4, 2))
        models[0].bias.grad = np.ones(2)
        # models[1] has no grads.
        all_reduce_gradients(models)
        assert np.allclose(models[1].weight.grad, 0.5)

    def test_records_wire_bytes(self):
        models = make_replicas(4)
        for m in models:
            m.weight.grad = np.ones((4, 2))
            m.bias.grad = np.ones(2)
        ledger = CommLedger(4)
        all_reduce_gradients(models, ledger)
        expect = 2.0 * 3 / 4 * gradient_nbytes(models[0])
        assert np.allclose(ledger.gradient_bytes, expect)

    def test_mismatched_models_raise(self):
        with pytest.raises(ValueError, match="mismatch"):
            all_reduce_gradients([Linear(4, 2, seed=0), Linear(4, 3, seed=0)])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            all_reduce_gradients([])


class TestBroadcast:
    def test_broadcast_synchronizes(self):
        models = [Linear(4, 2, seed=i) for i in range(3)]
        broadcast_state(models, source=1)
        for m in models:
            assert np.allclose(m.weight.data, models[1].weight.data)


class TestLedger:
    def test_feature_fetch_accounting(self):
        ledger = CommLedger(3)
        ledger.record_feature_fetch(0, np.array([0, 5, 3]), bytes_per_row=100)
        assert ledger.feature_bytes[0, 1] == 500
        assert ledger.feature_bytes[0, 2] == 300
        assert ledger.request_bytes[0, 1] == 40
        assert ledger.total_feature_bytes() == 800

    def test_merged(self):
        a, b = CommLedger(2), CommLedger(2)
        a.record_feature_fetch(0, np.array([0, 2]), 10)
        b.record_feature_fetch(1, np.array([3, 0]), 10)
        m = a.merged(b)
        assert m.total_feature_bytes() == 50
        assert m.total_bytes() > m.total_feature_bytes()
