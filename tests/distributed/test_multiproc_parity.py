"""Differential parity: the multiproc backend vs the in-process oracle.

The in-process trainer *is* the semantics; the multiproc backend (one real
worker process per machine, shared-memory feature segments, wire-format
plans) must reproduce it bit-for-bit.  These tests build the same system
twice — ``backend="inprocess"`` and ``backend="multiproc"`` — on a
papers-mini graph with K=4 machines and demand exact equality of per-step
losses, communication ledgers, stage-event trace shapes, and simulated
epoch times, for the bsp engine and for the pipelined engine at depths
1 and 4.

Preprocessing (partition, VIP, reorder, caches) is shared through one
:class:`Planner`: ``backend`` appears in no stage fingerprint, so both
variants literally train over the same store contents.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import Planner, RunConfig, SalientPP
from repro.graph.datasets import make_papers_mini
from repro.pipeline import assert_trace_shape_equal
from repro.utils.rng import machine_stream_seed

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

K = 4


def _config(**overrides) -> RunConfig:
    base = dict(
        num_machines=K,
        fanouts=(4, 3),
        batch_size=32,
        hidden_dim=16,
        replication_factor=0.05,
        gpu_fraction=0.5,
        seed=0,
    )
    base.update(overrides)
    return RunConfig(**base)


@pytest.fixture(scope="module")
def papers_mini():
    return make_papers_mini(seed=1, scale=0.04)


@pytest.fixture(scope="module")
def planner():
    # One planner for the whole module: every (inprocess, multiproc) pair
    # shares partition/VIP/reorder/cache artifacts by fingerprint.
    return Planner()


def _build_pair(dataset, planner, cfg):
    ref = SalientPP.build(dataset, cfg, planner=planner)
    mp = SalientPP.build(
        dataset, dataclasses.replace(cfg, backend="multiproc"), planner=planner
    )
    return ref, mp


def _losses(report):
    return [(r.machine, r.step, r.loss) for r in report.records]


def _assert_reports_identical(res_ref, res_mp):
    ref, mp = res_ref.report, res_mp.report
    assert _losses(mp) == _losses(ref)  # bit-identical floats, same order keys
    assert mp.mean_loss == ref.mean_loss
    assert mp.steps_per_machine == ref.steps_per_machine
    assert np.array_equal(mp.ledger.feature_bytes, ref.ledger.feature_bytes)
    assert np.array_equal(mp.ledger.request_bytes, ref.ledger.request_bytes)
    assert np.array_equal(mp.ledger.gradient_bytes, ref.ledger.gradient_bytes)
    assert mp.events is not None and ref.events is not None
    assert_trace_shape_equal(mp.events, ref.events)
    assert res_mp.epoch_time == res_ref.epoch_time


# ----------------------------------------------------------------------
# bsp
# ----------------------------------------------------------------------

def test_bsp_epochs_bit_identical(papers_mini, planner):
    ref, mp = _build_pair(papers_mini, planner, _config(engine="bsp"))
    with ref, mp:
        for epoch in range(2):
            _assert_reports_identical(
                ref.train_epoch(epoch), mp.train_epoch(epoch)
            )
        # Worker model states were loaded back into the coordinator's
        # replicas, so held-out evaluation agrees exactly too.
        assert mp.evaluate("val") == ref.evaluate("val")
    assert not mp.backend().is_live


# ----------------------------------------------------------------------
# pipelined
# ----------------------------------------------------------------------

@pytest.mark.parametrize("depth", [1, 4])
def test_pipelined_epoch_bit_identical(papers_mini, planner, depth):
    cfg = _config(engine="pipelined", pipeline_depth=depth)
    ref, mp = _build_pair(papers_mini, planner, cfg)
    with ref, mp:
        res_ref = ref.train_epoch(0)
        res_mp = mp.train_epoch(0)
        _assert_reports_identical(res_ref, res_mp)
        if depth > 1:
            # Coalescing must actually engage, identically on both sides.
            co_ref = sum(r.gather.coalesced_rows for r in res_ref.report.records)
            co_mp = sum(r.gather.coalesced_rows for r in res_mp.report.records)
            assert co_ref == co_mp > 0
        # A dry-run epoch exercises the schedule without training.
        _assert_reports_identical(
            ref.train_epoch(1, dry_run=True), mp.train_epoch(1, dry_run=True)
        )


def test_pipelined_depth1_matches_bsp_losses(papers_mini, planner):
    # With one in-flight batch the pipelined engine degenerates to bsp
    # functionally; the multiproc backend preserves that equivalence.
    bsp = SalientPP.build(papers_mini, _config(engine="bsp"), planner=planner)
    cfg = _config(engine="pipelined", pipeline_depth=1, backend="multiproc")
    pipe = SalientPP.build(papers_mini, cfg, planner=planner)
    with bsp, pipe:
        assert _losses(pipe.train_epoch(0).report) == \
            _losses(bsp.train_epoch(0).report)


# ----------------------------------------------------------------------
# sampler streams are spawn-order independent (the RNG satellite)
# ----------------------------------------------------------------------

def test_worker_seeds_depend_only_on_run_seed_and_machine(papers_mini, planner):
    ref, mp = _build_pair(papers_mini, planner, _config(engine="bsp"))
    backend = mp.backend()
    backend.start()
    try:
        tr = ref.trainer
        specs = backend.worker_specs
        # Workers receive coordinator-derived stream seeds — functions of
        # (trainer seed, stream name, machine id) only, independent of
        # spawn order, pids, or import order.
        for k, spec in enumerate(specs):
            assert spec.sampler_seed == machine_stream_seed(tr.seed, "sampler", k)
            assert spec.order_seed == machine_stream_seed(tr.seed, "order", k)
    finally:
        mp.shutdown()
        ref.shutdown()


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------

def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="backend"):
        _config(backend="carrier-pigeon").validate()


def test_multiproc_rejects_async_engine():
    with pytest.raises(ValueError, match="engine"):
        _config(backend="multiproc", engine="async").validate()


def test_multiproc_rejects_dynamic_cache_policy():
    with pytest.raises(ValueError, match="cache"):
        _config(backend="multiproc", cache_policy="lru").validate()


def test_multiproc_rejects_full_replication():
    with pytest.raises(ValueError, match="replication"):
        _config(backend="multiproc", full_replication=True).validate()


def test_backend_absent_from_stage_fingerprints():
    from repro.core.planner import STAGE_CONFIG_FIELDS

    for stage, fields in STAGE_CONFIG_FIELDS.items():
        assert "backend" not in fields, stage
