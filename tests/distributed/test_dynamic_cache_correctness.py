"""Dynamic cache tests: gather correctness across churn, policy semantics,
refresh economics, and churn accounting."""

import numpy as np
import pytest

from repro.core import RunConfig, SalientPP
from repro.distributed import (
    DynamicCache,
    DynamicCacheSpec,
    PartitionedFeatureStore,
)
from repro.vip import CacheContext, VIPAnalyticPolicy, build_caches

POLICIES = ["lru", "lfu", "clock", "vip-refresh"]


def make_cache(capacity, policy="lru", num_vertices=50, feature_dim=4, **kw):
    spec = DynamicCacheSpec(policy=policy, capacity=capacity,
                            admit_threshold=kw.pop("admit_threshold", 0),
                            **kw)
    return DynamicCache(num_vertices, feature_dim, np.float32, spec)


def rows_for(ids, feature_dim=4):
    """Deterministic fake feature rows keyed by vertex id."""
    ids = np.asarray(ids, dtype=np.int64)
    return np.repeat(ids[:, None], feature_dim, axis=1).astype(np.float32)


def access(cache, ids):
    """One batch against a bare cache: hits touch, misses admit."""
    ids = np.asarray(ids, dtype=np.int64)
    hit = cache.contains(ids)
    cache.note_hits(ids[hit])
    cache.admit(ids[~hit], rows_for(ids[~hit]))
    cache.end_batch(ids)


class TestReplacementSemantics:
    """Textbook policy behavior (admit_threshold=0: unconditional)."""

    def test_lru_evicts_least_recent(self):
        c = make_cache(2, "lru")
        access(c, [1])
        access(c, [2])
        access(c, [1])      # 2 is now least recent
        access(c, [3])
        assert set(c.ids) == {1, 3}

    def test_lfu_evicts_least_frequent(self):
        c = make_cache(2, "lfu")
        access(c, [1])
        access(c, [1])
        access(c, [1])
        access(c, [2])      # freq: 1 -> 3, 2 -> 1
        access(c, [3])      # 2 displaced despite being most recent
        assert set(c.ids) == {1, 3}

    def test_clock_second_chance(self):
        c = make_cache(2, "clock")
        access(c, [1, 2])   # both referenced
        access(c, [3])      # sweep clears both bits, evicts slot of 1
        assert 3 in set(c.ids)
        assert c.num_cached == 2

    def test_clock_hand_only_clears_swept_refs(self):
        from repro.distributed.dynamic_cache import ClockPolicy
        p = ClockPolicy(4)
        occupied = np.ones(4, dtype=bool)
        p.ref[:] = [False, True, True, True]
        v = p.victims(1, occupied)
        assert list(v) == [0]
        assert list(p.ref) == [False, True, True, True]  # query is pure
        p.note_evict(v)
        # The hand stopped right after slot 0: slots 1-3 keep their chance.
        assert list(p.ref) == [False, True, True, True]
        assert p.hand == 1

    def test_clock_gated_rejection_leaves_state_untouched(self):
        c = make_cache(2, "clock", admit_threshold=1)
        access(c, [1, 2])                 # cache full, both referenced
        for _ in range(3):
            access(c, [1, 2])             # establish frequency
        ref_before = c._policy.ref.copy()
        hand_before = c._policy.hand
        access(c, [30])                   # doorkeeper pass needs 2 sightings
        access(c, [30])                   # contest: freq 1 < established, lose
        assert set(c.ids) == {1, 2}
        assert np.array_equal(c._policy.ref, ref_before)
        assert c._policy.hand == hand_before

    def test_capacity_never_exceeded(self):
        c = make_cache(3, "lru")
        rng = np.random.default_rng(0)
        for _ in range(20):
            access(c, rng.choice(50, size=7, replace=False))
            assert c.num_cached <= 3
            c.check_invariants()

    def test_admission_doorkeeper_rejects_first_sight(self):
        c = make_cache(4, "lru", admit_threshold=1)
        access(c, [1, 2])            # never seen before: rejected
        assert c.num_cached == 0
        access(c, [1, 2])            # second sighting: admitted
        assert set(c.ids) == {1, 2}

    def test_gated_admission_protects_hot_entries(self):
        c = make_cache(1, "lfu", admit_threshold=1)
        for _ in range(5):
            access(c, [1])           # 1 becomes established
        access(c, [2])               # first sight: doorkeeper rejects
        access(c, [2])               # freq(2)=1 < freq(1)=5: gate rejects
        assert set(c.ids) == {1}

    def test_vip_refresh_never_admits_on_miss(self):
        c = make_cache(4, "vip-refresh", refresh_interval=100)
        access(c, [1, 2, 3])
        assert c.num_cached == 0
        assert c.churn.misses == 3


class TestRefresh:
    def test_full_swap_without_horizon(self):
        c = make_cache(2, "vip-refresh", refresh_interval=2)
        scores = np.zeros(50)
        scores[[7, 9]] = [0.5, 0.4]
        plan = c.plan_refresh(scores, horizon=0)
        assert set(plan.new_ids) == {7, 9}
        c.commit_refresh(plan, rows_for(plan.new_ids))
        assert set(c.ids) == {7, 9}
        assert c.churn.refreshes == 1
        assert c.churn.refresh_fetch_rows == 2

    def test_cost_aware_swap_prunes_low_gain(self):
        c = make_cache(2, "vip-refresh", refresh_interval=2, swap_margin=1.0)
        scores = np.zeros(50)
        scores[[7, 9]] = [0.5, 0.4]
        plan = c.plan_refresh(scores, horizon=0)
        c.commit_refresh(plan, rows_for(plan.new_ids))
        # New ranking barely reorders the tail: 9 -> 0.41 replaced by 11 ->
        # 0.45 saves 0.04 * 10 = 0.4 expected fetches < 1 fetch cost.
        scores2 = np.zeros(50)
        scores2[[7, 11, 9]] = [0.5, 0.45, 0.41]
        plan2 = c.plan_refresh(scores2, horizon=10)
        assert len(plan2.new_ids) == 0
        # A genuinely hot newcomer is worth the swap.
        scores3 = np.zeros(50)
        scores3[[7, 11, 9]] = [0.5, 0.9, 0.41]
        plan3 = c.plan_refresh(scores3, horizon=10)
        assert set(plan3.new_ids) == {11}
        assert set(plan3.evict_ids) == {9}

    def test_fills_into_free_slots_must_pay_off(self):
        c = make_cache(4, "vip-refresh", refresh_interval=2, swap_margin=1.0)
        scores = np.zeros(50)
        scores[[7, 9]] = [0.5, 0.05]  # 0.05 * 10 = 0.5 expected < 1 fetch
        plan = c.plan_refresh(scores, horizon=10)
        assert set(plan.new_ids) == {7}

    def test_request_refresh_forces_due(self):
        c = make_cache(2, "vip-refresh", refresh_interval=100)
        assert c.end_batch(np.array([1])) is False
        c.request_refresh()
        assert c.end_batch(np.array([1])) is True

    def test_observed_rates_unaffected_by_forced_refresh(self):
        """request_refresh must not dilute empirical per-batch rates: a
        vertex seen in every one of 3 observed batches has rate 1.0 even
        when the refresh was forced long before refresh_interval."""
        c = make_cache(2, "vip-refresh", refresh_interval=50)
        for _ in range(2):
            c.end_batch(np.array([7]))
        c.request_refresh()
        c.end_batch(np.array([7]))
        assert c.observed_scores()[7] == pytest.approx(1.0)


@pytest.fixture(scope="module")
def dynamic_setup(request):
    """Substrate shared by the store-level tests (built per policy)."""
    rd = request.getfixturevalue("tiny_reordered")
    ctx = CacheContext(rd.dataset.graph, rd.partition, rd.dataset.train_idx,
                       (5, 5), 16, seed=0)
    warm = build_caches(VIPAnalyticPolicy(), ctx, alpha=0.15)
    return rd, warm


def build_store(rd, warm, policy, **kw):
    budget = max(len(c) for c in warm)
    spec = DynamicCacheSpec(policy=policy, capacity=budget, **kw)
    return PartitionedFeatureStore.build(rd, gpu_fraction=0.4, caches=warm,
                                         dynamic=spec)


class TestGatherAcrossChurn:
    """The acceptance-critical invariant: gathers stay bit-identical to
    direct indexing and stats stay exact, no matter how the cache churns."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_bit_identical_and_exact_stats(self, dynamic_setup, policy, rng):
        rd, warm = dynamic_setup
        store = build_store(rd, warm, policy, refresh_interval=3,
                            admit_threshold=(0 if policy != "vip-refresh" else 1))
        n = rd.dataset.num_vertices
        for step in range(12):
            ids = rng.choice(n, size=120, replace=False)
            for k in range(store.num_machines):
                st = store.stores[k]
                # Snapshot the pre-gather cache state the stats must describe.
                pre_cached = st.is_cached(ids) & ~st.is_local(ids)
                feats, stats = store.gather(k, ids)
                assert np.array_equal(feats, rd.dataset.features[ids])
                assert stats.total_rows == len(ids)
                assert (stats.gpu_rows + stats.cpu_rows + stats.cached_rows
                        + stats.remote_rows) == len(ids)
                assert stats.cached_rows == int(pre_cached.sum())
                assert stats.remote_per_peer.sum() == stats.remote_rows
                assert stats.remote_per_peer[k] == 0
                st.cache.check_invariants()

    def test_insertion_and_eviction_counts_match_churn(self, dynamic_setup, rng):
        rd, warm = dynamic_setup
        store = build_store(rd, warm, "lru", admit_threshold=0)
        n = rd.dataset.num_vertices
        for _ in range(6):
            ids = rng.choice(n, size=100, replace=False)
            before = store.stores[0].cache.churn.copy()
            _, stats = store.gather(0, ids)
            delta = store.stores[0].cache.churn.delta(before)
            assert stats.cache_insertions == delta.insertions
            assert stats.cache_evictions == delta.evictions
            assert delta.hits == stats.cached_rows
            assert delta.misses == stats.remote_rows

    def test_refresh_fetch_reported_per_peer(self, dynamic_setup, rng):
        rd, warm = dynamic_setup
        store = build_store(rd, warm, "vip-refresh", refresh_interval=2,
                            swap_margin=0.0)
        # Empirical fallback scoring: counts drive the swap.
        n = rd.dataset.num_vertices
        saw_refresh = False
        for _ in range(6):
            ids = rng.choice(n, size=150, replace=False)
            _, stats = store.gather(0, ids)
            if stats.refresh_fetch_per_peer is not None:
                saw_refresh = True
                assert stats.refresh_fetch_per_peer[0] == 0  # never from self
                assert stats.refresh_fetch_rows == stats.refresh_fetch_per_peer.sum()
                assert stats.comm_rows() == stats.remote_rows + stats.refresh_fetch_rows
        assert saw_refresh
        # Refreshed contents still serve bit-identical rows.
        ids = store.stores[0].cache.ids
        if len(ids):
            feats, stats = store.gather(0, ids)
            assert np.array_equal(feats, rd.dataset.features[ids])
            assert stats.remote_rows == 0

    def test_static_store_reports_no_churn(self, dynamic_setup):
        rd, warm = dynamic_setup
        store = PartitionedFeatureStore.build(rd, caches=warm)
        assert not store.has_dynamic_caches
        assert store.cache_churn() is None
        _, stats = store.gather(0, np.arange(50))
        assert stats.cache_insertions == 0 and stats.refresh_fetch_per_peer is None


class TestExecutorIntegration:
    @pytest.fixture(scope="class")
    def system(self, tiny_dataset):
        cfg = RunConfig(num_machines=4, replication_factor=0.15,
                        cache_policy="lfu", batch_size=16, fanouts=(5, 5),
                        seed=0)
        return SalientPP.build(tiny_dataset, cfg)

    def test_epoch_report_attributes_churn(self, system):
        report = system.train_epoch(0, dry_run=True).report
        assert report.cache_churn is not None
        churn = report.cache_churn
        assert sum(c.hits for c in churn) == report.total_cached_rows()
        assert sum(c.misses for c in churn) == report.total_remote_rows()

    def test_models_stay_in_sync_with_dynamic_cache(self, system):
        system.train_epoch(1)
        assert system.trainer.models_in_sync()

    def test_update_training_set_routes_and_validates(self, system):
        trainer = system.trainer
        full = system.reordered.dataset.train_idx
        trainer.update_training_set(full)
        for k, ids in enumerate(trainer.local_train):
            lo, hi = system.reordered.part_range(k)
            assert np.all((ids >= lo) & (ids < hi))
        lo, hi = system.reordered.part_range(0)
        with pytest.raises(ValueError, match="fewer than one batch"):
            trainer.update_training_set(np.arange(lo, lo + trainer.batch_size))

    def test_vip_refresh_stationary_matches_static(self, tiny_dataset):
        """With an unchanged training set, cost-aware vip-refresh must not
        move any traffic relative to the static VIP cache."""
        reports = {}
        for pol in ("vip", "vip-refresh"):
            cfg = RunConfig(num_machines=4, replication_factor=0.15,
                            cache_policy=pol, refresh_interval=2,
                            batch_size=16, fanouts=(5, 5), seed=0)
            system = SalientPP.build(tiny_dataset, cfg)
            reports[pol] = [system.train_epoch(e, dry_run=True).report
                            for e in range(2)]
        static = sum(r.total_comm_rows() for r in reports["vip"])
        dyn = sum(r.total_comm_rows() for r in reports["vip-refresh"])
        assert dyn == static


class TestSpecValidation:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown dynamic cache policy"):
            DynamicCacheSpec(policy="fifo")

    def test_rejects_negative_knobs(self):
        with pytest.raises(ValueError, match="capacity"):
            DynamicCacheSpec(policy="lru", capacity=-1)
        with pytest.raises(ValueError, match="refresh_interval"):
            DynamicCacheSpec(policy="lru", refresh_interval=-1)
        with pytest.raises(ValueError, match="admit_threshold"):
            DynamicCacheSpec(policy="lru", admit_threshold=-1)

    def test_warm_set_must_fit_capacity(self):
        spec = DynamicCacheSpec(policy="lru", capacity=1)
        with pytest.raises(ValueError, match="exceeds capacity"):
            DynamicCache(10, 4, np.float32, spec,
                         warm_ids=np.array([1, 2]), warm_rows=rows_for([1, 2]))

    def test_rejects_duplicate_warm_ids(self):
        spec = DynamicCacheSpec(policy="lru", capacity=4)
        with pytest.raises(ValueError, match="duplicate cache ids"):
            DynamicCache(10, 4, np.float32, spec,
                         warm_ids=np.array([5, 5]), warm_rows=rows_for([5, 5]))

    def test_zero_capacity_cache_is_inert(self):
        c = make_cache(0, "lru")
        access(c, [1, 2, 3])
        assert c.num_cached == 0
        assert c.churn.misses == 3
