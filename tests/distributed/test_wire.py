"""Round-trip and framing tests for the coordinator/worker wire format.

The property suite (hypothesis) drives arbitrary nested values and ndarrays
of every supported dtype through ``pack``/``unpack`` and demands bit-exact
round trips; the plan-codec tests build real :class:`FetchPlan`\\ s through a
real :class:`PartitionedFeatureStore` and assert decoded plans *execute*
identically, not merely compare equal.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.feature_store import (
    CoalescedFetchPlan,
    FetchPlan,
    PartitionedFeatureStore,
)
from repro.distributed.wire import (
    MAGIC,
    WireError,
    decode_coalesced_plan,
    decode_fetch_plan,
    encode_coalesced_plan,
    encode_fetch_plan,
    pack_message,
    pack_obj,
    unpack_message,
    unpack_obj,
)
from repro.partition import metis_like_partition, reorder_dataset

# ----------------------------------------------------------------------
# value round trips (hypothesis)
# ----------------------------------------------------------------------

_DTYPES = [np.dtype(s) for s in
           ("bool", "int8", "int16", "int32", "int64",
            "uint8", "uint16", "uint32", "uint64",
            "float16", "float32", "float64")]


@st.composite
def ndarrays(draw):
    dtype = draw(st.sampled_from(_DTYPES))
    shape = tuple(draw(st.lists(st.integers(0, 5), min_size=0, max_size=3)))
    size = int(np.prod(shape)) if shape else 1
    raw = draw(st.binary(min_size=size * dtype.itemsize,
                         max_size=size * dtype.itemsize))
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**63, max_value=2**63 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
    ndarrays(),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)


def assert_same(a, b):
    """Structural equality with exact dtype/shape/type checks."""
    assert type(a) is type(b), (type(a), type(b))
    if isinstance(a, np.ndarray):
        assert a.dtype == b.dtype
        assert a.shape == b.shape
        assert np.array_equal(a, b, equal_nan=True)
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert_same(x, y)
    elif isinstance(a, dict):
        assert list(a.keys()) == list(b.keys())
        for key in a:
            assert_same(a[key], b[key])
    elif isinstance(a, float):
        assert a == b or (np.isnan(a) and np.isnan(b))
    else:
        assert a == b


@settings(max_examples=200, deadline=None)
@given(values)
def test_value_round_trip(value):
    assert_same(unpack_obj(pack_obj(value)), value)


@settings(max_examples=100, deadline=None)
@given(ndarrays())
def test_ndarray_round_trip_bit_identical(arr):
    out = unpack_obj(pack_obj(arr))
    assert out.dtype == arr.dtype
    assert out.shape == arr.shape
    assert out.tobytes() == arr.tobytes()  # bit-level, catches NaN payloads


@settings(max_examples=100, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
               min_size=1, max_size=20), values)
def test_message_round_trip(kind, payload):
    k2, p2 = unpack_message(pack_message(kind, payload))
    assert k2 == kind
    assert_same(p2, payload)


def test_int_vs_float_and_list_vs_tuple_distinction():
    assert unpack_obj(pack_obj(3)) == 3 and isinstance(unpack_obj(pack_obj(3)), int)
    assert isinstance(unpack_obj(pack_obj(3.0)), float)
    assert unpack_obj(pack_obj([1, 2])) == [1, 2]
    assert unpack_obj(pack_obj((1, 2))) == (1, 2)
    assert unpack_obj(pack_obj(None)) is None
    assert unpack_obj(pack_obj(True)) is True


def test_numpy_scalars_become_python_scalars():
    assert unpack_obj(pack_obj(np.int64(7))) == 7
    assert unpack_obj(pack_obj(np.float64(0.5))) == 0.5
    assert unpack_obj(pack_obj(np.bool_(True))) is True


# ----------------------------------------------------------------------
# encode-time rejections and framing errors
# ----------------------------------------------------------------------

def test_unrepresentable_values_raise_at_encode_time():
    with pytest.raises(WireError):
        pack_obj(2**64)  # beyond 64-bit
    with pytest.raises(WireError):
        pack_obj(object())
    with pytest.raises(WireError):
        pack_obj({1: "non-string key"})
    with pytest.raises(WireError):
        pack_obj(np.array([object()], dtype=object))
    with pytest.raises(WireError):
        pack_obj(np.zeros(2, dtype=np.complex128))


def test_bad_magic_rejected():
    data = pack_message("ok", [1, 2])
    with pytest.raises(WireError, match="magic"):
        unpack_message(b"XXXX" + data[len(MAGIC):])


def test_bad_version_rejected():
    data = bytearray(pack_message("ok", None))
    data[len(MAGIC)] = 99
    with pytest.raises(WireError, match="version"):
        unpack_message(bytes(data))


def test_truncation_rejected_everywhere():
    data = pack_message("step", {"a": np.arange(10), "b": "hello"})
    for cut in range(len(data)):
        with pytest.raises(WireError):
            unpack_message(data[:cut])


def test_trailing_bytes_rejected():
    with pytest.raises(WireError, match="trailing"):
        unpack_obj(pack_obj([1]) + b"\x00")
    with pytest.raises(WireError, match="trailing"):
        unpack_message(pack_message("ok", None) + b"junk")


def test_corrupt_ndarray_header_cannot_overread():
    # Header claiming a huge shape must fail cleanly, not allocate/overread.
    data = bytearray(pack_obj(np.arange(4, dtype=np.int64)))
    data[3:11] = (2**60).to_bytes(8, "little")  # dim 0 of the shape
    with pytest.raises(WireError):
        unpack_obj(bytes(data))


# ----------------------------------------------------------------------
# corruption: byte flips must never decode (hypothesis)
# ----------------------------------------------------------------------
#
# The message CRC32 trailer covers the entire frame, and CRC32 detects
# every single-byte error, so *any* one-byte flip anywhere in a framed
# message — magic, version, kind, scalar payload, ndarray payload, or the
# trailer itself — must surface as WireError, never a garbage decode.

_kinds = st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                 min_size=1, max_size=12)


@settings(max_examples=200, deadline=None)
@given(_kinds, values, st.data())
def test_any_single_byte_flip_in_message_is_rejected(kind, payload, data):
    frame = bytearray(pack_message(kind, payload))
    pos = data.draw(st.integers(0, len(frame) - 1), label="flip position")
    delta = data.draw(st.integers(1, 255), label="xor mask")
    unpack_message(bytes(frame))  # pristine frame decodes
    frame[pos] ^= delta
    with pytest.raises(WireError):
        unpack_message(bytes(frame))


@settings(max_examples=150, deadline=None)
@given(ndarrays().filter(lambda a: a.nbytes > 0), st.data())
def test_ndarray_payload_byte_flip_trips_frame_crc(arr, data):
    # A bare value frame has no message trailer; the per-ndarray CRC alone
    # must reject a flipped payload byte (these bytes used to decode
    # silently into a wrong array before wire v2).
    frame = bytearray(pack_obj(arr))
    lo = len(frame) - 4 - arr.nbytes  # | ... shape | payload | crc32 |
    pos = data.draw(st.integers(lo, len(frame) - 5), label="payload byte")
    delta = data.draw(st.integers(1, 255), label="xor mask")
    frame[pos] ^= delta
    with pytest.raises(WireError, match="checksum"):
        unpack_obj(bytes(frame))


def test_ndarray_crc_trailer_flip_rejected():
    frame = bytearray(pack_obj(np.arange(16, dtype=np.int64)))
    frame[-1] ^= 0xFF
    with pytest.raises(WireError, match="checksum"):
        unpack_obj(bytes(frame))


@settings(max_examples=100, deadline=None)
@given(_kinds, values, st.data(), st.integers(0, 7))
def test_corrupt_message_attributes_machine(kind, payload, data, machine):
    # The coordinator decodes with machine=<rank>; every decode failure on
    # that pipe must name the peer so chaos runs are machine-attributed.
    frame = bytearray(pack_message(kind, payload))
    pos = data.draw(st.integers(0, len(frame) - 1), label="flip position")
    delta = data.draw(st.integers(1, 255), label="xor mask")
    frame[pos] ^= delta
    with pytest.raises(WireError) as excinfo:
        unpack_message(bytes(frame), machine=machine)
    assert excinfo.value.machine == machine


def test_clean_decode_failure_without_machine_stays_anonymous():
    frame = bytearray(pack_message("ok", [1, 2, 3]))
    frame[-1] ^= 0x01
    with pytest.raises(WireError) as excinfo:
        unpack_message(bytes(frame))
    assert excinfo.value.machine is None


# ----------------------------------------------------------------------
# fetch-plan codecs against a real store
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def store_setup(tiny_dataset):
    ds = tiny_dataset
    part = metis_like_partition(ds.graph, 4, seed=0)
    reordered = reorder_dataset(ds, part)
    caches = []
    for k in range(4):
        lo, hi = reordered.part_range(k)
        remote = np.setdiff1d(np.arange(ds.num_vertices), np.arange(lo, hi))
        caches.append(np.sort(np.random.default_rng(k).choice(
            remote, size=min(30, len(remote)), replace=False)))
    store = PartitionedFeatureStore.build(reordered, gpu_fraction=0.5,
                                          caches=caches)
    return store, reordered


def _plans_equal(a: FetchPlan, b: FetchPlan):
    assert a.machine == b.machine
    assert a.gpu_rows == b.gpu_rows and a.cpu_rows == b.cpu_rows
    for name in ("ids", "local_pos", "local_ids", "cached_pos", "cached_ids",
                 "remote_pos", "remote_ids", "nonlocal_ids"):
        x, y = getattr(a, name), getattr(b, name)
        assert x.dtype == y.dtype and np.array_equal(x, y), name


def test_real_plan_round_trip_and_execution(store_setup):
    store, reordered = store_setup
    rng = np.random.default_rng(11)
    n = reordered.dataset.num_vertices
    for machine in range(4):
        ids = rng.choice(n, size=100, replace=False)
        plan = store.plan_gather(machine, ids)
        plan2 = decode_fetch_plan(encode_fetch_plan(plan))
        _plans_equal(plan, plan2)
        feats1, stats1 = store.execute(plan)
        feats2, stats2 = store.execute(plan2)
        assert np.array_equal(feats1, feats2)
        assert np.array_equal(stats1.remote_per_peer, stats2.remote_per_peer)


def test_coalesced_plan_round_trip_and_execution(store_setup):
    store, reordered = store_setup
    rng = np.random.default_rng(13)
    n = reordered.dataset.num_vertices
    plans = [store.plan_gather(1, rng.choice(n, size=80, replace=False))
             for _ in range(4)]
    cplan = FetchPlan.coalesce(plans)
    cplan2 = decode_coalesced_plan(encode_coalesced_plan(cplan))
    assert cplan2.machine == cplan.machine
    assert np.array_equal(cplan2.unique_remote_ids, cplan.unique_remote_ids)
    assert len(cplan2.plans) == len(cplan.plans)
    for p, q in zip(cplan.plans, cplan2.plans):
        _plans_equal(p, q)
    for f, g in zip(cplan.first_request, cplan2.first_request):
        assert g.dtype == np.bool_ and np.array_equal(f, g)
    assert cplan2.slots is not None
    for s, t in zip(cplan.slots, cplan2.slots):
        assert np.array_equal(s, t)
    r1 = store.execute_coalesced(cplan)
    r2 = store.execute_coalesced(cplan2)
    for (f1, s1), (f2, s2) in zip(r1, r2):
        assert np.array_equal(f1, f2)
        assert s1.remote_rows == s2.remote_rows
        assert s1.coalesced_rows == s2.coalesced_rows


def test_coalesced_plan_none_slots_distinction(store_setup):
    store, _reordered = store_setup
    plan = store.plan_gather(0, np.arange(20))
    cplan = CoalescedFetchPlan(
        machine=0, plans=[plan],
        unique_remote_ids=np.sort(plan.remote_ids),
        first_request=[np.ones(len(plan.remote_ids), dtype=bool)],
        slots=None,
    )
    cplan2 = decode_coalesced_plan(encode_coalesced_plan(cplan))
    assert cplan2.slots is None  # falls back to searchsorted, as locally


def test_empty_plan_round_trip(store_setup):
    store, _ = store_setup
    plan = store.plan_gather(0, np.empty(0, dtype=np.int64))
    plan2 = decode_fetch_plan(encode_fetch_plan(plan))
    _plans_equal(plan, plan2)
    assert len(plan2.ids) == 0


def test_all_cached_plan_round_trip(store_setup):
    store, _ = store_setup
    cached = store.stores[2].cache_ids[:16]
    plan = store.plan_gather(2, cached)
    assert len(plan.remote_ids) == 0 and len(plan.cached_ids) == len(cached)
    plan2 = decode_fetch_plan(encode_fetch_plan(plan))
    _plans_equal(plan, plan2)


def test_huge_index_plan_round_trip():
    # Vertex ids near 2**62 survive without truncation (u64 shape dims,
    # int64 payloads).
    huge = np.array([2**62, 2**62 + 1, 2**62 + 7], dtype=np.int64)
    plan = FetchPlan(
        machine=0, ids=huge,
        local_pos=np.empty(0, dtype=np.int64),
        local_ids=np.empty(0, dtype=np.int64),
        gpu_rows=0, cpu_rows=0,
        cached_pos=np.empty(0, dtype=np.int64),
        cached_ids=np.empty(0, dtype=np.int64),
        remote_pos=np.arange(3), remote_ids=huge,
        nonlocal_ids=huge,
    )
    plan2 = decode_fetch_plan(encode_fetch_plan(plan))
    _plans_equal(plan, plan2)


def test_mixed_dtype_payload_round_trip():
    payload = {
        "f16": np.arange(4, dtype=np.float16),
        "f32": np.arange(4, dtype=np.float32),
        "u8": np.arange(4, dtype=np.uint8),
        "bool": np.array([True, False]),
        "empty": np.empty((0, 3), dtype=np.float64),
        "big": np.array([2**62], dtype=np.int64),
        "nested": [{"x": (1, 2.5, None)}],
    }
    out = unpack_obj(pack_obj(payload))
    for key in ("f16", "f32", "u8", "bool", "empty", "big"):
        assert out[key].dtype == payload[key].dtype
        assert np.array_equal(out[key], payload[key])
    assert out["empty"].shape == (0, 3)
    assert out["nested"] == [{"x": (1, 2.5, None)}]


def test_plan_missing_field_raises():
    with pytest.raises(WireError, match="missing field"):
        decode_fetch_plan(pack_obj({"machine": 0}))
    with pytest.raises(WireError, match="dict"):
        decode_fetch_plan(pack_obj([1, 2, 3]))
