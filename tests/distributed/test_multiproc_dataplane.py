"""Regression tests for the zero-copy shared-memory data plane.

Two contracts the perf work must never silently lose:

* **Control tokens only** — per-step pipe traffic (``step`` / ``wstep`` /
  ``avg`` / ``window``) stays under a fixed byte budget per worker per
  step; gradients move through the shared-memory plane and telemetry ships
  once per epoch.  The backend's ``wire_sent`` / ``wire_received``
  accounting is asserted directly.
* **Warm worker pool** — a ``keep_warm`` backend parks its workers on
  close, an identically-configured successor acquires the *same processes*
  (no respawn) and still reproduces the in-process oracle bit-for-bit;
  a differently-configured successor does not match the fingerprint; the
  pool drains cleanly.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import Planner, RunConfig, SalientPP
from repro.distributed.multiproc import (
    WORKER_POOL,
    MultiprocBackend,
    _cluster_fingerprint,
)
from repro.graph.datasets import make_papers_mini

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

K = 4

#: Per-step, per-worker budget for each control-plane message (bytes).
#: Tokens are currently ~30-40 bytes (magic + kind + one small int dict);
#: the budget leaves headroom for a field or two but forbids any array or
#: encoded plan sneaking back onto the hot path.
STEP_BYTE_BUDGET = 256


def _config(**overrides) -> RunConfig:
    base = dict(
        num_machines=K,
        fanouts=(4, 3),
        batch_size=32,
        hidden_dim=16,
        replication_factor=0.05,
        gpu_fraction=0.5,
        seed=0,
    )
    base.update(overrides)
    return RunConfig(**base)


@pytest.fixture(scope="module")
def papers_mini():
    return make_papers_mini(seed=1, scale=0.04)


@pytest.fixture(scope="module")
def planner():
    return Planner()


@pytest.fixture(autouse=True)
def _drain_pool():
    # Every test starts and ends with an empty warm pool so parked workers
    # never leak across tests (or out of the test process).
    WORKER_POOL.clear()
    yield
    WORKER_POOL.clear()


def _losses(report):
    return [(r.machine, r.step, r.loss) for r in report.records]


# ----------------------------------------------------------------------
# control-token byte budget
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine,depth", [("bsp", 1), ("pipelined", 4)])
def test_per_step_pipe_traffic_is_control_tokens_only(
        papers_mini, planner, engine, depth):
    cfg = _config(engine=engine, pipeline_depth=depth, backend="multiproc")
    system = SalientPP.build(papers_mini, cfg, planner=planner)
    try:
        system.train_epoch(0)
        backend = system.backend()
        steps = system.trainer.steps_per_epoch()
        windows = -(-steps // depth)

        per_step_kinds = {
            "avg": ("sent", K * steps),
            "step" if engine == "bsp" else "wstep": ("received", K * steps),
        }
        if engine == "pipelined":
            per_step_kinds["window"] = ("received", K * windows)
        for kind, (direction, expected_msgs) in per_step_kinds.items():
            table = (backend.wire_sent if direction == "sent"
                     else backend.wire_received)
            count, nbytes = table[kind]
            assert count == expected_msgs, (kind, count, expected_msgs)
            assert nbytes / count <= STEP_BYTE_BUDGET, (
                f"{kind} messages average {nbytes / count:.0f} bytes — "
                f"arrays are back on the hot path"
            )

        # Nothing bulky crosses per step: every other kind is per-epoch
        # (run/done) or per-lifetime (bind/ready/bound/park/stop).
        hot_kinds = {"step", "wstep", "window", "avg"}
        for table in (backend.wire_sent, backend.wire_received):
            for kind, (count, _nbytes) in table.items():
                if kind not in hot_kinds:
                    assert count <= K * 2, (kind, count)
    finally:
        system.shutdown()


def test_gradients_absent_from_pipe_payloads(papers_mini, planner):
    """The whole per-step wire volume is far below one gradient's size —
    the strongest form of "gradients moved to shared memory"."""
    from repro.distributed.comm import gradient_nbytes

    cfg = _config(engine="bsp", backend="multiproc")
    system = SalientPP.build(papers_mini, cfg, planner=planner)
    try:
        system.train_epoch(0)
        backend = system.backend()
        grad_bytes = gradient_nbytes(system.trainer.models[0])
        steps = system.trainer.steps_per_epoch()
        hot_bytes = sum(
            table.get(kind, (0, 0))[1]
            for table in (backend.wire_sent, backend.wire_received)
            for kind in ("step", "avg")
        )
        # Old data plane: ~2 * K * steps * grad_bytes just for gradients.
        assert hot_bytes < grad_bytes, (hot_bytes, grad_bytes)
        assert hot_bytes <= 2 * K * steps * STEP_BYTE_BUDGET
    finally:
        system.shutdown()


# ----------------------------------------------------------------------
# warm worker pool
# ----------------------------------------------------------------------


def test_warm_pool_reuses_processes_with_bit_parity(papers_mini, planner):
    cfg = _config(engine="bsp")
    ref = SalientPP.build(papers_mini, cfg, planner=planner)
    ref_result = ref.train_epoch(0)

    mp_cfg = dataclasses.replace(cfg, backend="multiproc")
    first = SalientPP.build(papers_mini, mp_cfg, planner=planner)
    backend1 = first.backend()
    backend1.keep_warm = True
    first_result = first.train_epoch(0)
    assert not backend1.reused_pool
    pids = sorted(p.pid for p in backend1.processes)
    first.shutdown()
    assert WORKER_POOL.num_parked == K
    assert not backend1.is_live  # parked, but this backend is done

    second = SalientPP.build(papers_mini, mp_cfg, planner=planner)
    backend2 = second.backend()
    try:
        second_result = second.train_epoch(0)
        assert backend2.reused_pool
        assert sorted(p.pid for p in backend2.processes) == pids
        assert WORKER_POOL.num_parked == 0
        assert _losses(second_result.report) == _losses(ref_result.report)
        assert _losses(first_result.report) == _losses(ref_result.report)
        assert second_result.report.mean_loss == ref_result.report.mean_loss
    finally:
        second.shutdown()
    # keep_warm was left False on the second backend: processes are dead.
    assert all(not p.is_alive() for p in backend2.processes)


def test_warm_pool_rejects_different_fingerprint(papers_mini, planner):
    mp_cfg = _config(engine="bsp", backend="multiproc")
    first = SalientPP.build(papers_mini, mp_cfg, planner=planner)
    first.backend().keep_warm = True
    first.train_epoch(0)
    pids = sorted(p.pid for p in first.backend().processes)
    first.shutdown()
    assert WORKER_POOL.num_parked == K

    # A different seed changes every derived stream seed -> new fingerprint.
    other_cfg = dataclasses.replace(mp_cfg, seed=1)
    second = SalientPP.build(papers_mini, other_cfg, planner=planner)
    backend2 = second.backend()
    try:
        second.train_epoch(0)
        assert not backend2.reused_pool
        assert sorted(p.pid for p in backend2.processes) != pids
        assert WORKER_POOL.num_parked == K  # first cluster still parked
    finally:
        second.shutdown()


def test_fingerprint_is_deterministic_and_name_independent(
        papers_mini, planner):
    mp_cfg = _config(engine="bsp", backend="multiproc")
    a = SalientPP.build(papers_mini, mp_cfg, planner=planner)
    b = SalientPP.build(papers_mini, mp_cfg, planner=planner)
    backend_a, backend_b = a.backend(), b.backend()
    try:
        backend_a.start()
        backend_b.start()
        # Segment names are random per backend; the fingerprint must not
        # see them (otherwise the pool could never hit).
        assert backend_a.segment_names != backend_b.segment_names
        assert (_cluster_fingerprint(backend_a.worker_specs)
                == _cluster_fingerprint(backend_b.worker_specs))
    finally:
        a.shutdown()
        b.shutdown()


def test_faulted_cluster_is_never_parked(papers_mini, planner):
    from repro.distributed.multiproc import WorkerFailedError

    mp_cfg = _config(engine="bsp", backend="multiproc")
    system = SalientPP.build(papers_mini, mp_cfg, planner=planner)
    # Two steps per epoch at this scale: fail machine 1 at the last one.
    backend = MultiprocBackend(system, timeout_s=30.0, keep_warm=True,
                               fault_injection={1: (0, 1)})
    with pytest.raises(WorkerFailedError):
        backend.run_epoch(0)
    assert WORKER_POOL.num_parked == 0
    assert all(not p.is_alive() for p in backend.processes)


def test_pool_clear_stops_parked_workers(papers_mini, planner):
    mp_cfg = _config(engine="bsp", backend="multiproc")
    system = SalientPP.build(papers_mini, mp_cfg, planner=planner)
    backend = system.backend()
    backend.keep_warm = True
    system.train_epoch(0)
    procs = list(backend.processes)
    system.shutdown()
    assert WORKER_POOL.num_parked == K
    assert all(p.is_alive() for p in procs)
    WORKER_POOL.clear()
    assert WORKER_POOL.num_parked == 0
    assert all(not p.is_alive() for p in procs)


def test_parked_workers_hold_no_segment_attachments(papers_mini, planner):
    """After parking, every shared-memory segment unlinks cleanly — parked
    workers released all their views (else /dev/shm would leak)."""
    import os

    mp_cfg = _config(engine="bsp", backend="multiproc")
    system = SalientPP.build(papers_mini, mp_cfg, planner=planner)
    backend = system.backend()
    backend.keep_warm = True
    system.train_epoch(0)
    names = list(backend.segment_names)
    system.shutdown()
    assert WORKER_POOL.num_parked == K
    for name in names:
        assert not os.path.exists(f"/dev/shm/{name}")
