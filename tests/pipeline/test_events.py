"""Unified event path tests: engine-emitted traces price exactly like the
record-based reconstruction, and windowed/thinned schedules behave."""

import numpy as np
import pytest

from repro.distributed import DistributedTrainer, PartitionedFeatureStore
from repro.distributed.cluster import ClusterSpec
from repro.pipeline import (
    CostModel,
    ModelDims,
    PipelineMode,
    Stage,
    simulate_epoch,
    simulate_trace,
    trace_from_report,
)
from repro.pipeline.events import EventTrace


@pytest.fixture(scope="module")
def substrate(request):
    rd = request.getfixturevalue("tiny_reordered")
    store = PartitionedFeatureStore.build(rd)
    tr = DistributedTrainer(rd, store, fanouts=(5, 5), batch_size=16,
                            hidden_dim=16, seed=0)
    report = tr.train_epoch(0, dry_run=True)
    cm = CostModel(
        cluster=ClusterSpec(num_machines=4),
        bytes_per_row=store.bytes_per_row,
        dims=ModelDims(rd.dataset.feature_dim, 16, rd.dataset.num_classes),
        grad_nbytes=tr.gradient_nbytes(),
    )
    return report, cm, tr


class TestTraceRecordParity:
    @pytest.mark.parametrize("mode", list(PipelineMode))
    @pytest.mark.parametrize("depth", [1, 3, 10])
    def test_engine_trace_prices_like_records(self, substrate, mode, depth):
        """The bsp engine's emitted trace must cost exactly what the
        record-based reconstruction costs, in every mode and depth."""
        report, cm, _ = substrate
        rec = simulate_epoch(report, cm, mode=mode, depth=depth)
        ev = simulate_trace(report.events, cm, mode=mode, depth=depth)
        assert ev.epoch_time == rec.epoch_time
        for key in rec.breakdown:
            assert ev.breakdown[key] == rec.breakdown[key]
        for res in rec.resource_busy:
            assert np.array_equal(ev.resource_busy[res],
                                  rec.resource_busy[res])

    def test_trace_from_report_reconstruction(self, substrate):
        """A hand-built report (no events) reconstructs the same per-step
        trace the bsp engine emits."""
        report, cm, _ = substrate
        rebuilt = trace_from_report(report, cm.dims)
        emitted = report.events
        assert rebuilt.windows == emitted.windows
        assert rebuilt.allreduce_steps == emitted.allreduce_steps
        ri, ei = rebuilt.index(), emitted.index()
        assert set(ri) == set(ei)
        for key in ri:
            assert cm.event_duration(ri[key]) == cm.event_duration(ei[key])

    def test_event_durations_match_stage_times(self, substrate):
        """Per-event pricing agrees with StageTimes field by field."""
        from repro.pipeline.costmodel import served_rows_matrix

        report, cm, _ = substrate
        K = report.ledger.num_machines
        step0 = sorted((r for r in report.records if r.step == 0),
                       key=lambda r: r.machine)
        served = served_rows_matrix(step0, K)
        idx = report.events.index()
        for k, rec in enumerate(step0):
            st = cm.stage_times(rec, int(served[k]))
            pairs = [
                (Stage.SAMPLE, st.sample), (Stage.LOCAL_SLICE, st.local_slice),
                (Stage.SERVE_SLICE, st.serve_slice),
                (Stage.REQUEST_EXCHANGE, st.request_exchange),
                (Stage.FEATURE_COMM, st.feature_comm), (Stage.H2D, st.h2d),
                (Stage.GPU_GATHER, st.gpu_gather), (Stage.TRAIN, st.train),
            ]
            for stage, expected in pairs:
                assert cm.event_duration(idx[(stage, k, 0)]) == expected


class TestTraceValidation:
    def test_validate_catches_missing_events(self, substrate):
        report, cm, _ = substrate
        trace = report.events
        broken = EventTrace(
            engine=trace.engine, num_machines=trace.num_machines,
            num_steps=trace.num_steps, windows=trace.windows,
            allreduce_steps=trace.allreduce_steps,
            events=[ev for ev in trace.events if ev.stage is not Stage.TRAIN],
        )
        with pytest.raises(ValueError, match="train"):
            simulate_trace(broken, cm)

    def test_validate_catches_bad_windows(self, substrate):
        report, cm, _ = substrate
        trace = report.events
        broken = EventTrace(
            engine=trace.engine, num_machines=trace.num_machines,
            num_steps=trace.num_steps, windows=[(0, trace.num_steps + 1)],
            allreduce_steps=trace.allreduce_steps, events=list(trace.events),
        )
        with pytest.raises(ValueError, match="tile"):
            simulate_trace(broken, cm)

    def test_rejects_bad_depth(self, substrate):
        report, cm, _ = substrate
        with pytest.raises(ValueError, match="depth"):
            simulate_trace(report.events, cm, depth=0)

    def test_windowed_trace_rejects_contradictory_schedules(
            self, substrate, tiny_reordered):
        """A multi-step comm window encodes an in-flight schedule: pricing
        it serialized, or with fewer slots than the window holds, must be
        an error rather than a silently optimistic makespan."""
        _, cm, _ = substrate
        store = PartitionedFeatureStore.build(tiny_reordered)
        tr = DistributedTrainer(tiny_reordered, store, fanouts=(5, 5),
                                batch_size=8, hidden_dim=16, seed=0,
                                engine="pipelined", pipeline_depth=3)
        report = tr.train_epoch(0, dry_run=True)
        windowed = report.events
        assert max(hi - lo for lo, hi in windowed.windows) > 1
        with pytest.raises(ValueError, match="comm windows"):
            simulate_trace(windowed, cm, mode=PipelineMode.OFF)
        with pytest.raises(ValueError, match="in flight"):
            simulate_trace(windowed, cm, depth=1)
        assert simulate_trace(windowed, cm, depth=3).epoch_time > 0


class TestScheduleSemantics:
    def test_fewer_allreduce_barriers_never_slower(self, substrate):
        """Dropping allreduce steps from the trace (async's thinning) can
        only help the makespan."""
        report, cm, _ = substrate
        trace = report.events
        thinned = EventTrace(
            engine="async", num_machines=trace.num_machines,
            num_steps=trace.num_steps, windows=trace.windows,
            allreduce_steps=trace.allreduce_steps[-1:],
            events=[ev for ev in trace.events
                    if ev.stage is not Stage.ALLREDUCE
                    or ev.step == trace.allreduce_steps[-1]],
        )
        t_full = simulate_trace(trace, cm).epoch_time
        t_thin = simulate_trace(thinned, cm).epoch_time
        assert t_thin <= t_full + 1e-12

    def test_deterministic(self, substrate):
        report, cm, _ = substrate
        a = simulate_trace(report.events, cm).epoch_time
        b = simulate_trace(report.events, cm).epoch_time
        assert a == b


class TestPerMachineTraces:
    """machine_of_step switches validation to the serving (per-machine)
    schedule shape: each step owned by one machine, windows single-owner."""

    @staticmethod
    def _serving_trace(owners, windows):
        trace = EventTrace(engine="serving", num_machines=2,
                           num_steps=len(owners), windows=windows,
                           machine_of_step=list(owners))
        per_step = (Stage.SAMPLE, Stage.LOCAL_SLICE, Stage.H2D,
                    Stage.GPU_GATHER, Stage.TRAIN)
        for s, k in enumerate(owners):
            for st in per_step:
                trace.add(st, k, s)
        for lo, _hi in windows:
            k = owners[lo]
            trace.add(Stage.REQUEST_EXCHANGE, k, lo, request_rows=1, serve_rows=1)
            trace.add(Stage.SERVE_SLICE, k, lo, rows=1)
            trace.add(Stage.FEATURE_COMM, k, lo, in_rows=1, out_rows=1)
        return trace

    def test_valid_per_machine_trace(self):
        trace = self._serving_trace([0, 0, 1], [(0, 2), (2, 3)])
        assert trace.validate() is trace

    def test_only_owner_events_required(self):
        """A lock-step validation of the same events would fail (machine 1
        has no step-0 events); the per-machine one must not."""
        trace = self._serving_trace([0, 1], [(0, 1), (1, 2)])
        trace.validate()
        lockstep = EventTrace(engine="serving", num_machines=2, num_steps=2,
                              windows=[(0, 1), (1, 2)], events=trace.events)
        with pytest.raises(ValueError, match="missing"):
            lockstep.validate()

    def test_window_spanning_machines_rejected(self):
        trace = self._serving_trace([0, 1], [(0, 2)])
        with pytest.raises(ValueError, match="one owner"):
            trace.validate()

    def test_owner_list_length_checked(self):
        trace = self._serving_trace([0, 0], [(0, 2)])
        trace.machine_of_step = [0]
        with pytest.raises(ValueError, match="machine_of_step"):
            trace.validate()

    def test_owner_out_of_range_rejected(self):
        trace = self._serving_trace([0, 0], [(0, 2)])
        trace.machine_of_step = [0, 7]
        with pytest.raises(ValueError, match="out of range"):
            trace.validate()

    def test_cache_refresh_stage_priced(self, substrate):
        """The serving-only CACHE_REFRESH stage prices as one background
        fetch round (ids out + payload back), zero when empty."""
        _report, cm, _tr = substrate
        trace = self._serving_trace([0], [(0, 1)])
        trace.add(Stage.CACHE_REFRESH, 0, 0, rows=0)
        assert cm.event_duration(trace.events[-1]) == 0.0
        trace2 = self._serving_trace([1], [(0, 1)])
        trace2.add(Stage.CACHE_REFRESH, 1, 0, rows=100)
        net = cm.cluster.network
        expected = (2 * net.latency + 100 * 8 / net.effective_bandwidth
                    + 100 * cm.bytes_per_row / net.effective_bandwidth)
        assert cm.event_duration(trace2.events[-1]) == pytest.approx(expected)


class TestEventTraceEdgeCases:
    """Degenerate shapes the serving and streaming paths can produce:
    empty epochs, single-step traces, and serving-only traces with
    CACHE_REFRESH events interleaved between windows."""

    def test_empty_trace_validates(self):
        trace = EventTrace(engine="bsp", num_machines=4, num_steps=0,
                           windows=[])
        assert trace.validate() is trace
        assert trace.index() == {}

    def test_empty_per_machine_trace_validates(self):
        trace = EventTrace(engine="serving", num_machines=2, num_steps=0,
                           windows=[], machine_of_step=[])
        assert trace.validate() is trace

    def test_empty_trace_rejects_phantom_window(self):
        trace = EventTrace(engine="bsp", num_machines=1, num_steps=0,
                           windows=[(0, 1)])
        with pytest.raises(ValueError, match="tile"):
            trace.validate()

    def test_single_step_lockstep_trace(self):
        trace = EventTrace(engine="bsp", num_machines=2, num_steps=1,
                           windows=[(0, 1)], allreduce_steps=[0])
        per_step = (Stage.SAMPLE, Stage.LOCAL_SLICE, Stage.H2D,
                    Stage.GPU_GATHER, Stage.TRAIN)
        for k in range(2):
            for st in per_step:
                trace.add(st, k, 0)
            trace.add(Stage.REQUEST_EXCHANGE, k, 0,
                      request_rows=1, serve_rows=1)
            trace.add(Stage.SERVE_SLICE, k, 0, rows=1)
            trace.add(Stage.FEATURE_COMM, k, 0, in_rows=1, out_rows=1)
        with pytest.raises(ValueError, match="missing allreduce"):
            trace.validate()
        trace.add(Stage.ALLREDUCE, -1, 0)
        assert trace.validate() is trace

    def test_single_step_missing_stage_caught(self):
        trace = EventTrace(engine="serving", num_machines=2, num_steps=1,
                           windows=[(0, 1)], machine_of_step=[1])
        for st in (Stage.SAMPLE, Stage.LOCAL_SLICE, Stage.H2D,
                   Stage.GPU_GATHER):
            trace.add(st, 1, 0)
        with pytest.raises(ValueError, match="missing train"):
            trace.validate()

    def test_machine_of_step_with_cache_refresh_interleaved(self):
        """A serving trace where refresh fetches land between windows:
        CACHE_REFRESH is never *required*, but interleaved refresh events
        must not break per-machine validation or the memoized index."""
        owners = [0, 0, 1, 0]
        windows = [(0, 2), (2, 3), (3, 4)]
        trace = TestPerMachineTraces._serving_trace(owners, windows)
        # One refresh after each window, on that window's owning machine.
        for lo, _hi in windows:
            trace.add(Stage.CACHE_REFRESH, owners[lo], lo, rows=17)
        assert trace.validate() is trace
        idx = trace.index()
        assert (Stage.CACHE_REFRESH, 0, 0) in idx
        assert (Stage.CACHE_REFRESH, 1, 2) in idx
        # machine_of_step is still authoritative for ownership queries.
        assert trace.machine_of_step == owners
        # A duplicate refresh for the same (machine, window) is an engine
        # bug the index must catch.
        trace.add(Stage.CACHE_REFRESH, 0, 0, rows=3)
        with pytest.raises(ValueError, match="duplicate"):
            trace.index()
