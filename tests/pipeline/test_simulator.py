"""Pipeline DES tests: scheduling invariants and mode/parameter monotonicity."""

import numpy as np
import pytest

from repro.distributed import DistributedTrainer, PartitionedFeatureStore
from repro.distributed.cluster import ClusterSpec, MachineSpec, NetworkSpec
from repro.pipeline import CostModel, ModelDims, PipelineMode, simulate_epoch


@pytest.fixture(scope="module")
def report_and_model(request):
    rd = request.getfixturevalue("tiny_reordered")
    store = PartitionedFeatureStore.build(rd)
    tr = DistributedTrainer(rd, store, fanouts=(5, 5), batch_size=16,
                            hidden_dim=16, seed=0)
    report = tr.train_epoch(0, dry_run=True)
    cm = CostModel(
        cluster=ClusterSpec(num_machines=4),
        bytes_per_row=store.bytes_per_row,
        dims=ModelDims(rd.dataset.feature_dim, 16, rd.dataset.num_classes),
        grad_nbytes=tr.gradient_nbytes(),
    )
    return report, cm, store, tr


class TestInvariants:
    def test_epoch_bounded_by_busy_resources(self, report_and_model):
        report, cm, *_ = report_and_model
        res = simulate_epoch(report, cm)
        lower = max(float(v.max()) for v in res.resource_busy.values())
        total = sum(float(v.sum()) for v in res.resource_busy.values())
        assert res.epoch_time >= lower - 1e-12
        assert res.epoch_time <= total + 1.0  # loose upper bound

    def test_mode_ordering(self, report_and_model):
        report, cm, *_ = report_and_model
        t_full = simulate_epoch(report, cm, mode=PipelineMode.FULL).epoch_time
        t_block = simulate_epoch(report, cm, mode=PipelineMode.BLOCKING_COMM).epoch_time
        t_off = simulate_epoch(report, cm, mode=PipelineMode.OFF).epoch_time
        assert t_full <= t_block + 1e-12
        assert t_block <= t_off + 1e-12

    def test_monotone_in_bandwidth(self, report_and_model):
        report, cm, store, tr = report_and_model
        def with_bw(gbps):
            cluster = ClusterSpec(4, MachineSpec(), NetworkSpec().with_bandwidth(gbps))
            cm2 = CostModel(cluster, store.bytes_per_row, cm.dims, cm.grad_nbytes)
            return simulate_epoch(report, cm2).epoch_time
        assert with_bw(4) >= with_bw(8) >= with_bw(25)

    def test_monotone_in_depth(self, report_and_model):
        report, cm, *_ = report_and_model
        t1 = simulate_epoch(report, cm, depth=1).epoch_time
        t3 = simulate_epoch(report, cm, depth=3).epoch_time
        t10 = simulate_epoch(report, cm, depth=10).epoch_time
        assert t1 >= t3 >= t10

    def test_rejects_bad_depth(self, report_and_model):
        report, cm, *_ = report_and_model
        with pytest.raises(ValueError, match="depth"):
            simulate_epoch(report, cm, depth=0)

    def test_deterministic(self, report_and_model):
        report, cm, *_ = report_and_model
        a = simulate_epoch(report, cm).epoch_time
        b = simulate_epoch(report, cm).epoch_time
        assert a == b


class TestBreakdown:
    def test_categories_present_and_positive(self, report_and_model):
        report, cm, *_ = report_and_model
        res = simulate_epoch(report, cm, mode=PipelineMode.OFF)
        for key in ("train", "train_sync", "startup", "batch_prep_comp",
                    "batch_prep_comm"):
            assert key in res.breakdown
            assert res.breakdown[key] >= 0

    def test_off_mode_breakdown_accounts_for_epoch(self, report_and_model):
        """Without pipelining, category times roughly add to the epoch."""
        report, cm, *_ = report_and_model
        res = simulate_epoch(report, cm, mode=PipelineMode.OFF)
        parts = (res.breakdown["train"] + res.breakdown["train_sync"]
                 + res.breakdown["batch_prep_comp"] + res.breakdown["batch_prep_comm"])
        assert parts <= res.epoch_time * 1.05
        assert parts >= res.epoch_time * 0.5

    def test_bottleneck_resource_reported(self, report_and_model):
        report, cm, *_ = report_and_model
        res = simulate_epoch(report, cm)
        assert res.bottleneck_resource() in res.resource_busy


class TestCostModel:
    def test_stage_times_positive(self, report_and_model):
        report, cm, *_ = report_and_model
        rec = report.records[0]
        st = cm.stage_times(rec, served_rows=10)
        for field in ("sample", "local_slice", "h2d", "gpu_gather", "train"):
            assert getattr(st, field) >= 0

    def test_no_comm_when_no_remote(self, report_and_model):
        report, cm, *_ = report_and_model
        rec = report.records[0]
        # Zero out the remote request: comm stages must vanish.
        from dataclasses import replace as dc_replace
        g = dc_replace(rec.gather, remote_rows=0,
                       remote_per_peer=np.zeros(4, dtype=np.int64))
        rec2 = dc_replace(rec, gather=g)
        st = cm.stage_times(rec2, served_rows=0)
        assert st.request_exchange == 0.0
        assert st.feature_comm == 0.0

    def test_comm_scales_with_rows(self, report_and_model):
        report, cm, *_ = report_and_model
        rec = report.records[0]
        t_small = cm.stage_times(rec, served_rows=10).feature_comm
        t_large = cm.stage_times(rec, served_rows=10000).feature_comm
        assert t_large > t_small
