"""Dataset factory tests."""

import numpy as np
import pytest

from repro.graph import (
    DATASET_REGISTRY,
    GraphDataset,
    load_dataset,
    make_features,
    make_splits,
    make_synthetic_dataset,
)


class TestSplits:
    def test_disjoint_and_sized(self):
        tr, va, te = make_splits(1000, 0.5, 0.2, 0.1, seed=0)
        assert len(tr) == 500 and len(va) == 200 and len(te) == 100
        allv = np.concatenate([tr, va, te])
        assert len(np.unique(allv)) == len(allv)

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError, match="sum"):
            make_splits(10, 0.6, 0.3, 0.2)

    def test_sorted_outputs(self):
        tr, va, te = make_splits(100, 0.3, 0.1, 0.1, seed=1)
        for arr in (tr, va, te):
            assert np.all(np.diff(arr) > 0)


class TestFeatures:
    def test_homophily_signal(self, tiny_dataset):
        """Features of same-class neighbors are closer than random pairs —
        the structural signal GNN aggregation exploits."""
        ds = tiny_dataset
        src, dst = ds.graph.edges()
        rng = np.random.default_rng(0)
        rnd = rng.permutation(len(src))
        d_edge = np.linalg.norm(ds.features[src] - ds.features[dst], axis=1).mean()
        d_rand = np.linalg.norm(ds.features[src] - ds.features[dst[rnd]], axis=1).mean()
        assert d_edge < d_rand

    def test_shapes_and_dtype(self, tiny_dataset):
        assert tiny_dataset.features.dtype == np.float32
        assert tiny_dataset.features.shape == (tiny_dataset.num_vertices,
                                               tiny_dataset.feature_dim)


class TestDatasetValidation:
    def test_rejects_misaligned_features(self, tiny_dataset):
        with pytest.raises(ValueError, match="features"):
            GraphDataset(
                name="bad", graph=tiny_dataset.graph,
                features=tiny_dataset.features[:-1],
                labels=tiny_dataset.labels,
                train_idx=tiny_dataset.train_idx,
                val_idx=tiny_dataset.val_idx,
                test_idx=tiny_dataset.test_idx,
                num_classes=4,
            )

    def test_rejects_overlapping_splits(self, tiny_dataset):
        with pytest.raises(ValueError, match="disjoint"):
            GraphDataset(
                name="bad", graph=tiny_dataset.graph,
                features=tiny_dataset.features,
                labels=tiny_dataset.labels,
                train_idx=np.array([0, 1]),
                val_idx=np.array([1, 2]),
                test_idx=np.array([3]),
                num_classes=4,
            )


class TestRegistry:
    def test_registry_contents(self):
        for name in ("products-mini", "papers-mini", "mag240c-mini", "tiny"):
            assert name in DATASET_REGISTRY

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("ogbn-nonexistent")

    def test_tiny_deterministic(self):
        a = load_dataset("tiny", seed=3)
        b = load_dataset("tiny", seed=3)
        assert a.graph == b.graph
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.train_idx, b.train_idx)

    def test_split_role(self, tiny_dataset):
        role = tiny_dataset.split_role()
        assert np.all(role[tiny_dataset.train_idx] == 1)
        assert np.all(role[tiny_dataset.val_idx] == 2)
        assert np.all(role[tiny_dataset.test_idx] == 3)

    def test_default_experiment_metadata(self):
        # The Table-3 analogs carry their experiment defaults.
        ds = load_dataset("tiny")
        assert ds.num_classes == 4
        for name in ("products-mini",):
            pass  # heavyweight datasets are exercised in benchmarks only


class TestSyntheticDataset:
    def test_label_community_alignment(self):
        ds = make_synthetic_dataset("t", num_vertices=400, avg_degree=8.0,
                                    feature_dim=8, num_classes=4,
                                    num_communities=8, label_noise=0.0, seed=0)
        assert np.array_equal(ds.labels, ds.community % 4)

    def test_label_noise_flips_labels(self):
        clean = make_synthetic_dataset("t", num_vertices=400, avg_degree=8.0,
                                       feature_dim=8, num_classes=4,
                                       num_communities=8, label_noise=0.0, seed=0)
        noisy = make_synthetic_dataset("t", num_vertices=400, avg_degree=8.0,
                                       feature_dim=8, num_classes=4,
                                       num_communities=8, label_noise=0.5, seed=0)
        assert np.mean(clean.labels != noisy.labels) > 0.2

    def test_summary_row(self, tiny_dataset):
        row = tiny_dataset.summary_row()
        assert row[0] == "tiny"
        assert row[1] == tiny_dataset.num_vertices
