"""Property-based tests for the CSR substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import CSRGraph


@st.composite
def edge_lists(draw, max_vertices=30, max_edges=120):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_from_edges_roundtrip(data):
    n, src, dst = data
    g = CSRGraph.from_edges(src, dst, n)
    assert g.num_edges == len(src)
    s2, d2 = g.edges()
    # Edge multiset is preserved.
    orig = sorted(zip(src.tolist(), dst.tolist()))
    back = sorted(zip(s2.tolist(), d2.tolist()))
    assert orig == back


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_to_undirected_is_symmetric_and_idempotent(data):
    n, src, dst = data
    u = CSRGraph.from_edges(src, dst, n).to_undirected()
    assert u.is_undirected()
    assert u.to_undirected() == u


@given(edge_lists(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_relabel_preserves_degree_multiset(data, perm_seed):
    n, src, dst = data
    g = CSRGraph.from_edges(src, dst, n)
    perm_rng = np.random.default_rng(perm_seed)
    order = perm_rng.permutation(n)
    new_of_old = np.empty(n, dtype=np.int64)
    new_of_old[order] = np.arange(n)
    h = g.relabel(new_of_old)
    assert sorted(g.degrees.tolist()) == sorted(h.degrees.tolist())
    assert h.num_edges == g.num_edges


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_reverse_involution(data):
    n, src, dst = data
    g = CSRGraph.from_edges(src, dst, n)
    assert g.reverse().reverse() == g
