"""Unit tests for the CSR graph substrate."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import CSRGraph


def path_graph(n):
    src = np.arange(n - 1)
    dst = np.arange(1, n)
    return CSRGraph.from_edges(np.r_[src, dst], np.r_[dst, src], n)


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges([0, 0, 1, 2], [1, 2, 2, 0], 3)
        assert g.num_vertices == 3
        assert g.num_edges == 4
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(1)) == [2]
        assert list(g.neighbors(2)) == [0]

    def test_from_edges_infers_num_vertices(self):
        g = CSRGraph.from_edges([0, 5], [5, 0])
        assert g.num_vertices == 6

    def test_from_edges_dedup(self):
        g = CSRGraph.from_edges([0, 0, 0], [1, 1, 2], 3, dedup=True)
        assert g.num_edges == 2
        assert list(g.neighbors(0)) == [1, 2]

    def test_from_edges_keeps_parallel_edges_without_dedup(self):
        g = CSRGraph.from_edges([0, 0], [1, 1], 2)
        assert g.num_edges == 2

    def test_from_edges_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRGraph.from_edges([0], [3], 2)
        with pytest.raises(ValueError, match="out of range"):
            CSRGraph.from_edges([-1], [0], 2)

    def test_from_edges_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            CSRGraph.from_edges([0, 1], [1], 3)

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], [], 4)
        assert g.num_vertices == 4
        assert g.num_edges == 0
        assert g.max_degree == 0
        assert len(g.neighbors(0)) == 0

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(ValueError, match="indptr\\[0\\]"):
            CSRGraph(np.array([1, 2]), np.array([0, 1]))
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(np.array([0, 2, 1]), np.array([0]))
        with pytest.raises(ValueError, match="len\\(indices\\)"):
            CSRGraph(np.array([0, 3]), np.array([0]))

    def test_validation_rejects_bad_indices(self):
        with pytest.raises(ValueError, match="neighbor index"):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_scipy_roundtrip(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 0], 3)
        assert CSRGraph.from_scipy(g.to_scipy()) == g

    def test_from_scipy_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            CSRGraph.from_scipy(sp.csr_matrix((2, 3)))


class TestProperties:
    def test_degrees(self):
        g = CSRGraph.from_edges([0, 0, 1], [1, 2, 2], 4)
        assert list(g.degrees) == [2, 1, 0, 0]
        assert g.degree(0) == 2
        assert g.max_degree == 2
        assert g.avg_degree == pytest.approx(0.75)

    def test_edges_roundtrip(self):
        g = CSRGraph.from_edges([2, 0, 1], [0, 1, 2], 3)
        src, dst = g.edges()
        g2 = CSRGraph.from_edges(src, dst, 3)
        assert g2 == g

    def test_has_sorted_neighbors(self):
        g = CSRGraph.from_edges([0, 0], [2, 1], 3)  # sorted during build
        assert g.has_sorted_neighbors()
        unsorted = CSRGraph(np.array([0, 2, 2, 2]), np.array([2, 1]))
        assert not unsorted.has_sorted_neighbors()

    def test_equality(self):
        a = CSRGraph.from_edges([0], [1], 2)
        b = CSRGraph.from_edges([0], [1], 2)
        c = CSRGraph.from_edges([1], [0], 2)
        assert a == b
        assert a != c


class TestTransforms:
    def test_reverse(self):
        g = CSRGraph.from_edges([0, 1], [1, 2], 3)
        r = g.reverse()
        assert list(r.neighbors(1)) == [0]
        assert list(r.neighbors(2)) == [1]
        assert r.reverse() == g

    def test_to_undirected_symmetric(self):
        g = CSRGraph.from_edges([0, 1, 3], [1, 2, 0], 4)
        u = g.to_undirected()
        assert u.is_undirected()
        assert u.num_edges == 6  # three undirected edges, both directions

    def test_to_undirected_removes_self_loops_on_request(self):
        g = CSRGraph.from_edges([0, 0], [0, 1], 2)
        assert g.to_undirected(remove_self_loops=True).num_edges == 2
        assert g.to_undirected().num_edges == 3  # self loop kept once

    def test_remove_self_loops(self):
        g = CSRGraph.from_edges([0, 1], [0, 0], 2)
        assert g.remove_self_loops().num_edges == 1

    def test_relabel_preserves_structure(self):
        g = path_graph(5)
        perm = np.array([4, 3, 2, 1, 0])
        h = g.relabel(perm)
        assert sorted(h.degrees) == sorted(g.degrees)
        # neighborhood of new vertex perm[v] = relabeled neighbors of v
        for v in range(5):
            assert set(h.neighbors(perm[v])) == set(perm[g.neighbors(v)])

    def test_relabel_rejects_non_permutation(self):
        g = path_graph(3)
        with pytest.raises(ValueError, match="permutation"):
            g.relabel(np.array([0, 0, 1]))
        with pytest.raises(ValueError, match="one entry per vertex"):
            g.relabel(np.array([0, 1]))

    def test_induced_subgraph(self):
        g = path_graph(6)
        sub, ids = g.induced_subgraph(np.array([1, 2, 3]))
        assert list(ids) == [1, 2, 3]
        assert sub.num_vertices == 3
        assert sub.num_edges == 4  # 1-2, 2-3 both directions
        assert set(sub.neighbors(1)) == {0, 2}

    def test_induced_subgraph_dedups_input(self):
        g = path_graph(4)
        sub, ids = g.induced_subgraph(np.array([2, 1, 2]))
        assert list(ids) == [1, 2]
        assert sub.num_vertices == 2


class TestUndirectedCheck:
    def test_is_undirected(self):
        assert path_graph(4).is_undirected()
        assert not CSRGraph.from_edges([0], [1], 2).is_undirected()
