"""Generator tests: sizes, structure, determinism."""

import numpy as np
import pytest

from repro.graph import (
    chung_lu,
    erdos_renyi,
    pareto_degree_weights,
    power_law_community_graph,
    rmat,
    stochastic_block_model,
    streaming_request_stream,
)


class TestErdosRenyi:
    def test_size_and_symmetry(self):
        g = erdos_renyi(500, 6.0, seed=0)
        assert g.num_vertices == 500
        assert g.is_undirected()
        assert 3.0 < g.avg_degree < 8.0  # some loss to dedup/self-loops

    def test_deterministic(self):
        assert erdos_renyi(100, 4.0, seed=5) == erdos_renyi(100, 4.0, seed=5)
        assert erdos_renyi(100, 4.0, seed=5) != erdos_renyi(100, 4.0, seed=6)


class TestParetoWeights:
    def test_mean_scaled(self):
        w = pareto_degree_weights(5000, 12.0, power=2.5, seed=0)
        assert w.mean() == pytest.approx(12.0)
        assert np.all(w > 0)

    def test_heavier_tail_with_smaller_power(self):
        # Tail-to-median ratio grows as the exponent shrinks (the mean is
        # rescaled, so compare shape, not absolute max).
        w_heavy = pareto_degree_weights(5000, 10.0, power=1.8, seed=0)
        w_light = pareto_degree_weights(5000, 10.0, power=3.5, seed=0)
        ratio = lambda w: np.quantile(w, 0.999) / np.median(w)
        assert ratio(w_heavy) > 2 * ratio(w_light)

    def test_rejects_power_leq_one(self):
        with pytest.raises(ValueError, match="power"):
            pareto_degree_weights(10, 5.0, power=1.0)


class TestChungLu:
    def test_degrees_follow_weights(self):
        w = pareto_degree_weights(2000, 10.0, seed=1)
        g = chung_lu(w, seed=2)
        assert g.is_undirected()
        # High-weight vertices should have higher realized degree on average.
        top = np.argsort(-w)[:100]
        bottom = np.argsort(w)[:100]
        assert g.degrees[top].mean() > 3 * g.degrees[bottom].mean()


class TestSBM:
    def test_block_structure(self):
        g, blocks = stochastic_block_model(np.array([100, 100]), 0.10, 0.005, seed=0)
        assert g.num_vertices == 200
        src, dst = g.edges()
        intra = np.mean(blocks[src] == blocks[dst])
        assert intra > 0.75

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="positive"):
            stochastic_block_model(np.array([0, 5]), 0.1, 0.1)


class TestRMAT:
    def test_size_and_skew(self):
        g = rmat(9, 8, seed=0)
        assert g.num_vertices == 512
        assert g.max_degree > 4 * g.avg_degree  # power-law-ish skew

    def test_rejects_bad_probs(self):
        with pytest.raises(ValueError):
            rmat(4, 4, a=0.5, b=0.4, c=0.4)


class TestPowerLawCommunity:
    def test_structure(self):
        g, comm = power_law_community_graph(1000, 10.0, num_communities=10,
                                            intra_fraction=0.9, seed=0)
        assert g.num_vertices == 1000
        assert g.is_undirected()
        assert len(comm) == 1000
        assert len(np.unique(comm)) == 10
        src, dst = g.edges()
        intra = np.mean(comm[src] == comm[dst])
        assert intra > 0.75  # planted locality survives dedup

    def test_intra_fraction_controls_locality(self):
        g_loc, c_loc = power_law_community_graph(800, 8.0, 8, intra_fraction=0.95, seed=1)
        g_mix, c_mix = power_law_community_graph(800, 8.0, 8, intra_fraction=0.3, seed=1)
        def intra(g, c):
            s, d = g.edges()
            return np.mean(c[s] == c[d])
        assert intra(g_loc, c_loc) > intra(g_mix, c_mix) + 0.2

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="intra_fraction"):
            power_law_community_graph(100, 5.0, 4, intra_fraction=1.5)

    def test_deterministic(self):
        g1, c1 = power_law_community_graph(300, 6.0, 6, seed=9)
        g2, c2 = power_law_community_graph(300, 6.0, 6, seed=9)
        assert g1 == g2
        assert np.array_equal(c1, c2)


class TestStreamingRequestStream:
    def test_exact_batch_size_guarantee(self):
        """Every batch has exactly batch_size distinct seeds — even when the
        hot set is tiny and hot_mass pushes most picks into it."""
        cand = np.arange(60)
        for seeds in streaming_request_stream(cand, 40, 50, hot_fraction=0.05,
                                              hot_mass=0.95, seed=0):
            assert len(seeds) == 50
            assert len(np.unique(seeds)) == 50
            assert np.all(np.isin(seeds, cand))

    def test_rejects_oversized_batch(self):
        """batch_size > |candidates| cannot yield distinct seeds: raise up
        front instead of silently under-filling."""
        with pytest.raises(ValueError, match="batch_size"):
            next(streaming_request_stream(np.arange(10), 1, 11, seed=0))

    def test_full_pool_batch_allowed(self):
        (seeds,) = streaming_request_stream(np.arange(10), 1, 10, seed=0)
        assert np.array_equal(seeds, np.arange(10))

    def test_rejects_duplicate_candidates(self):
        with pytest.raises(ValueError, match="distinct"):
            next(streaming_request_stream(np.array([1, 1, 2]), 1, 2, seed=0))

    def test_hot_set_drifts(self):
        """Batches after the drift point concentrate on a fresh hot set."""
        cand = np.arange(10_000)
        batches = list(streaming_request_stream(
            cand, 20, 64, hot_fraction=0.01, hot_mass=1.0,
            drift_interval=10, seed=4))
        before = np.unique(np.concatenate(batches[:10]))
        after = np.unique(np.concatenate(batches[10:]))
        overlap = len(np.intersect1d(before, after)) / len(after)
        assert overlap < 0.2

    def test_deterministic(self):
        a = list(streaming_request_stream(np.arange(100), 5, 8, seed=7))
        b = list(streaming_request_stream(np.arange(100), 5, 8, seed=7))
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
