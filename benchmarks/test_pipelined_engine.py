"""Functional pipelined engine: depth sweep on the drift workload.

Beyond the simulated depth ablation (``test_ablation_pipeline_depth``), this
benchmark exercises the *functional* ``pipelined`` execution engine: depth-P
in-flight minibatches per machine whose fetch plans are coalesced before the
peer exchange, so remote vertex ids shared by in-flight batches cross the
wire once.  On the drifting-training-set workload (community-hopping active
set on a hash-partitioned deployment — remote-heavy everywhere) we assert,
at equal seeds:

* **identical final losses** at every depth — pipelining changes where
  bytes travel, never what the model computes;
* **comm rows fall monotonically with depth** (depth 1 ≡ bsp; deeper
  windows deduplicate more);
* **simulated epoch time improves** via the unified event path: the
  engine's emitted windowed schedule prices faster than bsp's per-step
  schedule on the same cluster.
"""

import numpy as np
import pytest

from conftest import publish, run_once
from repro.core import RunConfig, SalientPP, make_partition
from repro.graph import drifting_training_sets
from repro.graph.datasets import make_synthetic_dataset
from repro.utils import Table

K = 4
ALPHA = 0.10
DEPTHS = [1, 4, 10]
EPOCHS = 4
PHASE_EPOCHS = 2
FANOUTS = (4, 3)
BATCH = 32


def make_drift_dataset():
    return make_synthetic_dataset(
        "pipeline-drift-mini",
        num_vertices=24_000,
        avg_degree=14.0,
        feature_dim=32,
        num_classes=8,
        num_communities=32,
        intra_fraction=0.97,
        power=2.8,
        train_frac=0.4,
        seed=1,
    )


def run_engine(ds, part, engine, depth):
    cfg = RunConfig(num_machines=K, partitioner="random",
                    replication_factor=ALPHA, fanouts=FANOUTS,
                    batch_size=BATCH, engine=engine,
                    pipeline_depth=depth, seed=0)
    system = SalientPP.build(ds, cfg, partition=part)
    phases = drifting_training_sets(
        system.reordered.dataset.train_idx,
        system.reordered.dataset.community,
        EPOCHS // PHASE_EPOCHS,
        active_fraction=0.18, window_fraction=0.10,
        background_fraction=0.1, seed=42,
    )
    comm = remote = coalesced = 0
    times = []
    final_loss = None
    for e in range(EPOCHS):
        if e % PHASE_EPOCHS == 0:
            system.update_training_set(phases[e // PHASE_EPOCHS])
        res = system.train_epoch(e)
        comm += res.report.total_comm_rows()
        remote += res.report.total_remote_rows()
        coalesced += res.report.total_coalesced_rows()
        times.append(res.epoch_time)
        final_loss = res.report.mean_loss
    return dict(comm=comm, remote=remote, coalesced=coalesced,
                epoch_time=float(np.mean(times)), final_loss=final_loss)


def run_depth_sweep():
    ds = make_drift_dataset()
    base = RunConfig(num_machines=K, partitioner="random",
                     fanouts=FANOUTS, batch_size=BATCH, seed=0)
    part = make_partition(ds, base.resolve(ds))
    out = {"bsp": run_engine(ds, part, "bsp", 1)}
    for d in DEPTHS:
        out[f"pipelined-{d}"] = run_engine(ds, part, "pipelined", d)
    return out


@pytest.mark.benchmark(group="engine")
def test_pipelined_engine_depth_sweep(benchmark):
    results = run_once(benchmark, run_depth_sweep)
    bsp = results["bsp"]

    table = Table(
        ["engine", "comm rows", "vs bsp", "coalesced", "epoch (ms)",
         "speedup", "final loss"],
        title=f"Pipelined engine — depth sweep under drift "
              f"(K={K}, a={ALPHA:g}, random partition)",
    )
    for name, r in results.items():
        table.add_row([
            name, r["comm"], f"{r['comm'] / bsp['comm']:.3f}x",
            r["coalesced"], 1000 * r["epoch_time"],
            f"{bsp['epoch_time'] / r['epoch_time']:.2f}x",
            f"{r['final_loss']:.6f}",
        ])
    publish("pipelined_engine_depth", table)

    # Pipelining must never change the training math.
    for name, r in results.items():
        assert r["final_loss"] == bsp["final_loss"], name
    # Depth 1 cannot coalesce: exactly bsp's traffic.
    assert results["pipelined-1"]["comm"] == bsp["comm"]
    assert results["pipelined-1"]["coalesced"] == 0
    # Comm rows fall monotonically with depth, strictly below bsp by 10.
    comms = [results[f"pipelined-{d}"]["comm"] for d in DEPTHS]
    for shallow, deep in zip(comms, comms[1:]):
        assert deep <= shallow
    assert comms[-1] < bsp["comm"], "depth-10 coalescing must cut real comm"
    # Unified event path: the windowed schedule prices no slower than bsp.
    assert (results["pipelined-10"]["epoch_time"]
            <= bsp["epoch_time"] * 1.001)
