"""§5.3 model accuracy: SALIENT++'s optimizations do not affect accuracy.

Paper (8 machines, 30 epochs, lr 1e-3, batch 1024/machine): test accuracy
0.785 (products), 0.646 (papers), 0.651 (mag240c validation).  On the
synthetic stand-ins absolute numbers differ; the asserted claims are
(a) distributed minibatch training reaches useful accuracy on every dataset,
and (b) accuracy with caching enabled is *identical* to accuracy without —
the cache is semantically transparent.
"""

import pytest

from repro.core import RunConfig
from conftest import publish, run_once
from repro.utils import Table

SETTINGS = [
    # (dataset, K, epochs) — scaled-down from the paper's 8 machines / 30
    # epochs to keep the functional numpy training affordable.
    ("products-mini", 4, 6),
    ("papers-mini", 8, 4),
    ("mag240c-mini", 8, 2),
]
PAPER_ACC = {"products-mini": 0.785, "papers-mini": 0.646, "mag240c-mini": 0.651}


def run_accuracy(artifacts):
    out = {}
    for name, K, epochs in SETTINGS:
        cfg = RunConfig(num_machines=K, replication_factor=0.32, lr=1e-3)
        system = artifacts.system(name, cfg)
        system.trainer.train(epochs)
        meta = artifacts.dataset(name).metadata["default_experiment"]
        out[name] = system.evaluate("test", fanouts=meta["inference_fanouts"])
    return out


@pytest.mark.benchmark(group="accuracy")
def test_accuracy_end_to_end(benchmark, artifacts):
    accs = run_once(benchmark, lambda: run_accuracy(artifacts))

    table = Table(["dataset", "test accuracy (mini)", "paper accuracy (OGB)"],
                  title="§5.3 — end-to-end accuracy (sampled inference)")
    for name, K, epochs in SETTINGS:
        table.add_row([name, accs[name], PAPER_ACC[name]])
    publish("accuracy", table)

    for name, acc in accs.items():
        assert acc > 0.45, f"{name}: distributed training must learn (got {acc:.3f})"
    benchmark.extra_info.update({k: round(v, 4) for k, v in accs.items()})


@pytest.mark.benchmark(group="accuracy")
def test_accuracy_cache_transparency(benchmark, artifacts):
    """Training losses with and without caching are bit-identical under the
    same seeds (the reproduction-level statement of 'optimizations do not
    impact model accuracy')."""
    name, K = "products-mini", 4

    def run():
        losses = {}
        for alpha in (0.0, 0.32):
            cfg = RunConfig(num_machines=K, replication_factor=alpha, seed=5)
            system = artifacts.system(name, cfg)
            reports = system.trainer.train(2)
            losses[alpha] = [r.mean_loss for r in reports]
        return losses

    losses = run_once(benchmark, run)
    assert losses[0.0] == losses[0.32], \
        "caching must be semantically transparent to training"
