"""Planner sweep smoke benchmark: Table 1's ladder through the staged DAG.

Not a paper figure — the harness-efficiency bench for the preprocessing
planner.  Builds the four-variant progressive ladder (§5, Table 1) on
products-mini through one :class:`repro.core.Planner` and asserts the
structural-reuse contract: partition / VIP / reorder are each computed at
most once for the whole sweep, with every other variant served from the
artifact cache.

This is the CI warm-cache job's smoke subset (``-m smoke``): the job runs it
twice against one ``REPRO_ARTIFACT_DIR``, and the second run (with
``REPRO_EXPECT_WARM_CACHE=1``) additionally asserts that *no* preprocessing
stage is recomputed — everything comes off disk.
"""

import pytest

from conftest import artifact_cache_dir, expect_warm_cache, publish, run_once
from repro.core import ArtifactCache, PREPROCESS_STAGES, Planner
from repro.core import progressive_variants, table1_alpha
from repro.graph import load_dataset
from repro.utils import Table

DATASET = "products-mini"
K = 4


def run_sweep(planner, dataset):
    times = {}
    for name, cfg in progressive_variants(K, table1_alpha(K)):
        system = planner.build(dataset, cfg)
        times[name] = system.mean_epoch_time(epochs=1)
    return times


@pytest.mark.smoke
@pytest.mark.benchmark(group="planner")
def test_planner_ladder_reuses_artifacts(benchmark):
    # A dedicated planner (not the session fixture) so the stage counters
    # below are attributable to this sweep alone.
    planner = Planner(ArtifactCache(artifact_cache_dir()))
    dataset = load_dataset(DATASET, seed=0)
    times = run_once(benchmark, lambda: run_sweep(planner, dataset))

    table = Table(
        ["stage", "computed", "memory hits", "disk hits"],
        title=f"Planner — stage execution over the {len(times)}-variant "
              f"ladder ({DATASET}, K={K})",
    )
    for stage, st in planner.stats.items():
        table.add_row([stage, st.computed, st.memory_hits, st.disk_hits])
    publish("planner_sweep", table)

    # Structural reuse: the expensive stages run at most once for the sweep
    # (zero times when REPRO_ARTIFACT_DIR already holds them).
    for stage in ("partition", "vip", "reorder"):
        st = planner.stats[stage]
        assert st.computed <= 1, f"{stage} recomputed {st.computed}x"
        assert st.computed + st.hits >= 1, f"{stage} never ran"
    # Only the caching variant selects a cache.
    assert planner.stats["cache-select"].computed <= 1
    # Store/trainer hold mutable runtime state: always rebuilt.
    assert planner.stats["store"].computed == len(times)

    if expect_warm_cache():
        # CI second pass: the on-disk artifact cache must serve everything.
        for stage in PREPROCESS_STAGES:
            st = planner.stats[stage]
            assert st.computed == 0, (
                f"warm cache miss: {stage} recomputed {st.computed}x"
            )
        assert sum(planner.stats[s].disk_hits for s in PREPROCESS_STAGES) > 0

    # The sweep still reproduces Table 1's qualitative ladder.
    assert times["+ Partitioned features"] > times["SALIENT (full replication)"]
    assert times["+ Feature caching"] < times["+ Partitioned features"]
