"""Ablation: pipeline depth (SALIENT++ keeps 10 minibatches in flight).

Not a paper figure — a design-choice bench for §4.3.  Epoch time
must fall monotonically with depth and saturate well before 10 (the depth
exists to cover the longest stage chain, not to add raw parallelism).
"""

import pytest

from repro.core import RunConfig
from repro.pipeline import simulate_epoch
from conftest import publish, run_once
from repro.utils import Table

DATASET = "papers-mini"
K = 8
DEPTHS = [1, 2, 3, 5, 10, 20]


def run_depth_sweep(artifacts):
    cfg = RunConfig(num_machines=K, replication_factor=0.32)
    system = artifacts.system(DATASET, cfg)
    report = system.trainer.train_epoch(0, dry_run=True)
    return {
        d: simulate_epoch(report, system.cost_model, depth=d).epoch_time
        for d in DEPTHS
    }


@pytest.mark.benchmark(group="ablation")
def test_ablation_pipeline_depth(benchmark, artifacts):
    times = run_once(benchmark, lambda: run_depth_sweep(artifacts))

    table = Table(["depth", "epoch (ms)", "vs depth 10"],
                  title=f"Ablation — pipeline depth ({DATASET}, {K} GPUs, a=0.32)")
    for d in DEPTHS:
        table.add_row([d, 1000 * times[d], f"{times[d] / times[10]:.2f}x"])
    publish("ablation_pipeline_depth", table)

    # Monotone non-increasing in depth; saturates by depth 10.
    for a, b in zip(DEPTHS, DEPTHS[1:]):
        assert times[b] <= times[a] + 1e-12
    assert times[1] > times[10], "depth-1 (no pipelining) must be slower"
    assert times[20] >= times[10] * 0.98, "returns saturate near depth 10"
