"""Tables 2 & 3: dataset and architecture summaries (the experiment setup).

Prints the mini stand-ins next to the paper's datasets and asserts the
preserved relative properties (train fractions, feature-width ratio between
mag240c and papers, degree skew).
"""

import numpy as np
import pytest

from conftest import publish, run_once
from repro.utils import Table

PAPER_TABLE2 = {
    "products-mini": ("ogbn-products", 2.4e6, 123e6, 100),
    "papers-mini": ("ogbn-papers100M", 111e6, 3.2e9, 128),
    "mag240c-mini": ("lsc-mag240 (papers)", 121e6, 2.6e9, 768),
}


def load_all(artifacts):
    return {name: artifacts.dataset(name) for name in PAPER_TABLE2}


@pytest.mark.benchmark(group="tables23")
def test_table2_datasets(benchmark, artifacts):
    datasets = run_once(benchmark, lambda: load_all(artifacts))

    t2 = Table(["mini dataset", "V", "E", "D", "train/val/test",
                "paper dataset", "paper V", "paper E", "paper D"],
               title="Table 2 — datasets (mini stand-ins vs paper)")
    for name, ds in datasets.items():
        paper_name, pv, pe, pd = PAPER_TABLE2[name]
        t2.add_row(ds.summary_row() + [paper_name, f"{pv:.2g}", f"{pe:.2g}", pd])
    publish("table2", t2)

    t3 = Table(["dataset", "GNN", "layers", "hidden", "fanout", "batch/GPU"],
               title="Table 3 — architectures (scaled analogs)")
    for name, ds in datasets.items():
        meta = ds.metadata["default_experiment"]
        t3.add_row([name, "SAGE", meta["num_layers"], meta["hidden_dim"],
                    str(meta["fanouts"]), meta["batch_size"]])
    publish("table3", t3)

    papers = datasets["papers-mini"]
    mag = datasets["mag240c-mini"]
    products = datasets["products-mini"]

    # mag240c features are 6x wider than papers (768/128 in the paper).
    assert mag.feature_dim / papers.feature_dim == pytest.approx(6.0)
    # products is the densest graph, papers the largest.
    assert products.graph.avg_degree > papers.graph.avg_degree
    assert papers.num_vertices > mag.num_vertices > 0
    # Heavy-tailed degrees (citation-like skew).
    for ds in datasets.values():
        assert ds.graph.max_degree > 10 * ds.graph.avg_degree
