"""Shared benchmark infrastructure.

Every benchmark module reproduces one table or figure of the paper: it runs
the corresponding experiment on the mini datasets, prints a paper-vs-measured
table, writes the same table under ``benchmarks/results/``, and asserts the
paper's *qualitative* claim (orderings, crossovers, reduction factors — see
docs/architecture.md, "Datasets and calibration").

Heavyweight preprocessing is shared through one session-wide
:class:`repro.core.Planner`: system variants that agree on a stage's inputs
hit the artifact cache instead of recomputing (no manual ``partition=``
threading), mirroring the paper's amortized dataset preparation.  Set
``REPRO_ARTIFACT_DIR`` to also persist artifacts on disk across processes —
the CI warm-cache job runs the ``smoke``-marked sweep twice against one
directory and asserts the second run recomputes nothing.
"""

import os

import pytest

from repro.core import ArtifactCache, Planner, RunConfig
from repro.graph import load_dataset

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "smoke: fast sweep subset the CI warm-artifact-cache job runs twice",
    )


def artifact_cache_dir():
    """On-disk artifact cache directory (``None`` = memory-only)."""
    return os.environ.get("REPRO_ARTIFACT_DIR") or None


def expect_warm_cache() -> bool:
    """True when the CI warm-cache job asserts the all-disk-hits path."""
    value = os.environ.get("REPRO_EXPECT_WARM_CACHE", "")
    return value.lower() not in ("", "0", "false", "no")


class BenchArtifacts:
    """Session-wide planner + dataset memo shared by all benchmarks."""

    def __init__(self):
        self.planner = Planner(ArtifactCache(artifact_cache_dir()))
        self._datasets = {}

    def dataset(self, name, seed=0):
        key = (name, seed)
        if key not in self._datasets:
            self._datasets[key] = load_dataset(name, seed=seed)
        return self._datasets[key]

    def partition(self, name, num_machines, seed=0):
        ds = self.dataset(name, seed)
        cfg = RunConfig(num_machines=num_machines, seed=seed)
        return self.planner.artifact(ds, cfg, "partition")

    def system(self, name, config, seed=0):
        """Build a system through the shared planner: every preprocessing
        stage unchanged since a previous build is a cache hit.

        ``seed`` selects the dataset *instance* only; all preprocessing and
        training randomness comes from ``config.seed`` (the planner treats
        the config as the sole source of stage randomness)."""
        return self.planner.build(self.dataset(name, seed), config)


@pytest.fixture(scope="session")
def artifacts():
    return BenchArtifacts()


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)


def publish(name: str, table) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    text = table.render() if hasattr(table, "render") else str(table)
    print("\n" + text + "\n")
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def run_once(benchmark, fn):
    """Register ``fn`` with pytest-benchmark, executing it exactly once
    (these are experiment harnesses, not microbenchmarks)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
