"""Shared benchmark infrastructure.

Every benchmark module reproduces one table or figure of the paper: it runs
the corresponding experiment on the mini datasets, prints a paper-vs-measured
table, writes the same table under ``benchmarks/results/``, and asserts the
paper's *qualitative* claim (orderings, crossovers, reduction factors — see
docs/architecture.md, "Datasets and calibration").

Heavyweight artifacts (datasets, partitions, VIP matrices) are cached at
session scope so the suite shares preprocessing, mirroring the paper's
amortized dataset preparation.
"""

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.core import RunConfig, SalientPP, make_partition
from repro.graph import load_dataset

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class ArtifactCache:
    """Session-wide memo for datasets, partitions, and built systems."""

    def __init__(self):
        self._datasets = {}
        self._partitions = {}
        self._vip = {}

    def dataset(self, name, seed=0):
        key = (name, seed)
        if key not in self._datasets:
            self._datasets[key] = load_dataset(name, seed=seed)
        return self._datasets[key]

    def partition(self, name, num_machines, seed=0):
        key = (name, num_machines, seed)
        if key not in self._partitions:
            ds = self.dataset(name, seed)
            cfg = RunConfig(num_machines=num_machines, seed=seed).resolve(ds)
            self._partitions[key] = make_partition(ds, cfg)
        return self._partitions[key]

    def system(self, name, config, seed=0):
        ds = self.dataset(name, seed)
        part = self.partition(name, config.num_machines, seed)
        return SalientPP.build(ds, config, partition=part)


@pytest.fixture(scope="session")
def artifacts():
    return ArtifactCache()


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)


def publish(name: str, table) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    text = table.render() if hasattr(table, "render") else str(table)
    print("\n" + text + "\n")
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def run_once(benchmark, fn):
    """Register ``fn`` with pytest-benchmark, executing it exactly once
    (these are experiment harnesses, not microbenchmarks)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
