"""§5.3 preprocessing overheads: VIP computation and partitioning costs.

Paper (papers, 8 nodes, alpha=0.32): VIP weights for fanout (15,10,5) take
11.8s; serial METIS partitioning ~2h (on constrained hardware) and
reordering 30 min — amortized across experiments.  Here we measure the same
pipeline stages on papers-mini and assert the *relative* claim: VIP analysis
is orders of magnitude cheaper than partitioning, i.e. it adds negligible
preprocessing on top of any partition-based workflow.
"""

import time

import pytest

from repro.core import RunConfig, make_partition
from repro.partition import reorder_dataset
from repro.vip import partitionwise_vip
from conftest import publish, run_once
from repro.utils import Table

DATASET = "papers-mini"
K = 8


def run_preprocessing(artifacts):
    ds = artifacts.dataset(DATASET)
    cfg = RunConfig(num_machines=K).resolve(ds)

    t0 = time.perf_counter()
    part = make_partition(ds, cfg)
    t_partition = time.perf_counter() - t0

    t0 = time.perf_counter()
    vip = partitionwise_vip(ds.graph, part, ds.train_idx, cfg.fanouts,
                            cfg.batch_size)
    t_vip = time.perf_counter() - t0

    t0 = time.perf_counter()
    reorder_dataset(ds, part)
    t_reorder = time.perf_counter() - t0
    return t_partition, t_vip, t_reorder


@pytest.mark.benchmark(group="preprocessing")
def test_preprocessing_overheads(benchmark, artifacts):
    t_partition, t_vip, t_reorder = run_once(
        benchmark, lambda: run_preprocessing(artifacts))

    table = Table(["stage", "measured (s)", "paper (papers100M)"],
                  title=f"§5.3 — preprocessing overheads ({DATASET}, {K} parts)")
    table.add_row(["METIS-like partitioning", t_partition, "~2 h (serial METIS)"])
    table.add_row(["VIP weights (Prop. 1)", t_vip, "11.8 s"])
    table.add_row(["reordering", t_reorder, "~30 min"])
    publish("preprocessing", table)

    # VIP analysis is cheap relative to partitioning (the paper's point:
    # it adds negligible cost to any partitioning workflow).
    assert t_vip < t_partition
    assert t_vip < 30.0
    benchmark.extra_info["vip_seconds"] = round(t_vip, 3)
