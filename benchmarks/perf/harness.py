"""Perf-regression harness: times the system's hot paths, writes BENCH_PERF.json.

Every tracked stage measures *wall time of real work* on the standard
synthetic datasets — no simulated clocks — and reports::

    stage -> {"wall_s": ..., "rows_per_s": ..., "speedup_vs_dense": ...}

``speedup_vs_dense`` compares against the seed (dense / allocating)
implementation where one is kept: Proposition-1 VIP against
``partitionwise_vip_dense``, the serving vip-refresh recomputation against
``vip_probabilities_dense``, ``gather_into`` against the allocating
``execute``, and the rewritten ``FetchPlan.coalesce`` against the seed's
searchsorted-per-plan bookkeeping.  ``null`` where no dense counterpart
exists.

Tracked stages
--------------
``preprocess.partition / vip / reorder / cache_select / store_build``
    The §4.1–4.2 preprocessing pipeline on papers-mini, 8 partitions.
    ``preprocess.vip`` is the headline: active-set Proposition 1 with the
    shared transition cache versus the dense per-partition recursions,
    asserted bit-identical before timing is reported.
``train.epoch_<engine>``
    One dry-run functional epoch per execution engine (sampling + gather +
    event emission; no model math), rows/s = gathered feature rows.
``train.epoch_bsp_multiproc``
    One *real* (weight-updating) bsp epoch through the multiproc cluster
    backend — 8 worker processes over shared-memory feature segments and
    wire-format plans — against the identical real epoch in-process
    (``dense_wall_s``), asserted loss-identical before timing is reported.
    Extra keys carry the one-time spawn/handshake wall time.
``serving.latency``
    An open-loop Poisson serving run (deadline batcher, static VIP cache);
    extra keys carry the simulated p50/p99 for context.
``serving.cache_refresh``
    Wall time the vip-refresh score provider (request-VIP through
    Proposition 1) spends recomputing during a drifting serving run — the
    CACHE_REFRESH stage cost — with the dense-recursion equivalent timed on
    the same observed traffic for the speedup.
``vip.incremental_refresh``
    Streaming-graph VIP maintenance: per churn window (100-edge batches in
    communities away from the seed distribution, ~0.007% of the edge set),
    ``incremental_vip`` against the full consumer path — CSR rebuild via
    ``materialize()`` plus ``vip_probabilities`` — asserted bit-identical
    each window before the median walls are reported.  ``dense_wall_s``
    includes the rebuild because that is what a snapshot-less consumer
    pays to evaluate on the mutated graph.
``recovery.mttr``
    Mean time-to-recovery for the standard chaos scenario: a worker killed
    mid-epoch on a real recoverable multiproc cluster, detected by the
    coordinator, respawned, restored from the epoch-boundary checkpoint,
    and the interrupted epoch replayed — asserted bit-identical to a
    fault-free oracle before the detect/backoff/respawn/replay walls are
    reported.
``gather.into``
    Arena-backed ``gather_into`` against the allocating ``execute`` on
    identical id streams.
``coalesce.depth16``
    ``FetchPlan.coalesce`` at depth 16 (the satellite's depth ≥ 10 regime)
    against the seed bookkeeping.

Run ``python benchmarks/perf/run.py`` (see ``--help``) to produce
``BENCH_PERF.json`` at the repo root; the CI ``perf-smoke`` job uploads it
and fails on > 2x wall-time regression of any stage versus
``benchmarks/perf/baselines.json``.
"""

import time

import numpy as np

from repro.core import Planner, RunConfig, ServingConfig
from repro.distributed import FetchPlan, GatherArena
from repro.graph import load_dataset
from repro.serving import poisson_requests
from repro.vip import (
    partitionwise_vip,
    partitionwise_vip_dense,
    vip_probabilities,
    vip_probabilities_dense,
)

DATASET = "papers-mini"
K = 8
SERVE_K = 4
SERVE_ALPHA = 0.05
SERVE_REFRESH_INTERVAL = 8


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _best_of(fn, repeats=3):
    best, out = _timed(fn)
    for _ in range(repeats - 1):
        t, out = _timed(fn)
        best = min(best, t)
    return best, out


def _entry(wall_s, rows=None, dense_wall_s=None, **extra):
    entry = {
        "wall_s": round(wall_s, 6),
        "rows_per_s": None if rows is None else round(rows / max(wall_s, 1e-12), 2),
        "speedup_vs_dense": (None if dense_wall_s is None
                             else round(dense_wall_s / max(wall_s, 1e-12), 3)),
    }
    if dense_wall_s is not None:
        entry["dense_wall_s"] = round(dense_wall_s, 6)
    entry.update(extra)
    return entry


# ----------------------------------------------------------------------
def preprocessing_stages(stages: dict, *, dataset=None) -> None:
    """partition -> vip (vs dense, bit-identical) -> reorder ->
    cache-select -> store build, on papers-mini with 8 partitions."""
    from repro.core import make_partition
    from repro.distributed import PartitionedFeatureStore
    from repro.partition import reorder_dataset
    from repro.vip import CacheContext, VIPAnalyticPolicy, build_caches

    ds = dataset if dataset is not None else load_dataset(DATASET)
    cfg = RunConfig(num_machines=K).resolve(ds)
    n = ds.num_vertices

    wall, part = _timed(lambda: make_partition(ds, cfg))
    stages["preprocess.partition"] = _entry(wall, rows=n)

    # Best of two runs on both sides: the second active run measures the
    # steady state every real consumer sees (the K partition rows — and any
    # later refresh — share one warm TransitionTable per graph).
    dense_wall, vip_dense = _best_of(lambda: partitionwise_vip_dense(
        ds.graph, part, ds.train_idx, cfg.fanouts, cfg.batch_size), repeats=2)
    wall, vip = _best_of(lambda: partitionwise_vip(
        ds.graph, part, ds.train_idx, cfg.fanouts, cfg.batch_size), repeats=2)
    if not np.array_equal(vip, vip_dense):
        raise AssertionError(
            "active-set partitionwise_vip diverged from the dense baseline"
        )
    stages["preprocess.vip"] = _entry(wall, rows=K * n,
                                      dense_wall_s=dense_wall,
                                      bit_identical=True)

    score = np.zeros(n)
    for k in range(K):
        mask = part.assignment == k
        score[mask] = vip[k][mask]
    wall, reordered = _timed(
        lambda: reorder_dataset(ds, part, within_part_score=score))
    stages["preprocess.reorder"] = _entry(wall, rows=n)

    ctx = CacheContext(reordered.dataset.graph, reordered.partition,
                       reordered.dataset.train_idx, cfg.fanouts,
                       cfg.batch_size, seed=0)
    wall, caches = _timed(
        lambda: build_caches(VIPAnalyticPolicy(), ctx, alpha=0.1))
    stages["preprocess.cache_select"] = _entry(
        wall, rows=sum(len(c) for c in caches))

    wall, _store = _timed(lambda: PartitionedFeatureStore.build(
        reordered, gpu_fraction=0.5, caches=caches))
    stages["preprocess.store_build"] = _entry(wall, rows=n)
    return reordered


# ----------------------------------------------------------------------
def engine_stages(stages: dict, *, engines=("bsp", "pipelined", "async"),
                  dataset=None) -> None:
    """One dry-run epoch per engine: sampling + (coalesced) gathers +
    events, priced by gathered rows per wall second."""
    ds = dataset if dataset is not None else load_dataset(DATASET)
    planner = Planner()
    for engine in engines:
        cfg = RunConfig(num_machines=K, replication_factor=0.1,
                        cache_policy="vip", engine=engine,
                        pipeline_depth=6, staleness=2, seed=0)
        system = planner.build(ds, cfg)
        wall, result = _timed(
            lambda system=system: system.train_epoch(0, dry_run=True))
        rows = sum(r.gather.total_rows for r in result.report.records)
        stages[f"train.epoch_{engine}"] = _entry(wall, rows=rows)


# ----------------------------------------------------------------------
def multiproc_stages(stages: dict, *, dataset=None) -> None:
    """Real bsp epochs on the multiproc backend vs the same epochs
    in-process.  Two epochs per side: the first multiproc epoch pays the
    workers' page-table first-touch of the shared segments, the second is
    the steady state every multi-epoch run sees; spawn/handshake cost is
    reported separately.  The cluster is then parked in the warm pool and
    a fresh identically-configured backend restarts from it, measuring the
    amortized (warm) start.  ``cores`` records the CPU budget the run
    actually had — baseline checks that assert real parallelism beats the
    simulator only apply when at least ``requires_cores`` were available
    (8 workers time-slicing one core can eliminate overhead, not compute).
    """
    import dataclasses
    import os

    from repro.distributed.multiproc import WORKER_POOL

    ds = dataset if dataset is not None else load_dataset(DATASET)
    planner = Planner()
    cfg = RunConfig(num_machines=K, replication_factor=0.1,
                    cache_policy="vip", engine="bsp", seed=0)
    ref = planner.build(ds, cfg)
    dense_wall, ref_result = _timed(lambda: ref.train_epoch(0))
    dense_wall2, ref_result2 = _timed(lambda: ref.train_epoch(1))

    mp_cfg = dataclasses.replace(cfg, backend="multiproc")
    mp = planner.build(ds, mp_cfg)
    backend = mp.backend()
    backend.keep_warm = True
    spawn_wall, _ = _timed(backend.start)
    try:
        wall, result = _timed(lambda: mp.train_epoch(0))
        wall2, result2 = _timed(lambda: mp.train_epoch(1))
    finally:
        mp.shutdown()  # parks the workers (keep_warm)

    warm = planner.build(ds, mp_cfg)
    warm_backend = warm.backend()
    try:
        warm_start_wall, _ = _timed(warm_backend.start)
        reused = warm_backend.reused_pool
        warm_wall, warm_result = _timed(lambda: warm.train_epoch(0))
    finally:
        warm.shutdown()
        WORKER_POOL.clear()

    for got, want, what in (
        (result.report.mean_loss, ref_result.report.mean_loss, "epoch 0"),
        (result2.report.mean_loss, ref_result2.report.mean_loss, "epoch 1"),
        (warm_result.report.mean_loss, ref_result.report.mean_loss,
         "warm-restart epoch 0"),
    ):
        if got != want:
            raise AssertionError(
                f"multiproc real {what} diverged from the in-process oracle"
            )
    if not reused:
        raise AssertionError("warm restart did not reuse the parked workers")

    rows = sum(r.gather.total_rows for r in result2.report.records)
    # Wire accounting comes from the second (parked) backend's cumulative
    # tables: control tokens only, so bytes stay tiny relative to rows.
    wire_sent_bytes = sum(b for _n, b in backend.wire_sent.values())
    wire_received_bytes = sum(b for _n, b in backend.wire_received.values())
    stages["train.epoch_bsp_multiproc"] = _entry(
        wall2, rows=rows, dense_wall_s=dense_wall2,
        first_epoch_wall_s=round(wall, 6),
        spawn_wall_s=round(spawn_wall, 6),
        warm_start_wall_s=round(warm_start_wall, 6),
        warm_epoch_wall_s=round(warm_wall, 6),
        cores=len(os.sched_getaffinity(0)),
        workers=K,
        wire_sent_bytes=wire_sent_bytes,
        wire_received_bytes=wire_received_bytes,
        warm_pool_hit=bool(reused),
        warm_pool_miss=bool(not reused),
        mean_loss=round(result.report.mean_loss, 6), bit_identical=True)


# ----------------------------------------------------------------------
def recovery_stages(stages: dict, *, epochs=2) -> None:
    """Mean time-to-recovery for a standard mid-epoch kill.

    A small recoverable cluster (the failure walls — detection, respawn,
    checkpoint restore — do not scale with the dataset, so this stage uses
    the tiny graph to keep the chaos scenario cheap) trains under a
    ``FaultPlan`` that kills one worker mid-epoch; ``RecoveryManager``
    detects, backs off (zero jitter, so the stage is deterministic),
    respawns, restores the epoch-boundary checkpoint, and replays.  The
    recovered losses are asserted bit-identical to a fault-free oracle
    before any wall is reported; ``wall_s`` is ``mttr_s()`` — the
    detect + backoff + recover + replay total.
    """
    from repro.core import SalientPP
    from repro.distributed import (
        FaultPlan,
        MultiprocBackend,
        RecoveryManager,
        RecoveryPolicy,
    )
    from repro.distributed.multiproc import WORKER_POOL
    from repro.graph.datasets import make_tiny

    def build_system():
        ds = make_tiny(seed=3, num_vertices=2000)
        cfg = RunConfig(num_machines=2, fanouts=(4, 3), batch_size=16,
                        hidden_dim=16, replication_factor=0.05,
                        gpu_fraction=0.5, seed=0)
        return SalientPP.build(ds, cfg)

    def losses(reports):
        return [[rec.loss for rec in rep.records] for rep in reports]

    oracle_backend = MultiprocBackend(build_system(), timeout_s=60.0)
    try:
        oracle = losses([oracle_backend.run_epoch(e) for e in range(epochs)])
    finally:
        oracle_backend.close()

    backend = MultiprocBackend(
        build_system(), timeout_s=60.0, recoverable=True,
        faults=FaultPlan.single("kill", machine=1, epoch=1, step=1))
    manager = RecoveryManager(backend, RecoveryPolicy(
        max_restarts=2, backoff_base_s=0.01, backoff_max_s=0.02, jitter=0.0))
    try:
        wall, reports = _timed(lambda: manager.train(epochs))
    finally:
        backend.close()
        WORKER_POOL.clear()
    if losses(reports) != oracle:
        raise AssertionError(
            "recovered run diverged from the fault-free oracle"
        )
    rec = manager.recoveries[0]
    stages["recovery.mttr"] = _entry(
        manager.mttr_s(),
        detect_s=round(rec["detect_s"], 6),
        backoff_s=round(rec["backoff_s"], 6),
        recover_s=round(rec["recover_s"], 6),
        replay_s=round(rec["replay_s"], 6),
        restarts=manager.restarts,
        train_wall_s=round(wall, 6),
        workers=2, fault="kill@epoch1:step1", bit_identical=True)


# ----------------------------------------------------------------------
def _serving_config(cache_policy: str) -> RunConfig:
    return RunConfig(
        num_machines=SERVE_K, partitioner="random", fanouts=(5, 4, 3),
        batch_size=32, replication_factor=SERVE_ALPHA,
        cache_policy=cache_policy, refresh_interval=SERVE_REFRESH_INTERVAL,
        cache_aging_interval=16, network_gbps=0.5, seed=0,
        serving=ServingConfig(batcher="deadline", max_batch=8,
                              max_wait_ms=15.0, max_in_flight=4),
    )


def _serving_requests(ds, num_requests):
    return poisson_requests(
        np.arange(ds.num_vertices), num_requests, 8, rate_rps=8_000.0,
        hot_fraction=0.001, hot_mass=0.95,
        drift_interval=max(num_requests // 4, 1), seed=11,
    )


def serving_stages(stages: dict, *, num_requests=1_200, dataset=None) -> None:
    """An open-loop serving run (latency stage), then an instrumented
    vip-refresh run isolating the CACHE_REFRESH recomputation cost."""
    ds = dataset if dataset is not None else load_dataset(DATASET)
    planner = Planner()

    # -- serving.latency: static VIP cache, no refresh machinery. -------
    service = planner.build_service(ds, _serving_config("vip"))
    wall, report = _timed(
        lambda: service.run(_serving_requests(ds, num_requests)))
    summary = report.summary()
    stages["serving.latency"] = _entry(
        wall, rows=report.gather.total_rows,
        p50_ms=round(summary["p50_ms"], 3), p99_ms=round(summary["p99_ms"], 3),
        comm_rows=int(report.gather.comm_rows()),
    )

    # -- serving.cache_refresh: time the refresh-score provider. --------
    service = planner.build_service(ds, _serving_config("vip-refresh"))
    provider = service.store._refresh_score_fn
    refresh_walls = []

    def timed_provider(machine: int) -> np.ndarray:
        t0 = time.perf_counter()
        scores = provider(machine)
        refresh_walls.append(time.perf_counter() - t0)
        return scores

    service.store.set_refresh_score_provider(timed_provider)
    service.run(_serving_requests(ds, num_requests))
    if not refresh_walls:
        raise AssertionError("no vip-refresh recomputation was triggered")

    # Dense counterpart on the same observed traffic: rebuild the request
    # p0 exactly as InferenceService._request_vip_scores does and run the
    # seed recursion on it.
    graph = service.graph
    machine = int(np.argmax([len(r) for r in service._recent_seeds]))
    recent = service._recent_seeds[machine]
    counts = np.zeros(graph.num_vertices, dtype=np.float64)
    for seeds in recent:
        counts[seeds] += 1.0
    p0 = counts / max(len(recent), 1)
    active_wall, res_a = _best_of(
        lambda: vip_probabilities(graph, p0, service.fanouts))
    dense_wall, res_d = _best_of(
        lambda: vip_probabilities_dense(graph, p0, service.fanouts))
    if not np.array_equal(res_a.access, res_d.access):
        raise AssertionError("request-VIP refresh scores diverged from dense")
    total_wall = sum(refresh_walls)
    # The speedup is measured per call on the same observed p0 (active vs
    # seed recursion); the reported dense wall scales the run's actual
    # refresh time by that per-call ratio.
    stages["serving.cache_refresh"] = _entry(
        total_wall, rows=len(refresh_walls) * graph.num_vertices,
        dense_wall_s=total_wall * dense_wall / max(active_wall, 1e-12),
        refresh_calls=len(refresh_walls),
        per_call_wall_s=round(total_wall / len(refresh_walls), 6),
        per_call_dense_wall_s=round(dense_wall, 6),
    )


# ----------------------------------------------------------------------
def streaming_stages(stages: dict, *, dataset=None, num_windows=5,
                     batch_edges=100) -> None:
    """Incremental VIP refresh under streaming churn vs the full consumer
    path (CSR rebuild + dense Proposition-1 sweep), bit-identical each
    window.

    The scenario is the continual-training shape: the seed distribution is
    one partition's train set (the largest community), churn arrives in
    *other* communities — the common case where most mutations land far
    from any given consumer's hot region and the dirty-frontier wave stays
    small.
    """
    from repro.graph.generators import edge_stream
    from repro.graph.mutable import MutableGraph
    from repro.vip import incremental_vip, snapshot_vip
    from repro.vip.analytic import uniform_minibatch_probability

    ds = dataset if dataset is not None else load_dataset(DATASET)
    graph = ds.graph
    n = graph.num_vertices
    big = int(np.argmax(np.bincount(ds.community)))
    train = np.intersect1d(ds.train_idx, np.flatnonzero(ds.community == big))
    p0 = uniform_minibatch_probability(n, train, 1024)
    fanouts = (15, 10, 5)
    remote = np.flatnonzero(ds.community != big)

    mgraph = MutableGraph(graph, undirected=True, compact_cutoff=None)
    snap = snapshot_vip(mgraph, p0, fanouts)
    inc_walls, dense_walls = [], []
    edges_touched = rows_recomputed = churned = 0
    for batch in edge_stream(mgraph, num_batches=num_windows,
                             batch_edges=batch_edges, pool=remote,
                             delete_fraction=0.3, seed=7):
        mgraph.apply(batch)
        churned += batch.num_ops
        wall, snap = _timed(
            lambda: incremental_vip(mgraph, snap, churn_cutoff=1.0))
        inc_walls.append(wall)
        edges_touched += snap.stats.edges_touched
        rows_recomputed += snap.stats.rows_recomputed
        # The snapshot-less consumer must rebuild a CSR of the mutated
        # graph before it can sweep — clear the materialize cache so the
        # rebuild is actually paid, as it would be per window.
        mgraph._csr, mgraph._csr_version = None, -1
        dense_wall, ref = _timed(lambda: vip_probabilities(
            mgraph.materialize(), p0, fanouts))
        dense_walls.append(dense_wall)
        if not np.array_equal(snap.result.total, ref.total):
            raise AssertionError(
                "incremental_vip diverged from the full sweep on the "
                "materialized graph"
            )
    stages["vip.incremental_refresh"] = _entry(
        float(np.median(inc_walls)), rows=rows_recomputed,
        dense_wall_s=float(np.median(dense_walls)),
        windows=num_windows, churn_edges=churned,
        edges_touched=edges_touched, bit_identical=True)


# ----------------------------------------------------------------------
def _gather_substrate(dataset=None, reordered=None):
    from repro.core import make_partition
    from repro.distributed import PartitionedFeatureStore
    from repro.partition import reorder_dataset

    if reordered is None:
        ds = dataset if dataset is not None else load_dataset(DATASET)
        cfg = RunConfig(num_machines=SERVE_K).resolve(ds)
        reordered = reorder_dataset(ds, make_partition(ds, cfg))
    return PartitionedFeatureStore.build(reordered, gpu_fraction=0.5)


def gather_stages(stages: dict, *, dataset=None, reordered=None, rounds=60,
                  ids_per_round=4_096) -> None:
    """Arena-backed gather_into vs the allocating execute on one store."""
    store = _gather_substrate(dataset, reordered)
    machines = store.num_machines
    n = store.reordered.dataset.num_vertices
    rng = np.random.default_rng(0)
    id_sets = [np.sort(rng.choice(n, ids_per_round, replace=False))
               for _ in range(rounds)]

    def allocating():
        for i, ids in enumerate(id_sets):
            store.execute(store.plan_gather(i % machines, ids))

    def arena_backed():
        arena = GatherArena()
        for i, ids in enumerate(id_sets):
            machine = i % machines
            out = arena.out(machine, len(ids), store.feature_dim,
                            store.stores[machine].local_features.dtype)
            store.gather_into(machine, ids, out)

    dense_wall, _ = _best_of(allocating, repeats=3)
    wall, _ = _best_of(arena_backed, repeats=3)

    # The arena's payoff is allocation elimination (wall time is copy-bound
    # at this row scale): trace one steady-state gather each way — the
    # arena path's allocations must not include the output matrix.
    import tracemalloc

    def _alloc_mb(fn):
        tracemalloc.start()
        fn()
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak / 1e6

    warm_arena = GatherArena()
    ids0 = id_sets[0]
    dtype0 = store.stores[0].local_features.dtype
    out0 = warm_arena.out(0, len(ids0), store.feature_dim, dtype0)
    store.gather_into(0, ids0, out0)  # warm the arena buffer
    dense_alloc = _alloc_mb(lambda: store.execute(store.plan_gather(0, ids0)))
    arena_alloc = _alloc_mb(lambda: store.gather_into(
        0, ids0, warm_arena.out(0, len(ids0), store.feature_dim, dtype0)))
    stages["gather.into"] = _entry(wall, rows=rounds * ids_per_round,
                                   dense_wall_s=dense_wall,
                                   step_alloc_mb=round(arena_alloc, 3),
                                   dense_step_alloc_mb=round(dense_alloc, 3))


def coalesce_stages(stages: dict, *, dataset=None, reordered=None, depth=16,
                    ids_per_plan=4_096, repeats=5) -> None:
    """FetchPlan.coalesce (single unique-with-inverse pass) vs the seed's
    per-plan searchsorted bookkeeping, at the depth >= 10 regime."""
    store = _gather_substrate(dataset, reordered)
    n = store.reordered.dataset.num_vertices
    rng = np.random.default_rng(1)
    plans = [store.plan_gather(0, np.sort(rng.choice(
        n, ids_per_plan, replace=False)))
        for _ in range(depth)]

    def seed_coalesce():
        unique_remote = np.unique(
            np.concatenate([p.remote_ids for p in plans]))
        seen = np.zeros(len(unique_remote), dtype=bool)
        first_request = []
        for p in plans:
            slots = np.searchsorted(unique_remote, p.remote_ids)
            fresh = ~seen[slots]
            seen[slots] = True
            first_request.append(fresh)
        return unique_remote, first_request

    dense_wall, (ref_unique, ref_fresh) = _best_of(seed_coalesce, repeats)
    wall, cplan = _best_of(lambda: FetchPlan.coalesce(plans), repeats)
    if not np.array_equal(cplan.unique_remote_ids, ref_unique):
        raise AssertionError("coalesce rewrite changed the remote pool")
    for fresh, want in zip(cplan.first_request, ref_fresh):
        if not np.array_equal(fresh, want):
            raise AssertionError("coalesce rewrite changed fetch attribution")
    stages[f"coalesce.depth{depth}"] = _entry(
        wall, rows=sum(len(p.remote_ids) for p in plans),
        dense_wall_s=dense_wall, depth=depth)


# ----------------------------------------------------------------------
def run_all(*, num_requests=1_200, engines=("bsp", "pipelined", "async")) -> dict:
    """Run every tracked stage; returns the BENCH_PERF document."""
    stages: dict = {}
    dataset = load_dataset(DATASET)
    reordered = preprocessing_stages(stages, dataset=dataset)
    engine_stages(stages, engines=engines, dataset=dataset)
    multiproc_stages(stages, dataset=dataset)
    recovery_stages(stages)
    serving_stages(stages, num_requests=num_requests, dataset=dataset)
    streaming_stages(stages, dataset=dataset)
    gather_stages(stages, reordered=reordered)
    coalesce_stages(stages, reordered=reordered)
    return {
        "schema": 1,
        "dataset": DATASET,
        "num_machines": K,
        "generated_by": "benchmarks/perf/run.py",
        "stages": stages,
    }
