#!/usr/bin/env python
"""Run the perf-regression harness and write BENCH_PERF.json.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/run.py                 # full run
    PYTHONPATH=src python benchmarks/perf/run.py --check \\
        benchmarks/perf/baselines.json                           # CI gate

Writes the machine-readable stage table (``stage -> {wall_s, rows_per_s,
speedup_vs_dense}``) to ``BENCH_PERF.json`` at the repo root by default.
With ``--check``, every tracked stage's wall time is compared against the
committed baseline and the process exits non-zero if any stage regressed by
more than the baseline file's ``max_regression`` factor (generous, to ride
out CI-runner variance) — or if a tracked speedup fell below its floor.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
_REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
if os.path.isdir(os.path.join(_REPO_ROOT, "src", "repro")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

import harness  # noqa: E402  (sibling module; resolved via the path insert)


def check_against_baselines(doc: dict, baselines: dict) -> list:
    """Return a list of human-readable violations (empty = pass)."""
    failures = []
    max_regression = float(baselines.get("max_regression", 2.0))
    for stage, base in baselines.get("stages", {}).items():
        got = doc["stages"].get(stage)
        if got is None:
            failures.append(f"{stage}: missing from this run")
            continue
        # Millisecond-scale stages carry no wall_s baseline: shared-runner
        # noise dwarfs them, so only their speedup floors are gated.
        if "wall_s" in base:
            limit = float(base["wall_s"]) * max_regression
            if got["wall_s"] > limit:
                failures.append(
                    f"{stage}: wall_s {got['wall_s']:.4f} > {limit:.4f} "
                    f"(baseline {base['wall_s']} x {max_regression})"
                )
        floor = base.get("min_speedup_vs_dense")
        if floor is not None:
            speedup = got.get("speedup_vs_dense")
            if speedup is None or speedup < float(floor):
                failures.append(
                    f"{stage}: speedup_vs_dense {speedup} < floor {floor}"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=os.path.join(_REPO_ROOT,
                                                      "BENCH_PERF.json"),
                        help="output path (default: <repo>/BENCH_PERF.json)")
    parser.add_argument("--check", metavar="BASELINES.json", default=None,
                        help="fail on regression vs this baseline file")
    parser.add_argument("--requests", type=int, default=1_200,
                        help="serving-stage request count")
    parser.add_argument("--engines", default="bsp,pipelined,async",
                        help="comma-separated engine list for epoch stages")
    args = parser.parse_args(argv)

    doc = harness.run_all(num_requests=args.requests,
                          engines=tuple(e for e in args.engines.split(",") if e))
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    width = max(len(s) for s in doc["stages"])
    for stage, entry in sorted(doc["stages"].items()):
        speedup = entry.get("speedup_vs_dense")
        speedup = f"  {speedup:>6.2f}x vs dense" if speedup else ""
        print(f"  {stage:<{width}}  {entry['wall_s']*1e3:>10.2f} ms{speedup}")

    if args.check:
        with open(args.check) as fh:
            baselines = json.load(fh)
        failures = check_against_baselines(doc, baselines)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print(f"all {len(baselines.get('stages', {}))} tracked stages "
              f"within {baselines.get('max_regression', 2.0)}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
