#!/usr/bin/env python
"""Run the perf-regression harness and write BENCH_PERF.json.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/run.py                 # full run
    PYTHONPATH=src python benchmarks/perf/run.py --check \\
        benchmarks/perf/baselines.json                           # CI gate

Writes the machine-readable stage table (``stage -> {wall_s, rows_per_s,
speedup_vs_dense}``) to ``BENCH_PERF.json`` at the repo root by default.
With ``--check``, every tracked stage's wall time is compared against the
committed baseline and the process exits non-zero if any stage regressed by
more than the baseline file's ``max_regression`` factor (generous, to ride
out CI-runner variance) — or if a tracked speedup fell below its floor.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
_REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
if os.path.isdir(os.path.join(_REPO_ROOT, "src", "repro")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

import harness  # noqa: E402  (sibling module; resolved via the path insert)


def check_against_baselines(doc: dict, baselines: dict) -> list:
    """Return a list of human-readable violations (empty = pass)."""
    failures = []
    max_regression = float(baselines.get("max_regression", 2.0))
    for stage, base in baselines.get("stages", {}).items():
        got = doc["stages"].get(stage)
        if got is None:
            failures.append(f"{stage}: missing from this run")
            continue
        # Millisecond-scale stages carry no wall_s baseline: shared-runner
        # noise dwarfs them, so only their speedup floors are gated.
        if "wall_s" in base:
            limit = float(base["wall_s"]) * max_regression
            if got["wall_s"] > limit:
                failures.append(
                    f"{stage}: wall_s {got['wall_s']:.4f} > {limit:.4f} "
                    f"(baseline {base['wall_s']} x {max_regression})"
                )
        # Parallelism assertions (speedup floors, spawn-amortization
        # ratios) only bind when the run had the CPU budget they assume:
        # K workers time-slicing one core can eliminate overhead, never
        # compute.  ``requires_cores`` in the baseline names that budget;
        # runs below it record the numbers without gating on them.
        requires_cores = int(base.get("requires_cores", 1))
        cores = int(got.get("cores", requires_cores))
        parallel_gates_bind = cores >= requires_cores
        floor = base.get("min_speedup_vs_dense")
        if floor is not None and parallel_gates_bind:
            speedup = got.get("speedup_vs_dense")
            if speedup is None or speedup < float(floor):
                failures.append(
                    f"{stage}: speedup_vs_dense {speedup} < floor {floor}"
                )
        # Spawn amortization: a steady-state (post-first) epoch must stay
        # within the given ratio of the in-process epoch wall.
        ratio = base.get("max_wall_vs_dense")
        if ratio is not None and parallel_gates_bind:
            dense = got.get("dense_wall_s")
            if dense is None or got["wall_s"] > float(ratio) * dense:
                failures.append(
                    f"{stage}: wall_s {got['wall_s']} > "
                    f"{ratio} x dense_wall_s {dense}"
                )
    return failures


def append_history(doc: dict, path: str) -> dict:
    """Append one compact trajectory entry for this run to ``path``.

    One JSON line per run — git sha, UTC timestamp, and the per-stage
    walls/speedups — so the BENCH trajectory over commits can be plotted
    without re-running old checkouts.  Returns the appended entry.
    """
    import datetime
    import subprocess

    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=_REPO_ROOT, timeout=10,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    entry = {
        "git_sha": sha,
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "dataset": doc.get("dataset"),
        "stages": {
            stage: {
                key: val for key, val in e.items()
                if key in ("wall_s", "speedup_vs_dense", "dense_wall_s",
                           "spawn_wall_s", "warm_start_wall_s", "cores",
                           "wire_sent_bytes", "wire_received_bytes",
                           "warm_pool_hit", "warm_pool_miss")
                and val is not None
            }
            for stage, e in doc["stages"].items()
        },
    }
    with open(path, "a") as fh:
        json.dump(entry, fh, sort_keys=True)
        fh.write("\n")
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=os.path.join(_REPO_ROOT,
                                                      "BENCH_PERF.json"),
                        help="output path (default: <repo>/BENCH_PERF.json)")
    parser.add_argument("--check", metavar="BASELINES.json", default=None,
                        help="fail on regression vs this baseline file")
    parser.add_argument("--history",
                        default=os.path.join(os.path.dirname(
                            os.path.abspath(__file__)), "history.jsonl"),
                        help="trajectory file to append this run to "
                             "(empty string disables)")
    parser.add_argument("--requests", type=int, default=1_200,
                        help="serving-stage request count")
    parser.add_argument("--engines", default="bsp,pipelined,async",
                        help="comma-separated engine list for epoch stages")
    args = parser.parse_args(argv)

    doc = harness.run_all(num_requests=args.requests,
                          engines=tuple(e for e in args.engines.split(",") if e))
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if args.history:
        append_history(doc, args.history)
        print(f"appended history entry to {args.history}")
    width = max(len(s) for s in doc["stages"])
    for stage, entry in sorted(doc["stages"].items()):
        speedup = entry.get("speedup_vs_dense")
        speedup = f"  {speedup:>6.2f}x vs dense" if speedup else ""
        print(f"  {stage:<{width}}  {entry['wall_s']*1e3:>10.2f} ms{speedup}")

    if args.check:
        with open(args.check) as fh:
            baselines = json.load(fh)
        failures = check_against_baselines(doc, baselines)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print(f"all {len(baselines.get('stages', {}))} tracked stages "
              f"within {baselines.get('max_regression', 2.0)}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
