"""Smoke coverage for the perf harness: the headline speedups are real.

The full harness (``benchmarks/perf/run.py``) times every tracked stage and
is gated in CI against ``baselines.json``.  This pytest wrapper runs the
cheap, high-signal subset inside the regular suite so a regression that
erases the active-set / coalesce wins fails fast, with CI-safe floors
(absolute walls vary by runner; the *ratios* are stable):

* ``partitionwise_vip`` must stay bit-identical to the dense baseline and
  at least 2.5x faster on the papers-mini 8-partition config (measured
  locally at ~3.5-4x; the committed BENCH_PERF.json records the headline).
* ``FetchPlan.coalesce`` at depth 16 must beat the seed bookkeeping.
"""

import numpy as np
import pytest

import harness
from repro.core import RunConfig
from repro.graph.datasets import make_synthetic_dataset
from repro.vip import partitionwise_vip, partitionwise_vip_dense


@pytest.fixture(scope="module")
def small_dataset():
    return make_synthetic_dataset(
        "perf-smoke-mini", num_vertices=6_000, avg_degree=10.0,
        feature_dim=16, num_classes=6, num_communities=8,
        intra_fraction=0.9, power=2.6, train_frac=0.3, seed=2,
    )


@pytest.mark.benchmark(group="perf_smoke")
def test_vip_active_set_speedup(benchmark, artifacts):
    ds = artifacts.dataset(harness.DATASET)
    cfg = RunConfig(num_machines=harness.K).resolve(ds)
    part = artifacts.partition(harness.DATASET, harness.K)

    dense_wall, vip_dense = harness._best_of(
        lambda: partitionwise_vip_dense(ds.graph, part, ds.train_idx,
                                        cfg.fanouts, cfg.batch_size),
        repeats=2)
    wall, vip = harness._best_of(
        lambda: partitionwise_vip(ds.graph, part, ds.train_idx,
                                  cfg.fanouts, cfg.batch_size),
        repeats=2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["dense_s"] = round(dense_wall, 4)
    benchmark.extra_info["active_s"] = round(wall, 4)

    assert np.array_equal(vip, vip_dense)  # bit-identical, always
    assert dense_wall / wall >= 2.5, (
        f"active-set VIP speedup collapsed: {dense_wall / wall:.2f}x "
        f"(dense {dense_wall:.3f}s vs active {wall:.3f}s)"
    )


def test_coalesce_rewrite_wins_at_depth(small_dataset):
    stages = {}
    harness.coalesce_stages(stages, dataset=small_dataset, depth=16,
                            ids_per_plan=2_048)
    entry = stages["coalesce.depth16"]
    assert entry["speedup_vs_dense"] > 1.0, entry


def test_harness_entry_schema(small_dataset):
    """Every entry carries the documented keys with sane values."""
    stages = {}
    harness.gather_stages(stages, dataset=small_dataset, rounds=10,
                          ids_per_round=512)
    (_name, entry), = stages.items()
    assert set(entry) >= {"wall_s", "rows_per_s", "speedup_vs_dense"}
    assert entry["wall_s"] > 0
    assert entry["rows_per_s"] > 0


# ----------------------------------------------------------------------
# run.py trajectory + gating logic (pure, no harness runs)
# ----------------------------------------------------------------------

_FAKE_DOC = {
    "dataset": "papers-mini",
    "stages": {
        "train.epoch_bsp_multiproc": {
            "wall_s": 1.5, "dense_wall_s": 1.8, "speedup_vs_dense": 1.2,
            "spawn_wall_s": 4.0, "warm_start_wall_s": 0.1, "cores": 8,
            "mean_loss": 2.9,
        },
        "gather.into": {"wall_s": 0.2, "speedup_vs_dense": 1.4},
    },
}


def test_append_history_entries_are_jsonl(tmp_path):
    import json

    import run

    path = tmp_path / "history.jsonl"
    first = run.append_history(_FAKE_DOC, str(path))
    run.append_history(_FAKE_DOC, str(path))
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2  # appends, never truncates
    for line in lines:
        entry = json.loads(line)
        assert entry["dataset"] == "papers-mini"
        assert "timestamp_utc" in entry and "git_sha" in entry
        mp = entry["stages"]["train.epoch_bsp_multiproc"]
        assert mp["wall_s"] == 1.5 and mp["cores"] == 8
        assert "mean_loss" not in mp  # compact trajectory, walls only
    assert first["stages"]["gather.into"] == {
        "wall_s": 0.2, "speedup_vs_dense": 1.4}


def test_committed_history_file_is_valid_jsonl():
    """The committed trajectory (when present) must stay parseable — the
    harness appends blindly, so a torn line would poison every later run."""
    import json
    import os

    import run

    path = os.path.join(os.path.dirname(os.path.abspath(run.__file__)),
                        "history.jsonl")
    if not os.path.exists(path):
        pytest.skip("no committed history yet")
    with open(path) as fh:
        for line in fh:
            entry = json.loads(line)
            assert "stages" in entry and "timestamp_utc" in entry


def test_parallel_gates_conditional_on_cores():
    """Speedup floors and amortization ratios bind only at the baseline's
    requires_cores — a 1-core run records the numbers without failing."""
    import copy

    import run

    baselines = {
        "max_regression": 2.5,
        "stages": {
            "train.epoch_bsp_multiproc": {
                "wall_s": 4.0, "min_speedup_vs_dense": 1.0,
                "max_wall_vs_dense": 1.2, "requires_cores": 2,
            },
        },
    }
    slow = copy.deepcopy(_FAKE_DOC)
    entry = slow["stages"]["train.epoch_bsp_multiproc"]
    entry.update(wall_s=3.0, speedup_vs_dense=0.6, cores=1)
    assert run.check_against_baselines(slow, baselines) == []

    entry["cores"] = 8  # same numbers with real cores -> both gates fire
    failures = run.check_against_baselines(slow, baselines)
    assert len(failures) == 2
    assert any("speedup_vs_dense" in f for f in failures)
    assert any("max_wall_vs_dense" in f or "dense_wall_s" in f
               for f in failures)

    good = copy.deepcopy(_FAKE_DOC)
    good["stages"]["train.epoch_bsp_multiproc"]["cores"] = 8
    assert run.check_against_baselines(good, baselines) == []
