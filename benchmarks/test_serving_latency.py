"""Online inference serving under popularity drift: caches and batchers.

This benchmark evaluates the serving subsystem (an extension beyond the
paper — no figure corresponds to it) on production-shaped traffic:
open-loop Poisson arrivals whose request seeds come from a drifting
popularity hot set (:func:`repro.graph.streaming_request_stream`), served
by :class:`repro.serving.InferenceService` over a 4-machine
hash-partitioned feature store on a slow (0.2 Gbps) network — the regime
where feature fetch dominates the request critical path.

Two experiments, each with its headline assertion:

* **Cache policies** (deadline batcher held fixed): the build-time static
  VIP cache — selected for the *training* workload — against the dynamic
  cache subsystem.  ``vip-refresh`` re-runs Proposition 1 against the
  *observed request traffic* (empirical seed distribution → analytic VIP,
  wired by the service) and must beat static VIP on both total comm rows
  (demand + refresh traffic) and p99 latency; its hit rate must also win,
  since refreshes score the whole sampled closure of the hot set rather
  than only rows the cache happened to see.

* **Batchers** (static VIP cache held fixed): naive ``fixed-size``
  dispatch (one full batch per window, no cross-batch coalescing) against
  SLO-bounded accumulation (``deadline``) and residency-aware packing
  (``cache-affinity``).  Accumulated, coalesced, affinity-packed windows
  must cut remote rows decisively versus fixed-size dispatch, and both
  deadline-triggered batchers must honor ``max_wait_ms`` in the simulated
  clock.  (Fixed-size buys its extra communication nothing: its only edge
  is lower queueing wait at light load, which the table reports.)

All volumes and latencies come from running the functional service — real
gathers, real cache churn, priced stage events — nothing is estimated.
"""

import numpy as np
import pytest

from conftest import publish, run_once
from repro.core import Planner, RunConfig, ServingConfig
from repro.graph.datasets import make_synthetic_dataset
from repro.serving import poisson_requests
from repro.utils import Table

K = 4
ALPHA = 0.10
FANOUTS = (4, 3)
NET_GBPS = 0.2
RATE_RPS = 10_000.0
NUM_REQUESTS = 4_000
REQUEST_SIZE = 8
MAX_BATCH = 8
MAX_WAIT_MS = 15.0
MAX_IN_FLIGHT = 4
REFRESH_INTERVAL = 8
DRIFT_INTERVAL = 1_000

CACHE_POLICIES = ["vip", "vip-refresh", "lfu", "lru"]
BATCHER_NAMES = ["fixed-size", "deadline", "cache-affinity"]


def make_serve_dataset():
    return make_synthetic_dataset(
        "serve-mini",
        num_vertices=24_000,
        avg_degree=14.0,
        feature_dim=32,
        num_classes=8,
        num_communities=32,
        intra_fraction=0.97,
        power=2.8,
        train_frac=0.4,
        seed=1,
    )


def serve_once(ds, planner, *, cache_policy, batcher, hot_fraction, hot_mass):
    cfg = RunConfig(
        num_machines=K, partitioner="random", fanouts=FANOUTS, batch_size=32,
        replication_factor=ALPHA, cache_policy=cache_policy,
        refresh_interval=REFRESH_INTERVAL, cache_aging_interval=16,
        network_gbps=NET_GBPS, seed=0,
        serving=ServingConfig(batcher=batcher, max_batch=MAX_BATCH,
                              max_wait_ms=MAX_WAIT_MS,
                              max_in_flight=MAX_IN_FLIGHT),
    )
    service = planner.build_service(ds, cfg)
    requests = poisson_requests(
        np.arange(ds.num_vertices), NUM_REQUESTS, REQUEST_SIZE,
        rate_rps=RATE_RPS, hot_fraction=hot_fraction, hot_mass=hot_mass,
        drift_interval=DRIFT_INTERVAL, seed=11,
    )
    report = service.run(requests)
    assert report.num_requests == NUM_REQUESTS  # nothing stranded
    return report


def run_cache_policies():
    """Cache comparison: concentrated hot set (its sampled closure fits the
    cache budget), so adaptivity is worth the most."""
    ds = make_serve_dataset()
    planner = Planner()
    return {pol: serve_once(ds, planner, cache_policy=pol, batcher="deadline",
                            hot_fraction=0.001, hot_mass=0.98)
            for pol in CACHE_POLICIES}


def run_batchers():
    """Batcher comparison: broader hot set and more cold traffic, so
    requests differ in residency and packing has something to sort."""
    ds = make_serve_dataset()
    planner = Planner()
    return {b: serve_once(ds, planner, cache_policy="vip", batcher=b,
                          hot_fraction=0.002, hot_mass=0.95)
            for b in BATCHER_NAMES}


def _publish(name, title, results):
    table = Table(
        ["variant", "p50 ms", "p95 ms", "p99 ms", "max wait ms",
         "comm rows", "vs first", "hit rate", "req/s"],
        title=title, float_fmt="{:.2f}",
    )
    base = next(iter(results.values())).gather.comm_rows()
    for label, rep in results.items():
        s = rep.summary()
        table.add_row([
            label, s["p50_ms"], s["p95_ms"], s["p99_ms"],
            s["max_queue_wait_ms"], float(rep.gather.comm_rows()),
            f"{rep.gather.comm_rows() / base:.3f}x",
            s["cache_hit_rate"], s["throughput_rps"],
        ])
    publish(name, table)


@pytest.mark.benchmark(group="serving_latency")
def test_serving_cache_policies_under_drift(benchmark):
    results = run_once(benchmark, run_cache_policies)
    _publish("serving_latency",
             f"Serving under popularity drift — cache policies "
             f"({K}-way hash partition, a={ALPHA}, {NET_GBPS:g} Gbps, "
             f"deadline batcher, {RATE_RPS:.0f} req/s)", results)

    static = results["vip"]
    refresh = results["vip-refresh"]

    # Headline: request-VIP refresh beats the training-time static cache on
    # total communication (its own refresh traffic included) AND tail
    # latency, at equal cache budget.
    assert refresh.gather.comm_rows() < 0.95 * static.gather.comm_rows(), (
        f"vip-refresh moved {refresh.gather.comm_rows()} rows vs static "
        f"{static.gather.comm_rows()} — expected a decisive win under drift")
    assert refresh.p99 < static.p99, (
        f"vip-refresh p99 {refresh.p99 * 1e3:.2f}ms must beat static "
        f"{static.p99 * 1e3:.2f}ms")
    assert refresh.p50 < static.p50
    assert refresh.gather.cache_hit_rate() > static.gather.cache_hit_rate()
    # The refresh machinery really ran and paid for itself in demand rows.
    assert refresh.gather.refresh_rows > 0
    assert refresh.gather.remote_rows < static.gather.remote_rows
    # Replacement policies adapt too (the PR 1 subsystem, now serving).
    for pol in ("lfu", "lru"):
        assert results[pol].gather.comm_rows() < static.gather.comm_rows()

    benchmark.extra_info["vip_refresh_vs_static_comm"] = round(
        refresh.gather.comm_rows() / static.gather.comm_rows(), 4)
    benchmark.extra_info["vip_refresh_p99_ms"] = round(refresh.p99 * 1e3, 3)
    benchmark.extra_info["static_p99_ms"] = round(static.p99 * 1e3, 3)


@pytest.mark.benchmark(group="serving_latency")
def test_serving_batchers_under_drift(benchmark):
    results = run_once(benchmark, run_batchers)
    _publish("serving_latency_batchers",
             f"Serving under popularity drift — batching policies "
             f"({K}-way hash partition, static vip cache, "
             f"max_wait={MAX_WAIT_MS:g}ms, {RATE_RPS:.0f} req/s)", results)

    fixed = results["fixed-size"]
    deadline = results["deadline"]
    affinity = results["cache-affinity"]

    # Headline: affinity-packed, window-coalesced batching cuts remote
    # traffic decisively vs naive fixed-size dispatch at the same load.
    assert affinity.gather.remote_rows < 0.85 * fixed.gather.remote_rows, (
        f"cache-affinity fetched {affinity.gather.remote_rows} remote rows "
        f"vs fixed-size {fixed.gather.remote_rows}")
    # Packing by residency must not lose to arrival-order packing.
    assert affinity.gather.remote_rows <= deadline.gather.remote_rows
    # The deadline SLO holds in the simulated clock for both deadline-
    # triggered policies: no request waits past max_wait_ms to be batched.
    slo = MAX_WAIT_MS / 1e3 + 1e-9
    assert deadline.max_queue_wait() <= slo
    assert affinity.max_queue_wait() <= slo
    # Coalescing really happened in the accumulated windows.
    assert deadline.gather.coalesced_rows > 0

    benchmark.extra_info["affinity_vs_fixed_remote"] = round(
        affinity.gather.remote_rows / fixed.gather.remote_rows, 4)
    benchmark.extra_info["deadline_max_wait_ms"] = round(
        deadline.max_queue_wait() * 1e3, 3)
