"""Table 4: SALIENT++ vs the DistDGL-like baseline.

Paper (papers, 3-layer SAGE, fanout (15,10,5), hidden 256):

    SALIENT++   2.9s   8x A10G, 25 Gbps
    DistDGL    37.0s   same hardware, public example code  (~12.7x slower)
    DistDGLv2  ~5s     64x T4, 100 Gbps (reported)

The baseline reproduces DistDGL's architecture (distributed graph structure
with per-hop sampling RPCs, synchronous KVStore feature fetch, no pipeline,
no cache); the asserted shape is the order-of-magnitude gap.
"""

import pytest

from repro.baselines import DistDGL
from repro.core import RunConfig
from conftest import publish, run_once
from repro.utils import Table

DATASET = "papers-mini"
K = 8


def run_table4(artifacts):
    ds = artifacts.dataset(DATASET)
    part = artifacts.partition(DATASET, K)
    spp = artifacts.system(DATASET, RunConfig(num_machines=K,
                                              replication_factor=0.32))
    t_spp = spp.mean_epoch_time(epochs=1)
    ddgl = DistDGL.build(ds, RunConfig(num_machines=K), partition=part)
    t_dgl = ddgl.mean_epoch_time(epochs=1)
    return t_spp, t_dgl


@pytest.mark.benchmark(group="table4")
def test_table4_distdgl_comparison(benchmark, artifacts):
    t_spp, t_dgl = run_once(benchmark, lambda: run_table4(artifacts))

    table = Table(["system", "measured (ms)", "ratio", "paper (s)", "paper ratio"],
                  title=f"Table 4 — system comparison ({DATASET}, {K} machines)")
    table.add_row(["SALIENT++", 1000 * t_spp, "1.0x", 2.9, "1.0x"])
    table.add_row(["DistDGL-like", 1000 * t_dgl, f"{t_dgl / t_spp:.1f}x",
                   37.0, "12.7x"])
    publish("table4", table)

    ratio = t_dgl / t_spp
    assert 6.0 < ratio < 30.0, \
        f"DistDGL-like must be an order of magnitude slower, got {ratio:.1f}x"
    benchmark.extra_info["ratio_vs_paper_12.7"] = round(ratio, 2)
