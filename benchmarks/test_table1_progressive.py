"""Table 1: per-epoch runtime of progressively optimized systems.

Paper (ogbn-papers100M, 3-layer SAGE, fanout (15,10,5), hidden 256):

    machines:                 1      2      4      8
    SALIENT (full repl.)   20.7s  10.76s  6.02s  3.08s
    + partitioned feats      —    33.04s 15.98s 10.85s
    + pipelined comm         —    16.12s  8.73s  5.43s
    + feature caching        —    10.51s  5.45s  2.91s

Reproduction (papers-mini, scaled hyperparameters): absolute times are
simulated milliseconds; the asserted shape is the ratio ladder — partitioned
features slow training down by ~2.5-4.5x, pipelining recovers roughly half,
and VIP caching brings the system back to (near) full-replication speed.
"""

import numpy as np
import pytest

from repro.core import progressive_variants, table1_alpha
from conftest import publish, run_once
from repro.utils import Table

DATASET = "papers-mini"
PAPER = {
    1: {"SALIENT (full replication)": 20.7},
    2: {"SALIENT (full replication)": 10.76, "+ Partitioned features": 33.04,
        "+ Pipelined communication": 16.12, "+ Feature caching": 10.51},
    4: {"SALIENT (full replication)": 6.02, "+ Partitioned features": 15.98,
        "+ Pipelined communication": 8.73, "+ Feature caching": 5.45},
    8: {"SALIENT (full replication)": 3.08, "+ Partitioned features": 10.85,
        "+ Pipelined communication": 5.43, "+ Feature caching": 2.91},
}


def run_table1(artifacts):
    results = {}
    for K in (1, 2, 4, 8):
        for name, cfg in progressive_variants(K, table1_alpha(K)):
            if K == 1 and not cfg.full_replication:
                continue
            system = artifacts.system(DATASET, cfg)
            results[(K, name)] = system.mean_epoch_time(epochs=1)
    return results


@pytest.mark.benchmark(group="table1")
def test_table1_progressive_systems(benchmark, artifacts):
    results = run_once(benchmark, lambda: run_table1(artifacts))

    table = Table(
        ["system", "K", "measured (ms)", "vs SALIENT", "paper (s)", "paper ratio"],
        title="Table 1 — progressive optimizations (papers-mini)",
    )
    for K in (1, 2, 4, 8):
        base = results[(K, "SALIENT (full replication)")]
        for name in PAPER[K]:
            if (K, name) not in results:
                continue
            t = results[(K, name)]
            p = PAPER[K][name]
            p_base = PAPER[K]["SALIENT (full replication)"]
            table.add_row([name, K, 1000 * t, t / base, p, p / p_base])
    publish("table1", table)

    # Qualitative claims of Table 1.
    for K in (2, 4, 8):
        base = results[(K, "SALIENT (full replication)")]
        part = results[(K, "+ Partitioned features")]
        pipe = results[(K, "+ Pipelined communication")]
        cache = results[(K, "+ Feature caching")]
        assert 1.8 < part / base < 5.5, "partitioning slows 2-3.5x (paper)"
        assert pipe < part, "pipelining must improve on blocking comm"
        assert cache < pipe, "caching must improve on pipelining alone"
        assert cache / base < 1.6, "caching returns near full-replication speed"

    # Headline claim: SALIENT++ on 8 machines vs SALIENT on 1 machine ~ 7.1x.
    speedup = results[(1, "SALIENT (full replication)")] / results[(8, "+ Feature caching")]
    assert 4.0 < speedup < 12.0, f"headline speedup {speedup:.1f}x out of range"
    benchmark.extra_info["headline_speedup_vs_paper_7.1"] = round(speedup, 2)
