"""Figure 2: caching policies vs communication volume.

Paper setup: 3-layer GraphSAGE, varying fanouts, batch 1024, 8-way METIS on
ogbn-papers100M; policies none / degree / 1-hop halo / weighted-reverse-
PageRank / #paths / simulation / analytic VIP / oracle, replication factors
0.05-1.0.  Key findings reproduced and asserted here:

* analytic VIP is near-optimal (within the oracle's neighborhood, always the
  best non-oracle policy in aggregate);
* local-information policies (degree, halo) barely improve on no caching;
* empirical estimation (sim.) degrades relative to analytic VIP as the
  replication factor grows (estimation variance on rarely-touched vertices).
"""

import numpy as np
import pytest

from conftest import publish, run_once
from repro.utils import Table
from repro.vip import (
    default_policies,
    evaluate_policies,
    geometric_mean_improvement,
    record_access_trace,
)

DATASET = "papers-mini"
K = 8
ALPHAS = [0.05, 0.1, 0.2, 0.5, 1.0]
FANOUT_SETTINGS = [(5, 4, 3), (4, 4, 4), (3, 3, 3)]  # scaled analogs of the
# paper's (15,10,5)-style sweep
BATCH = 64


def run_fig2(artifacts):
    ds = artifacts.dataset(DATASET)
    part = artifacts.partition(DATASET, K)
    out = {}
    for fanouts in FANOUT_SETTINGS:
        policies = {n: f() for n, f in default_policies().items() if n != "none"}
        trace = record_access_trace(ds.graph, part, ds.train_idx, fanouts,
                                    BATCH, epochs=2, seed=17)
        out[fanouts] = evaluate_policies(
            ds.graph, part, ds.train_idx, fanouts, BATCH,
            policies, ALPHAS, trace=trace, seed=17,
        )
    return out


@pytest.mark.benchmark(group="fig2")
def test_fig2_caching_policy_comparison(benchmark, artifacts):
    results = run_once(benchmark, lambda: run_fig2(artifacts))

    order = ["degree", "halo", "wpr", "numpaths", "sim", "vip", "oracle"]
    for fanouts, res in results.items():
        base = [r for r in res if r.policy == "none"][0].volume
        table = Table(
            ["alpha"] + order + ["none"],
            title=f"Figure 2 — per-epoch remote vertices, fanout {fanouts} "
                  f"({DATASET}, {K}-way)",
            float_fmt="{:.0f}",
        )
        for alpha in ALPHAS:
            row = {r.policy: r.volume for r in res if abs(r.alpha - alpha) < 1e-12}
            table.add_row([f"{alpha:.2f}"] + [row[p] for p in order] + [base])
        publish(f"fig2_fanout_{'-'.join(map(str, fanouts))}", table)

    # Figure 2(d): geometric-mean improvement across the sweep.
    agg = Table(["policy", "geo-mean improvement"], title="Figure 2(d) aggregate")
    geo = {}
    all_res = [r for res in results.values() for r in res]
    for p in order:
        geo[p] = geometric_mean_improvement(all_res, p)
        agg.add_row([p, f"{geo[p]:.2f}x"])
    publish("fig2_aggregate", agg)

    # --- Assertions: the paper's ordering claims. ---
    # Oracle is the lower bound; VIP is the best non-oracle policy.
    for p in order[:-2]:
        assert geo["vip"] >= geo[p] - 1e-9, f"vip must dominate {p} in aggregate"
    assert geo["oracle"] >= geo["vip"] - 1e-9

    # Local-information policies are weak (close to no caching).
    assert geo["degree"] < 0.8 * geo["vip"] + 0.5
    # VIP beats the structural-but-sampling-blind baselines.
    assert geo["vip"] > geo["wpr"]
    assert geo["vip"] > geo["numpaths"]

    # sim-vs-vip gap grows with alpha (estimation variance claim): compare at
    # the largest alpha on the smallest fanout.
    res_small = results[FANOUT_SETTINGS[-1]]
    by = {(r.policy, r.alpha): r.volume for r in res_small}
    assert by[("vip", 1.0)] <= by[("sim", 1.0)] * 1.02
    benchmark.extra_info["geo_mean_vip"] = round(geo["vip"], 3)
    benchmark.extra_info["geo_mean_oracle"] = round(geo["oracle"], 3)
