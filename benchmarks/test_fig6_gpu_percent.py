"""Figure 6: impact of VIP-based local vertex ordering on the CPU/GPU split.

Paper: papers on 4 GPUs, alpha=0.15.  Without reordering, epoch time falls
roughly linearly as beta (the fraction of local features resident on GPU)
grows; with VIP reordering, ~10% of the local partition on GPU already
removes the host-to-device bottleneck.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import RunConfig
from conftest import publish, run_once
from repro.utils import Table

DATASET = "papers-mini"
K = 4
ALPHA = 0.15
BETAS = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0]


def run_fig6(artifacts):
    out = {}
    for reorder in (True, False):
        for beta in BETAS:
            cfg = RunConfig(num_machines=K, replication_factor=ALPHA,
                            gpu_fraction=beta, vip_reorder=reorder)
            system = artifacts.system(DATASET, cfg)
            out[(reorder, beta)] = system.mean_epoch_time(epochs=1)
    return out


@pytest.mark.benchmark(group="fig6")
def test_fig6_vip_local_ordering(benchmark, artifacts):
    results = run_once(benchmark, lambda: run_fig6(artifacts))

    table = Table(["% local on GPU", "no reorder (ms)", "VIP reorder (ms)"],
                  title=f"Figure 6 — local CPU/GPU split ({DATASET}, {K} GPUs, a={ALPHA})")
    for beta in BETAS:
        table.add_row([f"{100 * beta:.0f}%",
                       1000 * results[(False, beta)],
                       1000 * results[(True, beta)]])
    publish("fig6", table)

    # VIP reordering at beta=0.1 should already be near its beta=1.0 floor...
    vip_small = results[(True, 0.1)]
    vip_full = results[(True, 1.0)]
    assert vip_small <= vip_full * 1.15, \
        "10% of local data on GPU should suffice with VIP ordering"
    # ...while the unordered variant still benefits from more GPU residency.
    no_small = results[(False, 0.1)]
    assert no_small >= vip_small, "VIP ordering dominates at small beta"
    # Both converge once everything is on the GPU.
    assert results[(False, 1.0)] == pytest.approx(vip_full, rel=0.1)
    benchmark.extra_info["vip_beta10_vs_beta100"] = round(vip_small / vip_full, 3)
