"""Ablation: partitioner quality and its effect on communication volume.

Not a paper figure — a design-choice bench.  SALIENT++ is agnostic
to the partitioning source (§5.3); this ablation quantifies why a METIS-like
multilevel cut matters: the no-cache communication volume tracks the edge
cut, and VIP caching helps on top of any partitioner.
"""

import numpy as np
import pytest

from repro.core import RunConfig
from repro.graph import load_dataset
from repro.partition import (
    bfs_partition,
    evaluate_partition,
    ldg_partition,
    metis_like_partition,
    random_partition,
)
from repro.vip import VIPAnalyticPolicy, evaluate_policies
from conftest import publish, run_once
from repro.utils import Table

DATASET = "products-mini"
K = 4


def run_ablation(artifacts):
    ds = artifacts.dataset(DATASET)
    partitioners = {
        "metis-like": lambda: metis_like_partition(ds.graph, K, seed=0),
        "ldg": lambda: ldg_partition(ds.graph, K, seed=0),
        "bfs": lambda: bfs_partition(ds.graph, K, seed=0),
        "random": lambda: random_partition(ds.num_vertices, K, seed=0),
    }
    meta = ds.metadata["default_experiment"]
    out = {}
    for name, make in partitioners.items():
        part = make()
        rep = evaluate_partition(ds.graph, part)
        res = evaluate_policies(
            ds.graph, part, ds.train_idx, meta["fanouts"], meta["batch_size"],
            {"vip": VIPAnalyticPolicy()}, alphas=[0.16],
            eval_epochs=1, seed=3, include_oracle=False,
        )
        vols = {r.policy: r.volume for r in res}
        out[name] = (rep.edge_cut_fraction, vols["none"], vols["vip"])
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_partitioner_quality(benchmark, artifacts):
    results = run_once(benchmark, lambda: run_ablation(artifacts))

    table = Table(["partitioner", "edge-cut fraction", "no-cache volume",
                   "VIP a=0.16 volume"],
                  title=f"Ablation — partitioner quality ({DATASET}, {K}-way)",
                  float_fmt="{:.3f}")
    for name, (cut, v0, v1) in results.items():
        table.add_row([name, cut, f"{v0:.0f}", f"{v1:.0f}"])
    publish("ablation_partitioner", table)

    # The multilevel cut beats the cheap baselines, and volume tracks cut.
    assert results["metis-like"][0] < results["random"][0]
    assert results["metis-like"][1] < results["random"][1]
    # Caching helps under every partitioner.
    for name, (cut, v0, v1) in results.items():
        assert v1 < v0
