"""Figure 5: scalability (2-16 GPUs) and total feature memory.

Paper: papers achieves ~1.9x speedup per doubling from 2 to 8 GPUs; mag240c
1.75x (4->8) and 1.45x (8->16); scaling tapers once epochs shrink toward the
pipeline-fill time.  Right plot: total memory across machines stays at
(1 + alpha) times the dataset, vs K times for full replication.
"""

import pytest

from repro.core import RunConfig
from conftest import publish, run_once
from repro.utils import Table

SETTINGS = {
    "products-mini": 0.16,
    "papers-mini": 0.32,
    "mag240c-mini": 0.32,
}
MACHINES = (2, 4, 8, 16)


def run_fig5(artifacts):
    times, memory = {}, {}
    for name, alpha in SETTINGS.items():
        for K in MACHINES:
            cfg = RunConfig(num_machines=K, replication_factor=alpha,
                            gpu_fraction=0.1)
            system = artifacts.system(name, cfg)
            times[(name, K)] = system.mean_epoch_time(epochs=1)
            memory[(name, K)] = system.memory_multiple
    return times, memory


@pytest.mark.benchmark(group="fig5")
def test_fig5_scalability_and_memory(benchmark, artifacts):
    times, memory = run_once(benchmark, lambda: run_fig5(artifacts))

    table = Table(["dataset", "K", "epoch (ms)", "speedup vs 2",
                   "memory multiple (1+a)"],
                  title="Figure 5 — scalability and total feature memory")
    for name in SETTINGS:
        base = times[(name, 2)]
        for K in MACHINES:
            table.add_row([name, K, 1000 * times[(name, K)],
                           f"{base / times[(name, K)]:.2f}x",
                           memory[(name, K)]])
    publish("fig5", table)

    for name, alpha in SETTINGS.items():
        # Speedups: monotone to 8 GPUs with meaningful gains per doubling.
        assert times[(name, 4)] < times[(name, 2)]
        assert times[(name, 8)] < times[(name, 4)]
        gain_2_4 = times[(name, 2)] / times[(name, 4)]
        assert gain_2_4 > 1.25, f"{name}: 2->4 speedup {gain_2_4:.2f}"
        # Memory stays near 1 + alpha — full replication would be K.
        for K in MACHINES:
            assert memory[(name, K)] < 1.0 + alpha + 0.05
            assert memory[(name, K)] < K

    # Diminished scaling at 16 GPUs (epoch approaches pipeline fill).
    papers_8_16 = times[("papers-mini", 8)] / times[("papers-mini", 16)]
    papers_4_8 = times[("papers-mini", 4)] / times[("papers-mini", 8)]
    assert papers_8_16 < papers_4_8 + 0.35
    benchmark.extra_info["papers_speedup_4_to_8"] = round(papers_4_8, 2)
