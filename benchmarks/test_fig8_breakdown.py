"""Figure 8: performance breakdown, pipelining on/off x alpha in {0, 0.32}.

Paper: 8-GPU papers run with all local features on GPU.  With pipelining off
and alpha=0, batch-prep communication dominates the epoch; caching with
alpha=0.32 shrinks communication until pipelining overlaps it almost
entirely (training compute becomes the visible cost).
"""

from dataclasses import replace

import pytest

from repro.core import RunConfig
from repro.pipeline import PipelineMode, simulate_epoch
from conftest import publish, run_once
from repro.utils import Table

DATASET = "papers-mini"
K = 8


def run_fig8(artifacts):
    out = {}
    for alpha in (0.0, 0.32):
        cfg = RunConfig(num_machines=K, replication_factor=alpha,
                        gpu_fraction=1.0)
        system = artifacts.system(DATASET, cfg)
        report = system.trainer.train_epoch(0, dry_run=True)
        for mode in (PipelineMode.OFF, PipelineMode.FULL):
            res = simulate_epoch(report, system.cost_model, mode=mode,
                                 depth=cfg.pipeline_depth)
            out[(mode.value, alpha)] = res
    return out


@pytest.mark.benchmark(group="fig8")
def test_fig8_breakdown(benchmark, artifacts):
    results = run_once(benchmark, lambda: run_fig8(artifacts))

    table = Table(
        ["pipelining", "alpha", "epoch (ms)", "train", "train sync",
         "startup", "prep comp", "prep comm"],
        title=f"Figure 8 — time breakdown ({DATASET}, {K} GPUs, locals on GPU)",
    )
    for (mode, alpha), res in results.items():
        b = res.breakdown
        table.add_row([mode, alpha, 1000 * res.epoch_time, 1000 * b["train"],
                       1000 * b["train_sync"], 1000 * b["startup"],
                       1000 * b["batch_prep_comp"], 1000 * b["batch_prep_comm"]])
    publish("fig8", table)

    off0 = results[("off", 0.0)]
    off32 = results[("off", 0.32)]
    full0 = results[("full", 0.0)]
    full32 = results[("full", 0.32)]

    # Pipelining-off, alpha=0: communication is the primary cost.
    assert off0.breakdown["batch_prep_comm"] > off0.breakdown["train"], \
        "network communication must dominate un-pipelined, un-cached training"
    # Caching shrinks communication time substantially.
    assert off32.breakdown["batch_prep_comm"] < 0.7 * off0.breakdown["batch_prep_comm"]
    # With caching + pipelining, communication hides behind compute: epoch
    # time approaches the pure-train + startup floor.
    floor = full32.breakdown["train"] + full32.breakdown["startup"]
    assert full32.epoch_time < 2.2 * floor
    # Pipelining always helps.
    assert full0.epoch_time < off0.epoch_time
    assert full32.epoch_time < off32.epoch_time
    benchmark.extra_info["comm_share_off_alpha0"] = round(
        off0.breakdown["batch_prep_comm"] / off0.epoch_time, 3)
