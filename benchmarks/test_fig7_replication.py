"""Figure 7: replication-factor sweep.

Paper: per-epoch time vs alpha for papers (4 and 8 partitions, 90% of local
data on GPU) and mag240c (8 and 16 partitions, 10% on GPU).  Modest factors
(0.08-0.16 at 4 parts, 0.16-0.32 at 8+) already minimize epoch time;
returns diminish beyond that.
"""

import pytest

from repro.core import RunConfig
from conftest import publish, run_once
from repro.utils import Table

SWEEPS = [
    ("papers-mini", (4, 8), 0.9),
    ("mag240c-mini", (8, 16), 0.1),
]
ALPHAS = [0.0, 0.08, 0.16, 0.24, 0.32]


def run_fig7(artifacts):
    out = {}
    for name, parts, beta in SWEEPS:
        for K in parts:
            for alpha in ALPHAS:
                cfg = RunConfig(num_machines=K, replication_factor=alpha,
                                gpu_fraction=beta)
                system = artifacts.system(name, cfg)
                out[(name, K, alpha)] = system.mean_epoch_time(epochs=1)
    return out


@pytest.mark.benchmark(group="fig7")
def test_fig7_replication_factor(benchmark, artifacts):
    results = run_once(benchmark, lambda: run_fig7(artifacts))

    for name, parts, beta in SWEEPS:
        table = Table(["alpha"] + [f"{K} parts (ms)" for K in parts],
                      title=f"Figure 7 — replication-factor sweep ({name}, "
                            f"{100 * beta:.0f}% local on GPU)")
        for alpha in ALPHAS:
            table.add_row([f"{alpha:.2f}"]
                          + [1000 * results[(name, K, alpha)] for K in parts])
        publish(f"fig7_{name}", table)

    for name, parts, beta in SWEEPS:
        for K in parts:
            t0 = results[(name, K, 0.0)]
            t_last = results[(name, K, ALPHAS[-1])]
            # Caching helps substantially...
            assert t_last < t0 * 0.9, f"{name} K={K}: caching must reduce epoch time"
            # ...with diminishing returns: the last increment buys less than
            # the first one.
            first_gain = t0 - results[(name, K, ALPHAS[1])]
            last_gain = results[(name, K, ALPHAS[-2])] - t_last
            assert last_gain <= first_gain + 1e-9
    benchmark.extra_info["papers8_alpha32_vs_0"] = round(
        results[("papers-mini", 8, 0.32)] / results[("papers-mini", 8, 0.0)], 3)
