"""Figure 4: impact of pipelining and VIP caching per dataset.

Paper: bar chart of per-epoch time for the optimization ladder on products
(4 partitions, alpha=0.16), papers (8, 0.32), mag240c (16, 0.32).  papers
benefits about equally from pipelining and caching; mag240c benefits
relatively more from caching because its 6x-wider features make remote
communication throughput-bound.
"""

from dataclasses import replace

import pytest

from conftest import publish, run_once
from repro.core import progressive_variants
from repro.utils import Table

SETTINGS = [
    ("products-mini", 4, 0.16),
    ("papers-mini", 8, 0.32),
    ("mag240c-mini", 16, 0.32),
]


def run_fig4(artifacts):
    results = {}
    for name, K, alpha in SETTINGS:
        for vname, cfg in progressive_variants(K, alpha):
            if cfg.full_replication:
                continue  # Figure 4 compares the partitioned variants
            system = artifacts.system(name, cfg)
            results[(name, vname)] = system.mean_epoch_time(epochs=1)
    return results


@pytest.mark.benchmark(group="fig4")
def test_fig4_optimization_impact(benchmark, artifacts):
    results = run_once(benchmark, lambda: run_fig4(artifacts))

    table = Table(
        ["dataset", "partitioned (ms)", "+pipeline (ms)", "+VIP cache (ms)",
         "pipeline gain", "cache gain"],
        title="Figure 4 — optimization impact per dataset",
    )
    gains = {}
    for name, K, alpha in SETTINGS:
        part = results[(name, "+ Partitioned features")]
        pipe = results[(name, "+ Pipelined communication")]
        cache = results[(name, "+ Feature caching")]
        gains[name] = (part / pipe, pipe / cache)
        table.add_row([f"{name} ({K} parts, a={alpha})",
                       1000 * part, 1000 * pipe, 1000 * cache,
                       f"{part / pipe:.2f}x", f"{pipe / cache:.2f}x"])
    publish("fig4", table)

    for name, K, alpha in SETTINGS:
        pg, cg = gains[name]
        assert pg > 1.1, f"{name}: pipelining must help"
        assert cg > 1.1, f"{name}: caching must help on top of pipelining"

    # The two large datasets benefit substantially from caching on top of
    # pipelining (paper: papers and mag240c both show large caching bars;
    # mag240c's 6x-wider features keep its communication throughput-bound).
    assert gains["papers-mini"][1] > 1.3
    assert gains["mag240c-mini"][1] > 1.3
    benchmark.extra_info["cache_gain_mag240c"] = round(gains["mag240c-mini"][1], 2)
