"""Dynamic caches vs static VIP: comm-volume and hit-rate curves.

This benchmark evaluates the repo's extension *beyond* the paper (no figure
corresponds to it): the static VIP cache of §4.2 against the dynamic cache
subsystem — LRU / LFU / CLOCK replacement and periodic ``vip-refresh`` — on
two workloads:

* **Stationary** (the paper's setting): uniform minibatches from a fixed
  training set on products-mini.  Static analytic VIP is provably the right
  ranking here, so the claim is defensive: warm-started dynamic policies
  must stay within 5% of static VIP total communication (and ``vip-refresh``
  must be indistinguishable — with an unchanged training set, its cost-aware
  swap planner finds nothing worth swapping).

* **Drifting training set** (the ROADMAP's north-star scenario): the active
  training set migrates across graph communities every few epochs
  (:func:`repro.graph.drifting_training_sets`) on a hash-partitioned
  deployment — the realistic layout for online systems, and one where
  neighborhood expansion is remote-heavy on every machine.  The build-time
  VIP cache goes stale with each phase; dynamic policies must win.  The
  assertion is the headline claim: ``vip-refresh`` and LFU achieve strictly
  lower *total* communication (demand fetches + cache-update traffic) than
  static VIP at equal cache budget.

All volumes are measured by running the functional executor (real gathers
through the partitioned store, cache churn included); nothing is estimated.
"""

import numpy as np
import pytest

from conftest import publish, run_once
from repro.core import RunConfig, SalientPP, make_partition
from repro.graph import drifting_training_sets
from repro.graph.datasets import make_synthetic_dataset
from repro.utils import Table

POLICIES = ["vip", "lru", "lfu", "clock", "vip-refresh"]

# --- stationary setting (products-mini defaults, Table-1-style cache). ---
STAT_DATASET = "products-mini"
STAT_K = 4
STAT_ALPHA = 0.16
STAT_EPOCHS = 4

# --- drifting setting: strong community structure, mild hubs, hash
# partitioning; the active set covers ~6% of the pool from a rotating 6%
# community window, changing every PHASE_EPOCHS epochs. ---
DRIFT_K = 4
DRIFT_ALPHA = 0.10
DRIFT_EPOCHS = 12
PHASE_EPOCHS = 3
DRIFT_FANOUTS = (4, 3)
DRIFT_BATCH = 32
REFRESH_INTERVAL = 12


def make_drift_dataset():
    return make_synthetic_dataset(
        "drift-mini",
        num_vertices=24_000,
        avg_degree=14.0,
        feature_dim=32,
        num_classes=8,
        num_communities=32,
        intra_fraction=0.97,
        power=2.8,
        train_frac=0.4,
        seed=1,
    )


def _epoch_rows(system, epochs, phases=None, phase_epochs=1):
    """Run ``epochs`` dry epochs; return per-epoch (comm, demand, hit) plus
    total churn.  ``phases`` swaps the training set every ``phase_epochs``."""
    comm, demand, hits = [], [], []
    refreshes = insertions = 0
    for e in range(epochs):
        if phases is not None and e % phase_epochs == 0:
            system.update_training_set(phases[e // phase_epochs])
        rep = system.train_epoch(e, dry_run=True).report
        comm.append(rep.total_comm_rows())
        demand.append(rep.total_remote_rows())
        hits.append(rep.cache_hit_rate())
        if rep.cache_churn is not None:
            refreshes += sum(c.refreshes for c in rep.cache_churn)
            insertions += sum(c.insertions for c in rep.cache_churn)
    return dict(comm=comm, demand=demand, hits=hits,
                refreshes=refreshes, insertions=insertions)


def run_stationary(artifacts):
    ds = artifacts.dataset(STAT_DATASET)
    part = artifacts.partition(STAT_DATASET, STAT_K)
    out = {}
    for pol in POLICIES:
        cfg = RunConfig(num_machines=STAT_K, replication_factor=STAT_ALPHA,
                        cache_policy=pol, refresh_interval=20, seed=0)
        system = SalientPP.build(ds, cfg, partition=part)
        out[pol] = _epoch_rows(system, STAT_EPOCHS)
    return out


def run_drift():
    ds = make_drift_dataset()
    base = RunConfig(num_machines=DRIFT_K, partitioner="random",
                     fanouts=DRIFT_FANOUTS, batch_size=DRIFT_BATCH, seed=0)
    part = make_partition(ds, base.resolve(ds))
    out = {}
    for pol in POLICIES:
        cfg = RunConfig(num_machines=DRIFT_K, replication_factor=DRIFT_ALPHA,
                        cache_policy=pol, refresh_interval=REFRESH_INTERVAL,
                        cache_aging_interval=20, partitioner="random",
                        fanouts=DRIFT_FANOUTS, batch_size=DRIFT_BATCH, seed=0)
        system = SalientPP.build(ds, cfg, partition=part)
        phases = drifting_training_sets(
            system.reordered.dataset.train_idx,
            system.reordered.dataset.community,
            DRIFT_EPOCHS // PHASE_EPOCHS,
            active_fraction=0.06, window_fraction=0.06,
            background_fraction=0.0, seed=42,
        )
        out[pol] = _epoch_rows(system, DRIFT_EPOCHS, phases=phases,
                               phase_epochs=PHASE_EPOCHS)
    return out


def _publish_curves(name, title, results, group_epochs=1):
    """Comm-volume and hit-rate curves, one row per policy."""
    epochs = len(next(iter(results.values()))["comm"])
    groups = epochs // group_epochs
    unit = "epoch" if group_epochs == 1 else f"{group_epochs}-epoch phase"
    prefix = "e" if group_epochs == 1 else "p"
    base_total = sum(results["vip"]["comm"])

    vol = Table(["policy"] + [f"{prefix}{i + 1}" for i in range(groups)]
                + ["total", "vs static", "refresh rows"],
                title=f"{title} — total comm rows per {unit}", float_fmt="{:.0f}")
    for pol, r in results.items():
        grouped = [sum(r["comm"][g * group_epochs:(g + 1) * group_epochs])
                   for g in range(groups)]
        total = sum(r["comm"])
        vol.add_row([pol] + grouped
                    + [total, f"{total / base_total:.3f}x",
                       total - sum(r["demand"])])
    publish(f"{name}_volume", vol)

    hit = Table(["policy"] + [f"{prefix}{i + 1}" for i in range(groups)],
                title=f"{title} — cache hit rate per {unit}", float_fmt="{:.3f}")
    for pol, r in results.items():
        grouped = [np.mean(r["hits"][g * group_epochs:(g + 1) * group_epochs])
                   for g in range(groups)]
        hit.add_row([pol] + [float(h) for h in grouped])
    publish(f"{name}_hitrate", hit)


@pytest.mark.benchmark(group="dynamic_cache")
def test_dynamic_cache_stationary(benchmark, artifacts):
    results = run_once(benchmark, lambda: run_stationary(artifacts))
    _publish_curves("dynamic_cache_stationary",
                    f"Dynamic caches, stationary workload ({STAT_DATASET}, "
                    f"{STAT_K}-way, a={STAT_ALPHA})", results)

    base = sum(results["vip"]["comm"])
    for pol in POLICIES[1:]:
        total = sum(results[pol]["comm"])
        # Warm-started dynamic policies must not regress the paper's setting.
        assert total <= 1.05 * base, (
            f"{pol} spends {total / base:.3f}x static VIP's communication "
            f"on a stationary workload (allowed: 1.05x)")
    # With nothing drifting, cost-aware refresh must find nothing to swap.
    assert sum(results["vip-refresh"]["comm"]) <= 1.01 * base
    benchmark.extra_info["worst_vs_static"] = round(
        max(sum(results[p]["comm"]) / base for p in POLICIES[1:]), 4)


@pytest.mark.benchmark(group="dynamic_cache")
def test_dynamic_cache_drift(benchmark):
    results = run_once(benchmark, run_drift)
    _publish_curves("dynamic_cache_drift",
                    f"Dynamic caches, drifting training set (drift-mini, "
                    f"{DRIFT_K}-way hash partition, a={DRIFT_ALPHA})",
                    results, group_epochs=PHASE_EPOCHS)

    base = sum(results["vip"]["comm"])
    totals = {p: sum(results[p]["comm"]) for p in POLICIES}

    # Headline: adaptive caching beats the stale static cache at equal
    # budget, counting its own update traffic.
    assert totals["vip-refresh"] < base, "vip-refresh must strictly win under drift"
    assert totals["lfu"] < base, "lfu must strictly win under drift"
    assert totals["vip-refresh"] < 0.8 * base, (
        f"vip-refresh should win decisively, got {totals['vip-refresh'] / base:.3f}x")
    # Every replacement policy adapts at least somewhat.
    for pol in ("lru", "clock"):
        assert totals[pol] < base

    # The refresh mechanism really ran, and its demand saving is what pays.
    assert results["vip-refresh"]["refreshes"] > 0
    assert sum(results["vip-refresh"]["demand"]) < 0.7 * sum(results["vip"]["demand"])

    benchmark.extra_info["vip_refresh_vs_static"] = round(
        totals["vip-refresh"] / base, 4)
    benchmark.extra_info["lfu_vs_static"] = round(totals["lfu"] / base, 4)
