"""Figure 9: VIP-analytic vs VIP-simulation caching on slow networks.

Paper: 16-node runs with token-bucket-limited 4 and 8 Gbps networks.  On
slow networks higher replication factors are needed before communication
stops bottlenecking; the analytic policy beats the simulation-based one and
the gap grows with alpha (and with feature width — larger for mag240c).
"""

import pytest

from repro.core import RunConfig
from conftest import publish, run_once
from repro.utils import Table

K = 16
SWEEPS = [
    ("papers-mini", [0.08, 0.16, 0.32, 0.48]),
    ("mag240c-mini", [0.08, 0.16, 0.32, 0.48]),
]
NETWORKS = [4.0, 8.0]


def run_fig9(artifacts):
    out = {}
    for name, alphas in SWEEPS:
        for gbps in NETWORKS:
            for policy in ("vip", "sim"):
                for alpha in alphas:
                    cfg = RunConfig(num_machines=K, replication_factor=alpha,
                                    cache_policy=policy, network_gbps=gbps,
                                    gpu_fraction=0.5)
                    system = artifacts.system(name, cfg)
                    out[(name, gbps, policy, alpha)] = system.mean_epoch_time(epochs=1)
    return out


@pytest.mark.benchmark(group="fig9")
def test_fig9_slow_network_policies(benchmark, artifacts):
    results = run_once(benchmark, lambda: run_fig9(artifacts))

    for name, alphas in SWEEPS:
        for gbps in NETWORKS:
            table = Table(
                ["alpha", "VIP analytic (ms)", "VIP simulation (ms)", "gap"],
                title=f"Figure 9 — {name}, {K} nodes, {gbps:g} Gbps network",
            )
            for alpha in alphas:
                ta = results[(name, gbps, "vip", alpha)]
                ts = results[(name, gbps, "sim", alpha)]
                table.add_row([f"{alpha:.2f}", 1000 * ta, 1000 * ts,
                               f"{ts / ta:.2f}x"])
            publish(f"fig9_{name}_{int(gbps)}gbps", table)

    for name, alphas in SWEEPS:
        for gbps in NETWORKS:
            # Analytic VIP is never worse in aggregate across the sweep.
            tot_a = sum(results[(name, gbps, "vip", a)] for a in alphas)
            tot_s = sum(results[(name, gbps, "sim", a)] for a in alphas)
            assert tot_a <= tot_s * 1.02, \
                f"{name}@{gbps}Gbps: analytic VIP must not lose to simulation"
            # More replication helps on slow networks.
            assert results[(name, gbps, "vip", alphas[-1])] < \
                results[(name, gbps, "vip", alphas[0])]
        # Slower network -> slower epochs at small alpha (comm-bound regime).
        assert results[(name, 4.0, "vip", alphas[0])] > \
            results[(name, 8.0, "vip", alphas[0])] * 0.999

    benchmark.extra_info["papers_4gbps_gap_at_048"] = round(
        results[("papers-mini", 4.0, "sim", 0.48)]
        / results[("papers-mini", 4.0, "vip", 0.48)], 3)
