"""Streaming-graph VIP maintenance: refresh cost and serving staleness.

No figure of the paper corresponds to this benchmark — it evaluates the
repo's streaming extension (delta-CSR overlay + dirty-frontier incremental
VIP) on the two claims that justify its existence:

* **Refresh cost** — on papers-mini with the seed distribution localized
  to one community and churn arriving in *other* communities (the common
  case: most mutations land far from any given consumer's hot region),
  :func:`repro.vip.incremental.incremental_vip` must beat the full
  consumer path — CSR rebuild via ``materialize()`` plus a dense
  Proposition-1 sweep — by a wide margin while staying **bit-identical**
  to it every window.

* **Serving staleness** — when request traffic concentrates on a hot
  community whose neighborhoods are progressively rewired toward a
  previously cold region, a ``vip-refresh`` cache that re-scores on the
  *mutated* graph (``streaming.refresh_on_mutation=True``) must spend
  less total communication than the deliberately stale baseline that
  keeps scoring on the frozen pre-churn graph.  Both runs see identical
  traffic and identical churn; only the score provider's view of the
  graph differs.

All volumes are measured by running the real service / real sweeps;
nothing is estimated.
"""

import time

import numpy as np
import pytest

from conftest import publish, run_once
from repro.core import RunConfig, SalientPP, ServingConfig, StreamingConfig
from repro.graph.datasets import make_synthetic_dataset
from repro.graph.generators import edge_stream
from repro.graph.mutable import EdgeBatch, MutableGraph
from repro.serving import InferenceService, poisson_requests
from repro.utils import Table
from repro.vip import incremental_vip, snapshot_vip, vip_probabilities
from repro.vip.analytic import uniform_minibatch_probability

# --- refresh-cost setting (papers-mini, harness scenario). ----------------
REFRESH_DATASET = "papers-mini"
REFRESH_WINDOWS = 5
REFRESH_BATCH_EDGES = 100
REFRESH_FANOUTS = (15, 10, 5)

# --- serving setting: strong community structure, hot traffic in one
# community, churn rewiring it toward a cold one. --------------------------
SERVE_K = 4
SERVE_ALPHA = 0.08
SERVE_REQUESTS = 900
SERVE_REFRESH_INTERVAL = 8


def run_refresh_cost(artifacts):
    ds = artifacts.dataset(REFRESH_DATASET)
    n = ds.num_vertices
    big = int(np.argmax(np.bincount(ds.community)))
    train = np.intersect1d(ds.train_idx, np.flatnonzero(ds.community == big))
    p0 = uniform_minibatch_probability(n, train, 1024)
    remote = np.flatnonzero(ds.community != big)

    mgraph = MutableGraph(ds.graph, undirected=True, compact_cutoff=None)
    snap = snapshot_vip(mgraph, p0, REFRESH_FANOUTS)
    rows = []
    for w, batch in enumerate(edge_stream(
            mgraph, num_batches=REFRESH_WINDOWS,
            batch_edges=REFRESH_BATCH_EDGES, pool=remote,
            delete_fraction=0.3, seed=7)):
        mgraph.apply(batch)
        t0 = time.perf_counter()
        snap = incremental_vip(mgraph, snap, churn_cutoff=1.0)
        inc_wall = time.perf_counter() - t0
        # A snapshot-less consumer pays the CSR rebuild every window.
        mgraph._csr, mgraph._csr_version = None, -1
        t0 = time.perf_counter()
        ref = vip_probabilities(mgraph.materialize(), p0, REFRESH_FANOUTS)
        dense_wall = time.perf_counter() - t0
        exact = (np.array_equal(snap.result.total, ref.total)
                 and np.array_equal(snap.access, ref.access))
        rows.append(dict(window=w, inc_ms=inc_wall * 1e3,
                         dense_ms=dense_wall * 1e3,
                         speedup=dense_wall / inc_wall,
                         rows=snap.stats.rows_recomputed,
                         mode=snap.stats.mode, exact=exact))
    return rows


@pytest.mark.benchmark(group="streaming_vip")
def test_incremental_refresh_speedup(benchmark, artifacts):
    rows = run_once(benchmark, lambda: run_refresh_cost(artifacts))
    table = Table(
        ["window", "inc ms", "dense ms", "speedup", "rows touched", "mode"],
        title=(f"Incremental VIP refresh vs rebuild+sweep ({REFRESH_DATASET}"
               f", {REFRESH_BATCH_EDGES}-edge remote churn windows)"),
        float_fmt="{:.1f}")
    for r in rows:
        table.add_row([r["window"], r["inc_ms"], r["dense_ms"],
                       f"{r['speedup']:.1f}x", r["rows"], r["mode"]])
    publish("streaming_refresh_cost", table)

    assert all(r["exact"] for r in rows), "refresh diverged from the oracle"
    assert all(r["mode"] == "incremental" for r in rows)
    med = float(np.median([r["speedup"] for r in rows]))
    # The perf gate holds the 3x floor on median walls; here each window
    # is a single sample, so assert the claim with head-room for noise.
    assert med > 2.0, f"median refresh speedup {med:.2f}x, expected > 2x"
    benchmark.extra_info["median_speedup"] = round(med, 2)


# -------------------------------------------------------------------------
def make_serving_dataset():
    return make_synthetic_dataset(
        "churn-serve-mini",
        num_vertices=24_000,
        avg_degree=12.0,
        feature_dim=32,
        num_classes=8,
        num_communities=12,
        intra_fraction=0.97,
        power=2.6,
        train_frac=0.3,
        seed=3,
    )


def _serving_system(ds, refresh_on_mutation):
    cfg = RunConfig(
        num_machines=SERVE_K, partitioner="random", fanouts=(5, 4, 3),
        batch_size=32, replication_factor=SERVE_ALPHA,
        cache_policy="vip-refresh",
        refresh_interval=SERVE_REFRESH_INTERVAL,
        cache_aging_interval=16, network_gbps=0.5, seed=0,
        serving=ServingConfig(batcher="deadline", max_batch=8,
                              max_wait_ms=15.0, max_in_flight=4),
        streaming=StreamingConfig(refresh_on_mutation=refresh_on_mutation),
    )
    return SalientPP.build(ds, cfg)


def _rewiring_mutations(ds, rng_seed=5, events=4, edges_per_event=6_000):
    """Progressively attach the hot community to a cold one: each event
    adds edges from random hot-community vertices to random vertices of
    the cold target, pulling the hot set's sampled frontier into territory
    the pre-churn VIP scores never ranked.  The events land early in the
    run so most traffic is served post-churn, where staleness bites."""
    comm = ds.community
    sizes = np.bincount(comm)
    hot_comm = int(np.argmax(sizes))
    cold_comm = int(np.argmin(sizes))
    hot = np.flatnonzero(comm == hot_comm)
    cold = np.flatnonzero(comm == cold_comm)
    rng = np.random.default_rng(rng_seed)
    muts = []
    for i in range(events):
        muts.append((0.02 + 0.04 * i, EdgeBatch(
            add_src=rng.choice(hot, edges_per_event),
            add_dst=rng.choice(cold, edges_per_event))))
    return hot, muts


def run_serving_staleness():
    ds = make_serving_dataset()
    hot, muts = _rewiring_mutations(ds)
    out = {}
    for mode, refresh in (("refresh", True), ("stale", False)):
        system = _serving_system(ds, refresh)
        svc = InferenceService.from_system(system)
        workload = poisson_requests(
            hot, SERVE_REQUESTS, 8, rate_rps=2_000.0,
            hot_fraction=0.05, hot_mass=0.9, seed=11)
        report = svc.run(workload, mutations=muts)
        assert svc.mutations_applied == len(muts)
        out[mode] = dict(
            comm=int(report.gather.comm_rows()),
            demand=int(report.gather.remote_rows),
            hit=float(report.gather.cache_hit_rate()),
            total=int(report.gather.total_rows),
        )
    return out


@pytest.mark.benchmark(group="streaming_vip")
def test_serving_refresh_beats_stale_cache(benchmark):
    results = run_once(benchmark, run_serving_staleness)
    table = Table(
        ["mode", "comm rows", "demand rows", "hit rate", "total rows"],
        title=("Serving under hot-set rewiring churn: mutated-graph refresh "
               "vs frozen pre-churn scores (churn-serve-mini, "
               f"{SERVE_K}-way, a={SERVE_ALPHA})"),
        float_fmt="{:.3f}")
    for mode, r in results.items():
        table.add_row([mode, r["comm"], r["demand"], r["hit"], r["total"]])
    publish("streaming_serving_staleness", table)

    # Identical traffic and churn — the only difference is whether refresh
    # scores see the mutated graph.  Staleness must cost communication.
    assert results["refresh"]["comm"] < results["stale"]["comm"], (
        "refreshing VIP scores on the mutated graph should reduce total "
        f"communication, got refresh={results['refresh']['comm']} "
        f"stale={results['stale']['comm']}")
    assert results["refresh"]["hit"] >= results["stale"]["hit"]
    benchmark.extra_info["comm_saving"] = round(
        1.0 - results["refresh"]["comm"] / max(results["stale"]["comm"], 1), 4)
