"""Zero-copy shared-memory gradient plane for the multiproc backend.

The first multiproc data plane shipped every per-step gradient (and the
averaged reply) through the pipe as wire-encoded float64 frames — K encode /
decode round trips per training step, all on the coordinator's critical
path.  This module replaces that with one shared-memory segment holding
``K + 1`` fixed-layout *slabs*: one per worker (worker-written, coordinator-
read) plus one for the averaged result (coordinator-written, worker-read).
Pipes then carry only tiny control tokens; the arrays never leave shared
memory.

Layout
------
Every slab is ``HEADER_NBYTES`` of int64 doorbell words followed by the
flattened parameter fields, each aligned to its own itemsize, the whole
slab padded to a 64-byte boundary so slabs never share a cache line::

    word 0   seq   — seqlock version: odd while a write is in flight,
                     even when the payload is stable; bumped twice per write
    word 1   step  — the training step the stable payload belongs to
                     (initialized to -1: "nothing published yet")
    words 2+       — reserved (zero)

Both sides compute the layout independently from their model replica's
``named_parameters()`` order — identical by construction, and verified at
bind time by comparing total payload bytes against the segment size.

Synchronization contract
------------------------
The *pipe tokens* are the real synchronization: a worker publishes its slab
before sending its step token, and the coordinator publishes the averaged
slab before sending the avg tokens, so neither side ever reads a slab that
the other may still be writing.  The seqlock words are an integrity check
on top — a reader that observes an odd ``seq``, a stale ``step`` tag, or a
``seq`` change across its copy raises :class:`SlabStateError` /
:class:`TornReadError` instead of silently averaging garbage (e.g. after a
worker crashed mid-write or desynchronized from the step protocol).

Averaging semantics
-------------------
:meth:`GradientPlane.average` must keep multiproc training bit-identical to
the in-process oracle, so it reuses the collective's single floating-point
definition (:func:`repro.distributed.comm.average_gradient_fields`):
machine 0's field first, then ``+= g_1 ... += g_{K-1}``, then one division
by K — elementwise exactly the sequence ``average_gradient_arrays``
performs, applied in place over the shared slabs with zero copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.distributed.comm import average_gradient_fields
from repro.obs import OBS

#: Doorbell words at the head of every slab (int64 each).
HEADER_WORDS = 8
HEADER_NBYTES = HEADER_WORDS * 8

_SEQ = 0
_STEP = 1

#: Slab stride alignment: no two slabs share a cache line.
_SLAB_ALIGN = 64


class SlabStateError(RuntimeError):
    """A slab's doorbell words disagree with the protocol state.

    ``machine`` identifies the offending worker slab when known (the
    averaged slab reports ``None``)."""

    def __init__(self, message: str, machine: Optional[int] = None):
        super().__init__(message)
        self.machine = machine


class TornReadError(SlabStateError):
    """The slab's seq changed while a reader was copying the payload."""


@dataclass(frozen=True)
class SlabField:
    """One flattened parameter's placement inside a slab's payload."""

    offset: int  # bytes from the payload start (header excluded)
    shape: Tuple[int, ...]
    dtype: str


def _align(offset: int, alignment: int) -> int:
    return -(-offset // alignment) * alignment


@dataclass(frozen=True)
class SlabLayout:
    """Field placement shared by every slab of one gradient plane."""

    fields: Tuple[SlabField, ...]
    payload_nbytes: int

    @classmethod
    def from_templates(cls, templates: Sequence[np.ndarray]) -> "SlabLayout":
        """Lay the arrays out back to back, each aligned to its itemsize.

        ``templates`` is the parameter order both sides share (the model's
        ``named_parameters()`` values); gradients always match their
        parameter's shape and dtype.
        """
        fields: List[SlabField] = []
        offset = 0
        for arr in templates:
            dt = np.dtype(arr.dtype)
            offset = _align(offset, dt.itemsize)
            fields.append(SlabField(offset=offset, shape=tuple(arr.shape),
                                    dtype=dt.str))
            offset += int(arr.size) * dt.itemsize
        return cls(fields=tuple(fields), payload_nbytes=offset)

    @property
    def slab_nbytes(self) -> int:
        """Full slab stride: header + payload, cache-line padded."""
        return _align(HEADER_NBYTES + self.payload_nbytes, _SLAB_ALIGN)

    def plane_nbytes(self, num_workers: int) -> int:
        """Segment size for ``num_workers`` worker slabs + the avg slab."""
        return (num_workers + 1) * self.slab_nbytes


class GradSlab:
    """One slab: seqlock doorbell + typed views over the payload fields.

    Single-writer: the owning side bumps ``seq`` to odd, writes every
    field, then bumps ``seq`` to even and tags ``step``.  Readers verify
    stability before *and* after touching the payload.
    """

    def __init__(self, buf: memoryview, layout: SlabLayout):
        if len(buf) < HEADER_NBYTES + layout.payload_nbytes:
            raise ValueError(
                f"slab buffer too small: need "
                f"{HEADER_NBYTES + layout.payload_nbytes} bytes, have {len(buf)}"
            )
        self._header = np.frombuffer(buf, dtype=np.int64, count=HEADER_WORDS)
        self.fields: List[np.ndarray] = []
        for f in layout.fields:
            dt = np.dtype(f.dtype)
            count = 1
            for dim in f.shape:
                count *= dim
            view = np.frombuffer(buf, dtype=dt, count=count,
                                 offset=HEADER_NBYTES + f.offset)
            self.fields.append(view.reshape(f.shape))

    # -- doorbell ------------------------------------------------------
    @property
    def seq(self) -> int:
        return int(self._header[_SEQ])

    @property
    def step(self) -> int:
        return int(self._header[_STEP])

    def reset(self) -> None:
        self._header[:] = 0
        self._header[_STEP] = -1

    def begin_write(self) -> None:
        """Mark the payload unstable (seq -> odd)."""
        self._header[_SEQ] += 1

    def publish(self, step: int) -> None:
        """Mark the payload stable (seq -> even) and tag its step."""
        self._header[_STEP] = step
        self._header[_SEQ] += 1

    def check_stable(self, step: int, machine: Optional[int] = None) -> int:
        """Require an even seq and a matching step tag; returns the seq."""
        if OBS.enabled:
            OBS.metrics.counter("shm.seqlock_checks").inc()
        seq = self.seq
        if seq % 2 != 0:
            if OBS.enabled:
                OBS.metrics.counter("shm.slab_state_errors").inc()
            raise SlabStateError(
                f"slab write in flight (seq {seq})", machine=machine)
        if self.step != step:
            if OBS.enabled:
                OBS.metrics.counter("shm.slab_state_errors").inc()
            raise SlabStateError(
                f"slab holds step {self.step}, expected {step}",
                machine=machine)
        return seq

    # -- payload -------------------------------------------------------
    def write(self, arrays: Sequence[Optional[np.ndarray]], step: int) -> None:
        """Publish one gradient set (``None`` entries become zeros)."""
        if len(arrays) != len(self.fields):
            raise ValueError(
                f"expected {len(self.fields)} gradient arrays, "
                f"got {len(arrays)}"
            )
        self.begin_write()
        for dst, src in zip(self.fields, arrays):
            if src is None:
                dst[...] = 0.0
            else:
                dst[...] = src
        self.publish(step)
        if OBS.enabled:
            OBS.metrics.counter("shm.slab_writes").inc()

    def read_into(self, outs: Sequence[np.ndarray], step: int,
                  machine: Optional[int] = None) -> None:
        """Copy the stable payload tagged ``step`` into ``outs``.

        Raises :class:`SlabStateError` if the slab is mid-write or holds a
        different step, :class:`TornReadError` if the writer intervened
        while we were copying.
        """
        seq = self.check_stable(step, machine=machine)
        for dst, src in zip(outs, self.fields):
            dst[...] = src
        if self.seq != seq:
            # No retry here by design: the control tokens are the real
            # synchronization, so a torn read is a protocol fault worth
            # surfacing, not a transient to spin on.  The counter makes
            # detections visible in the registry.
            if OBS.enabled:
                OBS.metrics.counter("shm.torn_reads").inc()
            raise TornReadError(
                f"slab rewritten during read (seq {seq} -> {self.seq})",
                machine=machine)

    def release(self) -> None:
        """Drop every view so the underlying buffer can be closed."""
        self._header = None
        self.fields = []


class GradientPlane:
    """K worker slabs + one averaged slab over a single shared buffer.

    The coordinator constructs one over the segment it created; each worker
    constructs one over its read-write attachment and uses
    ``worker_slabs[machine]`` (its own, write) and ``avg_slab`` (read).
    """

    def __init__(self, buf: memoryview, num_workers: int, layout: SlabLayout):
        need = layout.plane_nbytes(num_workers)
        if len(buf) < need:
            raise ValueError(
                f"gradient plane needs {need} bytes, segment has {len(buf)} "
                f"— worker and coordinator disagree on the slab layout"
            )
        self.layout = layout
        stride = layout.slab_nbytes
        self.worker_slabs = [GradSlab(buf[i * stride:(i + 1) * stride], layout)
                             for i in range(num_workers)]
        self.avg_slab = GradSlab(
            buf[num_workers * stride:(num_workers + 1) * stride], layout)

    def reset(self) -> None:
        for slab in self.worker_slabs:
            slab.reset()
        self.avg_slab.reset()

    def average(self, step: int) -> None:
        """Average the worker slabs for ``step`` into the avg slab, in place.

        Verifies every worker slab is stable and tagged ``step`` before the
        reduction and unchanged after it (seqlock check), then publishes the
        averaged slab under the same step tag.  Floating-point semantics are
        :func:`~repro.distributed.comm.average_gradient_fields` — exactly
        the in-process collective's.
        """
        seqs = [slab.check_stable(step, machine=k)
                for k, slab in enumerate(self.worker_slabs)]
        self.avg_slab.begin_write()
        average_gradient_fields(
            [slab.fields for slab in self.worker_slabs],
            self.avg_slab.fields,
        )
        for k, (slab, seq) in enumerate(zip(self.worker_slabs, seqs)):
            if slab.seq != seq:
                if OBS.enabled:
                    OBS.metrics.counter("shm.torn_reads").inc()
                raise TornReadError(
                    f"worker slab rewritten during averaging "
                    f"(seq {seq} -> {slab.seq})", machine=k)
        self.avg_slab.publish(step)
        if OBS.enabled:
            OBS.metrics.counter("shm.averages").inc()

    def release(self) -> None:
        """Drop every numpy view into the buffer (required before the
        owning ``SharedMemory`` can be closed without BufferError)."""
        for slab in self.worker_slabs:
            slab.release()
        self.avg_slab.release()
        self.worker_slabs = []
        self.avg_slab = None
