"""Cluster hardware model and execution backends.

Hardware half: machine, network, and cluster specifications.

The paper's testbed is 16 AWS g5.8xlarge machines (16-core AMD CPU, 128 GB
DRAM, one NVIDIA A10G with 24 GB, 25 Gbps network SLA).  These dataclasses
encode that hardware as throughput/latency parameters consumed by the
discrete-event pipeline simulator; the *workload* quantities (vertices,
bytes, FLOPs) always come from the functional execution, so changing a spec
changes only timing, never behaviour.

Rates are calibrated so the mini datasets land in the same bottleneck regime
as the paper (communication-bound without caching at 25 Gbps; compute-bound
once VIP caching removes most remote traffic).  Figure 9's slow-network
experiments reuse :meth:`NetworkSpec.with_bandwidth` at 4 and 8 Gbps, the
paper's token-bucket-filter settings.

Backend half: *where* the K logical machines actually run.  A
:class:`ClusterBackend` executes training epochs for a built system —
``"inprocess"`` (the default; K simulated machines inside this
interpreter, see :mod:`repro.distributed.executor`) or ``"multiproc"``
(one worker process per machine over shared-memory feature segments, see
:mod:`repro.distributed.multiproc`).  Backends are registered in
:data:`CLUSTER_BACKENDS` and selected by ``RunConfig.backend``; whichever
backend runs, the functional results (losses, records, traces) are
bit-identical — the parity test suite holds them to that.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.utils.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distributed.executor import EpochReport


GBPS = 1e9 / 8  # bytes/s per Gbit/s


@dataclass(frozen=True)
class MachineSpec:
    """Per-machine throughput model (defaults ≈ g5.8xlarge + A10G).

    Attributes
    ----------
    sample_rate:
        Candidate adjacency entries/s the shared-memory sampler examines
        (SALIENT's C++ sampler on 16 cores processes on the order of 1e8
        edge-candidates/s).
    cpu_slice_rate:
        Bytes/s for CPU-side feature tensor slicing (memory-bandwidth bound).
    gpu_slice_rate:
        Bytes/s for GPU-side slicing (HBM-bandwidth bound; A10G ~600 GB/s,
        derated for gather granularity).
    pcie_bandwidth:
        Effective host-to-device copy bandwidth.  PCIe 4.0 x16 peaks near
        12 GB/s with large pinned buffers; the mini workload's small
        scattered batches sustain well under half of that, so the default is
        calibrated to the small-transfer regime.
    gpu_flops:
        Effective training FLOP/s for the GEMM mix of GraphSAGE forward +
        backward (A10G peaks at 31.2 TF32 TFLOP/s; small-batch GNN kernels
        sustain a modest fraction).
    overhead_per_batch:
        Fixed per-minibatch CPU overhead (Python/driver/queueing), seconds.
    """

    sample_rate: float = 6.0e8
    cpu_slice_rate: float = 1.6e10
    gpu_slice_rate: float = 1.5e11
    pcie_bandwidth: float = 5.0e9
    gpu_flops: float = 6.0e11
    overhead_per_batch: float = 2.0e-5
    cpu_workers: int = 4

    def scaled(self, factor: float) -> "MachineSpec":
        """Uniformly faster/slower machine (ablation helper)."""
        return MachineSpec(
            sample_rate=self.sample_rate * factor,
            cpu_slice_rate=self.cpu_slice_rate * factor,
            gpu_slice_rate=self.gpu_slice_rate * factor,
            pcie_bandwidth=self.pcie_bandwidth * factor,
            gpu_flops=self.gpu_flops * factor,
            overhead_per_batch=self.overhead_per_batch / max(factor, 1e-12),
            cpu_workers=self.cpu_workers,
        )


@dataclass(frozen=True)
class NetworkSpec:
    """Network model: full-duplex per-NIC bandwidth plus per-round latency.

    ``bandwidth`` applies independently to each machine's ingress and egress
    (the 25 Gbps SLA of g5.8xlarge); ``efficiency`` derates it for protocol
    and incast overheads of scattered all-to-alls (TCP on EC2 sustains well
    under line rate for many-peer exchanges); ``latency`` is charged once per
    communication round (all-to-all metadata exchange, kernel launch, NCCL
    setup).
    """

    bandwidth: float = 25 * GBPS
    latency: float = 1.0e-5
    efficiency: float = 0.75

    @property
    def effective_bandwidth(self) -> float:
        return self.bandwidth * self.efficiency

    def with_bandwidth(self, gbps: float) -> "NetworkSpec":
        """The paper's slow-network (token-bucket) configurations."""
        return replace(self, bandwidth=gbps * GBPS)

    def transfer_time(self, num_bytes: float) -> float:
        return self.latency + num_bytes / self.effective_bandwidth


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of single-GPU machines (the paper's setting:
    experiments with K GPUs use K separate machines)."""

    num_machines: int
    machine: MachineSpec = MachineSpec()
    network: NetworkSpec = NetworkSpec()

    def __post_init__(self):
        if self.num_machines < 1:
            raise ValueError(f"num_machines must be >= 1, got {self.num_machines}")

    def all_reduce_time(self, num_bytes: float) -> float:
        """Ring all-reduce: each NIC moves ~2(K-1)/K of the payload.

        Priced at full line rate (no efficiency derate): a ring moves one
        steady point-to-point stream per direction, which — unlike the
        scattered feature all-to-alls — avoids incast and sustains the SLA
        bandwidth (NCCL's design point).
        """
        k = self.num_machines
        if k == 1:
            return 0.0
        wire_bytes = 2.0 * (k - 1) / k * num_bytes
        return 2 * self.network.latency + wire_bytes / self.network.bandwidth


#: Cluster backend registry (``RunConfig.backend``).  Entries are backend
#: classes constructed as ``cls(system)``; use :func:`make_cluster_backend`.
CLUSTER_BACKENDS = Registry("cluster backend")


class ClusterBackend:
    """Executes training epochs for a built SALIENT++ system.

    A backend owns the *runtime placement* of the K logical machines —
    threads of this process, worker processes, eventually real hosts —
    while the system owns everything else (preprocessing artifacts, the
    feature store layout, config).  Contract:

    * :meth:`run_epoch` returns an
      :class:`~repro.distributed.executor.EpochReport` that is functionally
      identical across backends: same per-step losses, same
      :class:`StepRecord` volumes, same ledger bytes, and an event trace
      with the same shape (the parity suite compares them with
      :func:`repro.pipeline.events.assert_trace_shape_equal`);
    * :meth:`close` releases every runtime resource (processes, shared
      memory, pipes) and is idempotent; backends with no external
      resources inherit the no-op.
    """

    name: str = "?"

    def __init__(self, system):
        self.system = system

    @property
    def is_live(self) -> bool:
        """True while the backend holds external runtime state (worker
        processes mid-training) that a system mutation would invalidate."""
        return False

    def run_epoch(self, epoch: int, *, dry_run: bool = False) -> "EpochReport":
        raise NotImplementedError

    def close(self) -> None:
        """Release runtime resources; idempotent."""

    def __enter__(self) -> "ClusterBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def make_cluster_backend(name: str, system) -> ClusterBackend:
    """Build the named backend for a system; unknown names raise with the
    sorted list of registered backends."""
    return CLUSTER_BACKENDS.get(name)(system)
