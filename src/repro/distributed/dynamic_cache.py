"""Dynamic remote-feature caches: replacement policies + periodic VIP refresh.

The paper's cache (§4.2) is *static*: VIP scores are computed once during
preprocessing and the cache contents never change.  That is optimal when the
access distribution is stationary, but degrades when the workload drifts —
the training set shifts between epochs, or an online-inference service sees
a moving popularity distribution.  This module provides the dynamic
counterpart: a fixed-capacity :class:`DynamicCache` that presents the same
O(1) membership / row-lookup interface as the static cache (so
:class:`~repro.distributed.feature_store.MachineStore` uses one gather path
for both) while updating its contents in one of two ways:

* **Replacement on miss** (``lru`` / ``lfu`` / ``clock``): every remote row
  fetched from a peer is admitted into the cache, evicting victims chosen by
  the replacement policy.  This is the classic OS-page-cache family; LFU is
  the online analogue of frequency (empirical-VIP) caching.
* **Periodic refresh** (``vip-refresh``): contents are fixed between refresh
  points (GNNLab-style); every ``refresh_interval`` batches the cache is
  swapped to the current top-``capacity`` vertices under a score function —
  analytic VIP recomputed for the *current* training set when the feature
  store has a score provider wired (see
  :meth:`~repro.distributed.feature_store.PartitionedFeatureStore.set_refresh_score_provider`),
  or the access counts observed since the last refresh otherwise.  Rows newly
  entering the cache must be fetched from their owners, which the performance
  model charges as real network traffic.

Caches can be *warm-started* from a static policy's selection (the analytic
VIP ranking in :class:`~repro.core.system.SalientPP`): the initial contents
are the static cache, and the replacement metadata is primed so the static
ranking decides evictions until enough online evidence accumulates.  This
keeps dynamic policies within a few percent of static VIP on stationary
workloads while letting them adapt under drift.

All per-gather operations are vectorized: membership is an O(1) array
lookup, admission/eviction touch O(misses + capacity) entries, and nothing
here loops over vertices in Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Tuple

import numpy as np

from repro.utils.registry import Registry

#: Dynamic cache policy registry (``RunConfig.cache_policy``): each entry is
#: a factory building the :class:`DynamicCacheSpec` for that policy name.
#: Shares the decorator registration API with ``PARTITIONERS`` and the static
#: policy zoo; membership tests and iteration see the registered names.
DYNAMIC_CACHE_POLICIES = Registry("dynamic cache policy")


def is_dynamic_policy(name: str) -> bool:
    """True if ``name`` denotes a dynamic cache policy rather than a static
    score-based one from :func:`repro.vip.policies.default_policies`."""
    return name in DYNAMIC_CACHE_POLICIES


@dataclass
class DynamicCacheSpec:
    """Configuration of one machine family of dynamic caches.

    Attributes
    ----------
    policy:
        One of :data:`DYNAMIC_CACHE_POLICIES`.
    capacity:
        Cache slots per machine (the static budget ``alpha * N / K``).
        ``None`` falls back to the size of the warm-start cache.
    refresh_interval:
        Batches between refreshes (``vip-refresh`` only; ignored by the
        replacement policies).  ``0`` disables refreshing.
    admit_threshold:
        Admission doorkeeper (TinyLFU-style) for the replacement policies: a
        missed row is considered for admission only once it has been
        accessed in at least this many *earlier* batches, and it then
        displaces a victim only if its frequency estimate (VIP prior +
        observed accesses) strictly exceeds the victim's.  Node-wise
        sampling is scan-heavy — most touched vertices are one-off tail
        vertices — so admitting every miss thrashes the cache; the gate
        keeps recurring (hot) vertices and rejects the scan.  ``0`` disables
        both checks (classic unconditional admission; useful for textbook
        LRU/LFU/CLOCK semantics in tests).
    aging_interval:
        Batches between frequency-aging steps for the replacement policies:
        observed access counts and the VIP prior are halved every interval
        (TinyLFU's reset), bounding how long stale popularity can outvote a
        drifted workload.  ``0`` disables aging.
    prior_weight:
        Pseudo-count weight of the warm-start VIP scores: a score-1.0 vertex
        behaves as if it had been accessed this many times.  The prior
        protects the analytic selection until real evidence accumulates
        (and decays with aging).
    swap_margin:
        Cost-awareness of ``vip-refresh`` swaps: an entry is replaced only
        if the *expected accesses saved* until the next refresh —
        ``(rate_new - rate_old) * horizon`` with per-batch access rates —
        exceeds this many row fetches (each swap costs exactly one).  A full
        content swap (GNNLab-style) is ``swap_margin=0``; the default prunes
        tail swaps whose fetch cost exceeds their benefit.
    warm_scores:
        Optional ``(K, N)`` score matrix used to prime replacement metadata
        of warm-started contents and as the admission prior (row ``k`` for
        machine ``k``).
    """

    policy: str
    capacity: Optional[int] = None
    refresh_interval: int = 0
    admit_threshold: int = 1
    aging_interval: int = 64
    prior_weight: float = 32.0
    swap_margin: float = 1.0
    warm_scores: Optional[np.ndarray] = None

    def __post_init__(self):
        if self.policy not in DYNAMIC_CACHE_POLICIES:
            raise ValueError(
                f"unknown dynamic cache policy {self.policy!r}; "
                f"expected one of {DYNAMIC_CACHE_POLICIES.names()}"
            )
        if self.capacity is not None and self.capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {self.capacity}")
        if self.refresh_interval < 0:
            raise ValueError(
                f"refresh_interval must be non-negative, got {self.refresh_interval}"
            )
        if self.admit_threshold < 0:
            raise ValueError(
                f"admit_threshold must be non-negative, got {self.admit_threshold}"
            )
        if self.aging_interval < 0:
            raise ValueError(
                f"aging_interval must be non-negative, got {self.aging_interval}"
            )

    @property
    def admit_on_miss(self) -> bool:
        return self.policy != "vip-refresh"


def _spec_factory(policy_name: str) -> Callable[..., "DynamicCacheSpec"]:
    def factory(**kwargs) -> DynamicCacheSpec:
        return DynamicCacheSpec(policy=policy_name, **kwargs)

    factory.__name__ = f"make_{policy_name.replace('-', '_')}_spec"
    factory.__doc__ = (f"Build a :class:`DynamicCacheSpec` for the "
                       f"{policy_name!r} policy (kwargs pass through).")
    return factory


for _name in ("lru", "lfu", "clock", "vip-refresh"):
    DYNAMIC_CACHE_POLICIES.register(_name, _spec_factory(_name))
del _name


@dataclass
class CacheChurnStats:
    """Cumulative cache-churn counters for one machine's dynamic cache.

    ``hits``/``misses`` count remote-vertex lookups; ``insertions`` and
    ``evictions`` count content changes (including those made by refreshes);
    ``refresh_fetch_rows`` counts rows pulled from peers by refresh swaps —
    the cache-update traffic the cost model charges on the network.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    refreshes: int = 0
    refresh_fetch_rows: int = 0

    def copy(self) -> "CacheChurnStats":
        return replace(self)

    def delta(self, earlier: "CacheChurnStats") -> "CacheChurnStats":
        """Counter deltas since an ``earlier`` snapshot (per-epoch stats)."""
        return CacheChurnStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            insertions=self.insertions - earlier.insertions,
            evictions=self.evictions - earlier.evictions,
            refreshes=self.refreshes - earlier.refreshes,
            refresh_fetch_rows=self.refresh_fetch_rows - earlier.refresh_fetch_rows,
        )

    def merged(self, other: "CacheChurnStats") -> "CacheChurnStats":
        return CacheChurnStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            insertions=self.insertions + other.insertions,
            evictions=self.evictions + other.evictions,
            refreshes=self.refreshes + other.refreshes,
            refresh_fetch_rows=self.refresh_fetch_rows + other.refresh_fetch_rows,
        )

    def hit_rate(self) -> float:
        return self.hits / max(self.hits + self.misses, 1)


# ----------------------------------------------------------------------
# Replacement policies.  Each maintains per-slot metadata arrays of length
# ``capacity`` and answers "which occupied slots should be evicted next".


class ReplacementPolicy:
    """Per-slot eviction bookkeeping shared by LRU / LFU / CLOCK."""

    name = "abstract"

    def __init__(self, capacity: int):
        self.capacity = capacity

    def note_insert(self, slots: np.ndarray, tick: int,
                    weights: Optional[np.ndarray] = None) -> None:
        """Record insertions; ``weights`` are frequency estimates of the new
        entries (used by LFU, ignored by recency-based policies)."""
        raise NotImplementedError

    def note_hit(self, slots: np.ndarray, tick: int) -> None:
        raise NotImplementedError

    def prime(self, slots: np.ndarray, scores: np.ndarray) -> None:
        """Seed metadata for warm-started contents so the given static
        ``scores`` (higher = keep longer) decide early evictions."""
        raise NotImplementedError

    def age(self) -> None:
        """Halve frequency state (no-op for recency-based policies)."""

    def victims(self, count: int, occupied: np.ndarray) -> np.ndarray:
        """Slots (subset of ``occupied``) to evict, exactly ``count`` of
        them, worst (evict-first) first.  Must be side-effect-free: the
        admission gate calls it as a query and may evict none of them.
        """
        raise NotImplementedError

    def note_evict(self, slots: np.ndarray) -> None:
        """Record that ``slots`` were actually evicted (CLOCK advances its
        hand here; recency/frequency policies need no bookkeeping)."""


class LRUPolicy(ReplacementPolicy):
    """Evict the least-recently-used slot (batch-granular recency)."""

    name = "lru"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        # Warm-started entries get negative stamps (see prime), so any real
        # access outranks every primed entry.
        self.last_used = np.full(capacity, -np.inf)

    def note_insert(self, slots, tick, weights=None):
        self.last_used[slots] = tick

    def note_hit(self, slots, tick):
        self.last_used[slots] = tick

    def prime(self, slots, scores):
        order = np.argsort(scores, kind="stable")  # ascending: worst first
        self.last_used[slots[order]] = np.arange(len(slots)) - len(slots)

    def victims(self, count, occupied):
        occ = np.flatnonzero(occupied)
        order = np.argsort(self.last_used[occ], kind="stable")
        return occ[order[:count]]


class LFUPolicy(ReplacementPolicy):
    """Evict the least-frequently-used slot, recency as tie-break.

    Frequency is seeded at insertion with the entry's current global
    estimate (VIP prior + observed accesses), so a row that cycles out and
    back does not restart from zero — the cache converges to the online
    empirical-VIP top set.
    """

    name = "lfu"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self.freq = np.zeros(capacity, dtype=np.float64)
        self.last_used = np.full(capacity, -np.inf)

    def note_insert(self, slots, tick, weights=None):
        self.freq[slots] = 1.0 if weights is None else np.maximum(weights, 1.0)
        self.last_used[slots] = tick

    def note_hit(self, slots, tick):
        self.freq[slots] += 1
        self.last_used[slots] = tick

    def prime(self, slots, scores):
        self.freq[slots] = np.maximum(np.asarray(scores, dtype=np.float64), 1.0)
        order = np.argsort(scores, kind="stable")
        self.last_used[slots[order]] = np.arange(len(slots)) - len(slots)

    def age(self):
        self.freq *= 0.5

    def victims(self, count, occupied):
        occ = np.flatnonzero(occupied)
        # Least frequent first; least recent breaks ties.
        order = np.lexsort((self.last_used[occ], self.freq[occ]))
        return occ[order[:count]]


class ClockPolicy(ReplacementPolicy):
    """Second-chance CLOCK: a reference bit per slot and a sweeping hand."""

    name = "clock"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self.ref = np.zeros(capacity, dtype=bool)
        self.hand = 0

    def note_insert(self, slots, tick, weights=None):
        self.ref[slots] = True

    def note_hit(self, slots, tick):
        self.ref[slots] = True

    def prime(self, slots, scores):
        self.ref[slots] = True

    def victims(self, count, occupied):
        # Sweep order starting at the hand, wrapping once.  Pure query: the
        # hand moves and reference bits clear only in note_evict, when an
        # eviction actually happens.
        order = (np.arange(self.capacity) + self.hand) % self.capacity
        order = order[occupied[order]]
        cand = order[~self.ref[order]]
        if len(cand) >= count:
            return cand[:count]
        # Not enough second-chance-expired slots in one sweep: a full sweep
        # would clear every reference bit, and the second sweep evicts in
        # ring order from the hand.
        return np.concatenate([cand, order[self.ref[order]][:count - len(cand)]])

    def note_evict(self, slots):
        if len(slots) == 0:
            return
        slots = np.asarray(slots, dtype=np.int64)
        pos = (slots - self.hand) % self.capacity
        if np.any(self.ref[slots]):
            # A still-referenced slot was evicted: the sweep went a full
            # circle, spending every second chance.
            self.ref[:] = False
        else:
            # Clear the bits of exactly the slots the hand passed over on
            # its way to the furthest victim.
            last = int(pos.max())
            passed = (self.hand + np.arange(last + 1)) % self.capacity
            self.ref[passed] = False
        self.hand = int((slots[int(pos.argmax())] + 1) % self.capacity)


_POLICY_CLASSES = {"lru": LRUPolicy, "lfu": LFUPolicy, "clock": ClockPolicy,
                   # vip-refresh holds contents fixed between refreshes; LRU
                   # metadata is kept only to order forced evictions (e.g. a
                   # refresh shrinking the desired set below capacity).
                   "vip-refresh": LRUPolicy}


@dataclass
class RefreshPlan:
    """A planned ``vip-refresh`` content swap (computed, not yet applied).

    ``new_ids`` must be fetched from their owners before
    :meth:`DynamicCache.commit_refresh`; ``evict_ids`` leave the cache.
    """

    desired_ids: np.ndarray
    new_ids: np.ndarray
    evict_ids: np.ndarray


class DynamicCache:
    """Fixed-capacity feature cache with O(1) membership and row lookup.

    The lookup interface (:meth:`contains` / :meth:`rows_for` /
    :attr:`ids` / ``nbytes``) matches :class:`StaticCache`, so
    ``MachineStore`` treats both uniformly; the mutation interface
    (:meth:`note_hits`, :meth:`admit`, :meth:`end_batch`,
    :meth:`plan_refresh` + :meth:`commit_refresh`) is driven by
    ``PartitionedFeatureStore.gather``.
    """

    is_dynamic = True

    def __init__(
        self,
        num_vertices: int,
        feature_dim: int,
        dtype,
        spec: DynamicCacheSpec,
        *,
        warm_ids: Optional[np.ndarray] = None,
        warm_rows: Optional[np.ndarray] = None,
        prior_scores: Optional[np.ndarray] = None,
    ):
        warm_ids = (np.empty(0, dtype=np.int64) if warm_ids is None
                    else np.asarray(warm_ids, dtype=np.int64))
        capacity = spec.capacity if spec.capacity is not None else len(warm_ids)
        if len(warm_ids) > capacity:
            raise ValueError(
                f"warm-start set ({len(warm_ids)}) exceeds capacity ({capacity})"
            )
        self.spec = spec
        self.capacity = int(capacity)
        self.num_vertices = int(num_vertices)
        self.feature_dim = int(feature_dim)
        self._rows = np.zeros((self.capacity, self.feature_dim), dtype=dtype)
        self._slot_of = np.full(num_vertices, -1, dtype=np.int64)
        self._id_of = np.full(self.capacity, -1, dtype=np.int64)
        self._occupied = np.zeros(self.capacity, dtype=bool)
        self._free = list(range(self.capacity - 1, -1, -1))  # pop() -> slot 0 first
        self._policy = _POLICY_CLASSES[spec.policy](self.capacity)
        self._tick = 0
        self._batches_since_refresh = 0
        # Batches actually observed since the last refresh — unlike
        # _batches_since_refresh this is never inflated by request_refresh,
        # so empirical per-batch rates stay correct after forced refreshes.
        self._observed_batches = 0
        self.access_counts = np.zeros(num_vertices, dtype=np.float64)
        # Frequency prior in pseudo-counts: a score-s vertex behaves as if it
        # had been accessed prior_weight * s times already (decays with age).
        self.prior = np.zeros(num_vertices, dtype=np.float64)
        if prior_scores is not None:
            if prior_scores.shape != (num_vertices,):
                raise ValueError("prior_scores must have one entry per vertex")
            self.prior = np.maximum(
                np.asarray(prior_scores, dtype=np.float64), 0.0
            ) * spec.prior_weight
        self.churn = CacheChurnStats()

        if len(warm_ids):
            if warm_rows is None or len(warm_rows) != len(warm_ids):
                raise ValueError("warm_rows must align with warm_ids")
            if len(np.unique(warm_ids)) != len(warm_ids):
                raise ValueError("duplicate cache ids")
            slots = self._place(warm_ids, warm_rows)
            if prior_scores is not None:
                self._policy.prime(slots, self.prior[warm_ids])
            else:
                self._policy.note_insert(slots, self._tick)
            # Warm starting is preprocessing, not runtime churn.
            self.churn = CacheChurnStats()

    # -- lookup interface (shared with StaticCache) --------------------
    @property
    def ids(self) -> np.ndarray:
        """Currently cached vertex ids (sorted)."""
        return np.sort(self._id_of[self._occupied])

    @property
    def num_cached(self) -> int:
        return int(self._occupied.sum())

    @property
    def nbytes(self) -> int:
        return int(self._rows.nbytes)

    def contains(self, ids: np.ndarray) -> np.ndarray:
        return self._slot_of[ids] >= 0

    def rows_for(self, ids: np.ndarray) -> np.ndarray:
        return self._rows[self._slot_of[ids]]

    # -- mutation interface --------------------------------------------
    def _place(self, ids: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Put ``ids`` into free slots (caller guarantees enough are free)."""
        slots = np.array([self._free.pop() for _ in range(len(ids))],
                         dtype=np.int64)
        self._slot_of[ids] = slots
        self._id_of[slots] = ids
        self._occupied[slots] = True
        self._rows[slots] = rows
        return slots

    def _evict_slots(self, slots: np.ndarray) -> None:
        self._policy.note_evict(slots)
        self._slot_of[self._id_of[slots]] = -1
        self._id_of[slots] = -1
        self._occupied[slots] = False
        self._free.extend(int(s) for s in slots)
        self.churn.evictions += len(slots)

    def note_hits(self, ids: np.ndarray) -> None:
        """Record cache hits (updates recency/frequency metadata)."""
        if len(ids):
            self._policy.note_hit(self._slot_of[ids], self._tick)
        self.churn.hits += len(ids)

    def frequency_estimate(self, ids: np.ndarray) -> np.ndarray:
        """Current popularity estimate: VIP prior + aged observed accesses."""
        return self.prior[ids] + self.access_counts[ids]

    def admit(self, ids: np.ndarray, rows: np.ndarray) -> int:
        """Insert missed rows (unique, non-local, not currently cached),
        evicting as needed; returns the number of insertions (0 for
        ``vip-refresh``, which only changes contents at refresh points).

        With ``admit_threshold > 0``, a miss is inserted only if (a) it was
        seen in earlier batches (doorkeeper) and (b) there is a free slot or
        its frequency estimate strictly exceeds a victim's — TinyLFU-style
        scan resistance.  With ``admit_threshold == 0`` every miss is
        inserted unconditionally (classic replacement semantics).
        """
        self.churn.misses += len(ids)
        if not self.spec.admit_on_miss or self.capacity == 0 or len(ids) == 0:
            return 0
        gated = self.spec.admit_threshold > 0
        if gated:
            keep = self.access_counts[ids] >= self.spec.admit_threshold
            ids, rows = ids[keep], rows[keep]
            if len(ids) == 0:
                return 0
        if len(ids) > self.capacity:
            # More candidates than slots: keep the strongest `capacity`.
            order = np.argsort(-self.frequency_estimate(ids), kind="stable")
            sel = np.sort(order[:self.capacity])
            ids, rows = ids[sel], rows[sel]

        n_free = len(self._free)
        if len(ids) > n_free:
            # Strongest candidates take the free slots; the rest must win a
            # pairwise frequency contest against the policy's eviction order.
            pri = self.frequency_estimate(ids)
            order = np.argsort(-pri, kind="stable")
            contenders = order[n_free:]
            victims = self._policy.victims(len(contenders), self._occupied)
            if gated:
                vict_pri = self.frequency_estimate(self._id_of[victims])
                vict_order = np.argsort(vict_pri, kind="stable")
                # Strongest contender vs weakest victim, pairwise; both
                # sequences are monotone, so wins form a prefix.
                wins = pri[contenders] > vict_pri[vict_order]
                n_win = int(wins.sum())
                evict = victims[vict_order[:n_win]]
                admit_idx = np.concatenate([order[:n_free], contenders[:n_win]])
            else:
                evict = victims
                admit_idx = order
            self._evict_slots(evict)
            admit_idx = np.sort(admit_idx)
            ids, rows = ids[admit_idx], rows[admit_idx]
        if len(ids) == 0:
            return 0
        slots = self._place(ids, rows)
        self._policy.note_insert(slots, self._tick,
                                 weights=self.frequency_estimate(ids))
        self.churn.insertions += len(ids)
        return len(ids)

    def request_refresh(self) -> None:
        """Force the next :meth:`end_batch` to report a due refresh (used
        when the workload is known to have changed, e.g. a training-set
        swap) — provided this is a refreshing cache at all."""
        if self.spec.refresh_interval > 0:
            self._batches_since_refresh = self.spec.refresh_interval

    def end_batch(self, accessed_ids: np.ndarray) -> bool:
        """Close one gather: count accesses for frequency estimation and
        empirical refresh scoring, advance the recency clock, age frequency
        state when due, and report whether a refresh is due."""
        if len(accessed_ids):
            self.access_counts[accessed_ids] += 1
        self._tick += 1
        self._batches_since_refresh += 1
        self._observed_batches += 1
        if (self.spec.admit_on_miss and self.spec.aging_interval > 0
                and self._tick % self.spec.aging_interval == 0):
            self.access_counts *= 0.5
            self.prior *= 0.5
            self._policy.age()
        return (self.spec.policy == "vip-refresh"
                and self.spec.refresh_interval > 0
                and self._batches_since_refresh >= self.spec.refresh_interval)

    @property
    def batches_since_refresh(self) -> int:
        return self._batches_since_refresh

    def observed_scores(self) -> np.ndarray:
        """Per-batch access rates observed since the last refresh (the
        empirical fallback score for ``vip-refresh`` when no analytic
        provider is wired)."""
        return self.access_counts / max(self._observed_batches, 1)

    def plan_refresh(self, scores: np.ndarray, horizon: int = 0) -> RefreshPlan:
        """Plan a content swap toward the top-``capacity`` scored vertices.

        ``scores`` are per-batch access rates (analytic VIP probabilities or
        observed counts normalized per batch) and must already exclude local
        vertices (non-positive there).  With ``horizon > 0`` and a positive
        ``swap_margin``, the swap is *cost-aware*: the strongest incoming
        candidate displaces the weakest current entry only while
        ``(rate_new - rate_old) * horizon > swap_margin``, i.e. while the
        expected demand fetches saved before the next refresh exceed the one
        fetch the swap itself costs.  ``horizon == 0`` swaps the full set.

        The plan's ``new_ids`` need fetching before :meth:`commit_refresh`.
        """
        s = np.asarray(scores, dtype=np.float64)
        candidates = np.flatnonzero(s > 0)
        if len(candidates) > self.capacity > 0:
            top = np.argpartition(-s[candidates], self.capacity - 1)[:self.capacity]
            candidates = candidates[top]
        elif self.capacity == 0:
            candidates = np.empty(0, dtype=np.int64)
        desired = np.sort(candidates)
        cached_mask = (self._slot_of[desired] >= 0 if len(desired)
                       else np.zeros(0, bool))
        incoming = desired[~cached_mask]          # strongest first below
        incoming = incoming[np.argsort(-s[incoming], kind="stable")]
        current = self._id_of[self._occupied]
        keep = np.zeros(self.num_vertices, dtype=bool)
        keep[desired] = True
        outgoing = current[~keep[current]]        # weakest first below
        outgoing = outgoing[np.argsort(s[outgoing], kind="stable")]

        if horizon > 0 and self.spec.swap_margin > 0:
            n_free = self.capacity - int(self._occupied.sum())
            # Fills into free slots only need the candidate itself to pay off;
            # true swaps need the *gain over the displaced entry* to pay off.
            fills = incoming[:n_free]
            fills = fills[s[fills] * horizon > self.spec.swap_margin]
            contenders = incoming[n_free:]
            m = min(len(contenders), len(outgoing))
            gain = (s[contenders[:m]] - s[outgoing[:m]]) * horizon
            n_swap = int((gain > self.spec.swap_margin).sum())  # prefix-true
            new_ids = np.concatenate([fills, contenders[:n_swap]])
            evict_ids = outgoing[:n_swap]
        else:
            new_ids = incoming
            evict_ids = outgoing
        return RefreshPlan(desired_ids=desired, new_ids=np.sort(new_ids),
                           evict_ids=np.sort(evict_ids))

    def commit_refresh(self, plan: RefreshPlan, new_rows: np.ndarray) -> None:
        """Apply a planned swap with the freshly fetched ``new_rows``."""
        if len(plan.evict_ids):
            self._evict_slots(self._slot_of[plan.evict_ids])
        if len(plan.new_ids):
            slots = self._place(plan.new_ids, new_rows)
            self._policy.note_insert(slots, self._tick)
        self.churn.insertions += len(plan.new_ids)
        self.churn.refreshes += 1
        self.churn.refresh_fetch_rows += len(plan.new_ids)
        self.access_counts[:] = 0
        self._batches_since_refresh = 0
        self._observed_batches = 0

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Internal-consistency check used by the test suite."""
        occ = np.flatnonzero(self._occupied)
        ids = self._id_of[occ]
        assert np.all(ids >= 0)
        assert np.array_equal(self._slot_of[ids], occ)
        assert len(np.unique(ids)) == len(ids), "duplicate cached ids"
        assert (self._slot_of >= 0).sum() == len(occ)
        assert len(self._free) == self.capacity - len(occ)

    def __repr__(self) -> str:
        return (f"DynamicCache(policy={self.spec.policy!r}, "
                f"{self.num_cached}/{self.capacity} slots)")
