"""Distributed data-parallel GNN training over the partitioned feature store.

One Python process simulates K single-GPU machines: each machine owns a
partition of the (reordered) training vertices, samples its own minibatches
from its own RNG stream, gathers features through the partitioned store
(local GPU/CPU tiers, static or dynamic remote cache, remote peers),
computes forward/backward on its own model replica, and synchronizes with
its peers.  *How* an epoch is scheduled — lock-step BSP, depth-P pipelined
with coalesced fetches, or bounded-staleness async — is delegated to a
pluggable :class:`~repro.distributed.engine.ExecutionEngine`;
:meth:`DistributedTrainer.train_epoch` is a thin driver over the configured
engine.  Non-stationary workloads swap the active training set between
epochs via :meth:`DistributedTrainer.update_training_set`, and
dynamic-cache churn is attributed per epoch in the report.

Every step produces a :class:`StepRecord` with the exact workload volumes
(MFG sizes, candidate edges examined by the sampler, per-category feature
rows, per-peer remote rows, model FLOPs), and every report carries the
engine's emitted :class:`~repro.pipeline.events.EventTrace` — the schedule
the discrete-event performance model prices.  ``dry_run`` epochs skip the
numpy GNN math but record identical volumes, which keeps big timing sweeps
cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.distributed.cluster import CLUSTER_BACKENDS, ClusterBackend
from repro.distributed.comm import (
    CommLedger,
    broadcast_state,
    gradient_nbytes,
)
from repro.distributed.dynamic_cache import CacheChurnStats
from repro.distributed.feature_store import GatherStats, PartitionedFeatureStore
from repro.nn.models import MFGModel, build_model
from repro.nn.optim import Adam
from repro.partition.reorder import ReorderedDataset
from repro.sampling.mfg import MFG
from repro.sampling.neighbor import NeighborSampler
from repro.utils.rng import SeedLike, derive_seed, machine_stream_seed


def sage_forward_flops(
    block_sizes: Sequence[Tuple[int, int, int]],
    in_dim: int,
    hidden_dim: int,
    out_dim: int,
) -> float:
    """Forward-pass GEMM FLOPs of a SAGE stack over ``(num_src, num_dst,
    num_edges)`` blocks — the single cost formula both training
    (:meth:`StepRecord.flops`, at 3x for fwd+bwd) and inference serving
    (:func:`repro.serving.forward_flops`) price with.

    Per block: two dense (rows × d_in × d_out) products (self + neighbor
    branches) plus the mean aggregation over sampled edges.
    """
    dims = [in_dim] + [hidden_dim] * (len(block_sizes) - 1) + [out_dim]
    total = 0.0
    # blocks are stored hop-1-first; layer i consumes block L-1-i.
    for layer, (_num_src, num_dst, edges) in enumerate(reversed(block_sizes)):
        d_in, d_out = dims[layer], dims[layer + 1]
        gemm = 2.0 * num_dst * d_in * d_out * 2  # self + neighbor branch
        agg = 2.0 * edges * d_in                 # mean aggregation
        total += gemm + agg
    return total


@dataclass
class StepRecord:
    """Workload volumes for one machine's minibatch step."""

    machine: int
    step: int
    batch_size: int
    mfg_vertices: int
    mfg_edges: int
    candidate_edges: int  # adjacency entries the sampler examined
    block_sizes: Tuple[Tuple[int, int, int], ...]  # (num_src, num_dst, edges)
    gather: GatherStats
    loss: Optional[float] = None

    def flops(self, in_dim: int, hidden_dim: int, out_dim: int) -> float:
        """Forward+backward GEMM FLOPs of a SAGE stack on this MFG
        (backward costs ~2x forward)."""
        return 3.0 * sage_forward_flops(self.block_sizes, in_dim, hidden_dim,
                                        out_dim)


@dataclass
class EpochReport:
    """One training epoch's functional results and workload trace.

    ``cache_churn`` holds per-machine dynamic-cache churn attributed to this
    epoch (``None`` when the feature store uses static caches).  ``events``
    is the executing engine's emitted stage-event schedule (an
    :class:`~repro.pipeline.events.EventTrace`), which the simulator prices
    directly; ``None`` only for reports constructed by hand.
    """

    epoch: int
    records: List[StepRecord]
    ledger: CommLedger
    mean_loss: Optional[float]
    steps_per_machine: int
    cache_churn: Optional[List[CacheChurnStats]] = None
    events: Optional["EventTrace"] = None  # noqa: F821 - see pipeline.events

    def records_for(self, machine: int) -> List[StepRecord]:
        return [r for r in self.records if r.machine == machine]

    def total_remote_rows(self) -> int:
        return int(sum(r.gather.remote_rows for r in self.records))

    def total_cached_rows(self) -> int:
        return int(sum(r.gather.cached_rows for r in self.records))

    def total_refresh_rows(self) -> int:
        """Rows fetched by ``vip-refresh`` cache swaps this epoch."""
        return int(sum(r.gather.refresh_fetch_rows for r in self.records))

    def total_coalesced_rows(self) -> int:
        """Rows deduplicated against another in-flight batch (pipelined
        execution): needed again, but never re-fetched over the wire."""
        return int(sum(r.gather.coalesced_rows for r in self.records))

    def total_comm_rows(self) -> int:
        """All feature rows moved over the network (demand + cache updates)."""
        return self.total_remote_rows() + self.total_refresh_rows()

    def cache_hit_rate(self) -> float:
        """Fraction of non-local feature rows served by the cache."""
        cached = self.total_cached_rows()
        return cached / max(cached + self.total_remote_rows(), 1)


def _candidate_edges(degrees: np.ndarray, mfg: MFG) -> int:
    """Adjacency entries examined while sampling this MFG: every hop scans
    the full neighbor list of every destination."""
    total = 0
    for block in mfg.blocks:
        total += int(degrees[mfg.n_id[:block.num_dst]].sum())
    return total


class DistributedTrainer:
    """Data-parallel trainer over K simulated machines.

    Parameters
    ----------
    reordered:
        Partition-contiguous dataset (see :func:`repro.partition.reorder_dataset`).
    store:
        Feature store built over the same reordered dataset.
    fanouts / batch_size:
        Per-hop sampling fanouts and per-machine minibatch size.
    hidden_dim / arch / dropout / lr:
        Model and optimizer hyperparameters (one replica per machine, all
        initialized identically).
    engine / pipeline_depth / staleness:
        The execution engine (a :data:`~repro.distributed.engine.ENGINES`
        name, default ``"bsp"``) and its knobs: in-flight batches per
        machine for ``pipelined``, staleness bound for ``async``.
    """

    def __init__(
        self,
        reordered: ReorderedDataset,
        store: PartitionedFeatureStore,
        *,
        fanouts: Sequence[int],
        batch_size: int,
        hidden_dim: int = 64,
        arch: str = "sage",
        dropout: float = 0.0,
        lr: float = 1e-3,
        seed: SeedLike = 0,
        engine: str = "bsp",
        pipeline_depth: int = 10,
        staleness: int = 0,
    ):
        # Local import: the engine module needs the record/report types
        # defined above, so the dependency must stay one-way at import time.
        from repro.distributed.engine import make_engine

        if store.num_machines != reordered.num_parts:
            raise ValueError("store and reordered dataset disagree on machine count")
        self.reordered = reordered
        self.store = store
        self.ds = reordered.dataset
        self.fanouts = tuple(int(f) for f in fanouts)
        self.batch_size = int(batch_size)
        self.hidden_dim = hidden_dim
        self.arch = arch
        self.seed = seed
        self.num_machines = reordered.num_parts

        self.samplers = [
            NeighborSampler(self.ds.graph, self.fanouts,
                            seed=machine_stream_seed(seed, "sampler", k))
            for k in range(self.num_machines)
        ]
        self.models: List[MFGModel] = [
            build_model(arch, self.ds.feature_dim, hidden_dim, self.ds.num_classes,
                        len(self.fanouts), dropout=dropout,
                        seed=derive_seed(seed, "model"))
            for _ in range(self.num_machines)
        ]
        broadcast_state(self.models)  # identical initial weights
        self.optimizers = [Adam(m.parameters(), lr=lr) for m in self.models]
        self.local_train = [reordered.local_train_ids(k) for k in range(self.num_machines)]
        self.engine = make_engine(engine, self, pipeline_depth=pipeline_depth,
                                  staleness=staleness)

    # ------------------------------------------------------------------
    def update_training_set(self, train_idx: np.ndarray) -> None:
        """Replace the active training vertices (non-stationary workloads).

        ``train_idx`` uses the reordered (new) vertex numbering; each id is
        routed to its owning machine.  Every machine must retain at least one
        full batch, otherwise the bulk-synchronous step structure collapses.
        With a ``vip-refresh`` cache whose score provider reads
        ``self.local_train``, the next refresh adapts to the new set.
        """
        train_idx = np.asarray(train_idx, dtype=np.int64)
        owner = self.reordered.owner_of(train_idx)
        local = [np.sort(train_idx[owner == k]) for k in range(self.num_machines)]
        short = [k for k in range(self.num_machines)
                 if len(local[k]) < self.batch_size]
        if short:
            raise ValueError(
                f"machines {short} would have fewer than one batch "
                f"({self.batch_size} vertices) of training data"
            )
        self.local_train = local
        # A training-set swap is a *known* workload change: refreshing
        # caches re-score at their next gather instead of waiting out the
        # periodic interval.
        self.store.request_refresh()

    def steps_per_epoch(self) -> int:
        """Lock-step step count: the minimum full-batch count across
        machines (the paper's partitioner balances training vertices, so
        machines lose at most one partial batch each)."""
        counts = [len(ids) // self.batch_size for ids in self.local_train]
        return max(1, min(counts)) if min(counts) > 0 else 1

    def gradient_nbytes(self) -> int:
        return gradient_nbytes(self.models[0])

    # ------------------------------------------------------------------
    def train_epoch(self, epoch: int, *, dry_run: bool = False) -> EpochReport:
        """Run one epoch under the configured execution engine; ``dry_run``
        records volumes (and the engine's event schedule) only."""
        return self.engine.run_epoch(epoch, dry_run=dry_run)

    def train(self, epochs: int, *, dry_run: bool = False) -> List[EpochReport]:
        return [self.train_epoch(e, dry_run=dry_run) for e in range(epochs)]

    # ------------------------------------------------------------------
    def evaluate(
        self,
        split: str = "val",
        *,
        fanouts: Optional[Sequence[int]] = None,
        batch_size: Optional[int] = None,
        seed: SeedLike = 1234,
    ) -> float:
        """Distributed minibatch inference accuracy on a split (§2.4: reuse
        the training forward path with inference fanouts)."""
        ids = {"val": self.ds.val_idx, "test": self.ds.test_idx,
               "train": self.ds.train_idx}[split]
        fanouts = tuple(fanouts) if fanouts is not None else self.fanouts
        batch_size = batch_size or self.batch_size
        sampler = NeighborSampler(self.ds.graph, fanouts,
                                  seed=derive_seed(seed, "inference"))
        model = self.models[0]
        model.eval()
        correct = total = 0
        owner = self.reordered.owner_of(ids)
        for k in range(self.num_machines):
            local_ids = ids[owner == k]
            for mfg in sampler.batches(local_ids, batch_size, shuffle=False):
                feats, _ = self.store.gather(k, mfg.n_id)
                logits = model(feats, mfg)
                pred = logits.data.argmax(axis=1)
                correct += int((pred == self.ds.labels[mfg.seeds]).sum())
                total += len(mfg.seeds)
        return correct / max(total, 1)

    def models_in_sync(self) -> bool:
        """True if all replicas hold bit-identical weights (test hook)."""
        ref = self.models[0].state_dict()
        for m in self.models[1:]:
            for k2, v in m.state_dict().items():
                if not np.array_equal(ref[k2], v):
                    return False
        return True


@CLUSTER_BACKENDS.register("inprocess")
class InProcessBackend(ClusterBackend):
    """The default backend: K simulated machines inside this interpreter.

    A thin adapter over the system's :class:`DistributedTrainer` — the
    behaviour every other backend must reproduce bit-for-bit.
    """

    name = "inprocess"

    def run_epoch(self, epoch: int, *, dry_run: bool = False) -> EpochReport:
        return self.system.trainer.train_epoch(epoch, dry_run=dry_run)
