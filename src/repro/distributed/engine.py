"""Pluggable execution engines: how one functional epoch actually runs.

The trainer used to hard-code one schedule — a strictly lock-step double
loop (sample, gather, train, all-reduce, next step).  This module makes the
schedule a first-class, registered strategy over the plan/execute gather
split of :class:`~repro.distributed.feature_store.PartitionedFeatureStore`:

``bsp``
    Bulk-synchronous parallel — the paper's (and the seed trainer's)
    semantics, byte-for-byte: one batch in flight per machine, a gradient
    all-reduce closing every step.

``pipelined``
    §4.3 made *functional* instead of merely simulated: each machine keeps
    up to ``depth`` minibatches in flight, drawn ahead through a shared
    prefetch iterator over :meth:`NeighborSampler.batches`.  The in-flight
    batches' :class:`FetchPlan`\\ s are coalesced — remote vertex ids
    needed by several of them are fetched from peers exactly once — so
    deep pipelines reduce real communication, not just hide it.  Training
    math is step-for-step identical to ``bsp`` (same sample streams, same
    per-step all-reduce), so losses match bit-for-bit while comm shrinks.

``async``
    Bounded-staleness data parallelism: replicas apply their own gradients
    immediately and re-converge by parameter averaging every
    ``staleness + 1`` steps, trading gradient freshness for fewer
    synchronization barriers (the allreduce events thin out accordingly).

Every engine emits the :class:`~repro.pipeline.events.EventTrace` of the
schedule it actually executed; the discrete-event simulator prices that
trace directly instead of re-deriving a hypothetical schedule from step
records.  Register new engines with ``@ENGINES.register(name)`` — the name
immediately becomes valid for ``RunConfig.engine``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence

import numpy as np

from repro.distributed.comm import (
    CommLedger,
    all_reduce_gradients,
    average_parameters,
)
from repro.distributed.feature_store import FetchPlan, GatherArena
from repro.nn.functional import cross_entropy
from repro.obs import OBS
from repro.sampling.mfg import MFG
from repro.utils.registry import Registry
from repro.utils.rng import machine_stream_seed

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.distributed.executor import DistributedTrainer, EpochReport
    from repro.pipeline.events import EventTrace

# NOTE: repro.pipeline modules are imported lazily inside methods.  This
# module is loaded by ``repro/distributed/__init__``, and the pipeline
# package's modules import ``repro.distributed.*`` — an eager import here
# would make ``import repro.pipeline`` (as the first repro import) re-enter
# a half-initialized module.

#: Execution engine registry (``RunConfig.engine``).  Entries are engine
#: classes; construct through :func:`make_engine` so per-engine knobs
#: (pipeline depth, staleness bound) are routed uniformly.
ENGINES = Registry("execution engine")


def make_engine(name: str, trainer: "DistributedTrainer", *,
                pipeline_depth: int = 10, staleness: int = 0) -> "ExecutionEngine":
    """Build the named engine for ``trainer``.

    ``pipeline_depth`` configures ``pipelined`` (ignored by others);
    ``staleness`` configures ``async``.  Unknown names raise with the
    sorted list of registered engines.
    """
    cls = ENGINES.get(name)
    return cls._build(trainer, pipeline_depth=pipeline_depth,
                      staleness=staleness)


def train_batch(model, feats: np.ndarray, mfg: MFG,
                labels: np.ndarray) -> float:
    """Forward/backward one minibatch on one replica; returns the loss.

    The single sequence of floating-point operations every cluster backend
    runs per (machine, step): the in-process engines call it through
    :meth:`ExecutionEngine._train_batch`, and multiproc workers call it
    directly — which is what makes distributed losses bit-identical to the
    in-process baseline rather than merely close.
    """
    model.train()
    logits = model(feats, mfg)
    loss = cross_entropy(logits, labels)
    model.zero_grad()
    loss.backward()
    return loss.item()


class PrefetchIterator:
    """Depth-bounded lookahead over one machine's minibatch stream.

    Wraps a :meth:`NeighborSampler.batches` iterator and serves windows of
    up to ``depth`` consecutive MFGs — the sampler-side half of keeping
    ``depth`` batches in flight.  Pulling a window advances the underlying
    sampler RNG exactly as ``depth`` sequential ``next()`` calls would, so
    any engine consuming the same windows sees the same batches as ``bsp``.
    """

    def __init__(self, batches: Iterator[MFG], depth: int):
        if depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {depth}")
        self._batches = batches
        self.depth = depth

    def next_window(self, size: Optional[int] = None) -> List[MFG]:
        """The next ``min(size, depth)`` batches (fewer at stream end)."""
        want = self.depth if size is None else min(size, self.depth)
        out: List[MFG] = []
        for _ in range(want):
            try:
                out.append(next(self._batches))
            except StopIteration:
                break
        if len(out) < want and OBS.enabled:
            # Pipeline underrun: the sampler stream could not keep the
            # requested number of batches in flight.
            OBS.metrics.counter("engine.pipeline_stalls").inc()
        return out


class ExecutionEngine:
    """Base engine: shared batch-step plumbing over a trainer's state.

    Subclasses implement :meth:`run_epoch` and are registered in
    :data:`ENGINES`.  The engine owns *scheduling* only — model math,
    storage, and collectives live in the trainer's components, so all
    engines train the same model on the same sample streams.
    """

    name: str = "?"

    def __init__(self, trainer: "DistributedTrainer"):
        self.trainer = trainer
        # Reusable gather outputs, keyed by (machine, in-flight slot): a
        # batch's features are consumed (trained on) before the same slot
        # gathers again, so the per-step feature-matrix allocation — the
        # hot path's largest — happens only at the high-water mark.
        self._gather_arena = GatherArena()

    def _gather_out(self, machine: int, rows: int, slot: int = 0) -> np.ndarray:
        store = self.trainer.store
        return self._gather_arena.out(
            (machine, slot), rows, store.feature_dim,
            store.stores[machine].local_features.dtype,
        )

    @classmethod
    def _build(cls, trainer: "DistributedTrainer", **_knobs) -> "ExecutionEngine":
        return cls(trainer)

    # -- shared helpers -------------------------------------------------
    def _iterators(self, epoch: int) -> List[Iterator[MFG]]:
        """Per-machine minibatch iterators, seeded exactly as the seed
        trainer's epoch loop (same shuffle order for every engine)."""
        tr = self.trainer
        return [
            tr.samplers[k].batches(
                tr.local_train[k], tr.batch_size,
                drop_last=True, epoch=epoch,
                seed=machine_stream_seed(tr.seed, "order", k),
            )
            for k in range(tr.num_machines)
        ]

    def _dims_tuple(self):
        tr = self.trainer
        return (tr.ds.feature_dim, tr.hidden_dim, tr.ds.num_classes)

    def _record_fetch(self, ledger: CommLedger, machine: int, stats) -> None:
        tr = self.trainer
        ledger.record_feature_fetch(machine, stats.remote_per_peer,
                                    tr.store.bytes_per_row)
        if stats.refresh_fetch_per_peer is not None:
            ledger.record_feature_fetch(machine, stats.refresh_fetch_per_peer,
                                        tr.store.bytes_per_row)

    def _train_batch(self, machine: int, feats: np.ndarray, mfg: MFG) -> float:
        """Forward/backward one batch on one replica; returns the loss."""
        tr = self.trainer
        return train_batch(tr.models[machine], feats, mfg,
                           tr.ds.labels[mfg.seeds])

    def _make_record(self, machine: int, step: int, mfg: MFG, stats,
                     loss: Optional[float]):
        from repro.distributed.executor import StepRecord, _candidate_edges

        tr = self.trainer
        return StepRecord(
            machine=machine,
            step=step,
            batch_size=mfg.batch_size,
            mfg_vertices=mfg.num_vertices,
            mfg_edges=mfg.num_edges,
            candidate_edges=_candidate_edges(tr.ds.graph.degrees, mfg),
            block_sizes=tuple(
                (b.num_src, b.num_dst, b.num_edges) for b in mfg.blocks
            ),
            gather=stats,
            loss=loss,
        )

    def _finish_report(self, epoch: int, records, ledger, losses, steps,
                       churn_before, trace: EventTrace) -> "EpochReport":
        from repro.distributed.executor import EpochReport

        tr = self.trainer
        churn = None
        if churn_before is not None:
            churn = [after.delta(before) for after, before
                     in zip(tr.store.cache_churn(), churn_before)]
        return EpochReport(
            epoch=epoch,
            records=records,
            ledger=ledger,
            mean_loss=float(np.mean(losses)) if losses else None,
            steps_per_machine=steps,
            cache_churn=churn,
            events=trace.validate(),
        )

    def _run_stepwise(self, epoch: int, *, dry_run: bool,
                      sync_steps: Sequence[int],
                      local_apply: bool) -> "EpochReport":
        """One-batch-in-flight epoch loop shared by ``bsp`` and ``async``.

        ``sync_steps`` are the steps that end with a synchronization
        barrier; ``local_apply`` selects the sync flavor — ``False`` is the
        seed loop (gradient all-reduce then a lock-step optimizer step at
        every sync point), ``True`` applies each replica's own gradient
        immediately and re-converges by parameter averaging at sync points.
        """
        from repro.pipeline.costmodel import served_rows_matrix
        from repro.pipeline.events import EventTrace, Stage, emit_step_events

        tr = self.trainer
        K = tr.num_machines
        steps = tr.steps_per_epoch()
        ledger = CommLedger(K)
        records = []
        churn_before = tr.store.cache_churn()
        iterators = self._iterators(epoch)
        dims = self._dims_tuple()
        sync_at = set(sync_steps)
        trace = EventTrace(
            engine=self.name, num_machines=K, num_steps=steps,
            windows=[(s, s + 1) for s in range(steps)],
            allreduce_steps=sorted(sync_at),
        )

        losses: List[float] = []
        with OBS.span("engine.epoch", engine=self.name, epoch=epoch,
                      steps=steps, machines=K):
            for step in range(steps):
                with OBS.span("engine.step", step=step,
                              hist="engine.step_wall_s"):
                    step_records = []
                    step_losses = []
                    for k in range(K):
                        mfg = next(iterators[k])
                        feats, stats = tr.store.execute(
                            tr.store.plan_gather(k, mfg.n_id),
                            out=self._gather_out(k, len(mfg.n_id)),
                        )
                        self._record_fetch(ledger, k, stats)
                        loss_val = None
                        if not dry_run:
                            loss_val = self._train_batch(k, feats, mfg)
                            if local_apply:
                                # stale local apply, no barrier
                                tr.optimizers[k].step()
                                losses.append(loss_val)
                            else:
                                step_losses.append(loss_val)
                        rec = self._make_record(k, step, mfg, stats, loss_val)
                        records.append(rec)
                        step_records.append(rec)
                    served = served_rows_matrix(step_records, K)
                    for k, rec in enumerate(step_records):
                        emit_step_events(trace, rec, int(served[k]), dims)
                    if step in sync_at:
                        trace.add(Stage.ALLREDUCE, -1, step)
                        if not dry_run:
                            if local_apply:
                                average_parameters(tr.models, ledger)
                            else:
                                all_reduce_gradients(tr.models, ledger)
                                for opt in tr.optimizers:
                                    opt.step()
                                losses.extend(step_losses)
            if OBS.enabled:
                OBS.metrics.counter("engine.steps").inc(steps)

        return self._finish_report(epoch, records, ledger, losses, steps,
                                   churn_before, trace)

    # -- interface ------------------------------------------------------
    def run_epoch(self, epoch: int, *, dry_run: bool = False) -> "EpochReport":
        raise NotImplementedError


@ENGINES.register("bsp")
class BSPEngine(ExecutionEngine):
    """Bulk-synchronous parallel: the seed trainer's loop, byte-for-byte.

    One batch in flight per machine; every step gathers through the
    plan/execute path (``execute(plan_gather(...))`` ≡ the monolithic
    ``gather``), trains each replica, and closes with a gradient
    all-reduce.  The emitted trace has one comm window and one allreduce
    barrier per step.
    """

    name = "bsp"

    def run_epoch(self, epoch: int, *, dry_run: bool = False) -> "EpochReport":
        steps = self.trainer.steps_per_epoch()
        return self._run_stepwise(epoch, dry_run=dry_run,
                                  sync_steps=range(steps), local_apply=False)


@ENGINES.register("pipelined")
class PipelinedEngine(ExecutionEngine):
    """Depth-P in-flight batches per machine with coalesced fetches (§4.3).

    Each comm window prefetches up to ``depth`` batches per machine,
    coalesces their fetch plans (:meth:`FetchPlan.coalesce` deduplicates
    remote vertex ids across the in-flight set), executes one shared peer
    exchange, then trains the window's batches in step order with the same
    per-step all-reduce as ``bsp``.  Feature bytes are identical to
    ``bsp``'s (every row comes from its owner), so losses match
    bit-for-bit; only *where* rows travel changes — duplicated remote rows
    cross the wire once instead of once per batch.
    """

    name = "pipelined"

    def __init__(self, trainer: "DistributedTrainer", depth: int = 10):
        super().__init__(trainer)
        if depth < 1:
            raise ValueError(f"pipeline depth must be >= 1, got {depth}")
        self.depth = int(depth)

    @classmethod
    def _build(cls, trainer, *, pipeline_depth: int = 10, **_knobs):
        return cls(trainer, depth=pipeline_depth)

    def run_epoch(self, epoch: int, *, dry_run: bool = False) -> "EpochReport":
        from repro.pipeline.events import EventTrace

        tr = self.trainer
        K = tr.num_machines
        steps = tr.steps_per_epoch()
        depth = self.depth
        ledger = CommLedger(K)
        records = []
        churn_before = tr.store.cache_churn()
        prefetchers = [PrefetchIterator(it, depth)
                       for it in self._iterators(epoch)]
        dims = self._dims_tuple()
        windows = [(w, min(w + depth, steps)) for w in range(0, steps, depth)]
        trace = EventTrace(
            engine=self.name, num_machines=K, num_steps=steps,
            windows=windows, allreduce_steps=list(range(steps)),
        )

        losses: List[float] = []
        with OBS.span("engine.epoch", engine=self.name, epoch=epoch,
                      steps=steps, machines=K, depth=depth):
            for w0, w1 in windows:
                with OBS.span("engine.window", window=w0,
                              hist="engine.window_wall_s"):
                    self._run_window(w0, w1, prefetchers, trace, ledger,
                                     records, losses, dims, dry_run=dry_run)
            if OBS.enabled:
                OBS.metrics.counter("engine.steps").inc(steps)

        return self._finish_report(epoch, records, ledger, losses, steps,
                                   churn_before, trace)

    def _run_window(self, w0: int, w1: int, prefetchers, trace, ledger,
                    records, losses, dims, *, dry_run: bool) -> None:
        """Prefetch, coalesce-fetch, record, and train one window."""
        from repro.pipeline.costmodel import served_rows_matrix
        from repro.pipeline.events import (
            Stage,
            emit_step_events,
            emit_window_comm_events,
        )

        tr = self.trainer
        K = tr.num_machines
        width = w1 - w0
        # --- prefetch + plan + coalesce + fetch, per machine. ---
        batches: List[List[MFG]] = []
        gathered = []  # [k][i] -> (feats, stats)
        for k in range(K):
            mfgs = prefetchers[k].next_window(width)
            if len(mfgs) != width:
                raise RuntimeError(
                    f"machine {k} batch stream ended early "
                    f"({len(mfgs)}/{width} batches in window {w0})"
                )
            plans = [tr.store.plan_gather(k, mfg.n_id) for mfg in mfgs]
            results = tr.store.execute_coalesced(
                FetchPlan.coalesce(plans),
                outs=[self._gather_out(k, len(p.ids), slot=i)
                      for i, p in enumerate(plans)],
            )
            for _feats, stats in results:
                self._record_fetch(ledger, k, stats)
            batches.append(mfgs)
            gathered.append(results)

        # --- records, in (step, machine) order like bsp. ---
        window_records: List[List] = []
        for i, s in enumerate(range(w0, w1)):
            step_records = []
            for k in range(K):
                rec = self._make_record(
                    k, s, batches[k][i], gathered[k][i][1], None
                )
                records.append(rec)
                step_records.append(rec)
            window_records.append(step_records)

        # --- events: per-step stages + one coalesced comm window. ---
        window_served = np.zeros(K, dtype=np.int64)
        for step_records in window_records:
            window_served += served_rows_matrix(step_records, K)
        for i, s in enumerate(range(w0, w1)):
            for rec in window_records[i]:
                emit_step_events(trace, rec, 0, dims, window_start=w0)
            trace.add(Stage.ALLREDUCE, -1, s)
        for k in range(K):
            machine_recs = [r for sr in window_records for r in sr
                            if r.machine == k]
            request_rows = int(sum(
                r.gather.remote_rows + r.gather.refresh_fetch_rows
                for r in machine_recs
            ))
            emit_window_comm_events(
                trace, w0, k, request_rows, int(window_served[k]),
                mfg_edges=int(sum(r.mfg_edges for r in machine_recs)),
            )

        # --- train the window's steps in bsp order. ---
        if not dry_run:
            for i, s in enumerate(range(w0, w1)):
                step_losses = []
                for k in range(K):
                    loss_val = self._train_batch(
                        k, gathered[k][i][0], batches[k][i]
                    )
                    window_records[i][k].loss = loss_val
                    step_losses.append(loss_val)
                all_reduce_gradients(tr.models, ledger)
                for opt in tr.optimizers:
                    opt.step()
                losses.extend(step_losses)


@ENGINES.register("async")
class AsyncEngine(ExecutionEngine):
    """Bounded-staleness execution: local applies, periodic re-convergence.

    Every step each replica applies its *own* gradient immediately (no
    barrier); replicas re-synchronize by parameter averaging every
    ``staleness + 1`` steps and at epoch end, so no replica's weights ever
    lag the slowest peer by more than ``staleness`` local updates.
    ``staleness = 0`` synchronizes every step (BSP cadence with parameter
    instead of gradient averaging).  The emitted allreduce events exist
    only at the sync points — the simulator sees the thinner barrier
    structure, which is the mode's entire performance argument.
    """

    name = "async"

    def __init__(self, trainer: "DistributedTrainer", staleness: int = 0):
        super().__init__(trainer)
        if staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        self.staleness = int(staleness)

    @classmethod
    def _build(cls, trainer, *, staleness: int = 0, **_knobs):
        return cls(trainer, staleness=staleness)

    def sync_steps(self, steps: int) -> List[int]:
        period = self.staleness + 1
        out = [s for s in range(steps) if (s + 1) % period == 0]
        if steps and (steps - 1) not in out:
            out.append(steps - 1)  # epoch end always re-converges
        return out

    def run_epoch(self, epoch: int, *, dry_run: bool = False) -> "EpochReport":
        steps = self.trainer.steps_per_epoch()
        return self._run_stepwise(epoch, dry_run=dry_run,
                                  sync_steps=self.sync_steps(steps),
                                  local_apply=True)
