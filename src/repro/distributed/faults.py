"""Chaos-injection harness: declarative fault schedules for worker clusters.

The multiproc backend's original fault hook was a single kill switch —
``fault_injection={machine: (epoch, step)}`` hard-exited one worker at one
point.  Real clusters fail in more ways than that, and the recovery
subsystem (:mod:`repro.distributed.recovery`) has to be exercised against
all of them.  A :class:`FaultPlan` is a validated schedule of
:class:`FaultSpec` entries, each naming a machine, an injection point
``(epoch, step)``, and one of four fault kinds:

``kill``
    Hard process death (``os._exit``) mid-epoch, before the step is
    reported — no cleanup, no goodbye.  The original ``fail_at`` semantics.
``hang``
    The worker sleeps ``duration_s`` seconds at the injection point — past
    any reasonable coordinator ``timeout_s`` — modeling a wedged process,
    a GC pause, or a dead NIC.  Detection must come from the coordinator's
    receive deadline, and teardown must reap the sleeping process.
``corrupt``
    The worker's next outgoing pipe message has one payload byte flipped
    after encoding — a torn or bit-flipped wire frame.  The CRC32 trailers
    (:mod:`repro.distributed.wire`) must reject it machine-attributed;
    it must never garbage-decode.
``torn``
    After publishing its gradient slab for the step, the worker bumps the
    slab's seqlock back to *odd* (a write left in flight) before sending
    its step token — a crash mid-write in shared memory.  The
    coordinator's :meth:`GradientPlane.average` must surface it as a
    machine-attributed :class:`SlabStateError`.

Plans are plain data: wire-encodable (they ride inside each
:class:`~repro.distributed.multiproc.WorkerSpec`), validated before a
cluster starts, and usable identically from tests, benchmarks, and the CI
chaos-smoke job.  A plan never enters the cluster fingerprint — workers
are generic until bound — but a backend with a non-empty plan is never
parked into the warm pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Valid fault kinds, in documentation order.
FAULT_KINDS = ("kill", "hang", "corrupt", "torn")

#: Default hang duration: far past any coordinator timeout, short enough
#: that a reaped test process cannot linger for hours if SIGTERM is lost.
_DEFAULT_HANG_S = 3600.0


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``kind`` on ``machine`` at ``(epoch, step)``.

    ``step`` indexes the machine's local step stream (the same coordinates
    the old kill-at-(epoch, step) dict used); for the pipelined engine the
    fault fires in the window containing ``step``.  ``duration_s`` only
    applies to ``hang``.
    """

    kind: str
    machine: int
    epoch: int
    step: int
    duration_s: float = _DEFAULT_HANG_S

    def validate(self, num_machines: Optional[int] = None) -> "FaultSpec":
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; valid: {FAULT_KINDS}"
            )
        if self.machine < 0:
            raise ValueError(f"fault machine must be >= 0, got {self.machine}")
        if num_machines is not None and self.machine >= num_machines:
            raise ValueError(
                f"fault names machine {self.machine}, cluster has "
                f"{num_machines} machines"
            )
        if self.epoch < 0 or self.step < 0:
            raise ValueError(
                f"fault injection point must be non-negative, got "
                f"(epoch={self.epoch}, step={self.step})"
            )
        if self.duration_s <= 0:
            raise ValueError(
                f"hang duration_s must be positive, got {self.duration_s}"
            )
        return self


class FaultPlan:
    """A validated, immutable schedule of :class:`FaultSpec` entries.

    Construct directly from specs, from the legacy kill dict
    (:meth:`from_kill_points`), or decode one off the wire
    (:meth:`decode`).  Iteration order is deterministic: sorted by
    ``(epoch, step, machine, kind)``.
    """

    def __init__(self, faults: Iterable[FaultSpec] = ()):
        specs = sorted(faults,
                       key=lambda f: (f.epoch, f.step, f.machine, f.kind))
        self.faults: Tuple[FaultSpec, ...] = tuple(specs)

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_kill_points(
        cls, fault_injection: Optional[Dict[int, Tuple[int, int]]]
    ) -> "FaultPlan":
        """The legacy ``{machine: (epoch, step)}`` dict as a kill-only plan."""
        if not fault_injection:
            return cls()
        return cls(
            FaultSpec(kind="kill", machine=int(machine),
                      epoch=int(point[0]), step=int(point[1]))
            for machine, point in fault_injection.items()
        )

    @classmethod
    def single(cls, kind: str, machine: int, epoch: int, step: int,
               duration_s: float = _DEFAULT_HANG_S) -> "FaultPlan":
        """Convenience: a one-fault plan."""
        return cls([FaultSpec(kind=kind, machine=machine, epoch=epoch,
                              step=step, duration_s=duration_s)])

    # -- validation -----------------------------------------------------
    def validate(self, num_machines: Optional[int] = None,
                 steps_per_epoch: Optional[int] = None) -> "FaultPlan":
        """Check every spec; fail fast before any worker spawns."""
        seen = set()
        for fault in self.faults:
            fault.validate(num_machines)
            key = (fault.machine, fault.epoch, fault.step)
            if key in seen:
                raise ValueError(
                    f"multiple faults scheduled for machine {fault.machine} "
                    f"at (epoch={fault.epoch}, step={fault.step}); "
                    f"one injection point takes one fault"
                )
            seen.add(key)
            if steps_per_epoch is not None and fault.step >= steps_per_epoch:
                raise ValueError(
                    f"fault at step {fault.step} can never fire: the epoch "
                    f"has {steps_per_epoch} steps"
                )
        return self

    # -- views ----------------------------------------------------------
    def for_machine(self, machine: int) -> List[FaultSpec]:
        return [f for f in self.faults if f.machine == machine]

    def machines(self) -> List[int]:
        """Machines with at least one scheduled fault, ascending."""
        return sorted({f.machine for f in self.faults})

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.faults == other.faults

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{f.kind}@m{f.machine}(e{f.epoch},s{f.step})" for f in self.faults
        )
        return f"FaultPlan([{inner}])"

    # -- wire codec -----------------------------------------------------
    def encode(self) -> list:
        """Wire-ready payload (plain lists/dicts; rides in a WorkerSpec)."""
        return [
            {"kind": f.kind, "machine": f.machine, "epoch": f.epoch,
             "step": f.step, "duration_s": float(f.duration_s)}
            for f in self.faults
        ]

    @classmethod
    def decode(cls, payload) -> "FaultPlan":
        from repro.distributed.wire import WireError

        if payload is None:
            return cls()
        if not isinstance(payload, (list, tuple)):
            raise WireError("fault plan payload must be a list")
        try:
            return cls(
                FaultSpec(kind=str(f["kind"]), machine=int(f["machine"]),
                          epoch=int(f["epoch"]), step=int(f["step"]),
                          duration_s=float(f["duration_s"]))
                for f in payload
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WireError(f"malformed fault plan: {exc}") from None
