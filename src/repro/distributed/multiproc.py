"""Multiproc cluster backend: one worker process per logical machine.

The in-process backend *simulates* K machines inside one interpreter; this
module runs them as K real worker processes, which is the gateway to every
wall-clock scale claim the repo makes.  The contract is strict functional
parity: a multiproc epoch produces bit-identical per-step losses, identical
:class:`StepRecord` volumes, an identical :class:`CommLedger`, and a stage-
event trace of identical shape to the in-process engines — the differential
test suite (``tests/distributed/test_multiproc_parity.py``) holds it to all
four.

Architecture
------------
The **coordinator** (this process) builds the system as usual, then:

* copies each machine's local feature rows, the reordered graph's CSR
  arrays, and the labels into ``multiprocessing.shared_memory`` segments,
  and creates one extra ``grads`` segment holding the
  :class:`~repro.distributed.shm_plane.GradientPlane` — ``K + 1`` seqlock-
  guarded gradient slabs (one per worker plus the averaged result);
* spawns one *generic* worker per machine (``spawn`` context — no inherited
  state) and **binds** it over the pipe with a picklable-free
  :class:`WorkerSpec` in :mod:`repro.distributed.wire` format, naming the
  segments and carrying the machine's config slice (seeds, fanouts, model
  hyperparameters, its cache selection and train ids);
* drives epochs over duplex pipes that carry **control tokens only**: per
  step the worker writes its gradients into its shared slab and sends a
  ~30-byte ``step`` token; the coordinator averages the slabs in place
  (:func:`~repro.distributed.comm.average_gradient_fields` — the in-process
  collective's exact floating-point sequence), publishes the averaged slab,
  and replies with ``avg`` tokens.  No per-step array ever crosses a pipe.

Telemetry is **batched**: step records, stage events, the synchronized
model state, and compact fetch-plan *audit digests* (per-step
``[total, gpu, cpu, cached, remote, coalesced]`` + per-peer remote row
counts, recomputed worker-side from the plan itself) accumulate in the
worker and ship once per epoch in the ``done`` message.  The coordinator
cross-checks every digest against the reported gather stats, so a worker
that miscounts its remote rows still fails the epoch loudly — without
round-tripping full encoded plans on the hot path.

The coordinator's receive loop is event-driven:
``multiprocessing.connection.wait()`` over every live pipe and process
sentinel, draining into per-worker inboxes — no 20 ms polling granularity,
and machine-order receives can no longer starve behind a slow worker.

Each **worker** attaches the segments (with
``multiprocessing.resource_tracker`` registration suppressed — the
coordinator owns the lifecycle, so only its create/unlink pair is ever
tracked) and rebuilds its machine's runtime from the spec: a
:class:`NeighborSampler` seeded with
:func:`~repro.utils.rng.machine_stream_seed` (spawn-order independent), a
model replica seeded exactly as the in-process trainer's, and a
:class:`PartitionedFeatureStore` whose K stores are views into the shared
segments — so "remote" fetches really cross a process boundary in plan
terms while the rows come from shared memory.

Warm worker pool
----------------
Spawning K interpreters and importing numpy in each costs seconds; binding
a spec costs milliseconds.  A backend with :attr:`MultiprocBackend.keep_warm`
set **parks** its workers into the module-level :data:`WORKER_POOL` on
clean close (they release every segment view and wait idle); the next
backend whose cluster *fingerprint* (a content hash over every WorkerSpec —
seeds, id arrays, hyperparameters, segment shapes — excluding the per-run
segment names) matches acquires them and rebinds, amortizing the spawn cost
across ``SalientPP`` runs.  Parking is off by default so teardown-sensitive
callers (and the fault-injection suite) see every process dead after
``close()``; fault-injected or mid-epoch clusters are never parked.

Failure semantics: a worker that dies, hangs past the timeout, violates the
slab protocol, or reports an exception raises :class:`WorkerFailedError`;
the backend then shuts the whole cluster down — every worker terminated and
joined, every pipe closed, every shared-memory segment unlinked — before
the error propagates.  A ``weakref.finalize`` guard performs the same
cleanup at interpreter exit if a caller forgets
:meth:`MultiprocBackend.close`.

Scope: ``bsp`` and ``pipelined`` engines, static caches, partitioned
storage.  Dynamic caches mutate per-gather (workers attach read-only) and
``async`` applies local updates between barriers; both are rejected at
validation.
"""

from __future__ import annotations

import atexit
import contextlib
import hashlib
import os
import secrets
import sys
import time
import traceback
import weakref
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from multiprocessing import get_context
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.distributed.cluster import CLUSTER_BACKENDS, ClusterBackend
from repro.distributed.comm import CommLedger, gradient_nbytes
from repro.distributed.engine import PrefetchIterator, train_batch
from repro.distributed.faults import FaultPlan
from repro.distributed.executor import EpochReport, StepRecord, _candidate_edges
from repro.distributed.feature_store import (
    FetchPlan,
    GatherArena,
    GatherStats,
    MachineStore,
    PartitionedFeatureStore,
)
from repro.distributed.shm_plane import (
    GradientPlane,
    SlabLayout,
    SlabStateError,
)
from repro.distributed.wire import WireError, pack_message, unpack_message
from repro.obs import OBS, clock_anchor, spans_from_wire, spans_to_wire
from repro.utils.rng import derive_seed, machine_stream_seed

# NOTE: repro.pipeline modules are imported lazily inside functions — same
# import-cycle constraint as repro.distributed.engine.

#: Engines the multiproc backend can schedule (async applies local updates
#: between barriers, which has no lock-step wire protocol).
SUPPORTED_ENGINES = ("bsp", "pipelined")

_READY_TIMEOUT_S = 120.0
_PARK_TIMEOUT_S = 15.0

#: Leading columns of a fetch-plan audit digest row (before the per-peer
#: remote counts): total, gpu, cpu, cached, remote, coalesced.
DIGEST_HEAD = 6


class WorkerFailedError(RuntimeError):
    """A worker process died, hung, or violated the wire protocol.

    On a fail-fast backend (the default), raised by the coordinator *after*
    it has shut the whole cluster down (no orphan processes, no leaked
    shared-memory segments remain).  On a ``recoverable=True`` backend the
    cluster is left standing in a faulted state instead — call
    :meth:`MultiprocBackend.recover` to replace the failed ranks, or
    :meth:`~MultiprocBackend.close` to tear down.
    """

    def __init__(self, message: str, machine: Optional[int] = None):
        super().__init__(message)
        self.machine = machine


@dataclass(frozen=True)
class SegmentSpec:
    """One shared-memory segment: name + the array layout inside it."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


@dataclass
class WorkerSpec:
    """Everything one worker needs to rebuild its machine's runtime.

    Plain wire-encodable data only (ints, strings, ndarrays, segment
    names) — the coordinator ships it over the pipe in a ``bind`` message,
    so a parked warm worker can be rebound without respawning.  Seeds
    arrive fully derived: the coordinator computes each machine's stream
    seeds with :func:`machine_stream_seed` (functions of run seed, stream
    name, and machine id only), so a worker's RNG streams can never depend
    on spawn order, pids, or import order — and are exactly the in-process
    trainer's streams for the same machine.
    """

    machine: int
    num_machines: int
    sampler_seed: int
    order_seed: int
    model_seed: int
    num_vertices: int
    num_classes: int
    feature_dim: int
    fanouts: Tuple[int, ...]
    batch_size: int
    hidden_dim: int
    arch: str
    dropout: float
    lr: float
    engine: str
    pipeline_depth: int
    steps_per_epoch: int
    gpu_rows: int
    part_offsets: np.ndarray
    local_train: np.ndarray
    cache_ids: np.ndarray
    #: "feat0".."featK-1", "indptr", "indices", "labels", "grads"
    segments: Dict[str, SegmentSpec]
    #: Chaos injection: this machine's slice of the backend's
    #: :class:`~repro.distributed.faults.FaultPlan` (kill / hang / corrupt /
    #: torn at an ``(epoch, step)`` point).  Excluded from the cluster
    #: fingerprint — faults are a property of one run, not of the workers.
    faults: Tuple = ()


_SPEC_SCALAR_FIELDS = (
    "machine", "num_machines", "sampler_seed", "order_seed", "model_seed",
    "num_vertices", "num_classes", "feature_dim", "batch_size", "hidden_dim",
    "arch", "dropout", "lr", "engine", "pipeline_depth", "steps_per_epoch",
    "gpu_rows",
)
_SPEC_ARRAY_FIELDS = ("part_offsets", "local_train", "cache_ids")


def _encode_spec(spec: WorkerSpec) -> dict:
    out = {name: getattr(spec, name) for name in _SPEC_SCALAR_FIELDS}
    for name in _SPEC_ARRAY_FIELDS:
        out[name] = getattr(spec, name)
    out["fanouts"] = tuple(spec.fanouts)
    out["segments"] = {
        key: {"name": seg.name, "shape": tuple(seg.shape), "dtype": seg.dtype}
        for key, seg in spec.segments.items()
    }
    out["faults"] = FaultPlan(spec.faults).encode()
    return out


def _decode_spec(fields) -> WorkerSpec:
    if not isinstance(fields, dict):
        raise WireError("worker spec payload must be a dict")
    try:
        segments = {
            key: SegmentSpec(name=seg["name"], shape=tuple(seg["shape"]),
                             dtype=seg["dtype"])
            for key, seg in fields["segments"].items()
        }
        return WorkerSpec(
            fanouts=tuple(fields["fanouts"]),
            segments=segments,
            faults=tuple(FaultPlan.decode(fields["faults"])),
            **{name: fields[name]
               for name in _SPEC_SCALAR_FIELDS + _SPEC_ARRAY_FIELDS},
        )
    except (KeyError, TypeError, IndexError) as exc:
        raise WireError(f"malformed worker spec: {exc}") from None


def _cluster_fingerprint(specs: List[WorkerSpec]) -> str:
    """Content hash identifying a worker cluster's full configuration.

    Two backends whose spec lists hash equal would bind byte-identical
    runtimes, so their workers are interchangeable — the warm pool's key.
    Segment *names* are excluded (random per backend; contents are re-
    attached at bind time), as is the fault schedule (a parked worker holds
    no spec, so a recovered cluster's workers are as generic as any);
    segment shapes/dtypes, every seed, every id array, and every
    hyperparameter are included.
    """
    h = hashlib.sha256()
    for spec in specs:
        enc = _encode_spec(spec)
        for key in sorted(enc):
            if key == "faults":
                continue
            val = enc[key]
            h.update(key.encode("utf8"))
            if key == "segments":
                for skey in sorted(val):
                    seg = val[skey]
                    h.update(
                        f"{skey}:{seg['shape']}:{seg['dtype']};".encode("utf8"))
            elif isinstance(val, np.ndarray):
                h.update(f"{val.dtype}:{val.shape}:".encode("utf8"))
                h.update(np.ascontiguousarray(val).tobytes())
            else:
                h.update(repr(val).encode("utf8"))
    return h.hexdigest()


class _PartMap:
    """Worker-side stand-in for :class:`ReorderedDataset`: the reorder
    offsets are all the feature store needs (ownership bisection and part
    ranges), so workers never ship the dataset itself."""

    def __init__(self, part_offsets: np.ndarray):
        self.part_offsets = np.asarray(part_offsets, dtype=np.int64)
        self.num_parts = len(self.part_offsets) - 1

    def owner_of(self, new_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(new_ids, dtype=np.int64)
        return np.searchsorted(self.part_offsets, ids, side="right") - 1

    def part_range(self, k: int) -> Tuple[int, int]:
        return int(self.part_offsets[k]), int(self.part_offsets[k + 1])


# ----------------------------------------------------------------------
# record / event codecs (dict payloads for repro.distributed.wire)
# ----------------------------------------------------------------------

def _encode_stats(g: GatherStats) -> dict:
    return {
        "total_rows": g.total_rows,
        "gpu_rows": g.gpu_rows,
        "cpu_rows": g.cpu_rows,
        "cached_rows": g.cached_rows,
        "remote_rows": g.remote_rows,
        "remote_per_peer": g.remote_per_peer,
        "cache_insertions": g.cache_insertions,
        "cache_evictions": g.cache_evictions,
        "refresh_fetch_per_peer": g.refresh_fetch_per_peer,
        "coalesced_rows": g.coalesced_rows,
    }


def _encode_record(rec: StepRecord) -> dict:
    return {
        "machine": rec.machine,
        "step": rec.step,
        "batch_size": rec.batch_size,
        "mfg_vertices": rec.mfg_vertices,
        "mfg_edges": rec.mfg_edges,
        "candidate_edges": rec.candidate_edges,
        "block_sizes": rec.block_sizes,
        "gather": _encode_stats(rec.gather),
        "loss": rec.loss,
    }


def _decode_record(fields: dict) -> StepRecord:
    g = dict(fields["gather"])
    return StepRecord(
        machine=fields["machine"],
        step=fields["step"],
        batch_size=fields["batch_size"],
        mfg_vertices=fields["mfg_vertices"],
        mfg_edges=fields["mfg_edges"],
        candidate_edges=fields["candidate_edges"],
        block_sizes=tuple(tuple(b) for b in fields["block_sizes"]),
        gather=GatherStats(**g),
        loss=fields["loss"],
    )


def _encode_events(events) -> list:
    return [(ev.stage.value, ev.machine, ev.step, list(ev.volumes))
            for ev in events]


def _decode_events(raw: list):
    from repro.pipeline.events import Stage, StageEvent

    return [StageEvent(stage=Stage(stage), machine=machine, step=step,
                       volumes=tuple((key, val) for key, val in volumes))
            for stage, machine, step, volumes in raw]


def _plan_digest(plan: FetchPlan, owner_of, num_machines: int,
                 fresh: Optional[np.ndarray] = None) -> np.ndarray:
    """One audit-digest row for a fetch plan, computed *from the plan*.

    ``[total, gpu, cpu, cached, remote, coalesced]`` followed by the
    per-peer remote row counts.  ``fresh`` (a coalesced window's
    first-request mask) splits the plan's remote ids into genuinely remote
    vs coalesced, matching how ``execute_coalesced`` attributes them.  The
    coordinator compares these rows against the reported
    :class:`GatherStats`, replacing the old full-plan wire echo.
    """
    if fresh is None:
        remote_ids = plan.remote_ids
        coalesced = 0
    else:
        remote_ids = plan.remote_ids[fresh]
        coalesced = int(len(plan.remote_ids) - len(remote_ids))
    if len(remote_ids):
        per_peer = np.bincount(owner_of(remote_ids), minlength=num_machines)
    else:
        per_peer = np.zeros(num_machines, dtype=np.int64)
    head = np.array([len(plan.ids), plan.gpu_rows, plan.cpu_rows,
                     len(plan.cached_ids), len(remote_ids), coalesced],
                    dtype=np.int64)
    return np.concatenate([head, per_peer.astype(np.int64, copy=False)])


def _stats_digest(g: GatherStats) -> np.ndarray:
    """The digest row a :class:`GatherStats` implies (coordinator side)."""
    head = np.array([g.total_rows, g.gpu_rows, g.cpu_rows, g.cached_rows,
                     g.remote_rows, g.coalesced_rows], dtype=np.int64)
    return np.concatenate([
        head, np.asarray(g.remote_per_peer, dtype=np.int64).ravel()])


# ----------------------------------------------------------------------
# shared-memory plumbing
# ----------------------------------------------------------------------

def _create_segment(name: str, arr: np.ndarray):
    """Create + fill one segment; returns ``(SharedMemory, SegmentSpec)``.

    No numpy view of the buffer survives this function — the coordinator
    must be able to ``close()``/``unlink()`` without BufferError.
    """
    shm = shared_memory.SharedMemory(create=True, name=name,
                                     size=max(int(arr.nbytes), 1))
    if arr.size:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        del view
    spec = SegmentSpec(name=shm.name, shape=tuple(arr.shape),
                       dtype=arr.dtype.str)
    return shm, spec


def _attach_shm(name: str):
    """Attach an existing segment without resource-tracker registration.

    On Python < 3.13 attaching registers the segment with the resource
    tracker, which the coordinator's later ``unlink`` would then
    double-unregister (the tracker keys by name, shared across the spawn
    tree) — and a worker dying uncleanly would make the tracker unlink a
    segment it does not own.  The coordinator created the segment and owns
    its lifecycle, so the attach is made invisible to the tracker
    (``track=False`` is the 3.13+ spelling of the same thing).
    """
    orig_register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig_register


def _attach_segment(spec: SegmentSpec):
    """Attach one segment read-only; returns ``(SharedMemory, view)``."""
    shm = _attach_shm(spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    view.flags.writeable = False
    return shm, view


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------

class _EpochAborted(Exception):
    """Coordinator told this worker to abandon the in-flight epoch (another
    machine faulted); unwind to the command loop and acknowledge."""


class _WorkerRuntime:
    """One machine's runtime inside its worker process."""

    def __init__(self, spec: WorkerSpec, conn):
        import repro.pipeline.events  # noqa: F401 — warm run_epoch's lazy import
        from repro.graph.csr import CSRGraph

        self.spec = spec
        self.conn = conn
        k, K = spec.machine, spec.num_machines

        # Chaos state: scheduled faults not yet fired, plus the two flags
        # the deferred kinds arm (corrupt poisons the next outgoing message,
        # torn leaves the slab seqlock odd after the step's publish).
        self._pending_faults = list(spec.faults)
        self._corrupt_next = False
        self._torn_steps = set()

        # Attach every data segment; keep the SharedMemory objects alive
        # while the runtime exists (views borrow their buffers).  The
        # gradient plane attaches writable, below.
        self._shms = []
        views = {}
        for key, seg in spec.segments.items():
            if key == "grads":
                continue
            shm, view = _attach_segment(seg)
            self._shms.append(shm)
            views[key] = view
        self.labels = views["labels"]
        self.graph = CSRGraph(views["indptr"], views["indices"], check=False)

        part_map = _PartMap(spec.part_offsets)
        dim = spec.feature_dim
        feat_dtype = views["feat0"].dtype
        empty_ids = np.empty(0, dtype=np.int64)
        empty_rows = np.empty((0, dim), dtype=feat_dtype)

        # This machine's cache rows, gathered from the owners' segments —
        # bit-identical to the build-time ds.features[cache_ids] slice.
        cache_ids = np.asarray(spec.cache_ids, dtype=np.int64)
        cache_rows = np.empty((len(cache_ids), dim), dtype=feat_dtype)
        if len(cache_ids):
            owners = part_map.owner_of(cache_ids)
            for peer in np.unique(owners):
                sel = owners == peer
                lo, _hi = part_map.part_range(int(peer))
                cache_rows[sel] = views[f"feat{int(peer)}"][cache_ids[sel] - lo]

        stores = []
        for j in range(K):
            lo, hi = part_map.part_range(j)
            stores.append(MachineStore(
                part_id=j, lo=lo, hi=hi,
                local_features=views[f"feat{j}"],
                gpu_rows=spec.gpu_rows if j == k else 0,
                cache_ids=cache_ids if j == k else empty_ids,
                cache_features=cache_rows if j == k else empty_rows,
                num_vertices=spec.num_vertices,
            ))
        self.store = PartitionedFeatureStore(stores, part_map, dim,
                                             feat_dtype.itemsize)

        self._init_training_state()
        self.degrees = self.graph.degrees
        self.arena = GatherArena()
        self.dims = (dim, spec.hidden_dim, spec.num_classes)

        # Gradient plane: this worker's slab (write) + the averaged slab
        # (read).  Both sides derive the layout from named_parameters()
        # order; the segment size check catches any disagreement.
        self.grad_plane = None
        self._my_slab = self._avg_slab = None
        grads_seg = spec.segments.get("grads")
        if grads_seg is not None:
            params = [p.data for _n, p in self.model.named_parameters()]
            layout = SlabLayout.from_templates(params)
            shm = _attach_shm(grads_seg.name)
            self._shms.append(shm)
            self.grad_plane = GradientPlane(shm.buf, K, layout)
            self._my_slab = self.grad_plane.worker_slabs[k]
            self._avg_slab = self.grad_plane.avg_slab
            self._avg_bufs = [np.empty_like(p) for p in params]

    def _init_training_state(self) -> None:
        """(Re)build the sampler/model/optimizer at epoch-0 initial state.

        Seeding mirrors DistributedTrainer exactly: the sampler stream seed
        is this machine's ``machine_stream_seed`` (spawn-order independent),
        the model seed is shared by every replica (identical initial
        weights, no broadcast needed).  Called at bind time and again on a
        ``restore`` with no checkpoint — replaying epoch 0 after a fault
        needs exactly the bind-time state back.
        """
        from repro.nn.models import build_model
        from repro.nn.optim import Adam

        from repro.sampling.neighbor import NeighborSampler

        spec = self.spec
        self.sampler = NeighborSampler(self.graph, spec.fanouts,
                                       seed=spec.sampler_seed)
        self.model = build_model(
            spec.arch, spec.feature_dim, spec.hidden_dim, spec.num_classes,
            len(spec.fanouts), dropout=spec.dropout,
            seed=spec.model_seed,
        )
        self.optimizer = Adam(self.model.parameters(), lr=spec.lr)

    def _rng_modules(self) -> list:
        """Every submodule owning a ``_rng`` stream (Dropout layers), in
        deterministic registration order — the checkpoint captures and
        restores their cursors positionally."""
        out = []

        def walk(mod):
            if getattr(mod, "_rng", None) is not None:
                out.append(mod)
            for child in mod._modules.values():
                walk(child)

        walk(self.model)
        return out

    def capture_state(self) -> dict:
        """Wire-encodable snapshot of everything that advances per step:
        model weights, Adam moments, and every RNG cursor (sampler +
        dropout streams).  Taken at an epoch boundary, this is sufficient
        to replay the next epoch bit-identically."""
        return {
            "model": dict(self.model.state_dict()),
            "adam": self.optimizer.state_dict(),
            "sampler": self.sampler.rng_state(),
            "layer_rngs": [repr(m._rng.bit_generator.state)
                           for m in self._rng_modules()],
        }

    def restore_state(self, payload) -> None:
        """Load a :meth:`capture_state` snapshot (``None`` → epoch-0 fresh
        state).  RNG states travel as ``repr`` strings because PCG64
        cursors are 128-bit ints, beyond the wire's 64-bit range."""
        import ast

        if payload is None:
            self._init_training_state()
            return
        self.model.load_state_dict(payload["model"])
        self.optimizer.load_state_dict(payload["adam"])
        self.sampler.set_rng_state(payload["sampler"])
        rng_mods = self._rng_modules()
        states = payload["layer_rngs"]
        if len(states) != len(rng_mods):
            raise RuntimeError(
                f"checkpoint has {len(states)} layer RNG streams, model "
                f"has {len(rng_mods)}")
        for mod, state in zip(rng_mods, states):
            mod._rng.bit_generator.state = ast.literal_eval(state)

    def release(self) -> None:
        """Drop every view into shared memory and close the attachments —
        required before this process can be parked (the coordinator will
        unlink the segments) or rebound to a new cluster."""
        if self.grad_plane is not None:
            self.grad_plane.release()
            self.grad_plane = None
        self._my_slab = self._avg_slab = None
        self.labels = self.graph = self.store = None
        self.sampler = self.model = self.optimizer = None
        self.degrees = self.arena = None
        import gc

        gc.collect()
        for shm in self._shms:
            try:
                shm.close()
            except Exception:
                pass
        self._shms = []

    # -- protocol ------------------------------------------------------
    def send(self, kind: str, payload) -> None:
        data = pack_message(kind, payload)
        if self._corrupt_next:
            # Armed by a "corrupt" fault: flip the last payload byte (just
            # inside the CRC32 trailer) so the frame is well-formed but its
            # checksum is wrong — the coordinator must reject, not decode.
            self._corrupt_next = False
            torn = bytearray(data)
            torn[-5] ^= 0xFF
            data = bytes(torn)
        self.conn.send_bytes(data)

    def recv(self) -> Tuple[str, object]:
        return unpack_message(self.conn.recv_bytes())

    # -- training ------------------------------------------------------
    def _batches(self, epoch: int):
        return self.sampler.batches(
            self.spec.local_train, self.spec.batch_size,
            drop_last=True, epoch=epoch,
            seed=self.spec.order_seed,
        )

    def _make_record(self, step: int, mfg, stats, loss) -> StepRecord:
        return StepRecord(
            machine=self.spec.machine,
            step=step,
            batch_size=mfg.batch_size,
            mfg_vertices=mfg.num_vertices,
            mfg_edges=mfg.num_edges,
            candidate_edges=_candidate_edges(self.degrees, mfg),
            block_sizes=tuple(
                (b.num_src, b.num_dst, b.num_edges) for b in mfg.blocks
            ),
            gather=stats,
            loss=loss,
        )

    def _grads(self) -> list:
        return [p.grad for _name, p in self.model.named_parameters()]

    def _sync_step(self, step: int) -> None:
        """Publish this step's gradients, wait for the averaged slab, and
        step the optimizer — the token-only replacement for shipping
        gradient arrays both ways."""
        self._my_slab.write(self._grads(), step)
        if step in self._torn_steps:
            # "torn" fault: re-enter a write (seqlock odd) after the
            # publish, then report the step anyway — the coordinator's
            # average() must see the in-flight write and attribute it here.
            self._torn_steps.discard(step)
            self._my_slab.begin_write()
        self.send("step" if self.spec.engine == "bsp" else "wstep",
                  {"step": step})
        kind, payload = self.recv()
        if kind == "abort":
            raise _EpochAborted
        if kind != "avg":
            raise RuntimeError(f"expected avg, got {kind!r}")
        if payload["step"] != step:
            raise RuntimeError(
                f"avg token for step {payload['step']}, expected {step}")
        self._avg_slab.read_into(self._avg_bufs, step)
        params = [p for _name, p in self.model.named_parameters()]
        for p, g in zip(params, self._avg_bufs):
            p.grad = g
        self.optimizer.step()

    def _inject_faults(self, epoch: int, step_lo: int, step_hi: int) -> None:
        """Fire any scheduled fault whose injection point falls in this
        epoch's ``[step_lo, step_hi)`` (a single step for bsp, a window for
        pipelined).  Each fault fires at most once."""
        for fault in list(self._pending_faults):
            if fault.epoch != epoch or not step_lo <= fault.step < step_hi:
                continue
            self._pending_faults.remove(fault)
            if fault.kind == "kill":
                os._exit(13)  # simulated hard crash (no cleanup, no goodbye)
            elif fault.kind == "hang":
                time.sleep(fault.duration_s)  # wedged past any timeout_s
            elif fault.kind == "corrupt":
                self._corrupt_next = True
            elif fault.kind == "torn":
                self._torn_steps.add(fault.step)

    def run_epoch(self, epoch: int, dry_run: bool,
                  trace_ctx: Optional[dict] = None) -> None:
        spec = self.spec
        k = spec.machine
        if trace_ctx:
            # The coordinator shipped its trace context in the run token:
            # record this epoch's spans under the same trace id, parented
            # on the coordinator's epoch span, and batch them into the
            # done message (no extra hot-path wire traffic).
            OBS.enable(lane=f"worker-{k}",
                       trace_id=trace_ctx.get("trace_id"))
            OBS.tracer.drain()
            OBS.metrics.reset()
        parent = int(trace_ctx.get("parent") or 0) if trace_ctx else None
        events = _EventSink()
        records: List[StepRecord] = []
        digests: List[np.ndarray] = []
        owner_of = self.store.reordered.owner_of
        try:
            self._run_epoch_body(epoch, dry_run, parent, events, records,
                                 digests, owner_of)
        except _EpochAborted:
            # Another machine faulted; the coordinator is quiescing the
            # cluster.  Drop the partial epoch (a later "restore" rewinds
            # the training state) and acknowledge.
            if trace_ctx:
                OBS.disable()
            self.send("aborted", {"machine": k})
            return

        state = None
        if not dry_run:
            state = dict(self.model.state_dict())
        digest_mat = (np.stack(digests) if digests else
                      np.zeros((0, DIGEST_HEAD + spec.num_machines),
                               dtype=np.int64))
        done = {
            "records": [_encode_record(r) for r in records],
            "digests": digest_mat,
            "events": _encode_events(events.events),
            "state": state,
        }
        if trace_ctx:
            done["spans"] = spans_to_wire(OBS.tracer.drain())
            done["clock"] = list(clock_anchor())
            done["metrics"] = OBS.metrics.snapshot()
            OBS.disable()
        self.send("done", done)

    def _run_epoch_body(self, epoch: int, dry_run: bool, parent, events,
                        records: list, digests: list, owner_of) -> None:
        from repro.pipeline.events import emit_step_events

        spec = self.spec
        k = spec.machine
        with OBS.span("worker.epoch", parent_id=parent, machine=k,
                      epoch=epoch, engine=spec.engine, dry_run=dry_run):
            if spec.engine == "bsp":
                iterator = self._batches(epoch)
                for step in range(spec.steps_per_epoch):
                    with OBS.span("worker.step", step=step,
                                  hist="worker.step_wall_s"):
                        mfg = next(iterator)
                        plan = self.store.plan_gather(k, mfg.n_id)
                        feats, stats = self.store.execute(
                            plan, out=self.arena.out((k, 0), len(mfg.n_id),
                                                     spec.feature_dim,
                                                     feats_dtype(self)),
                        )
                        self._inject_faults(epoch, step, step + 1)
                        loss = None
                        if not dry_run:
                            loss = train_batch(self.model, feats, mfg,
                                               self.labels[mfg.seeds])
                        rec = self._make_record(step, mfg, stats, loss)
                        records.append(rec)
                        digests.append(
                            _plan_digest(plan, owner_of, spec.num_machines))
                        emit_step_events(events, rec, 0, self.dims,
                                         window_start=step)
                        if dry_run:
                            self.send("step", {"step": step})
                        else:
                            self._sync_step(step)
            elif spec.engine == "pipelined":
                self._run_pipelined_epoch(epoch, dry_run, events, records,
                                          digests)
            else:  # pragma: no cover - validated coordinator-side
                raise RuntimeError(f"unsupported engine {spec.engine!r}")

    def _run_pipelined_epoch(self, epoch: int, dry_run: bool, events,
                             records: list, digests: list) -> None:
        from repro.pipeline.events import emit_step_events

        spec = self.spec
        k = spec.machine
        owner_of = self.store.reordered.owner_of
        steps, depth = spec.steps_per_epoch, spec.pipeline_depth
        prefetcher = PrefetchIterator(self._batches(epoch), depth)
        for w0 in range(0, steps, depth):
            w1 = min(w0 + depth, steps)
            with OBS.span("worker.window", window=w0, width=w1 - w0,
                          hist="worker.window_wall_s"):
                width = w1 - w0
                mfgs = prefetcher.next_window(width)
                if len(mfgs) != width:
                    raise RuntimeError(
                        f"machine {k} batch stream ended early "
                        f"({len(mfgs)}/{width} batches in window {w0})"
                    )
                plans = [self.store.plan_gather(k, mfg.n_id) for mfg in mfgs]
                cplan = FetchPlan.coalesce(plans)
                results = self.store.execute_coalesced(
                    cplan,
                    outs=[self.arena.out((k, i), len(p.ids),
                                         spec.feature_dim,
                                         feats_dtype(self))
                          for i, p in enumerate(plans)],
                )
                self._inject_faults(epoch, w0, w1)
                recs = [self._make_record(s, mfgs[i], results[i][1], None)
                        for i, s in enumerate(range(w0, w1))]
                records.extend(recs)
                digests.extend(
                    _plan_digest(plan, owner_of, spec.num_machines,
                                 fresh=fresh)
                    for plan, fresh in zip(cplan.plans, cplan.first_request))
                for rec in recs:
                    emit_step_events(events, rec, 0, self.dims,
                                     window_start=w0)
                self.send("window", {"w0": w0})
                if not dry_run:
                    for i, s in enumerate(range(w0, w1)):
                        loss = train_batch(self.model, results[i][0],
                                           mfgs[i],
                                           self.labels[mfgs[i].seeds])
                        recs[i].loss = loss
                        self._sync_step(s)


class _EventSink:
    """Minimal stand-in for an EventTrace on the worker side: collects the
    per-step events ``emit_step_events`` emits; the coordinator merges them
    into the real trace."""

    def __init__(self):
        self.events = []

    def add(self, stage, machine, step, **volumes):
        from repro.pipeline.events import StageEvent

        self.events.append(StageEvent(stage=stage, machine=machine, step=step,
                                      volumes=tuple(volumes.items())))


def feats_dtype(runtime: _WorkerRuntime) -> np.dtype:
    return runtime.store.stores[runtime.spec.machine].local_features.dtype


def _worker_main(conn) -> None:
    """Worker process entry point (must be module-level for spawn).

    Generic: the process is spawned bare, announces ``ready``, and builds
    its runtime only when the coordinator ``bind``\\ s a :class:`WorkerSpec`
    over the pipe — which is also how a parked warm-pool worker is rebound
    by a later backend.  ``park`` releases every shared-memory view and
    returns the process to the idle loop.
    """
    runtime = None
    try:
        conn.send_bytes(pack_message("ready", {"pid": os.getpid()}))
        while True:
            kind, payload = unpack_message(conn.recv_bytes())
            if kind == "stop":
                if runtime is not None:
                    # Drop every shared-memory view before a normal exit,
                    # or SharedMemory.__del__ hits BufferError at teardown.
                    runtime.release()
                    runtime = None
                return
            elif kind == "bind":
                if runtime is not None:
                    runtime.release()
                    runtime = None
                runtime = _WorkerRuntime(_decode_spec(payload), conn)
                conn.send_bytes(pack_message(
                    "bound", {"machine": runtime.spec.machine}))
            elif kind == "park":
                if runtime is not None:
                    runtime.release()
                    runtime = None
                conn.send_bytes(pack_message("parked", {"pid": os.getpid()}))
            elif kind == "run":
                if runtime is None:
                    raise RuntimeError("run received before bind")
                runtime.run_epoch(payload["epoch"], payload["dry_run"],
                                  payload.get("trace"))
            elif kind == "abort":
                # Recovery quiesce reached an already-idle worker (its
                # epoch finished, or it never started one): nothing to
                # unwind, acknowledge immediately.
                machine = None if runtime is None else runtime.spec.machine
                conn.send_bytes(pack_message("aborted", {"machine": machine}))
            elif kind == "ckpt":
                if runtime is None:
                    raise RuntimeError("ckpt received before bind")
                conn.send_bytes(pack_message("state", runtime.capture_state()))
            elif kind == "restore":
                if runtime is None:
                    raise RuntimeError("restore received before bind")
                runtime.restore_state(payload)
                conn.send_bytes(pack_message(
                    "restored", {"machine": runtime.spec.machine}))
            else:
                raise RuntimeError(f"unexpected coordinator message {kind!r}")
    except (EOFError, BrokenPipeError, OSError):
        # The coordinator went away; nothing to report to.
        os._exit(1)
    except Exception:
        try:
            conn.send_bytes(pack_message("error", {
                "machine": None if runtime is None else runtime.spec.machine,
                "traceback": traceback.format_exc(),
            }))
        except Exception:
            pass
        os._exit(1)
    finally:
        try:
            conn.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# warm worker pool
# ----------------------------------------------------------------------

class WorkerPool:
    """Parked warm worker clusters, keyed by cluster fingerprint.

    A parked worker is a live, idle process holding no shared-memory
    attachments — just the imported interpreter (the expensive part of a
    spawn).  Clusters park and acquire as a unit: machine ``k``'s pipe
    stays machine ``k``'s pipe.  Dead clusters found at acquire time are
    disposed of; :meth:`clear` (also registered ``atexit``) stops
    everything politely, then escalates.
    """

    def __init__(self):
        self._clusters: Dict[str, List[list]] = {}
        # Loose parked workers left over when recovery broke a cluster up
        # for a single-rank replacement; same fingerprint key.
        self._spares: Dict[str, list] = {}

    @property
    def num_parked(self) -> int:
        """Total parked worker processes across all fingerprints."""
        return sum(len(workers) for stack in self._clusters.values()
                   for workers in stack) \
            + sum(len(v) for v in self._spares.values())

    def park(self, key: str, workers: list) -> None:
        self._clusters.setdefault(key, []).append(list(workers))

    def acquire(self, key: str) -> Optional[list]:
        """Pop one fully-alive parked cluster for ``key``, or ``None``."""
        stack = self._clusters.get(key)
        while stack:
            workers = stack.pop()
            if not stack:
                self._clusters.pop(key, None)
            if all(proc.is_alive() for proc, _conn in workers):
                return workers
            self._dispose(workers)
        self._clusters.pop(key, None)
        return None

    def acquire_spare(self, key: str):
        """Pop one live parked worker for ``key`` — recovery's warm path.

        Prefers a loose spare; otherwise breaks up a parked cluster of the
        same fingerprint (the remainder becomes spares — parked workers
        are generic, so any of them can be rebound as any rank).  Returns
        a ``(process, conn)`` pair or ``None``.
        """
        spares = self._spares.get(key, [])
        while spares:
            proc, conn = spares.pop()
            if not spares:
                self._spares.pop(key, None)
            if proc.is_alive():
                return proc, conn
            self._dispose([(proc, conn)])
        cluster = self.acquire(key)
        if cluster is None:
            return None
        taken = cluster.pop()
        if cluster:
            self._spares.setdefault(key, []).extend(cluster)
        return taken

    def clear(self) -> None:
        for stack in self._clusters.values():
            for workers in stack:
                self._dispose(workers)
        self._clusters.clear()
        for spares in self._spares.values():
            self._dispose(spares)
        self._spares.clear()

    @staticmethod
    def _dispose(workers: list) -> None:
        for _proc, conn in workers:
            try:
                conn.send_bytes(pack_message("stop", None))
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        for proc, conn in workers:
            try:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
            except Exception:
                pass
            for escalate in ("terminate", "kill"):
                if not proc.is_alive():
                    break
                try:
                    getattr(proc, escalate)()
                    proc.join(timeout=5.0)
                except Exception:
                    pass
            try:
                conn.close()
            except Exception:
                pass


#: The process-wide warm pool (see :class:`WorkerPool`); cleared atexit.
WORKER_POOL = WorkerPool()
atexit.register(WORKER_POOL.clear)


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------

@contextlib.contextmanager
def _spawn_safe_main():
    """Make ``Process.start()`` safe when ``__main__`` has no real file.

    The spawn context re-imports the parent's ``__main__`` in every child;
    with code fed via stdin (``python -``, heredocs) the recorded path is
    the pseudo-file ``"<stdin>"`` and the child dies in ``runpy`` before
    reaching the worker target.  Our workers are self-contained (the target
    is this module's :func:`_worker_main`, the state a wire-encoded spec),
    so when the main module's file does not actually exist we drop its
    ``__file__`` for the duration of the spawn — ``get_preparation_data``
    then skips the main-module fixup entirely.
    """
    main = sys.modules.get("__main__")
    path = getattr(main, "__file__", None)
    strip = (path is not None
             and getattr(main, "__spec__", None) is None
             and not os.path.exists(path))
    if strip:
        del main.__file__
    try:
        yield
    finally:
        if strip and not hasattr(main, "__file__"):
            main.__file__ = path


@CLUSTER_BACKENDS.register("multiproc")
class MultiprocBackend(ClusterBackend):
    """Coordinator for K worker processes over shared-memory segments.

    Built lazily: the first :meth:`run_epoch` creates the segments and
    spawns (or acquires from :data:`WORKER_POOL`) the workers; they persist
    across epochs (sampler and optimizer state live worker-side, exactly
    as the in-process trainer's persists across epochs).  After a non-dry
    epoch the synchronized model weights are loaded back into the system's
    in-process replicas, so ``system.evaluate()`` sees the trained model.

    Parameters
    ----------
    system:
        A built :class:`~repro.core.system.SalientPP` (``bsp`` or
        ``pipelined`` engine, static caches, partitioned storage).
    timeout_s:
        Per-message coordinator patience before declaring a worker hung.
    keep_warm:
        Park the workers into the module-level :data:`WORKER_POOL` on clean
        close instead of stopping them, so the next backend with the same
        cluster fingerprint skips the spawn cost.  Off by default — with it
        off, ``close()`` leaves every worker process dead (the teardown
        contract the fault suite asserts).  Mutable attribute; fault-
        injected or mid-epoch clusters are never parked regardless.
    fault_injection:
        Legacy chaos hook: ``{machine: (epoch, step)}`` hard-kills the
        machine's worker mid-epoch at that point — sugar for a kill-only
        ``faults`` plan.
    faults:
        A :class:`~repro.distributed.faults.FaultPlan` scheduling kill /
        hang / corrupt / torn faults on specific machines at specific
        ``(epoch, step)`` points; validated against the cluster shape at
        :meth:`start`.
    recoverable:
        With this set, a worker failure *mid-epoch* marks the backend
        faulted instead of tearing the cluster down; :meth:`recover`
        replaces the failed ranks (warm spares when the pool has matching
        workers), quiesces the survivors and the gradient plane, and
        restores a :meth:`capture_checkpoint` snapshot so the interrupted
        epoch can be replayed bit-identically.  Off by default — fail-stop
        teardown remains the contract for everyone else.

    Wire accounting: :attr:`wire_sent` / :attr:`wire_received` map message
    kind to ``[message_count, total_bytes]`` — the regression test for
    "pipes carry control tokens only" reads these.
    """

    name = "multiproc"

    def __init__(self, system, *, timeout_s: float = 120.0,
                 keep_warm: bool = False,
                 fault_injection: Optional[Dict[int, Tuple[int, int]]] = None,
                 faults: Optional[FaultPlan] = None,
                 recoverable: bool = False):
        super().__init__(system)
        store = system.trainer.store
        engine = system.config.engine
        if engine not in SUPPORTED_ENGINES:
            raise ValueError(
                f"multiproc backend supports engines {SUPPORTED_ENGINES}, "
                f"got {engine!r}"
            )
        if store.has_dynamic_caches:
            raise ValueError(
                "multiproc backend requires static caches: workers attach "
                "feature segments read-only, dynamic caches mutate per gather"
            )
        if store.is_replicated:
            raise ValueError(
                "multiproc backend requires partitioned storage; full "
                "replication would copy the whole feature matrix per segment"
            )
        self.timeout_s = float(timeout_s)
        self.keep_warm = bool(keep_warm)
        self.fault_injection = dict(fault_injection or {})
        self.fault_plan = FaultPlan(
            list(FaultPlan.from_kill_points(self.fault_injection))
            + list(faults or ()))
        self.recoverable = bool(recoverable)
        #: Ranks whose workers faulted in the current (unrecovered) episode.
        self._faulted_machines: set = set()
        self._faulted = False
        self._recovered = False
        self._in_recovery = False
        self._epoch_active = False
        #: Cumulative count of ranks replaced by :meth:`recover`.
        self.restarts_total = 0
        self._started = False
        self._closing = False
        self._idle = True
        self._procs: List = []
        self._conns: List = []
        self._segments: List = []
        self._holders: List = []
        self._inboxes: List[deque] = []
        self._conn_open: List[bool] = []
        self._grad_plane: Optional[GradientPlane] = None
        self._pool_key: Optional[str] = None
        self.segment_names: List[str] = []
        #: Per-machine specs shipped to the workers (set by start()) —
        #: inspectable so tests can assert the derived seed contract.
        self.worker_specs: List[WorkerSpec] = []
        #: True when start() rebound a parked warm-pool cluster instead of
        #: spawning fresh processes.
        self.reused_pool = False
        #: kind -> [message_count, total_bytes] for each pipe direction.
        self.wire_sent: Dict[str, List[int]] = {}
        self.wire_received: Dict[str, List[int]] = {}
        self._finalizer = None
        #: Span id of the epoch currently running (0 outside an epoch or
        #: with observability off) — broadcast to workers so their epoch
        #: spans parent onto the coordinator's.
        self._epoch_span_id = 0

    # -- lifecycle -----------------------------------------------------
    @property
    def is_live(self) -> bool:
        return self._started and self._finalizer is not None \
            and self._finalizer.alive

    @property
    def processes(self) -> List:
        """The worker Process objects (test hook; empty before start)."""
        return list(self._procs)

    def start(self) -> None:
        """Create segments, spawn or acquire workers, bind their specs."""
        if self._started:
            return
        tr = self.system.trainer
        K = tr.num_machines
        self.fault_plan.validate(num_machines=K,
                                 steps_per_epoch=tr.steps_per_epoch())
        prefix = f"rpmp{secrets.token_hex(4)}"
        ctx = get_context("spawn")

        specs: Dict[str, SegmentSpec] = {}
        try:
            arrays = {f"feat{k}": tr.store.stores[k].local_features
                      for k in range(K)}
            arrays["indptr"] = tr.ds.graph.indptr
            arrays["indices"] = tr.ds.graph.indices
            arrays["labels"] = tr.ds.labels
            for key, arr in arrays.items():
                shm, seg = _create_segment(f"{prefix}{key}", arr)
                self._segments.append(shm)
                self.segment_names.append(seg.name)
                specs[key] = seg

            # The gradient plane: K worker slabs + the averaged slab, laid
            # out from the coordinator replica's parameter order (workers
            # re-derive the same layout and verify by size).
            layout = SlabLayout.from_templates(
                [p.data for _n, p in tr.models[0].named_parameters()])
            plane_shm = shared_memory.SharedMemory(
                create=True, name=f"{prefix}grads",
                size=max(layout.plane_nbytes(K), 1))
            self._segments.append(plane_shm)
            self.segment_names.append(plane_shm.name)
            specs["grads"] = SegmentSpec(
                name=plane_shm.name, shape=(layout.plane_nbytes(K),),
                dtype="|u1")
            self._grad_plane = GradientPlane(plane_shm.buf, K, layout)
            self._grad_plane.reset()
            self._holders.append(self._grad_plane)

            cfg = self.system.config
            for k in range(K):
                spec = WorkerSpec(
                    machine=k,
                    num_machines=K,
                    sampler_seed=machine_stream_seed(tr.seed, "sampler", k),
                    order_seed=machine_stream_seed(tr.seed, "order", k),
                    model_seed=derive_seed(tr.seed, "model"),
                    num_vertices=tr.ds.num_vertices,
                    num_classes=tr.ds.num_classes,
                    feature_dim=tr.ds.feature_dim,
                    fanouts=tr.fanouts,
                    batch_size=tr.batch_size,
                    hidden_dim=tr.hidden_dim,
                    arch=tr.arch,
                    dropout=float(cfg.dropout),
                    lr=float(cfg.lr),
                    engine=cfg.engine,
                    pipeline_depth=int(cfg.pipeline_depth),
                    steps_per_epoch=tr.steps_per_epoch(),
                    gpu_rows=tr.store.stores[k].gpu_rows,
                    part_offsets=np.asarray(tr.reordered.part_offsets,
                                            dtype=np.int64),
                    local_train=tr.local_train[k],
                    cache_ids=np.asarray(tr.store.stores[k].cache_ids,
                                         dtype=np.int64),
                    segments=specs,
                    faults=tuple(self.fault_plan.for_machine(k)),
                )
                self.worker_specs.append(spec)
            self._pool_key = _cluster_fingerprint(self.worker_specs)

            pooled = WORKER_POOL.acquire(self._pool_key)
            self.reused_pool = pooled is not None
            if OBS.enabled:
                OBS.metrics.counter(
                    "mp.warm_pool_hits" if self.reused_pool
                    else "mp.warm_pool_misses").inc()
            if pooled is not None:
                for proc, conn in pooled:
                    self._procs.append(proc)
                    self._conns.append(conn)
            else:
                for k in range(K):
                    proc, parent = self._spawn_worker(k)
                    self._procs.append(proc)
                    self._conns.append(parent)

            self._inboxes = [deque() for _ in range(K)]
            self._conn_open = [True] * K
            self._started = True
            self._finalizer = weakref.finalize(
                self, MultiprocBackend._cleanup,
                self._procs, self._conns, self._segments, self._holders,
            )
            deadline = time.monotonic() + _READY_TIMEOUT_S
            if not self.reused_pool:
                for k in range(K):
                    kind, _payload = self._recv(k, deadline=deadline)
                    if kind != "ready":
                        self._fail(k, f"expected ready handshake, got {kind!r}")
            for k in range(K):
                self._send(k, "bind", _encode_spec(self.worker_specs[k]))
            for k in range(K):
                kind, payload = self._recv(k, deadline=deadline)
                if kind != "bound":
                    self._fail(k, f"expected bound handshake, got {kind!r}")
                if not isinstance(payload, dict) or payload.get("machine") != k:
                    self._fail(k, "bound handshake reported the wrong machine")
        except WorkerFailedError:
            raise
        except Exception:
            self._started = True  # make close() tear down what exists
            self.close()
            raise

    @staticmethod
    def _spawn_worker(k: int):
        """Spawn one generic worker; returns ``(process, parent_conn)``."""
        ctx = get_context("spawn")
        parent, child = ctx.Pipe(duplex=True)
        proc = ctx.Process(target=_worker_main, args=(child,),
                           daemon=True, name=f"repro-mp-worker-{k}")
        with _spawn_safe_main():
            proc.start()
        child.close()
        return proc, parent

    def close(self) -> None:
        """Stop (or park, with :attr:`keep_warm`) the workers and release
        every runtime resource; idempotent."""
        if not self._closing:
            self._closing = True
            # Parkable: clean, idle, and either never fault-scheduled or
            # fully recovered.  A faulted-unrecovered cluster (or one whose
            # plan never fired) is torn down — the fault suite's teardown
            # contract — while a recovered-then-clean cluster is as generic
            # as any (parked workers hold no spec, let alone a fault).
            if (self.keep_warm and not self._faulted
                    and (self._recovered or not self.fault_plan)
                    and self._idle and self.is_live):
                try:
                    self._park_to_pool()
                except Exception:
                    pass
        if self._finalizer is not None:
            self._finalizer()  # runs _cleanup at most once
        elif self._segments:
            # start() failed before the finalizer existed.
            MultiprocBackend._cleanup(self._procs, self._conns,
                                      self._segments, self._holders)

    def _park_to_pool(self) -> bool:
        """Hand the quiescent workers to :data:`WORKER_POOL`.

        On success the proc/conn lists are emptied in place, so the
        finalizer's teardown skips them and only unlinks segments.  Any
        protocol hiccup aborts parking and falls back to full teardown.
        """
        if not self._procs or self._pool_key is None:
            return False
        K = len(self._procs)
        try:
            for k in range(K):
                self._send(k, "park", None)
            deadline = time.monotonic() + _PARK_TIMEOUT_S
            for k in range(K):
                kind, _payload = self._recv(k, deadline=deadline)
                if kind != "parked" or self._inboxes[k]:
                    return False
        except WorkerFailedError:
            return False  # _fail already tore the cluster down
        WORKER_POOL.park(self._pool_key, list(zip(self._procs, self._conns)))
        self._procs.clear()
        self._conns.clear()
        self._inboxes = []
        self._conn_open = []
        return True

    @staticmethod
    def _cleanup(procs, conns, segments, holders) -> None:
        """Full teardown: polite stop, escalate to terminate/kill, close
        pipes, drop shared-memory views, unlink segments.  Static +
        in-place so the ``weakref`` finalizer can run it without
        resurrecting the backend."""
        for conn in conns:
            try:
                conn.send_bytes(pack_message("stop", None))
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        for proc in procs:
            try:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
            except Exception:
                pass
        for escalate in ("terminate", "kill"):
            if not any(p.is_alive() for p in procs):
                break
            for proc in procs:
                if proc.is_alive():
                    getattr(proc, escalate)()
            for proc in procs:
                try:
                    proc.join(timeout=5.0)
                except Exception:
                    pass
        for conn in conns:
            try:
                conn.close()
            except Exception:
                pass
        conns.clear()
        for holder in holders:
            try:
                holder.release()
            except Exception:
                pass
        holders.clear()
        for shm in segments:
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass
        segments.clear()

    @property
    def closed(self) -> bool:
        return self._started and not self.is_live

    # -- wire helpers --------------------------------------------------
    @staticmethod
    def _count(table: Dict[str, List[int]], kind: str, nbytes: int) -> None:
        entry = table.setdefault(kind, [0, 0])
        entry[0] += 1
        entry[1] += nbytes

    def _fail(self, machine: Optional[int], why: str) -> None:
        message = f"worker {machine}: {why}" if machine is not None else why
        if (self.recoverable and machine is not None and self._epoch_active
                and not self._in_recovery and not self._closing):
            # Recoverable mode: mark the rank faulted and surface the error
            # without teardown — the cluster stays up (segments, survivors,
            # pipes) so recover() can replace just this rank and replay.
            self._faulted = True
            self._faulted_machines.add(machine)
            if OBS.enabled:
                OBS.metrics.counter("mp.faults_detected").inc()
            raise WorkerFailedError(message, machine=machine)
        self._closing = True  # a failed cluster is never parked
        self.close()
        raise WorkerFailedError(message, machine=machine)

    def _send(self, k: int, kind: str, payload) -> None:
        data = pack_message(kind, payload)
        self._count(self.wire_sent, kind, len(data))
        try:
            self._conns[k].send_bytes(data)
        except (BrokenPipeError, OSError):
            self._fail(k, "pipe closed while sending")

    def _drain(self, j: int) -> None:
        """Pull every already-complete message off pipe ``j`` into its
        inbox; worker errors surface immediately."""
        conn = self._conns[j]
        while True:
            try:
                if not conn.poll(0):
                    return
                data = conn.recv_bytes()
            except (EOFError, OSError):
                self._conn_open[j] = False
                return
            try:
                kind, payload = unpack_message(data, machine=j)
            except WireError as exc:
                self._fail(j, f"malformed message: {exc}")
            self._count(self.wire_received, kind, len(data))
            if kind == "error":
                tb = payload.get("traceback", "") \
                    if isinstance(payload, dict) else ""
                self._fail(j, f"worker raised:\n{tb}")
            self._inboxes[j].append((kind, payload))

    def _pump(self, timeout: float) -> None:
        """Block until any worker pipe (or process sentinel) is ready,
        then drain every readable pipe — the event-driven replacement for
        per-pipe ``poll(0.02)``: no polling granularity, and a machine-
        order receive can't starve behind a slow worker because every
        arriving message lands in its inbox as soon as it is readable."""
        targets = {}
        for j in range(len(self._conns)):
            if self._conn_open[j]:
                targets[self._conns[j]] = j
                targets[self._procs[j].sentinel] = j
        if not targets:
            return
        ready = mp_connection.wait(list(targets), timeout=max(timeout, 0.0))
        for obj in ready:
            j = targets[obj]
            if obj is self._conns[j]:
                self._drain(j)
            # A ready sentinel needs no action here: _recv notices the
            # dead process right after this pump returns.

    def _recv(self, k: int, deadline: Optional[float] = None):
        if deadline is None:
            deadline = time.monotonic() + self.timeout_s
        inbox = self._inboxes[k]
        while not inbox:
            self._pump(min(1.0, max(deadline - time.monotonic(), 0.0)))
            if inbox:
                break
            # Fail fast on any dead worker: the lock-step protocol cannot
            # make progress without it, and waiting for machine k while
            # machine j is gone would only time out later.
            for j in range(len(self._procs)):
                if j in self._faulted_machines:
                    # Already-reaped rank (recovery in progress): its dead
                    # process must not fail the survivors' quiesce drain.
                    continue
                if self._inboxes[j]:
                    continue
                if not self._procs[j].is_alive():
                    self._drain(j)  # its last flush may still be buffered
                    if self._inboxes[j]:
                        continue
                    self._fail(j, "process died "
                                  f"(exit code {self._procs[j].exitcode})")
                if not self._conn_open[j] and j == k:
                    self._fail(k, "connection closed mid-epoch")
            if time.monotonic() > deadline:
                self._fail(k, f"no message within {self.timeout_s:.0f}s")
        return inbox.popleft()

    def _expect(self, k: int, want: str):
        kind, payload = self._recv(k)
        if kind != want:
            self._fail(k, f"expected {want!r} message, got {kind!r}")
        return payload

    def _expect_token(self, k: int, want: str, field: str, value: int) -> None:
        payload = self._expect(k, want)
        if not isinstance(payload, dict) or payload.get(field) != value:
            self._fail(k, f"expected {want} token for {field} {value}, "
                          f"got {payload!r}")

    def _ledger_fetch(self, ledger: CommLedger, machine: int, stats) -> None:
        """Byte accounting identical to ``ExecutionEngine._record_fetch``."""
        bpr = self.system.trainer.store.bytes_per_row
        ledger.record_feature_fetch(machine, stats.remote_per_peer, bpr)
        if stats.refresh_fetch_per_peer is not None:
            ledger.record_feature_fetch(machine, stats.refresh_fetch_per_peer,
                                        bpr)

    # -- gradient plane ------------------------------------------------
    def _average_step(self, step: int, ledger: CommLedger,
                      grad_bytes: int) -> None:
        """Average the worker slabs for ``step`` in place, publish the
        result, and release the barrier with per-worker ``avg`` tokens."""
        K = len(self._procs)
        try:
            self._grad_plane.average(step)
        except SlabStateError as exc:
            self._fail(exc.machine,
                       f"gradient-slab protocol violation at step {step}: "
                       f"{exc}")
        for k in range(K):
            self._send(k, "avg", {"step": step})
        if K > 1:
            ledger.record_all_reduce(2.0 * (K - 1) / K * grad_bytes)

    # -- audits --------------------------------------------------------
    def _audit_digests(self, k: int, digests, records: List[StepRecord]) -> None:
        """Cross-check a worker's plan digests against its reported stats.

        The digests were computed worker-side from the fetch plans
        themselves (ownership recomputed from the reorder offsets), so a
        worker whose stats disagree with what its plans imply fails here —
        the batched replacement for auditing full wire-encoded plans."""
        K = self.system.trainer.num_machines
        digests = np.asarray(digests)
        if digests.shape != (len(records), DIGEST_HEAD + K) \
                or digests.dtype != np.int64:
            self._fail(k, f"plan digest matrix has shape {digests.shape} "
                          f"({digests.dtype}), expected "
                          f"({len(records)}, {DIGEST_HEAD + K}) int64")
        for s, rec in enumerate(records):
            if rec.machine != k or rec.step != s:
                self._fail(k, f"record {s} reports machine {rec.machine} "
                              f"step {rec.step}")
            if not np.array_equal(digests[s], _stats_digest(rec.gather)):
                self._fail(k, f"step {s}: fetch-plan digest disagrees with "
                              f"reported gather stats")

    # -- recovery ------------------------------------------------------
    def _cache_fingerprint(self) -> str:
        """Hash of every machine's static cache selection — recorded in
        checkpoints so a snapshot can never be restored into a cluster
        whose resident cache contents differ."""
        h = hashlib.sha256()
        for spec in self.worker_specs:
            ids = np.ascontiguousarray(np.asarray(spec.cache_ids,
                                                  dtype=np.int64))
            h.update(ids.tobytes())
        return h.hexdigest()

    def capture_checkpoint(self, epoch: int) -> dict:
        """Snapshot the cluster's training state at an epoch boundary.

        Asks every worker for its model weights, Adam moments, and RNG
        cursors (sampler + dropout streams).  Weights and moments are
        identical across replicas after the allreduce, so one copy is
        kept; RNG cursors are per machine.  The result is plain data —
        wire-encodable, and persistable through the ArtifactCache's
        ``checkpoint`` codec (:mod:`repro.distributed.recovery`).
        """
        if not self.is_live:
            raise RuntimeError("cannot checkpoint a closed backend")
        if self._faulted:
            raise RuntimeError("cannot checkpoint a faulted backend — "
                               "recover() first")
        K = self.system.trainer.num_machines
        with OBS.span("mp.checkpoint", epoch=epoch):
            for k in range(K):
                self._send(k, "ckpt", None)
            states = []
            for k in range(K):
                payload = self._expect(k, "state")
                if not isinstance(payload, dict):
                    self._fail(k, "malformed checkpoint state payload")
                states.append(payload)
        return {
            "epoch": int(epoch),
            "model": states[0]["model"],
            "adam": states[0]["adam"],
            "samplers": [s["sampler"] for s in states],
            "layer_rngs": [s["layer_rngs"] for s in states],
            "cache_fp": self._cache_fingerprint(),
        }

    def _restore_all(self, checkpoint: Optional[dict]) -> None:
        """Send every rank its slice of ``checkpoint`` (``None`` rewinds to
        epoch-0 initial state) and wait for the ``restored`` acks."""
        K = len(self._procs)
        for k in range(K):
            payload = None
            if checkpoint is not None:
                payload = {
                    "model": checkpoint["model"],
                    "adam": checkpoint["adam"],
                    "sampler": checkpoint["samplers"][k],
                    "layer_rngs": checkpoint["layer_rngs"][k],
                }
            self._send(k, "restore", payload)
        for k in range(K):
            self._expect_token(k, "restored", "machine", k)

    def recover(self, checkpoint: Optional[dict] = None) -> int:
        """Replace the failed ranks and rewind the cluster to ``checkpoint``.

        The recovery sequence: (1) reap every faulted rank's process (it
        may be alive — hung, or having corrupted its wire stream — so the
        kill is unconditional); (2) quiesce the survivors with an ``abort``
        and drain their stale in-flight traffic; (3) reset the gradient
        plane's seqlock slabs; (4) bind a replacement for each failed rank
        — a warm spare from :data:`WORKER_POOL` when one of this cluster's
        fingerprint is parked, a fresh spawn otherwise — with the fault
        schedule cleared (a replayed fault would re-fire identically and
        recovery would never converge); (5) restore every rank from
        ``checkpoint`` (``None`` rewinds to epoch-0 initial state).

        Returns the number of ranks replaced (0 if the backend never
        faulted).  Any failure *during* recovery escalates to full
        teardown and raises — recovery is attempted at most once per call.
        """
        if not self._started or not self.is_live:
            raise RuntimeError("cannot recover a closed backend")
        if checkpoint is not None \
                and checkpoint.get("cache_fp") is not None \
                and checkpoint["cache_fp"] != self._cache_fingerprint():
            self._closing = True
            self.close()
            raise WorkerFailedError(
                "checkpoint cache fingerprint does not match this "
                "cluster's cache selection")
        if not self._faulted:
            # Warm start: a healthy cluster adopting a persisted checkpoint
            # (load_persisted) — nothing to respawn, but every rank still
            # rewinds to the snapshot.
            if checkpoint is not None:
                self._restore_all(checkpoint)
            return 0
        self._in_recovery = True
        try:
            K = len(self._procs)
            with OBS.span("mp.recovery", machines=K,
                          hist="mp.recovery_wall_s"):
                # Every rank marked faulted, plus any other process found
                # dead (a second failure noticed late), gets replaced.
                failed = set(self._faulted_machines)
                for j, proc in enumerate(self._procs):
                    if not proc.is_alive():
                        failed.add(j)
                self._faulted_machines = set(failed)

                for j in sorted(failed):
                    proc = self._procs[j]
                    for escalate in ("terminate", "kill"):
                        if not proc.is_alive():
                            break
                        try:
                            getattr(proc, escalate)()
                            proc.join(timeout=5.0)
                        except Exception:
                            pass
                    try:
                        self._conns[j].close()
                    except Exception:
                        pass
                    self._conn_open[j] = False
                    self._inboxes[j].clear()

                survivors = [k for k in range(K) if k not in failed]
                for k in survivors:
                    self._send(k, "abort", None)
                deadline = time.monotonic() + self.timeout_s
                for k in survivors:
                    # Discard whatever the aborted epoch still had in
                    # flight (step/window/done tokens) up to the ack.
                    while True:
                        kind, _payload = self._recv(k, deadline=deadline)
                        if kind == "aborted":
                            break

                self._grad_plane.reset()

                warm = 0
                fresh_ranks = []
                for j in sorted(failed):
                    spare = (WORKER_POOL.acquire_spare(self._pool_key)
                             if self._pool_key else None)
                    if spare is not None:
                        proc, conn = spare
                        warm += 1
                    else:
                        proc, conn = self._spawn_worker(j)
                        fresh_ranks.append(j)
                    # In-place rank replacement: the finalizer holds these
                    # same list objects, so the new process is covered by
                    # the exit-time cleanup like any other.
                    self._procs[j] = proc
                    self._conns[j] = conn
                    self._inboxes[j] = deque()
                    self._conn_open[j] = True
                ready_deadline = time.monotonic() + _READY_TIMEOUT_S
                for j in fresh_ranks:
                    kind, _payload = self._recv(j, deadline=ready_deadline)
                    if kind != "ready":
                        self._fail(j, f"expected ready handshake, "
                                      f"got {kind!r}")
                for j in sorted(failed):
                    enc = _encode_spec(self.worker_specs[j])
                    enc["faults"] = []
                    self._send(j, "bind", enc)
                for j in sorted(failed):
                    kind, payload = self._recv(j, deadline=ready_deadline)
                    if kind != "bound":
                        self._fail(j, f"expected bound handshake, "
                                      f"got {kind!r}")
                    if not isinstance(payload, dict) \
                            or payload.get("machine") != j:
                        self._fail(j, "bound handshake reported the "
                                      "wrong machine")

                self._restore_all(checkpoint)

                self.restarts_total += len(failed)
                if OBS.enabled:
                    OBS.metrics.counter("mp.restarts_total").inc(len(failed))
                    if warm:
                        OBS.metrics.counter("mp.warm_respawns").inc(warm)
                self._faulted = False
                self._faulted_machines.clear()
                self._recovered = True
                return len(failed)
        except WorkerFailedError:
            raise  # _fail is fatal during recovery — cluster already down
        except Exception:
            self._closing = True
            self.close()
            raise
        finally:
            self._in_recovery = False

    # -- epochs --------------------------------------------------------
    def run_epoch(self, epoch: int, *, dry_run: bool = False) -> EpochReport:
        if self._started and not self.is_live:
            raise RuntimeError("multiproc backend is closed")
        if self._faulted:
            raise RuntimeError(
                "multiproc backend is faulted — call recover() to replace "
                "the failed ranks before running another epoch")
        self.start()
        self._idle = False
        self._epoch_active = True
        try:
            with OBS.span("mp.epoch", epoch=epoch, dry_run=dry_run,
                          engine=self.system.config.engine,
                          machines=self.system.trainer.num_machines,
                          hist="mp.epoch_wall_s") as span:
                self._epoch_span_id = span.span_id
                if self.system.config.engine == "bsp":
                    report = self._run_bsp(epoch, dry_run)
                else:
                    report = self._run_pipelined(epoch, dry_run)
        except WorkerFailedError:
            raise
        except Exception:
            self.close()
            raise
        finally:
            self._epoch_active = False
            self._epoch_span_id = 0
        if OBS.enabled:
            self._note_wire_gauges()
        self._idle = True
        return report

    def _note_wire_gauges(self) -> None:
        """Mirror cumulative wire accounting and cluster health into the
        metrics registry.  Gauges (not counters) because the wire tables
        are cumulative across epochs — setting is idempotent."""
        m = OBS.metrics
        m.gauge("mp.wire_sent_bytes").set(
            sum(b for _n, b in self.wire_sent.values()))
        m.gauge("mp.wire_received_bytes").set(
            sum(b for _n, b in self.wire_received.values()))
        m.gauge("mp.wire_sent_msgs").set(
            sum(n for n, _b in self.wire_sent.values()))
        m.gauge("mp.wire_received_msgs").set(
            sum(n for n, _b in self.wire_received.values()))
        m.gauge("mp.workers_alive").set(
            sum(1 for p in self._procs if p.is_alive()))

    def _broadcast_run(self, epoch: int, dry_run: bool) -> None:
        payload: dict = {"epoch": epoch, "dry_run": dry_run}
        if OBS.enabled:
            payload["trace"] = {"trace_id": OBS.tracer.trace_id,
                                "parent": self._epoch_span_id}
        for k in range(self.system.trainer.num_machines):
            self._send(k, "run", payload)

    def _finish_report(self, epoch, records, ledger, losses, steps, trace,
                       states) -> EpochReport:
        tr = self.system.trainer
        if states:
            # Post-allreduce weights are identical on every worker; load
            # them into every in-process replica so evaluate() works.
            for model in tr.models:
                model.load_state_dict(states[0])
        return EpochReport(
            epoch=epoch,
            records=records,
            ledger=ledger,
            mean_loss=float(np.mean(losses)) if losses else None,
            steps_per_machine=steps,
            cache_churn=None,
            events=trace.validate(),
        )

    def _run_bsp(self, epoch: int, dry_run: bool) -> EpochReport:
        from repro.pipeline.costmodel import served_rows_matrix
        from repro.pipeline.events import (
            EventTrace,
            Stage,
            emit_window_comm_events,
        )

        tr = self.system.trainer
        K = tr.num_machines
        steps = tr.steps_per_epoch()
        grad_bytes = gradient_nbytes(tr.models[0])
        ledger = CommLedger(K)
        self._broadcast_run(epoch, dry_run)
        for step in range(steps):
            for k in range(K):
                self._expect_token(k, "step", "step", step)
            if not dry_run:
                self._average_step(step, ledger, grad_bytes)
        per_worker = self._collect_done(steps)

        # Epoch-end assembly, interleaved exactly as the in-process engine
        # ordered it: records, ledger fetches, and losses in (step,
        # machine) order; comm + allreduce trace events per step; the
        # workers' own step events merged at the end.
        trace = EventTrace(
            engine="bsp", num_machines=K, num_steps=steps,
            windows=[(s, s + 1) for s in range(steps)],
            allreduce_steps=list(range(steps)),
        )
        records: List[StepRecord] = []
        losses: List[float] = []
        for step in range(steps):
            row = [per_worker[k]["records"][step] for k in range(K)]
            for k, rec in enumerate(row):
                records.append(rec)
                self._ledger_fetch(ledger, k, rec.gather)
            served = served_rows_matrix(row, K)
            for k, rec in enumerate(row):
                emit_window_comm_events(
                    trace, step, k,
                    rec.gather.remote_rows + rec.gather.refresh_fetch_rows,
                    int(served[k]), mfg_edges=rec.mfg_edges,
                )
            trace.add(Stage.ALLREDUCE, -1, step)
            if not dry_run:
                losses.extend(rec.loss for rec in row)
        for pw in per_worker:
            trace.events.extend(pw["events"])
        states = [pw["state"] for pw in per_worker if pw["state"] is not None]
        return self._finish_report(epoch, records, ledger, losses, steps,
                                   trace, states)

    def _run_pipelined(self, epoch: int, dry_run: bool) -> EpochReport:
        from repro.pipeline.costmodel import served_rows_matrix
        from repro.pipeline.events import (
            EventTrace,
            Stage,
            emit_window_comm_events,
        )

        tr = self.system.trainer
        K = tr.num_machines
        steps = tr.steps_per_epoch()
        depth = int(self.system.config.pipeline_depth)
        windows = [(w, min(w + depth, steps)) for w in range(0, steps, depth)]
        grad_bytes = gradient_nbytes(tr.models[0])
        ledger = CommLedger(K)
        self._broadcast_run(epoch, dry_run)
        for w0, w1 in windows:
            for k in range(K):
                self._expect_token(k, "window", "w0", w0)
            if not dry_run:
                for s in range(w0, w1):
                    for k in range(K):
                        self._expect_token(k, "wstep", "step", s)
                    self._average_step(s, ledger, grad_bytes)
        per_worker = self._collect_done(steps)

        trace = EventTrace(
            engine="pipelined", num_machines=K, num_steps=steps,
            windows=windows, allreduce_steps=list(range(steps)),
        )
        records: List[StepRecord] = []
        losses: List[float] = []
        for w0, w1 in windows:
            step_rows = [[per_worker[k]["records"][s] for k in range(K)]
                         for s in range(w0, w1)]
            for row in step_rows:
                records.extend(row)
            for k in range(K):
                for s in range(w0, w1):
                    self._ledger_fetch(
                        ledger, k, per_worker[k]["records"][s].gather)

            window_served = np.zeros(K, dtype=np.int64)
            for row in step_rows:
                window_served += served_rows_matrix(row, K)
            for s in range(w0, w1):
                trace.add(Stage.ALLREDUCE, -1, s)
            for k in range(K):
                machine_recs = [per_worker[k]["records"][s]
                                for s in range(w0, w1)]
                request_rows = int(sum(
                    r.gather.remote_rows + r.gather.refresh_fetch_rows
                    for r in machine_recs
                ))
                emit_window_comm_events(
                    trace, w0, k, request_rows, int(window_served[k]),
                    mfg_edges=int(sum(r.mfg_edges for r in machine_recs)),
                )
            if not dry_run:
                for row in step_rows:
                    losses.extend(rec.loss for rec in row)
        for pw in per_worker:
            trace.events.extend(pw["events"])
        states = [pw["state"] for pw in per_worker if pw["state"] is not None]
        return self._finish_report(epoch, records, ledger, losses, steps,
                                   trace, states)

    def _collect_done(self, steps: int) -> List[dict]:
        """Receive every worker's batched epoch-end telemetry — step
        records, plan digests (audited here), stage events, and the
        synchronized model state for training epochs."""
        per_worker = []
        for k in range(self.system.trainer.num_machines):
            payload = self._expect(k, "done")
            try:
                records = [_decode_record(r) for r in payload["records"]]
                digests = payload["digests"]
                events = _decode_events(payload["events"])
                state = payload.get("state")
            except (WireError, KeyError, TypeError, ValueError) as exc:
                self._fail(k, f"undecodable done payload: {exc}")
            if len(records) != steps:
                self._fail(k, f"reported {len(records)} step records, "
                              f"expected {steps}")
            self._audit_digests(k, digests, records)
            if OBS.enabled and payload.get("spans") is not None:
                # Merge the worker's batched spans into the coordinator
                # trace, rebasing their perf_counter timestamps through
                # the worker's (perf, wall) clock anchor.
                try:
                    remote = spans_from_wire(payload["spans"])
                    anchor = tuple(int(t) for t in payload["clock"])
                    OBS.tracer.merge_remote(remote, anchor, clock_anchor())
                    snap = payload.get("metrics")
                    if snap:
                        OBS.metrics.merge_snapshot(snap)
                except (KeyError, TypeError, ValueError) as exc:
                    self._fail(k, f"undecodable telemetry in done "
                                  f"payload: {exc}")
            per_worker.append({"records": records, "events": events,
                               "state": state})
        return per_worker
