"""Multiproc cluster backend: one worker process per logical machine.

The in-process backend *simulates* K machines inside one interpreter; this
module runs them as K real worker processes, which is the gateway to every
wall-clock scale claim the repo makes.  The contract is strict functional
parity: a multiproc epoch produces bit-identical per-step losses, identical
:class:`StepRecord` volumes, an identical :class:`CommLedger`, and a stage-
event trace of identical shape to the in-process engines — the differential
test suite (``tests/distributed/test_multiproc_parity.py``) holds it to all
four.

Architecture
------------
The **coordinator** (this process) builds the system as usual, then:

* copies each machine's local feature rows, the reordered graph's CSR
  arrays, and the labels into ``multiprocessing.shared_memory`` segments;
* spawns one worker per machine (``spawn`` context — no inherited state)
  with a picklable :class:`WorkerSpec` naming the segments and carrying the
  machine's config slice (seeds, fanouts, model hyperparameters, its cache
  selection and train ids);
* drives epochs over duplex pipes using the :mod:`repro.distributed.wire`
  format, receiving per-step messages in machine order (determinism),
  averaging gradients with the in-process collective's exact operation
  order (:func:`~repro.distributed.comm.average_gradient_arrays`), and
  assembling the epoch's :class:`EpochReport`.

Each **worker** attaches the segments read-only (with
``multiprocessing.resource_tracker`` registration suppressed — the
coordinator owns the lifecycle, so only its create/unlink pair is ever
tracked) and rebuilds its machine's runtime from the spec: a
:class:`NeighborSampler` seeded with
:func:`~repro.utils.rng.machine_stream_seed` (spawn-order independent), a
model replica seeded exactly as the in-process trainer's, and a
:class:`PartitionedFeatureStore` whose K stores are views into the shared
segments — so "remote" fetches really cross a process boundary in plan
terms while the rows come from shared memory.

Workers send their :class:`FetchPlan`\\ s (and the pipelined engine's
:class:`CoalescedFetchPlan`\\ s) over the wire; the coordinator *audits*
every plan against the reported gather stats (recomputing per-peer owners
from the reorder offsets), so the wire codecs sit on the hot path and a
worker that miscounts its remote rows fails the epoch loudly.

Failure semantics: a worker that dies, hangs past the timeout, or reports
an exception raises :class:`WorkerFailedError`; the backend then shuts the
whole cluster down — every worker terminated and joined, every pipe closed,
every shared-memory segment unlinked — before the error propagates.  A
``weakref.finalize`` guard performs the same cleanup at interpreter exit if
a caller forgets :meth:`MultiprocBackend.close`.

Scope: ``bsp`` and ``pipelined`` engines, static caches, partitioned
storage.  Dynamic caches mutate per-gather (workers attach read-only) and
``async`` applies local updates between barriers; both are rejected at
validation.
"""

from __future__ import annotations

import contextlib
import os
import secrets
import sys
import time
import traceback
import weakref
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.distributed.cluster import CLUSTER_BACKENDS, ClusterBackend
from repro.distributed.comm import (
    CommLedger,
    average_gradient_arrays,
    gradient_nbytes,
)
from repro.distributed.engine import PrefetchIterator, train_batch
from repro.distributed.executor import EpochReport, StepRecord, _candidate_edges
from repro.distributed.feature_store import (
    FetchPlan,
    GatherArena,
    GatherStats,
    MachineStore,
    PartitionedFeatureStore,
)
from repro.distributed.wire import (
    WireError,
    decode_coalesced_plan,
    decode_fetch_plan,
    encode_coalesced_plan,
    encode_fetch_plan,
    pack_message,
    unpack_message,
)
from repro.utils.rng import derive_seed, machine_stream_seed

# NOTE: repro.pipeline modules are imported lazily inside functions — same
# import-cycle constraint as repro.distributed.engine.

#: Engines the multiproc backend can schedule (async applies local updates
#: between barriers, which has no lock-step wire protocol).
SUPPORTED_ENGINES = ("bsp", "pipelined")

_READY_TIMEOUT_S = 120.0


class WorkerFailedError(RuntimeError):
    """A worker process died, hung, or violated the wire protocol.

    Raised by the coordinator *after* it has shut the whole cluster down
    (no orphan processes, no leaked shared-memory segments remain).
    """

    def __init__(self, message: str, machine: Optional[int] = None):
        super().__init__(message)
        self.machine = machine


@dataclass(frozen=True)
class SegmentSpec:
    """One shared-memory segment: name + the array layout inside it."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


@dataclass
class WorkerSpec:
    """Everything one worker needs to rebuild its machine's runtime.

    Plain picklable data only (ints, strings, ndarrays, segment names) —
    the spawn context pickles it into the child.  Seeds arrive fully
    derived: the coordinator computes each machine's stream seeds with
    :func:`machine_stream_seed` (functions of run seed, stream name, and
    machine id only), so a worker's RNG streams can never depend on spawn
    order, pids, or import order — and are exactly the in-process
    trainer's streams for the same machine.
    """

    machine: int
    num_machines: int
    sampler_seed: int
    order_seed: int
    model_seed: int
    num_vertices: int
    num_classes: int
    feature_dim: int
    fanouts: Tuple[int, ...]
    batch_size: int
    hidden_dim: int
    arch: str
    dropout: float
    lr: float
    engine: str
    pipeline_depth: int
    steps_per_epoch: int
    gpu_rows: int
    part_offsets: np.ndarray
    local_train: np.ndarray
    cache_ids: np.ndarray
    segments: Dict[str, SegmentSpec]  # "feat0".."featK-1", "indptr", "indices", "labels"
    #: Fault injection: ``(epoch, step)`` at which this worker hard-exits
    #: (``os._exit``) mid-epoch, before reporting the step.  Test-only.
    fail_at: Optional[Tuple[int, int]] = None


class _PartMap:
    """Worker-side stand-in for :class:`ReorderedDataset`: the reorder
    offsets are all the feature store needs (ownership bisection and part
    ranges), so workers never ship the dataset itself."""

    def __init__(self, part_offsets: np.ndarray):
        self.part_offsets = np.asarray(part_offsets, dtype=np.int64)
        self.num_parts = len(self.part_offsets) - 1

    def owner_of(self, new_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(new_ids, dtype=np.int64)
        return np.searchsorted(self.part_offsets, ids, side="right") - 1

    def part_range(self, k: int) -> Tuple[int, int]:
        return int(self.part_offsets[k]), int(self.part_offsets[k + 1])


# ----------------------------------------------------------------------
# record / event codecs (dict payloads for repro.distributed.wire)
# ----------------------------------------------------------------------

def _encode_stats(g: GatherStats) -> dict:
    return {
        "total_rows": g.total_rows,
        "gpu_rows": g.gpu_rows,
        "cpu_rows": g.cpu_rows,
        "cached_rows": g.cached_rows,
        "remote_rows": g.remote_rows,
        "remote_per_peer": g.remote_per_peer,
        "cache_insertions": g.cache_insertions,
        "cache_evictions": g.cache_evictions,
        "refresh_fetch_per_peer": g.refresh_fetch_per_peer,
        "coalesced_rows": g.coalesced_rows,
    }


def _encode_record(rec: StepRecord) -> dict:
    return {
        "machine": rec.machine,
        "step": rec.step,
        "batch_size": rec.batch_size,
        "mfg_vertices": rec.mfg_vertices,
        "mfg_edges": rec.mfg_edges,
        "candidate_edges": rec.candidate_edges,
        "block_sizes": rec.block_sizes,
        "gather": _encode_stats(rec.gather),
        "loss": rec.loss,
    }


def _decode_record(fields: dict) -> StepRecord:
    g = dict(fields["gather"])
    return StepRecord(
        machine=fields["machine"],
        step=fields["step"],
        batch_size=fields["batch_size"],
        mfg_vertices=fields["mfg_vertices"],
        mfg_edges=fields["mfg_edges"],
        candidate_edges=fields["candidate_edges"],
        block_sizes=tuple(tuple(b) for b in fields["block_sizes"]),
        gather=GatherStats(**g),
        loss=fields["loss"],
    )


def _encode_events(events) -> list:
    return [(ev.stage.value, ev.machine, ev.step, list(ev.volumes))
            for ev in events]


def _decode_events(raw: list):
    from repro.pipeline.events import Stage, StageEvent

    return [StageEvent(stage=Stage(stage), machine=machine, step=step,
                       volumes=tuple((key, val) for key, val in volumes))
            for stage, machine, step, volumes in raw]


# ----------------------------------------------------------------------
# shared-memory plumbing
# ----------------------------------------------------------------------

def _create_segment(name: str, arr: np.ndarray):
    """Create + fill one segment; returns ``(SharedMemory, SegmentSpec)``.

    No numpy view of the buffer survives this function — the coordinator
    must be able to ``close()``/``unlink()`` without BufferError.
    """
    shm = shared_memory.SharedMemory(create=True, name=name,
                                     size=max(int(arr.nbytes), 1))
    if arr.size:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        del view
    spec = SegmentSpec(name=shm.name, shape=tuple(arr.shape),
                       dtype=arr.dtype.str)
    return shm, spec


def _attach_segment(spec: SegmentSpec):
    """Attach one segment read-only; returns ``(SharedMemory, view)``.

    On Python < 3.13 attaching registers the segment with the resource
    tracker, which the coordinator's later ``unlink`` would then
    double-unregister (the tracker keys by name, shared across the spawn
    tree) — and a worker dying uncleanly would make the tracker unlink a
    segment it does not own.  The coordinator created the segment and owns
    its lifecycle, so the attach is made invisible to the tracker
    (``track=False`` is the 3.13+ spelling of the same thing).
    """
    orig_register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        shm = shared_memory.SharedMemory(name=spec.name)
    finally:
        resource_tracker.register = orig_register
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    view.flags.writeable = False
    return shm, view


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------

class _WorkerRuntime:
    """One machine's runtime inside its worker process."""

    def __init__(self, spec: WorkerSpec, conn):
        from repro.graph.csr import CSRGraph
        from repro.nn.models import build_model
        from repro.nn.optim import Adam
        from repro.sampling.neighbor import NeighborSampler

        self.spec = spec
        self.conn = conn
        k, K = spec.machine, spec.num_machines

        # Attach every segment; keep the SharedMemory objects alive for the
        # process lifetime (views borrow their buffers).
        self._shms = []
        views = {}
        for key, seg in spec.segments.items():
            shm, view = _attach_segment(seg)
            self._shms.append(shm)
            views[key] = view
        self.labels = views["labels"]
        self.graph = CSRGraph(views["indptr"], views["indices"], check=False)

        part_map = _PartMap(spec.part_offsets)
        dim = spec.feature_dim
        feat_dtype = views["feat0"].dtype
        empty_ids = np.empty(0, dtype=np.int64)
        empty_rows = np.empty((0, dim), dtype=feat_dtype)

        # This machine's cache rows, gathered from the owners' segments —
        # bit-identical to the build-time ds.features[cache_ids] slice.
        cache_ids = np.asarray(spec.cache_ids, dtype=np.int64)
        cache_rows = np.empty((len(cache_ids), dim), dtype=feat_dtype)
        if len(cache_ids):
            owners = part_map.owner_of(cache_ids)
            for peer in np.unique(owners):
                sel = owners == peer
                lo, _hi = part_map.part_range(int(peer))
                cache_rows[sel] = views[f"feat{int(peer)}"][cache_ids[sel] - lo]

        stores = []
        for j in range(K):
            lo, hi = part_map.part_range(j)
            stores.append(MachineStore(
                part_id=j, lo=lo, hi=hi,
                local_features=views[f"feat{j}"],
                gpu_rows=spec.gpu_rows if j == k else 0,
                cache_ids=cache_ids if j == k else empty_ids,
                cache_features=cache_rows if j == k else empty_rows,
                num_vertices=spec.num_vertices,
            ))
        self.store = PartitionedFeatureStore(stores, part_map, dim,
                                             feat_dtype.itemsize)

        # Seeding mirrors DistributedTrainer exactly: the sampler stream
        # seed is this machine's machine_stream_seed (spawn-order
        # independent), the model seed is shared by every replica
        # (identical initial weights, no broadcast needed).
        self.sampler = NeighborSampler(self.graph, spec.fanouts,
                                       seed=spec.sampler_seed)
        self.model = build_model(
            spec.arch, dim, spec.hidden_dim, spec.num_classes,
            len(spec.fanouts), dropout=spec.dropout,
            seed=spec.model_seed,
        )
        self.optimizer = Adam(self.model.parameters(), lr=spec.lr)
        self.degrees = self.graph.degrees
        self.arena = GatherArena()
        self.dims = (dim, spec.hidden_dim, spec.num_classes)

    # -- protocol ------------------------------------------------------
    def send(self, kind: str, payload) -> None:
        self.conn.send_bytes(pack_message(kind, payload))

    def recv(self) -> Tuple[str, object]:
        return unpack_message(self.conn.recv_bytes())

    def serve(self) -> None:
        self.send("ready", {"machine": self.spec.machine, "pid": os.getpid()})
        while True:
            kind, payload = self.recv()
            if kind == "stop":
                return
            if kind != "run":
                raise RuntimeError(f"unexpected coordinator message {kind!r}")
            self.run_epoch(payload["epoch"], payload["dry_run"])

    # -- training ------------------------------------------------------
    def _batches(self, epoch: int):
        return self.sampler.batches(
            self.spec.local_train, self.spec.batch_size,
            drop_last=True, epoch=epoch,
            seed=self.spec.order_seed,
        )

    def _make_record(self, step: int, mfg, stats, loss) -> StepRecord:
        return StepRecord(
            machine=self.spec.machine,
            step=step,
            batch_size=mfg.batch_size,
            mfg_vertices=mfg.num_vertices,
            mfg_edges=mfg.num_edges,
            candidate_edges=_candidate_edges(self.degrees, mfg),
            block_sizes=tuple(
                (b.num_src, b.num_dst, b.num_edges) for b in mfg.blocks
            ),
            gather=stats,
            loss=loss,
        )

    def _grads(self) -> list:
        return [p.grad for _name, p in self.model.named_parameters()]

    def _apply_avg(self, grads: list) -> None:
        params = [p for _name, p in self.model.named_parameters()]
        if len(grads) != len(params):
            raise RuntimeError("gradient count mismatch from coordinator")
        for p, g in zip(params, grads):
            p.grad = g
        self.optimizer.step()

    def _maybe_fail(self, epoch: int, step_lo: int, step_hi: int) -> None:
        fail = self.spec.fail_at
        if fail is not None and fail[0] == epoch and step_lo <= fail[1] < step_hi:
            os._exit(13)  # simulated hard crash (no cleanup, no goodbye)

    def run_epoch(self, epoch: int, dry_run: bool) -> None:
        from repro.pipeline.events import emit_step_events

        spec = self.spec
        k = spec.machine
        events = _EventSink()
        if spec.engine == "bsp":
            iterator = self._batches(epoch)
            for step in range(spec.steps_per_epoch):
                mfg = next(iterator)
                plan = self.store.plan_gather(k, mfg.n_id)
                feats, stats = self.store.execute(
                    plan, out=self.arena.out((k, 0), len(mfg.n_id),
                                             spec.feature_dim, feats_dtype(self)),
                )
                self._maybe_fail(epoch, step, step + 1)
                loss = grads = None
                if not dry_run:
                    loss = train_batch(self.model, feats, mfg,
                                       self.labels[mfg.seeds])
                    grads = self._grads()
                rec = self._make_record(step, mfg, stats, loss)
                emit_step_events(events, rec, 0, self.dims, window_start=step)
                self.send("step", {
                    "step": step,
                    "record": _encode_record(rec),
                    "plan": encode_fetch_plan(plan),
                    "grads": grads,
                })
                if not dry_run:
                    kind, payload = self.recv()
                    if kind != "avg":
                        raise RuntimeError(f"expected avg, got {kind!r}")
                    self._apply_avg(payload["grads"])
        elif spec.engine == "pipelined":
            self._run_pipelined_epoch(epoch, dry_run, events)
        else:  # pragma: no cover - validated coordinator-side
            raise RuntimeError(f"unsupported engine {spec.engine!r}")

        state = None
        if not dry_run:
            state = dict(self.model.state_dict())
        self.send("done", {"events": _encode_events(events.events),
                           "state": state})

    def _run_pipelined_epoch(self, epoch: int, dry_run: bool, events) -> None:
        from repro.pipeline.events import emit_step_events

        spec = self.spec
        k = spec.machine
        steps, depth = spec.steps_per_epoch, spec.pipeline_depth
        prefetcher = PrefetchIterator(self._batches(epoch), depth)
        for w0 in range(0, steps, depth):
            w1 = min(w0 + depth, steps)
            width = w1 - w0
            mfgs = prefetcher.next_window(width)
            if len(mfgs) != width:
                raise RuntimeError(
                    f"machine {k} batch stream ended early "
                    f"({len(mfgs)}/{width} batches in window {w0})"
                )
            plans = [self.store.plan_gather(k, mfg.n_id) for mfg in mfgs]
            cplan = FetchPlan.coalesce(plans)
            results = self.store.execute_coalesced(
                cplan,
                outs=[self.arena.out((k, i), len(p.ids), spec.feature_dim,
                                     feats_dtype(self))
                      for i, p in enumerate(plans)],
            )
            self._maybe_fail(epoch, w0, w1)
            recs = [self._make_record(s, mfgs[i], results[i][1], None)
                    for i, s in enumerate(range(w0, w1))]
            for rec in recs:
                emit_step_events(events, rec, 0, self.dims, window_start=w0)
            self.send("window", {
                "w0": w0,
                "records": [_encode_record(r) for r in recs],
                "cplan": encode_coalesced_plan(cplan),
            })
            if not dry_run:
                for i, s in enumerate(range(w0, w1)):
                    loss = train_batch(self.model, results[i][0], mfgs[i],
                                       self.labels[mfgs[i].seeds])
                    self.send("wstep", {"step": s, "loss": loss,
                                        "grads": self._grads()})
                    kind, payload = self.recv()
                    if kind != "avg":
                        raise RuntimeError(f"expected avg, got {kind!r}")
                    self._apply_avg(payload["grads"])


class _EventSink:
    """Minimal stand-in for an EventTrace on the worker side: collects the
    per-step events ``emit_step_events`` emits; the coordinator merges them
    into the real trace."""

    def __init__(self):
        self.events = []

    def add(self, stage, machine, step, **volumes):
        from repro.pipeline.events import StageEvent

        self.events.append(StageEvent(stage=stage, machine=machine, step=step,
                                      volumes=tuple(volumes.items())))


def feats_dtype(runtime: _WorkerRuntime) -> np.dtype:
    return runtime.store.stores[runtime.spec.machine].local_features.dtype


def _worker_main(spec: WorkerSpec, conn) -> None:
    """Worker process entry point (must be module-level for spawn)."""
    try:
        runtime = _WorkerRuntime(spec, conn)
        runtime.serve()
    except (EOFError, BrokenPipeError, OSError):
        # The coordinator went away; nothing to report to.
        os._exit(1)
    except Exception:
        try:
            conn.send_bytes(pack_message("error", {
                "machine": spec.machine,
                "traceback": traceback.format_exc(),
            }))
        except Exception:
            pass
        os._exit(1)
    finally:
        try:
            conn.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------

@contextlib.contextmanager
def _spawn_safe_main():
    """Make ``Process.start()`` safe when ``__main__`` has no real file.

    The spawn context re-imports the parent's ``__main__`` in every child;
    with code fed via stdin (``python -``, heredocs) the recorded path is
    the pseudo-file ``"<stdin>"`` and the child dies in ``runpy`` before
    reaching the worker target.  Our workers are self-contained (the target
    is this module's :func:`_worker_main`, the state a picklable spec), so
    when the main module's file does not actually exist we drop its
    ``__file__`` for the duration of the spawn — ``get_preparation_data``
    then skips the main-module fixup entirely.
    """
    main = sys.modules.get("__main__")
    path = getattr(main, "__file__", None)
    strip = (path is not None
             and getattr(main, "__spec__", None) is None
             and not os.path.exists(path))
    if strip:
        del main.__file__
    try:
        yield
    finally:
        if strip and not hasattr(main, "__file__"):
            main.__file__ = path


@CLUSTER_BACKENDS.register("multiproc")
class MultiprocBackend(ClusterBackend):
    """Coordinator for K worker processes over shared-memory segments.

    Built lazily: the first :meth:`run_epoch` creates the segments and
    spawns the workers; they persist across epochs (sampler and optimizer
    state live worker-side, exactly as the in-process trainer's persists
    across epochs).  After a non-dry epoch the synchronized model weights
    are loaded back into the system's in-process replicas, so
    ``system.evaluate()`` sees the trained model.

    Parameters
    ----------
    system:
        A built :class:`~repro.core.system.SalientPP` (``bsp`` or
        ``pipelined`` engine, static caches, partitioned storage).
    timeout_s:
        Per-message coordinator patience before declaring a worker hung.
    fault_injection:
        Test hook: ``{machine: (epoch, step)}`` hard-kills the machine's
        worker mid-epoch at that point.
    """

    name = "multiproc"

    def __init__(self, system, *, timeout_s: float = 120.0,
                 fault_injection: Optional[Dict[int, Tuple[int, int]]] = None):
        super().__init__(system)
        store = system.trainer.store
        engine = system.config.engine
        if engine not in SUPPORTED_ENGINES:
            raise ValueError(
                f"multiproc backend supports engines {SUPPORTED_ENGINES}, "
                f"got {engine!r}"
            )
        if store.has_dynamic_caches:
            raise ValueError(
                "multiproc backend requires static caches: workers attach "
                "feature segments read-only, dynamic caches mutate per gather"
            )
        if store.is_replicated:
            raise ValueError(
                "multiproc backend requires partitioned storage; full "
                "replication would copy the whole feature matrix per segment"
            )
        self.timeout_s = float(timeout_s)
        self.fault_injection = dict(fault_injection or {})
        self._started = False
        self._procs: List = []
        self._conns: List = []
        self._segments: List = []
        self.segment_names: List[str] = []
        #: Per-machine specs shipped to the workers (set by start()) —
        #: inspectable so tests can assert the derived seed contract.
        self.worker_specs: List[WorkerSpec] = []
        self._finalizer = None

    # -- lifecycle -----------------------------------------------------
    @property
    def is_live(self) -> bool:
        return self._started and self._finalizer is not None \
            and self._finalizer.alive

    @property
    def processes(self) -> List:
        """The worker Process objects (test hook; empty before start)."""
        return list(self._procs)

    def start(self) -> None:
        """Create segments, spawn workers, wait for the ready handshake."""
        if self._started:
            return
        tr = self.system.trainer
        K = tr.num_machines
        prefix = f"rpmp{secrets.token_hex(4)}"
        ctx = get_context("spawn")

        specs: Dict[str, SegmentSpec] = {}
        try:
            arrays = {f"feat{k}": tr.store.stores[k].local_features
                      for k in range(K)}
            arrays["indptr"] = tr.ds.graph.indptr
            arrays["indices"] = tr.ds.graph.indices
            arrays["labels"] = tr.ds.labels
            for key, arr in arrays.items():
                shm, seg = _create_segment(f"{prefix}{key}", arr)
                self._segments.append(shm)
                self.segment_names.append(seg.name)
                specs[key] = seg

            cfg = self.system.config
            for k in range(K):
                spec = WorkerSpec(
                    machine=k,
                    num_machines=K,
                    sampler_seed=machine_stream_seed(tr.seed, "sampler", k),
                    order_seed=machine_stream_seed(tr.seed, "order", k),
                    model_seed=derive_seed(tr.seed, "model"),
                    num_vertices=tr.ds.num_vertices,
                    num_classes=tr.ds.num_classes,
                    feature_dim=tr.ds.feature_dim,
                    fanouts=tr.fanouts,
                    batch_size=tr.batch_size,
                    hidden_dim=tr.hidden_dim,
                    arch=tr.arch,
                    dropout=float(cfg.dropout),
                    lr=float(cfg.lr),
                    engine=cfg.engine,
                    pipeline_depth=int(cfg.pipeline_depth),
                    steps_per_epoch=tr.steps_per_epoch(),
                    gpu_rows=tr.store.stores[k].gpu_rows,
                    part_offsets=np.asarray(tr.reordered.part_offsets,
                                            dtype=np.int64),
                    local_train=tr.local_train[k],
                    cache_ids=np.asarray(tr.store.stores[k].cache_ids,
                                         dtype=np.int64),
                    segments=specs,
                    fail_at=self.fault_injection.get(k),
                )
                self.worker_specs.append(spec)
                parent, child = ctx.Pipe(duplex=True)
                proc = ctx.Process(target=_worker_main, args=(spec, child),
                                   daemon=True, name=f"repro-mp-worker-{k}")
                with _spawn_safe_main():
                    proc.start()
                child.close()
                self._procs.append(proc)
                self._conns.append(parent)

            self._started = True
            self._finalizer = weakref.finalize(
                self, MultiprocBackend._cleanup,
                self._procs, self._conns, self._segments,
            )
            deadline = time.monotonic() + _READY_TIMEOUT_S
            for k in range(K):
                kind, _payload = self._recv(k, deadline=deadline)
                if kind != "ready":
                    self._fail(k, f"expected ready handshake, got {kind!r}")
        except WorkerFailedError:
            raise
        except Exception:
            self._started = True  # make close() tear down what exists
            self.close()
            raise

    def close(self) -> None:
        """Stop workers and release every runtime resource; idempotent."""
        if self._finalizer is not None:
            self._finalizer()  # runs _cleanup at most once
        elif self._segments:
            # start() failed before the finalizer existed.
            MultiprocBackend._cleanup(self._procs, self._conns, self._segments)

    @staticmethod
    def _cleanup(procs, conns, segments) -> None:
        """Full teardown: polite stop, escalate to terminate/kill, close
        pipes, unlink segments.  Static + in-place so the ``weakref``
        finalizer can run it without resurrecting the backend."""
        for conn in conns:
            try:
                conn.send_bytes(pack_message("stop", None))
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        for proc in procs:
            try:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
            except Exception:
                pass
        for escalate in ("terminate", "kill"):
            if not any(p.is_alive() for p in procs):
                break
            for proc in procs:
                if proc.is_alive():
                    getattr(proc, escalate)()
            for proc in procs:
                try:
                    proc.join(timeout=5.0)
                except Exception:
                    pass
        for conn in conns:
            try:
                conn.close()
            except Exception:
                pass
        conns.clear()
        for shm in segments:
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass
        segments.clear()

    @property
    def closed(self) -> bool:
        return self._started and not self.is_live

    # -- wire helpers --------------------------------------------------
    def _fail(self, machine: Optional[int], why: str) -> None:
        self.close()
        raise WorkerFailedError(
            f"worker {machine}: {why}" if machine is not None else why,
            machine=machine,
        )

    def _send(self, k: int, kind: str, payload) -> None:
        try:
            self._conns[k].send_bytes(pack_message(kind, payload))
        except (BrokenPipeError, OSError):
            self._fail(k, "pipe closed while sending")

    def _recv(self, k: int, deadline: Optional[float] = None):
        conn, proc = self._conns[k], self._procs[k]
        if deadline is None:
            deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                if conn.poll(0.02):
                    data = conn.recv_bytes()
                    break
            except (EOFError, OSError):
                self._fail(k, "connection closed mid-epoch")
            if not proc.is_alive():
                # Drain anything the worker flushed before dying.
                try:
                    if conn.poll(0):
                        continue
                except (EOFError, OSError):
                    pass
                self._fail(k, f"process died (exit code {proc.exitcode})")
            if time.monotonic() > deadline:
                self._fail(k, f"no message within {self.timeout_s:.0f}s")
        try:
            kind, payload = unpack_message(data)
        except WireError as exc:
            self._fail(k, f"malformed message: {exc}")
        if kind == "error":
            tb = payload.get("traceback", "") if isinstance(payload, dict) else ""
            self._fail(k, f"worker raised:\n{tb}")
        return kind, payload

    def _expect(self, k: int, want: str):
        kind, payload = self._recv(k)
        if kind != want:
            self._fail(k, f"expected {want!r} message, got {kind!r}")
        return payload

    def _ledger_fetch(self, ledger: CommLedger, machine: int, stats) -> None:
        """Byte accounting identical to ``ExecutionEngine._record_fetch``."""
        bpr = self.system.trainer.store.bytes_per_row
        ledger.record_feature_fetch(machine, stats.remote_per_peer, bpr)
        if stats.refresh_fetch_per_peer is not None:
            ledger.record_feature_fetch(machine, stats.refresh_fetch_per_peer,
                                        bpr)

    # -- plan audits ---------------------------------------------------
    def _audit_plan(self, plan: FetchPlan, rec: StepRecord, k: int,
                    step: int) -> None:
        """Cross-check a worker's wire plan against its reported stats."""
        g = rec.gather
        reordered = self.system.trainer.reordered
        K = self.system.trainer.num_machines
        ok = (plan.machine == k == rec.machine and rec.step == step
              and len(plan.ids) == g.total_rows
              and len(plan.cached_ids) == g.cached_rows
              and plan.gpu_rows == g.gpu_rows
              and plan.cpu_rows == g.cpu_rows)
        if ok:
            if g.coalesced_rows:
                ok = len(plan.remote_ids) == g.remote_rows + g.coalesced_rows
            else:
                ok = len(plan.remote_ids) == g.remote_rows
                counts = np.bincount(reordered.owner_of(plan.remote_ids),
                                     minlength=K) if len(plan.remote_ids) \
                    else np.zeros(K, dtype=np.int64)
                ok = ok and np.array_equal(counts, g.remote_per_peer)
        if not ok:
            self._fail(k, f"step {step}: fetch plan disagrees with "
                          f"reported gather stats")

    def _audit_cplan(self, cplan, recs: List[StepRecord], k: int,
                     w0: int) -> None:
        reordered = self.system.trainer.reordered
        K = self.system.trainer.num_machines
        if len(cplan.plans) != len(recs) or cplan.machine != k:
            self._fail(k, f"window {w0}: coalesced plan shape mismatch")
        for i, (rec, plan, fresh) in enumerate(
                zip(recs, cplan.plans, cplan.first_request)):
            self._audit_plan(plan, rec, k, w0 + i)
            g = rec.gather
            fresh_ids = plan.remote_ids[fresh]
            counts = np.bincount(reordered.owner_of(fresh_ids), minlength=K) \
                if len(fresh_ids) else np.zeros(K, dtype=np.int64)
            if (int(fresh.sum()) != g.remote_rows
                    or int(len(plan.remote_ids) - fresh.sum()) != g.coalesced_rows
                    or not np.array_equal(counts, g.remote_per_peer)):
                self._fail(k, f"window {w0} sub-plan {i}: coalesced plan "
                              f"disagrees with reported gather stats")

    # -- epochs --------------------------------------------------------
    def run_epoch(self, epoch: int, *, dry_run: bool = False) -> EpochReport:
        if self._started and not self.is_live:
            raise RuntimeError("multiproc backend is closed")
        self.start()
        try:
            if self.system.config.engine == "bsp":
                return self._run_bsp(epoch, dry_run)
            return self._run_pipelined(epoch, dry_run)
        except WorkerFailedError:
            raise
        except Exception:
            self.close()
            raise

    def _broadcast_run(self, epoch: int, dry_run: bool) -> None:
        for k in range(self.system.trainer.num_machines):
            self._send(k, "run", {"epoch": epoch, "dry_run": dry_run})

    def _average_and_reply(self, grads_per_machine: List[list],
                           ledger: CommLedger) -> None:
        tr = self.system.trainer
        templates = [p.data for _n, p in tr.models[0].named_parameters()]
        for k, grads in enumerate(grads_per_machine):
            if grads is None or len(grads) != len(templates):
                self._fail(k, "gradient payload shape mismatch")
        averaged = average_gradient_arrays(grads_per_machine, templates)
        for k in range(len(grads_per_machine)):
            self._send(k, "avg", {"grads": averaged})
        if len(grads_per_machine) > 1:
            ledger.record_all_reduce(
                2.0 * (len(grads_per_machine) - 1) / len(grads_per_machine)
                * gradient_nbytes(tr.models[0])
            )

    def _finish_report(self, epoch, records, ledger, losses, steps, trace,
                       states) -> EpochReport:
        tr = self.system.trainer
        if states:
            # Post-allreduce weights are identical on every worker; load
            # them into every in-process replica so evaluate() works.
            for model in tr.models:
                model.load_state_dict(states[0])
        return EpochReport(
            epoch=epoch,
            records=records,
            ledger=ledger,
            mean_loss=float(np.mean(losses)) if losses else None,
            steps_per_machine=steps,
            cache_churn=None,
            events=trace.validate(),
        )

    def _run_bsp(self, epoch: int, dry_run: bool) -> EpochReport:
        from repro.pipeline.costmodel import served_rows_matrix
        from repro.pipeline.events import (
            EventTrace,
            Stage,
            emit_window_comm_events,
        )

        tr = self.system.trainer
        K = tr.num_machines
        steps = tr.steps_per_epoch()
        ledger = CommLedger(K)
        records: List[StepRecord] = []
        losses: List[float] = []
        trace = EventTrace(
            engine="bsp", num_machines=K, num_steps=steps,
            windows=[(s, s + 1) for s in range(steps)],
            allreduce_steps=list(range(steps)),
        )
        self._broadcast_run(epoch, dry_run)
        for step in range(steps):
            step_records: List[StepRecord] = []
            grads_per_machine: List[list] = []
            for k in range(K):
                payload = self._expect(k, "step")
                try:
                    rec = _decode_record(payload["record"])
                    plan = decode_fetch_plan(payload["plan"])
                except (WireError, KeyError, TypeError) as exc:
                    self._fail(k, f"undecodable step payload: {exc}")
                self._audit_plan(plan, rec, k, step)
                records.append(rec)
                step_records.append(rec)
                self._ledger_fetch(ledger, k, rec.gather)
                grads_per_machine.append(payload["grads"])
            served = served_rows_matrix(step_records, K)
            for k, rec in enumerate(step_records):
                emit_window_comm_events(
                    trace, step, k,
                    rec.gather.remote_rows + rec.gather.refresh_fetch_rows,
                    int(served[k]), mfg_edges=rec.mfg_edges,
                )
            trace.add(Stage.ALLREDUCE, -1, step)
            if not dry_run:
                self._average_and_reply(grads_per_machine, ledger)
                losses.extend(rec.loss for rec in step_records)
        states = self._collect_done(trace, dry_run)
        return self._finish_report(epoch, records, ledger, losses, steps,
                                   trace, states)

    def _run_pipelined(self, epoch: int, dry_run: bool) -> EpochReport:
        from repro.pipeline.costmodel import served_rows_matrix
        from repro.pipeline.events import (
            EventTrace,
            Stage,
            emit_window_comm_events,
        )

        tr = self.system.trainer
        K = tr.num_machines
        steps = tr.steps_per_epoch()
        depth = int(self.system.config.pipeline_depth)
        windows = [(w, min(w + depth, steps)) for w in range(0, steps, depth)]
        ledger = CommLedger(K)
        records: List[StepRecord] = []
        losses: List[float] = []
        trace = EventTrace(
            engine="pipelined", num_machines=K, num_steps=steps,
            windows=windows, allreduce_steps=list(range(steps)),
        )
        self._broadcast_run(epoch, dry_run)
        for w0, w1 in windows:
            width = w1 - w0
            window_recs: List[List[StepRecord]] = []
            for k in range(K):
                payload = self._expect(k, "window")
                try:
                    recs = [_decode_record(r) for r in payload["records"]]
                    cplan = decode_coalesced_plan(payload["cplan"])
                except (WireError, KeyError, TypeError) as exc:
                    self._fail(k, f"undecodable window payload: {exc}")
                if payload["w0"] != w0 or len(recs) != width:
                    self._fail(k, f"window {w0}: wrong window reported")
                self._audit_cplan(cplan, recs, k, w0)
                for rec in recs:
                    self._ledger_fetch(ledger, k, rec.gather)
                window_recs.append(recs)

            # Records in (step, machine) order, as the in-process engine.
            step_records: List[List[StepRecord]] = []
            for i in range(width):
                row = [window_recs[k][i] for k in range(K)]
                records.extend(row)
                step_records.append(row)

            window_served = np.zeros(K, dtype=np.int64)
            for row in step_records:
                window_served += served_rows_matrix(row, K)
            for i, s in enumerate(range(w0, w1)):
                trace.add(Stage.ALLREDUCE, -1, s)
            for k in range(K):
                machine_recs = [r for row in step_records for r in row
                                if r.machine == k]
                request_rows = int(sum(
                    r.gather.remote_rows + r.gather.refresh_fetch_rows
                    for r in machine_recs
                ))
                emit_window_comm_events(
                    trace, w0, k, request_rows, int(window_served[k]),
                    mfg_edges=int(sum(r.mfg_edges for r in machine_recs)),
                )

            if not dry_run:
                for i, s in enumerate(range(w0, w1)):
                    grads_per_machine = []
                    for k in range(K):
                        payload = self._expect(k, "wstep")
                        if payload["step"] != s:
                            self._fail(k, f"expected wstep {s}, "
                                          f"got {payload['step']}")
                        step_records[i][k].loss = payload["loss"]
                        grads_per_machine.append(payload["grads"])
                    self._average_and_reply(grads_per_machine, ledger)
                    losses.extend(r.loss for r in step_records[i])
        states = self._collect_done(trace, dry_run)
        return self._finish_report(epoch, records, ledger, losses, steps,
                                   trace, states)

    def _collect_done(self, trace, dry_run: bool) -> List[dict]:
        """Receive every worker's epoch-end events (merged into the trace)
        and, for training epochs, its synchronized model state."""
        states = []
        for k in range(self.system.trainer.num_machines):
            payload = self._expect(k, "done")
            try:
                trace.events.extend(_decode_events(payload["events"]))
            except (WireError, KeyError, ValueError) as exc:
                self._fail(k, f"undecodable done payload: {exc}")
            if not dry_run and payload.get("state") is not None:
                states.append(payload["state"])
        return states
