"""Checkpoint/replay recovery for the multiproc backend.

The multiproc backend's original failure contract was fail-fast: any worker
death, hang, or protocol violation tore the whole cluster down and raised a
machine-attributed :class:`~repro.distributed.multiproc.WorkerFailedError`.
This module adds the other half of fault tolerance — *continuing* — without
giving up the backend's bit-identity guarantee:

- :class:`RecoveryPolicy` bounds how hard to try (``max_restarts``) and how
  fast (exponential backoff with deterministic jitter: the jitter draw is a
  pure function of ``(seed, attempt)``, so recovery timing is reproducible
  run-to-run like everything else here).
- :class:`RecoveryManager` drives multi-epoch training on a *recoverable*
  :class:`~repro.distributed.multiproc.MultiprocBackend`: after every
  successful epoch it captures an epoch-boundary checkpoint (model and
  optimizer state, every RNG stream cursor, and a fingerprint of the
  cluster's cache selection); on a worker failure it backs off, calls
  :meth:`MultiprocBackend.recover` to respawn only the failed ranks (warm
  pool first), and replays the interrupted epoch from the last checkpoint.
  Because the checkpoint restores the exact sampler and dropout stream
  cursors, the replayed epoch's losses are bit-identical to a fault-free
  run's.
- :func:`save_checkpoint` / :func:`load_checkpoint` persist checkpoints
  through the existing :class:`~repro.core.planner.ArtifactCache` (npz +
  JSON sidecar, atomic renames, schema-versioned), registering a
  ``"checkpoint"`` artifact codec on first use.  A run killed outright —
  coordinator and all — can warm-start from disk.

Every recovery is logged in :attr:`RecoveryManager.recoveries` with its
detection / backoff / respawn / replay walls, which is what the perf
harness's ``recovery.mttr`` stage reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.distributed.multiproc import MultiprocBackend, WorkerFailedError
from repro.obs import OBS
from repro.utils.rng import as_generator, derive_seed


# ----------------------------------------------------------------------
# Policy.

@dataclass(frozen=True)
class RecoveryPolicy:
    """How many restarts to attempt and how to pace them.

    Attempt ``i`` (0-based, counted across the whole run) sleeps
    ``min(backoff_max_s, backoff_base_s * backoff_factor**i)`` scaled by a
    deterministic jitter in ``[1 - jitter, 1 + jitter]`` before recovering.
    """

    max_restarts: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter: float = 0.25
    seed: int = 0
    checkpoint_interval: int = 1

    @classmethod
    def from_config(cls, recovery_config, seed: int = 0) -> "RecoveryPolicy":
        """Build from a :class:`repro.core.config.RecoveryConfig` slice
        (the run seed keys the jitter stream)."""
        return cls(
            max_restarts=recovery_config.max_restarts,
            backoff_base_s=recovery_config.backoff_base_s,
            backoff_factor=recovery_config.backoff_factor,
            backoff_max_s=recovery_config.backoff_max_s,
            jitter=recovery_config.jitter,
            seed=int(seed),
            checkpoint_interval=recovery_config.checkpoint_interval,
        ).validate()

    def validate(self) -> "RecoveryPolicy":
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be non-negative, got {self.max_restarts}"
            )
        if self.backoff_base_s <= 0:
            raise ValueError(
                f"backoff_base_s must be positive, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError(
                f"backoff_max_s ({self.backoff_max_s}) must be >= "
                f"backoff_base_s ({self.backoff_base_s})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1 epoch, got "
                f"{self.checkpoint_interval}"
            )
        return self

    def backoff_s(self, attempt: int) -> float:
        """Backoff before restart ``attempt`` (0-based).  Deterministic in
        ``(seed, attempt)``: reruns back off identically."""
        base = min(self.backoff_max_s,
                   self.backoff_base_s * self.backoff_factor ** attempt)
        r = as_generator(derive_seed(self.seed, "recovery-backoff",
                                     attempt)).random()
        return base * (1.0 + self.jitter * (2.0 * r - 1.0))


# ----------------------------------------------------------------------
# Checkpoint persistence through the ArtifactCache.

def _encode_checkpoint(ckpt: dict):
    """Checkpoint dict -> (arrays, meta) for the planner's npz+JSON codec.

    Arrays carry the model parameters (in sorted-name order, names listed
    in the meta) and the optimizer's moment estimates; everything else —
    epoch, step count, RNG cursors (``repr`` strings), cache fingerprint —
    is JSON-safe metadata.
    """
    arrays = {}
    names = sorted(ckpt["model"])
    for i, name in enumerate(names):
        arrays[f"model_{i}"] = np.asarray(ckpt["model"][name])
    for i, a in enumerate(ckpt["adam"]["m"]):
        arrays[f"adam_m_{i}"] = np.asarray(a)
    for i, a in enumerate(ckpt["adam"]["v"]):
        arrays[f"adam_v_{i}"] = np.asarray(a)
    meta = {
        "epoch": int(ckpt["epoch"]),
        "model_names": names,
        "num_moments": len(ckpt["adam"]["m"]),
        "adam_t": int(ckpt["adam"]["t"]),
        "samplers": list(ckpt["samplers"]),
        "layer_rngs": [list(states) for states in ckpt["layer_rngs"]],
        "cache_fp": ckpt.get("cache_fp"),
    }
    return arrays, meta


def _decode_checkpoint(arrays, meta) -> dict:
    names = list(meta["model_names"])
    n = int(meta["num_moments"])
    return {
        "epoch": int(meta["epoch"]),
        "model": {name: arrays[f"model_{i}"] for i, name in enumerate(names)},
        "adam": {
            "m": [arrays[f"adam_m_{i}"] for i in range(n)],
            "v": [arrays[f"adam_v_{i}"] for i in range(n)],
            "t": int(meta["adam_t"]),
        },
        "samplers": list(meta["samplers"]),
        "layer_rngs": [list(states) for states in meta["layer_rngs"]],
        "cache_fp": meta.get("cache_fp"),
    }


def _ensure_checkpoint_codec() -> None:
    """Register the ``"checkpoint"`` artifact kind with the planner's codec
    table (idempotent; lazy so importing this module never drags the
    planner in, and no import cycle forms through ``repro.core``)."""
    from repro.core import planner

    planner._CODECS.setdefault(
        "checkpoint", (_encode_checkpoint, _decode_checkpoint))


def save_checkpoint(cache, fingerprint: str, ckpt: dict) -> None:
    """Persist a checkpoint through an :class:`ArtifactCache` (both tiers).

    ``fingerprint`` addresses the run — :class:`RecoveryManager` uses the
    cluster fingerprint, so a checkpoint can only ever be restored into a
    cluster with the identical topology, training set, and cache layout.
    Successive epochs overwrite the same entry: only the newest checkpoint
    is ever needed.
    """
    _ensure_checkpoint_codec()
    cache.put_memory("checkpoint", fingerprint, ckpt)
    cache.save_disk("checkpoint", fingerprint, ckpt)


def load_checkpoint(cache, fingerprint: str) -> Optional[dict]:
    """The newest persisted checkpoint for ``fingerprint``, or ``None``
    (no entry, disk disabled, or a corrupt file — the cache degrades to a
    miss, and training starts from epoch 0)."""
    _ensure_checkpoint_codec()
    hit = cache.get_memory("checkpoint", fingerprint)
    if hit is not None:
        return hit
    return cache.load_disk("checkpoint", fingerprint)


# ----------------------------------------------------------------------
# The manager.

class RecoveryManager:
    """Drive multi-epoch training with checkpoint/replay fault recovery.

    Wraps a :class:`MultiprocBackend` constructed with ``recoverable=True``
    (anything else fails fast on the first fault before the manager can
    act).  :meth:`train` is the whole loop: run an epoch; on success,
    checkpoint and advance; on :class:`WorkerFailedError`, back off per the
    policy, :meth:`~MultiprocBackend.recover` the failed ranks, and replay
    the interrupted epoch from the last checkpoint.  The backend restores
    every RNG cursor from the checkpoint, so the replayed epoch — and all
    later ones — produce bit-identical losses to a fault-free run.

    Parameters
    ----------
    backend:
        A recoverable multiproc backend (live or not-yet-started).
    policy:
        Restart budget and backoff pacing; defaults to
        ``RecoveryPolicy()``.
    cache:
        Optional :class:`~repro.core.planner.ArtifactCache`.  When given,
        every checkpoint is also persisted (kind ``"checkpoint"``, keyed by
        the cluster fingerprint) and :meth:`train` warm-starts from the
        newest persisted checkpoint if the in-memory one is absent.
    sleep:
        Injection point for the backoff sleep (tests pass a recorder).
    """

    def __init__(self, backend: MultiprocBackend,
                 policy: Optional[RecoveryPolicy] = None, *,
                 cache=None,
                 sleep: Callable[[float], None] = time.sleep):
        if not backend.recoverable:
            raise ValueError(
                "RecoveryManager requires a backend constructed with "
                "recoverable=True (a fail-fast backend tears the cluster "
                "down before recover() can run)"
            )
        self.backend = backend
        self.policy = (policy if policy is not None
                       else RecoveryPolicy()).validate()
        self.cache = cache
        self._sleep = sleep
        self.checkpoint: Optional[dict] = None
        self.restarts = 0
        #: One dict per recovery: ``epoch``, ``machine`` (the attributed
        #: rank), ``error``, ``detect_s`` (epoch start -> failure raised),
        #: ``backoff_s``, ``recover_s`` (respawn + restore), ``replay_s``
        #: (the successful rerun of that epoch).  MTTR per event is
        #: ``detect_s + backoff_s + recover_s + replay_s``.
        self.recoveries: List[dict] = []

    # -- checkpoint plumbing -------------------------------------------
    def _fingerprint(self) -> Optional[str]:
        return self.backend._pool_key

    def _persist(self) -> None:
        if self.cache is not None and self.checkpoint is not None:
            fp = self._fingerprint()
            if fp is not None:
                save_checkpoint(self.cache, fp, self.checkpoint)

    def load_persisted(self) -> Optional[int]:
        """Adopt the newest persisted checkpoint for this cluster, if any.

        Returns the epoch to resume from (checkpoint epoch + 1), or
        ``None`` when there is nothing to adopt.  The backend must be live
        (started) so the cluster fingerprint exists; call
        :meth:`MultiprocBackend.start` first, then this, then feed the
        returned epoch to :meth:`train` as ``start_epoch``.
        """
        if self.cache is None:
            return None
        self.backend.start()
        fp = self._fingerprint()
        if fp is None:
            return None
        ckpt = load_checkpoint(self.cache, fp)
        if ckpt is None:
            return None
        self.checkpoint = ckpt
        self.backend.recover(ckpt)
        return int(ckpt["epoch"]) + 1

    # -- the loop -------------------------------------------------------
    def train(self, epochs: int, *, start_epoch: int = 0) -> List:
        """Run ``[start_epoch, epochs)``; recover and replay on failures.

        Returns the per-epoch :class:`~repro.distributed.executor.
        EpochReport` list (replayed epochs appear once, with their final —
        successful — report).  Exhausting ``policy.max_restarts`` closes
        the backend and re-raises the machine-attributed failure.
        """
        reports: List = []
        epoch = start_epoch
        while epoch < epochs:
            t_epoch = time.monotonic()
            try:
                report = self.backend.run_epoch(epoch)
            except WorkerFailedError as exc:
                detect_s = time.monotonic() - t_epoch
                if self.restarts >= self.policy.max_restarts:
                    if OBS.enabled:
                        OBS.metrics.counter("mp.recovery_exhausted").inc()
                    self.backend.close()
                    raise
                attempt = self.restarts
                self.restarts += 1
                delay = self.policy.backoff_s(attempt)
                self._sleep(delay)
                t_recover = time.monotonic()
                self.backend.recover(self.checkpoint)
                recover_s = time.monotonic() - t_recover
                # Replay resumes from the epoch after the last checkpoint
                # (with checkpoint_interval > 1 that can be earlier than
                # the failed epoch); reports for rewound epochs are
                # replaced by their bit-identical reruns.
                resume = (int(self.checkpoint["epoch"]) + 1
                          if self.checkpoint is not None else start_epoch)
                del reports[resume - start_epoch:]
                self.recoveries.append({
                    "epoch": epoch,
                    "resume_epoch": resume,
                    "machine": exc.machine,
                    "error": str(exc),
                    "detect_s": detect_s,
                    "backoff_s": delay,
                    "recover_s": recover_s,
                    "replay_s": None,  # filled when the replay succeeds
                    "_t_resume": time.monotonic(),
                })
                epoch = resume
                continue
            last = self.recoveries[-1] if self.recoveries else None
            if last is not None and last["replay_s"] is None \
                    and epoch == last["epoch"]:
                last["replay_s"] = time.monotonic() - last.pop("_t_resume")
            reports.append(report)
            if (epoch - start_epoch + 1) % self.policy.checkpoint_interval == 0:
                self.checkpoint = self.backend.capture_checkpoint(epoch)
                self._persist()
            epoch += 1
        return reports

    # -- MTTR -----------------------------------------------------------
    def mttr_s(self) -> Optional[float]:
        """Mean time-to-recovery over completed recoveries (detection +
        backoff + respawn/restore + replay), or ``None`` if none."""
        done = [r for r in self.recoveries if r["replay_s"] is not None]
        if not done:
            return None
        total = sum(r["detect_s"] + r["backoff_s"] + r["recover_s"]
                    + r["replay_s"] for r in done)
        return total / len(done)
