"""Compact wire format for coordinator/worker messages.

The multiproc cluster backend ships :class:`FetchPlan`\\ s, gradients, step
records, and stage events between the coordinator and its worker processes
over pipes.  Pickle would work, but it is neither compact (every ndarray
drags protocol framing and dtype objects along) nor auditable; this module
defines a small explicit format instead:

* a **message** is ``MAGIC | version | kind | value`` — ``MAGIC`` is the
  4-byte tag ``b"RPWF"``, ``kind`` is a short ASCII verb (``"step"``,
  ``"avg"``, ...), and ``value`` is one encoded value;
* a **value** is a one-byte type tag followed by its payload.  Scalars
  (``None``, bools, 64-bit ints, doubles, strings, bytes) and containers
  (list, tuple, dict with string keys) nest arbitrarily;
* an **ndarray frame** is ``dtype tag | ndim | shape (u64 each) | raw
  C-contiguous little-endian payload | crc32(payload)`` — the length is
  implied by dtype and shape, so a corrupt header can never over-read, and
  the CRC32 trailer rejects corrupt *payloads* (a flipped bit in the raw
  bytes used to decode silently into a wrong array);
* every **message** additionally carries a CRC32 trailer over its entire
  frame, so any corruption — header, scalar payload, or array — surfaces
  as :class:`WireError` instead of a garbage decode.

Values round-trip bit-identically: dtypes, shapes, int-vs-float distinctions,
and tuple-vs-list distinctions are all preserved (arrays come back native
little-endian, which is what every supported platform runs).  Anything the
format cannot represent exactly — object arrays, ints beyond 64 bits,
unknown types — raises :class:`WireError` at *encode* time rather than
producing a lossy payload.

:func:`encode_fetch_plan` / :func:`encode_coalesced_plan` serialize gather
plans as tagged field dicts, so decoded plans are plain
:class:`~repro.distributed.feature_store.FetchPlan` objects the store can
execute directly.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Optional, Tuple

import numpy as np

from repro.distributed.feature_store import CoalescedFetchPlan, FetchPlan

MAGIC = b"RPWF"
#: v2 added the CRC32 integrity trailers (per ndarray frame + per message).
VERSION = 2

#: Bytes of a CRC32 trailer.
_CRC_NBYTES = 4

#: Value type tags.
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_NDARRAY = 0x0A

#: dtype tag -> canonical little-endian dtype.  Tags are stable wire
#: identifiers; never renumber.
_DTYPE_CODES = {
    0: np.dtype("bool"),
    1: np.dtype("int8"),
    2: np.dtype("int16"),
    3: np.dtype("<i4"),
    4: np.dtype("<i8"),
    5: np.dtype("uint8"),
    6: np.dtype("uint16"),
    7: np.dtype("<u4"),
    8: np.dtype("<u8"),
    9: np.dtype("<f2"),
    10: np.dtype("<f4"),
    11: np.dtype("<f8"),
}
#: (kind, itemsize) -> dtype tag, endianness-agnostic.
_DTYPE_TAGS = {(dt.kind, dt.itemsize): tag for tag, dt in _DTYPE_CODES.items()}

_MAX_NDIM = 32


class WireError(ValueError):
    """Malformed, truncated, corrupt, or unrepresentable wire data.

    ``machine`` attributes the failure to a peer when the decoding side
    knows which worker/machine produced the bytes (``None`` otherwise —
    the multiproc coordinator re-raises with the pipe's machine id).
    """

    def __init__(self, message: str, machine: Optional[int] = None):
        super().__init__(message)
        self.machine = machine


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------

def pack_ndarray(arr: np.ndarray, out: bytearray) -> None:
    """Append one ndarray frame (dtype tag, shape, raw payload) to ``out``."""
    tag = _DTYPE_TAGS.get((arr.dtype.kind, arr.dtype.itemsize))
    if tag is None:
        raise WireError(f"unsupported ndarray dtype {arr.dtype!r}")
    if arr.ndim > _MAX_NDIM:
        raise WireError(f"ndarray rank {arr.ndim} exceeds wire limit {_MAX_NDIM}")
    canonical = _DTYPE_CODES[tag]
    # asarray(order="C"), not ascontiguousarray: the latter promotes 0-d
    # arrays to 1-d, which would break shape round-tripping.
    arr = np.asarray(arr, dtype=canonical, order="C")
    out.append(tag)
    out.append(arr.ndim)
    for dim in arr.shape:
        out += struct.pack("<Q", dim)
    payload = arr.tobytes()
    out += payload
    out += struct.pack("<I", zlib.crc32(payload))


def _pack_value(obj: Any, out: bytearray) -> None:
    if obj is None:
        out.append(_T_NONE)
    elif isinstance(obj, (bool, np.bool_)):
        out.append(_T_TRUE if obj else _T_FALSE)
    elif isinstance(obj, (int, np.integer)):
        out.append(_T_INT)
        try:
            out += struct.pack("<q", int(obj))
        except struct.error:
            raise WireError(f"integer {obj!r} exceeds 64-bit wire range") from None
    elif isinstance(obj, (float, np.floating)):
        out.append(_T_FLOAT)
        out += struct.pack("<d", float(obj))
    elif isinstance(obj, str):
        raw = obj.encode("utf8")
        if len(raw) > 0xFFFFFFFF:
            raise WireError("string too long for wire format")
        out.append(_T_STR)
        out += struct.pack("<I", len(raw))
        out += raw
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        if len(raw) > 0xFFFFFFFF:
            raise WireError("bytes too long for wire format")
        out.append(_T_BYTES)
        out += struct.pack("<I", len(raw))
        out += raw
    elif isinstance(obj, np.ndarray):
        out.append(_T_NDARRAY)
        pack_ndarray(obj, out)
    elif isinstance(obj, (list, tuple)):
        out.append(_T_LIST if isinstance(obj, list) else _T_TUPLE)
        out += struct.pack("<I", len(obj))
        for item in obj:
            _pack_value(item, out)
    elif isinstance(obj, dict):
        out.append(_T_DICT)
        out += struct.pack("<I", len(obj))
        for key, val in obj.items():
            if not isinstance(key, str):
                raise WireError(f"dict keys must be str, got {type(key).__name__}")
            _pack_value(key, out)
            _pack_value(val, out)
    else:
        raise WireError(f"cannot encode {type(obj).__name__} on the wire")


def pack_obj(obj: Any) -> bytes:
    """Encode one value (scalars, str/bytes, list/tuple/dict, ndarrays)."""
    out = bytearray()
    _pack_value(obj, out)
    return bytes(out)


def pack_message(kind: str, payload: Any) -> bytes:
    """Frame ``payload`` as one coordinator/worker message of ``kind``."""
    raw_kind = kind.encode("ascii")
    if not 1 <= len(raw_kind) <= 255:
        raise WireError(f"message kind must be 1..255 ASCII bytes, got {kind!r}")
    out = bytearray(MAGIC)
    out.append(VERSION)
    out.append(len(raw_kind))
    out += raw_kind
    _pack_value(payload, out)
    out += struct.pack("<I", zlib.crc32(out))
    return bytes(out)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------

def _need(buf: memoryview, offset: int, n: int) -> None:
    if offset + n > len(buf):
        raise WireError(
            f"truncated wire data: need {n} bytes at offset {offset}, "
            f"have {len(buf) - offset}"
        )


def unpack_ndarray(buf: memoryview, offset: int) -> Tuple[np.ndarray, int]:
    """Decode one ndarray frame at ``offset``; returns ``(array, end)``."""
    _need(buf, offset, 2)
    tag, ndim = buf[offset], buf[offset + 1]
    offset += 2
    dtype = _DTYPE_CODES.get(tag)
    if dtype is None:
        raise WireError(f"unknown ndarray dtype tag {tag}")
    if ndim > _MAX_NDIM:
        raise WireError(f"ndarray rank {ndim} exceeds wire limit {_MAX_NDIM}")
    _need(buf, offset, 8 * ndim)
    shape = struct.unpack_from(f"<{ndim}Q", buf, offset)
    offset += 8 * ndim
    count = 1
    for dim in shape:
        count *= dim
    nbytes = count * dtype.itemsize
    _need(buf, offset, nbytes + _CRC_NBYTES)
    end = offset + nbytes
    want = struct.unpack_from("<I", buf, end)[0]
    got = zlib.crc32(buf[offset:end])
    if got != want:
        raise WireError(
            f"ndarray payload checksum mismatch "
            f"(crc32 {got:#010x} != {want:#010x}) — corrupt frame"
        )
    arr = np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
    try:
        # A corrupt dim of a zero-size frame can pass the length and crc
        # checks above (0 payload bytes either way) yet exceed numpy's
        # per-dimension limit.
        return arr.reshape(shape).copy(), end + _CRC_NBYTES
    except ValueError as exc:
        raise WireError(f"corrupt ndarray shape {shape}: {exc}") from exc


def _unpack_value(buf: memoryview, offset: int) -> Tuple[Any, int]:
    _need(buf, offset, 1)
    tag = buf[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        _need(buf, offset, 8)
        return struct.unpack_from("<q", buf, offset)[0], offset + 8
    if tag == _T_FLOAT:
        _need(buf, offset, 8)
        return struct.unpack_from("<d", buf, offset)[0], offset + 8
    if tag in (_T_STR, _T_BYTES):
        _need(buf, offset, 4)
        n = struct.unpack_from("<I", buf, offset)[0]
        offset += 4
        _need(buf, offset, n)
        raw = bytes(buf[offset:offset + n])
        if tag == _T_BYTES:
            return raw, offset + n
        try:
            return raw.decode("utf8"), offset + n
        except UnicodeDecodeError as exc:
            raise WireError(f"corrupt utf8 string payload: {exc}") from exc
    if tag in (_T_LIST, _T_TUPLE):
        _need(buf, offset, 4)
        n = struct.unpack_from("<I", buf, offset)[0]
        offset += 4
        items = []
        for _ in range(n):
            item, offset = _unpack_value(buf, offset)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), offset
    if tag == _T_DICT:
        _need(buf, offset, 4)
        n = struct.unpack_from("<I", buf, offset)[0]
        offset += 4
        out = {}
        for _ in range(n):
            key, offset = _unpack_value(buf, offset)
            if not isinstance(key, str):
                raise WireError("dict keys must decode to str")
            out[key], offset = _unpack_value(buf, offset)
        return out, offset
    if tag == _T_NDARRAY:
        return unpack_ndarray(buf, offset)
    raise WireError(f"unknown value tag 0x{tag:02x}")


def unpack_obj(data: bytes) -> Any:
    """Decode one value; the buffer must contain exactly one value."""
    buf = memoryview(data)
    obj, offset = _unpack_value(buf, 0)
    if offset != len(buf):
        raise WireError(f"{len(buf) - offset} trailing bytes after value")
    return obj


def unpack_message(data: bytes, *,
                   machine: Optional[int] = None) -> Tuple[str, Any]:
    """Decode one framed message; returns ``(kind, payload)``.

    ``machine`` attributes any decode failure to the peer that produced
    the bytes: every :class:`WireError` raised from this call carries it,
    so a flipped bit on a worker pipe surfaces as *"machine k sent corrupt
    data"* rather than an anonymous checksum mismatch.
    """
    try:
        return _unpack_message(data)
    except WireError as exc:
        if machine is not None and exc.machine is None:
            exc.machine = machine
        raise


def _unpack_message(data: bytes) -> Tuple[str, Any]:
    buf = memoryview(data)
    _need(buf, 0, len(MAGIC) + 2)
    if bytes(buf[:len(MAGIC)]) != MAGIC:
        raise WireError(f"bad magic {bytes(buf[:len(MAGIC)])!r}")
    version = buf[len(MAGIC)]
    if version != VERSION:
        raise WireError(f"unsupported wire version {version}")
    kind_len = buf[len(MAGIC) + 1]
    offset = len(MAGIC) + 2
    _need(buf, offset, kind_len)
    try:
        kind = bytes(buf[offset:offset + kind_len]).decode("ascii")
    except UnicodeDecodeError as exc:
        raise WireError("message kind is not ASCII") from exc
    payload, offset = _unpack_value(buf, offset + kind_len)
    if offset != len(buf) - _CRC_NBYTES:
        raise WireError(
            f"message length mismatch: {len(buf) - _CRC_NBYTES - offset} "
            f"trailing bytes after payload"
        )
    want = struct.unpack_from("<I", buf, offset)[0]
    got = zlib.crc32(buf[:offset])
    if got != want:
        raise WireError(
            f"message checksum mismatch (crc32 {got:#010x} != {want:#010x}) "
            f"— corrupt or trailing bytes on the wire"
        )
    return kind, payload


# ----------------------------------------------------------------------
# fetch-plan codecs
# ----------------------------------------------------------------------

_PLAN_ARRAY_FIELDS = ("ids", "local_pos", "local_ids", "cached_pos",
                      "cached_ids", "remote_pos", "remote_ids", "nonlocal_ids")


def _plan_dict(plan: FetchPlan) -> dict:
    out = {"machine": plan.machine, "gpu_rows": plan.gpu_rows,
           "cpu_rows": plan.cpu_rows}
    for name in _PLAN_ARRAY_FIELDS:
        out[name] = getattr(plan, name)
    return out


def _plan_from_dict(fields: dict) -> FetchPlan:
    try:
        return FetchPlan(
            machine=fields["machine"],
            gpu_rows=fields["gpu_rows"],
            cpu_rows=fields["cpu_rows"],
            **{name: fields[name] for name in _PLAN_ARRAY_FIELDS},
        )
    except KeyError as exc:
        raise WireError(f"fetch plan missing field {exc.args[0]!r}") from None


def encode_fetch_plan(plan: FetchPlan) -> bytes:
    """Serialize one :class:`FetchPlan` (bit-identical round trip)."""
    return pack_obj(_plan_dict(plan))


def decode_fetch_plan(data: bytes) -> FetchPlan:
    fields = unpack_obj(data)
    if not isinstance(fields, dict):
        raise WireError("fetch plan payload must be a dict")
    return _plan_from_dict(fields)


def encode_coalesced_plan(cplan: CoalescedFetchPlan) -> bytes:
    """Serialize one :class:`CoalescedFetchPlan`, sub-plans included.

    ``slots`` may be ``None`` (hand-built plans); the distinction survives
    the round trip, so execution falls back to ``searchsorted`` exactly when
    it would have locally.
    """
    return pack_obj({
        "machine": cplan.machine,
        "plans": [_plan_dict(p) for p in cplan.plans],
        "unique_remote_ids": cplan.unique_remote_ids,
        "first_request": list(cplan.first_request),
        "slots": None if cplan.slots is None else list(cplan.slots),
    })


def decode_coalesced_plan(data: bytes) -> CoalescedFetchPlan:
    fields = unpack_obj(data)
    if not isinstance(fields, dict):
        raise WireError("coalesced plan payload must be a dict")
    try:
        return CoalescedFetchPlan(
            machine=fields["machine"],
            plans=[_plan_from_dict(f) for f in fields["plans"]],
            unique_remote_ids=fields["unique_remote_ids"],
            first_request=list(fields["first_request"]),
            slots=None if fields["slots"] is None else list(fields["slots"]),
        )
    except KeyError as exc:
        raise WireError(f"coalesced plan missing field {exc.args[0]!r}") from None
