"""Partitioned feature storage with CPU/GPU tiers and a remote-row cache.

Implements §4.1–4.2 of the paper over a :class:`ReorderedDataset` (vertices
contiguous per partition, VIP-ordered within):

* each machine owns the feature rows of its partition, split into a *GPU
  prefix* (the first ``gpu_fraction`` of local rows under the current
  ordering — most-accessed first when VIP reordering is on) and a CPU
  remainder;
* each machine holds a cache of remote rows — either the paper's *static*
  cache (contents fixed at build time by a caching policy) or a
  :class:`~repro.distributed.dynamic_cache.DynamicCache` (LRU / LFU / CLOCK
  replacement, or periodic VIP refresh); either way, cache membership is one
  boolean-equivalent lookup (the paper uses a hash table; a per-vertex slot
  map is the numpy equivalent), so the gather path is identical for both;
* gathering features for a sampled neighborhood categorizes every vertex as
  local-GPU / local-CPU / cached-remote / remote-per-peer, returns the
  correctly assembled feature matrix, and reports exact per-category row
  counts — the quantities the performance model charges for.  With a dynamic
  cache, the gather additionally updates the cache (hit metadata, admission
  of missed rows, refresh swaps) *after* the stats are taken, so counts
  always describe the cache state the request actually saw.

This is *functional* storage: remote rows are really copied out of the
owning machine's store, so tests can assert bit-identical results against
direct indexing of the monolithic feature array — including across cache
evictions and refreshes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.distributed.dynamic_cache import (
    CacheChurnStats,
    DynamicCache,
    DynamicCacheSpec,
)
from repro.obs import OBS
from repro.partition.reorder import ReorderedDataset


def _note_gather(stats: "GatherStats") -> None:
    """Mirror one gather's row counts into the metrics registry.

    Only called when ``OBS.enabled`` — the gather hot path pays one boolean
    check when observability is off.  Counts are taken from the already-
    computed :class:`GatherStats`, so recording changes no math.
    """
    m = OBS.metrics
    m.counter("store.gathers").inc()
    m.counter("store.gather_rows").inc(stats.total_rows)
    m.counter("store.gpu_rows").inc(stats.gpu_rows)
    m.counter("store.cpu_rows").inc(stats.cpu_rows)
    m.counter("store.cached_rows").inc(stats.cached_rows)
    m.counter("store.remote_rows").inc(stats.remote_rows)
    m.counter("store.coalesced_rows").inc(stats.coalesced_rows)
    if stats.cache_insertions or stats.cache_evictions:
        m.counter("cache.admissions").inc(stats.cache_insertions)
        m.counter("cache.evictions").inc(stats.cache_evictions)
    if stats.refresh_fetch_per_peer is not None:
        m.counter("cache.refreshes").inc()
        m.counter("cache.refresh_rows").inc(stats.refresh_fetch_rows)


@dataclass
class GatherStats:
    """Exact per-category row counts for one gather (one minibatch).

    ``remote_per_peer[j]`` is the number of rows requested from machine
    ``j`` (0 for self and for fully cached peers).  The cache-churn fields
    are zero for static caches: ``cache_insertions`` / ``cache_evictions``
    count dynamic-cache content changes this gather triggered, and
    ``refresh_fetch_per_peer`` counts rows a ``vip-refresh`` swap pulled
    from each peer (cache-update traffic, charged by the cost model on top
    of the demand fetches).

    ``coalesced_rows`` counts rows that would have been remote fetches but
    were deduplicated against another in-flight minibatch of the same
    machine (pipelined execution): the bytes crossed the wire exactly once,
    charged to the first requesting batch, and this batch reads them from
    host memory like cached rows.  Always zero for one-at-a-time gathers.
    """

    total_rows: int
    gpu_rows: int
    cpu_rows: int
    cached_rows: int
    remote_rows: int
    remote_per_peer: np.ndarray
    cache_insertions: int = 0
    cache_evictions: int = 0
    refresh_fetch_per_peer: Optional[np.ndarray] = None
    coalesced_rows: int = 0

    def remote_fraction(self) -> float:
        return self.remote_rows / max(self.total_rows, 1)

    @property
    def refresh_fetch_rows(self) -> int:
        if self.refresh_fetch_per_peer is None:
            return 0
        return int(self.refresh_fetch_per_peer.sum())

    def comm_rows(self) -> int:
        """All rows this gather moved over the network (demand + refresh)."""
        return self.remote_rows + self.refresh_fetch_rows


@dataclass
class FetchPlan:
    """Where every row of one gather request will come from.

    Produced by :meth:`PartitionedFeatureStore.plan_gather` via the O(1)
    reorder arithmetic (owner = offset bisection, local row = subtraction)
    plus one cache-membership lookup; consumed by
    :meth:`PartitionedFeatureStore.execute`.  All ``*_pos`` arrays are
    positions into ``ids`` (which keeps the caller's request order), so
    executing a plan fills an output matrix without re-deriving anything.

    A plan describes the cache state *at planning time*: execute plans
    promptly (dynamic caches mutate on execution, which is what makes a
    plan stale).
    """

    machine: int
    ids: np.ndarray
    local_pos: np.ndarray
    local_ids: np.ndarray
    gpu_rows: int
    cpu_rows: int
    cached_pos: np.ndarray
    cached_ids: np.ndarray
    remote_pos: np.ndarray
    remote_ids: np.ndarray
    #: All non-local ids in request order (cached + remote) — what a dynamic
    #: cache counts as this batch's accesses.
    nonlocal_ids: np.ndarray

    @property
    def num_rows(self) -> int:
        return len(self.ids)

    @staticmethod
    def coalesce(plans: Sequence["FetchPlan"]) -> "CoalescedFetchPlan":
        """Merge the plans of several in-flight minibatches of one machine.

        Remote vertex ids requested by more than one plan are deduplicated:
        the peer exchange fetches each id exactly once, attributed to the
        *first* requesting plan; later plans read the row from the shared
        in-flight buffer (counted as ``coalesced_rows`` in their stats).
        This is the §4.3 payoff of keeping multiple batches in flight that a
        one-batch-at-a-time gather can never realize.

        One concatenated ``np.unique(..., return_inverse=True)`` pass maps
        every plan's remote ids to pool slots — O((D·R) log (D·R)) total for
        D plans instead of a ``searchsorted`` plus boolean bookkeeping per
        plan, and the slot arrays are kept on the result so execution never
        re-derives them (the win grows with depth; see the ``coalesce``
        stage of ``benchmarks/perf``).
        """
        if not plans:
            raise ValueError("cannot coalesce an empty plan list")
        machine = plans[0].machine
        if any(p.machine != machine for p in plans):
            raise ValueError("coalesced plans must belong to one machine")
        unique_remote, inverse = np.unique(
            np.concatenate([p.remote_ids for p in plans]), return_inverse=True
        )
        seen = np.zeros(len(unique_remote), dtype=bool)
        first_request: List[np.ndarray] = []
        slots: List[np.ndarray] = []
        offset = 0
        for p in plans:
            sl = inverse[offset:offset + len(p.remote_ids)]
            offset += len(p.remote_ids)
            fresh = ~seen[sl]
            seen[sl] = True
            first_request.append(fresh)
            slots.append(sl)
        return CoalescedFetchPlan(
            machine=machine,
            plans=list(plans),
            unique_remote_ids=unique_remote,
            first_request=first_request,
            slots=slots,
        )


@dataclass
class CoalescedFetchPlan:
    """Several :class:`FetchPlan`\\ s of one machine sharing one peer fetch.

    ``unique_remote_ids`` is the sorted union of the sub-plans' remote ids;
    ``first_request[i]`` masks sub-plan ``i``'s remote ids that no earlier
    sub-plan requested (those are charged to it as remote traffic; the rest
    are its ``coalesced_rows``); ``slots[i]`` maps sub-plan ``i``'s remote
    ids to positions in ``unique_remote_ids`` (``None`` on hand-built plans
    — execution falls back to a ``searchsorted``).
    """

    machine: int
    plans: List[FetchPlan]
    unique_remote_ids: np.ndarray
    first_request: List[np.ndarray]
    slots: Optional[List[np.ndarray]] = None

    def plan_slots(self, i: int) -> np.ndarray:
        """Pool positions of sub-plan ``i``'s remote ids."""
        if self.slots is not None:
            return self.slots[i]
        return np.searchsorted(self.unique_remote_ids, self.plans[i].remote_ids)

    @property
    def depth(self) -> int:
        return len(self.plans)

    def total_unique_remote(self) -> int:
        return len(self.unique_remote_ids)

    def duplicate_rows(self) -> int:
        """Remote rows saved by coalescing (fetched once, needed N>1 times)."""
        return int(sum(len(p.remote_ids) for p in self.plans)
                   - len(self.unique_remote_ids))


def _is_run(pos: np.ndarray) -> bool:
    """True when ``pos`` is one contiguous run of row indices.

    Plan positions come from ``np.flatnonzero`` and are strictly
    increasing, so spanning exactly ``len - 1`` means consecutive."""
    n = len(pos)
    return n > 0 and int(pos[n - 1]) - int(pos[0]) == n - 1


def _scatter_rows(out: np.ndarray, pos: np.ndarray, rows: np.ndarray) -> None:
    """``out[pos] = rows``, as a plain slice store when ``pos`` is one
    contiguous run — fancy-index scatter walks an index array per row."""
    if len(pos) == 0:
        return
    if _is_run(pos):
        lo = int(pos[0])
        out[lo:lo + len(pos)] = rows
    else:
        out[pos] = rows


def _rows_into(out: np.ndarray, pos: np.ndarray, src: np.ndarray,
               idx: np.ndarray) -> None:
    """``out[pos] = src[idx]`` without materializing ``src[idx]`` when
    ``pos`` is one contiguous run into a C-contiguous ``out`` — the
    gather then lands directly in the destination rows (``np.take`` with
    ``out=``), saving the intermediate row matrix the two-step spelling
    allocates per call."""
    if len(pos) == 0:
        return
    if _is_run(pos) and out.flags.c_contiguous:
        lo = int(pos[0])
        np.take(src, idx, axis=0, out=out[lo:lo + len(pos)])
    else:
        out[pos] = src[idx]


class GatherArena:
    """Reusable gather output matrices for the per-batch hot path.

    ``execute`` / ``execute_coalesced`` allocate a fresh ``(rows, D)``
    feature matrix per minibatch by default — the dominant per-step
    allocation in the training engines and the serving loop.  An arena
    keeps one growable buffer per key (engines key by ``(machine,
    in-flight slot)``) and hands out row-prefix views for
    ``execute(plan, out=...)``.

    A key's buffer is overwritten the next time the key is requested:
    callers must fully consume (or copy) the features of one request
    before issuing the next one under the same key, which the sequential
    engine and serving loops do by construction.
    """

    def __init__(self):
        self._bufs: Dict[object, np.ndarray] = {}

    def out(self, key, rows: int, dim: int, dtype) -> np.ndarray:
        """A writable ``(rows, dim)`` view for one gather's output."""
        buf = self._bufs.get(key)
        if (buf is None or buf.shape[0] < rows or buf.shape[1] != dim
                or buf.dtype != dtype):
            cap = rows if buf is None else max(rows, buf.shape[0])
            buf = np.empty((cap, dim), dtype=dtype)
            # Pre-touch: commit every page now, once, instead of paying
            # minor faults spread across the first gathers that grow into
            # the fresh allocation (np.empty maps lazily).
            buf.fill(0)
            self._bufs[key] = buf
        return buf[:rows]


class StaticCache:
    """The paper's static cache: contents selected once, never mutated.

    Shares the lookup interface (``contains`` / ``rows_for`` / ``ids`` /
    ``num_cached`` / ``nbytes``) with :class:`DynamicCache`.
    """

    is_dynamic = False

    def __init__(self, num_vertices: int, ids: np.ndarray, rows: np.ndarray):
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) != len(rows):
            raise ValueError("cache_ids and cache_features must align")
        self._ids = ids
        self._rows = rows
        # An empty cache skips the O(num_vertices) slot map entirely: a
        # multiproc worker builds K MachineStores (peers cache-less), so a
        # dense map per store would cost K*N int64 per worker for maps that
        # can never hit.
        if len(ids) == 0:
            self._slot_of = None
            return
        if len(np.unique(ids)) != len(ids):
            raise ValueError("duplicate cache ids")
        self._slot_of = np.full(num_vertices, -1, dtype=np.int64)
        self._slot_of[ids] = np.arange(len(ids))

    @property
    def ids(self) -> np.ndarray:
        return self._ids

    @property
    def num_cached(self) -> int:
        return len(self._ids)

    @property
    def nbytes(self) -> int:
        return int(self._rows.nbytes)

    def contains(self, ids: np.ndarray) -> np.ndarray:
        if self._slot_of is None:
            return np.zeros(len(ids), dtype=bool)
        return self._slot_of[ids] >= 0

    def rows_for(self, ids: np.ndarray) -> np.ndarray:
        if self._slot_of is None:
            if len(ids):
                raise ValueError("empty cache cannot serve rows")
            return self._rows[:0]
        return self._rows[self._slot_of[ids]]


class MachineStore:
    """One machine's feature storage (local split + remote cache).

    The remote cache is a :class:`StaticCache` by default; pass ``dynamic``
    to build a :class:`DynamicCache` instead, warm-started with the given
    ``cache_ids`` / ``cache_features`` (and primed with
    ``dynamic.warm_scores`` when available).
    """

    def __init__(
        self,
        part_id: int,
        lo: int,
        hi: int,
        local_features: np.ndarray,
        gpu_rows: int,
        cache_ids: np.ndarray,
        cache_features: np.ndarray,
        num_vertices: int,
        dynamic: Optional[DynamicCacheSpec] = None,
    ):
        if not 0 <= gpu_rows <= hi - lo:
            raise ValueError(f"gpu_rows must be in [0, {hi - lo}], got {gpu_rows}")
        if len(cache_ids) != len(cache_features):
            raise ValueError("cache_ids and cache_features must align")
        self.part_id = part_id
        self.lo, self.hi = lo, hi
        self.local_features = local_features
        self.gpu_rows = gpu_rows
        cache_ids = np.asarray(cache_ids, dtype=np.int64)
        if dynamic is None:
            self.cache = StaticCache(num_vertices, cache_ids, cache_features)
        else:
            prior = (dynamic.warm_scores[part_id]
                     if dynamic.warm_scores is not None else None)
            self.cache = DynamicCache(
                num_vertices, local_features.shape[1],
                local_features.dtype, dynamic,
                warm_ids=cache_ids, warm_rows=cache_features,
                prior_scores=prior,
            )

    @property
    def num_local(self) -> int:
        return self.hi - self.lo

    @property
    def num_cached(self) -> int:
        return self.cache.num_cached

    @property
    def cache_ids(self) -> np.ndarray:
        """Currently cached remote vertex ids (static: the build-time set)."""
        return self.cache.ids

    @property
    def has_dynamic_cache(self) -> bool:
        return self.cache.is_dynamic

    def is_local(self, ids: np.ndarray) -> np.ndarray:
        return (ids >= self.lo) & (ids < self.hi)

    def is_cached(self, ids: np.ndarray) -> np.ndarray:
        return self.cache.contains(ids)

    def local_rows(self, ids: np.ndarray) -> np.ndarray:
        """Feature rows for local vertex ids."""
        return self.local_features[ids - self.lo]

    def cached_rows(self, ids: np.ndarray) -> np.ndarray:
        """Feature rows for cached remote vertex ids."""
        return self.cache.rows_for(ids)

    def feature_memory_bytes(self) -> int:
        return int(self.local_features.nbytes + self.cache.nbytes)


class PartitionedFeatureStore:
    """The cluster-wide feature store: one :class:`MachineStore` per machine.

    Build with :meth:`build`; query with :meth:`gather` (machine-local view
    of an arbitrary vertex-id set, with remote rows served by peer stores).
    """

    def __init__(self, stores: List[MachineStore], reordered: ReorderedDataset,
                 feature_dim: int, itemsize: int):
        self.stores = stores
        self.reordered = reordered
        self.feature_dim = feature_dim
        self.itemsize = itemsize
        #: Build-time per-machine cache id arrays (new vertex numbering) —
        #: the serializable artifact a warm rebuild needs; set by build().
        self.build_cache_selection: Optional[List[np.ndarray]] = None
        self._refresh_score_fn: Optional[Callable[[int], np.ndarray]] = None

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        reordered: ReorderedDataset,
        *,
        gpu_fraction: float = 1.0,
        caches: Optional[Sequence[np.ndarray]] = None,
        dynamic: Optional[DynamicCacheSpec] = None,
    ) -> "PartitionedFeatureStore":
        """Partition the reordered dataset's features across machines.

        Parameters
        ----------
        gpu_fraction:
            Fraction β of each machine's local rows stored on GPU (the first
            β·|local| rows in the current ordering — Figure 6's x-axis).
        caches:
            Per-machine arrays of remote vertex ids to replicate (from
            :func:`repro.vip.build_caches`); ``None`` = no caching.  With
            ``dynamic`` set, these become the warm-start contents.
        dynamic:
            Build :class:`DynamicCache` instances instead of static caches
            (one per machine, per the spec).
        """
        if not 0.0 <= gpu_fraction <= 1.0:
            raise ValueError(f"gpu_fraction must be in [0, 1], got {gpu_fraction}")
        ds = reordered.dataset
        K = reordered.num_parts
        if caches is None:
            caches = [np.empty(0, dtype=np.int64)] * K
        if len(caches) != K:
            raise ValueError(f"need one cache per machine, got {len(caches)}")

        stores = []
        for k in range(K):
            lo, hi = reordered.part_range(k)
            cache_ids = np.asarray(caches[k], dtype=np.int64)
            if len(cache_ids):
                owners = reordered.owner_of(cache_ids)
                if np.any(owners == k):
                    raise ValueError(f"machine {k} cache contains local vertices")
            local = np.ascontiguousarray(ds.features[lo:hi])
            stores.append(MachineStore(
                part_id=k,
                lo=lo,
                hi=hi,
                local_features=local,
                gpu_rows=int(round(gpu_fraction * (hi - lo))),
                cache_ids=cache_ids,
                cache_features=np.ascontiguousarray(ds.features[cache_ids]),
                num_vertices=ds.num_vertices,
                dynamic=dynamic,
            ))
        store = cls(stores, reordered, ds.feature_dim, ds.features.itemsize)
        store.build_cache_selection = [
            np.asarray(c, dtype=np.int64).copy() for c in caches
        ]
        return store

    @classmethod
    def build_replicated(
        cls,
        reordered: ReorderedDataset,
        *,
        gpu_fraction: float = 0.0,
    ) -> "PartitionedFeatureStore":
        """SALIENT-style full replication: every machine sees every feature
        row as local CPU data (sharing one read-only array, so memory stays
        O(N·D) in the simulation while *accounting* reports K·N·D).

        The returned store reports zero remote and cached rows — exactly the
        baseline of Table 1 row 1.
        """
        ds = reordered.dataset
        K = reordered.num_parts
        n = ds.num_vertices
        shared = np.ascontiguousarray(ds.features)
        empty_ids = np.empty(0, dtype=np.int64)
        empty_feats = np.empty((0, ds.feature_dim), dtype=ds.features.dtype)
        stores = [
            MachineStore(
                part_id=k, lo=0, hi=n,
                local_features=shared,
                gpu_rows=int(round(gpu_fraction * n)),
                cache_ids=empty_ids,
                cache_features=empty_feats,
                num_vertices=n,
            )
            for k in range(K)
        ]
        store = cls(stores, reordered, ds.feature_dim, ds.features.itemsize)
        store._replicated = True
        return store

    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return len(self.stores)

    @property
    def is_replicated(self) -> bool:
        return getattr(self, "_replicated", False)

    @property
    def bytes_per_row(self) -> int:
        return self.feature_dim * self.itemsize

    def cache_selection(self) -> List[np.ndarray]:
        """Current per-machine cached remote ids (new vertex numbering).

        For static caches this equals :attr:`build_cache_selection`; for
        dynamic caches it is the live contents.  Either way the arrays are
        plain ``int64`` ids — directly serializable with
        :func:`repro.core.planner.save_artifact` (kind ``"cache-select"``)
        and accepted back by :meth:`build` as ``caches=`` to reproduce the
        same warm-start state.
        """
        return [np.asarray(s.cache_ids, dtype=np.int64).copy()
                for s in self.stores]

    def set_refresh_score_provider(
        self, fn: Optional[Callable[[int], np.ndarray]]
    ) -> None:
        """Wire the score function ``vip-refresh`` caches swap against.

        ``fn(machine)`` must return per-vertex scores of length ``N`` (e.g.
        analytic VIP recomputed for the machine's *current* training set);
        entries for the machine's local vertices are ignored.  Without a
        provider, refreshes fall back to the access counts the cache
        observed since its last refresh (GNNLab-style empirical refresh).
        """
        self._refresh_score_fn = fn

    def request_refresh(self) -> None:
        """Ask every ``vip-refresh`` cache to refresh at its next gather —
        the hook for known workload changes (training-set swaps)."""
        for s in self.stores:
            if s.has_dynamic_cache:
                s.cache.request_refresh()

    def gather(self, machine: int, ids: np.ndarray):
        """Gather feature rows for ``ids`` as seen from ``machine``.

        Returns ``(features, stats)``: the assembled ``(len(ids), D)`` matrix
        and the exact :class:`GatherStats` for the performance model.  Remote
        rows are copied from the owning peers' local stores (never from any
        monolithic array), so correctness of the distributed layout is
        exercised on every call.

        This is exactly ``execute(plan_gather(machine, ids))`` — the
        plan/execute split exists so an execution engine can coalesce the
        plans of several in-flight minibatches before fetching.

        When ``machine`` has a dynamic cache the gather also maintains it:
        hits refresh replacement metadata, missed rows are admitted (LRU /
        LFU / CLOCK), and due refreshes swap the contents — all *after* the
        stats are computed, so every count describes the cache state this
        request actually saw.  Refresh fetches are reported separately in
        ``stats.refresh_fetch_per_peer``.
        """
        return self.execute(self.plan_gather(machine, ids))

    def hit_mask(self, machine: int, ids: np.ndarray) -> np.ndarray:
        """Boolean mask: which ``ids`` would ``machine`` serve *without*
        touching the network right now (local rows or currently cached).

        Read-only — no bytes move and no cache metadata updates, so callers
        (e.g. the serving cache-affinity batcher) can probe residency
        cheaply while requests are still queued.  With a dynamic cache the
        answer describes this instant's contents and may change by the time
        a gather executes.
        """
        ids = np.asarray(ids, dtype=np.int64)
        store = self.stores[machine]
        return store.is_local(ids) | store.is_cached(ids)

    def plan_gather(self, machine: int, ids: np.ndarray) -> FetchPlan:
        """Classify ``ids`` into local-GPU / local-CPU / cached / remote.

        Pure planning: no feature bytes move and no cache state changes.
        Ownership and local-row offsets are O(1) arithmetic on the reorder
        offsets; cache membership is one vectorized slot-map lookup.
        """
        ids = np.asarray(ids, dtype=np.int64)
        store = self.stores[machine]

        local_mask = store.is_local(ids)
        local_pos = np.flatnonzero(local_mask)
        local_ids = ids[local_mask]
        gpu_rows = int(np.count_nonzero(local_ids - store.lo < store.gpu_rows))
        cpu_rows = len(local_ids) - gpu_rows

        nonlocal_mask = ~local_mask
        nl_ids = ids[nonlocal_mask]
        nl_pos = np.flatnonzero(nonlocal_mask)
        cached_mask_nl = store.is_cached(nl_ids)
        return FetchPlan(
            machine=machine,
            ids=ids,
            local_pos=local_pos,
            local_ids=local_ids,
            gpu_rows=gpu_rows,
            cpu_rows=cpu_rows,
            cached_pos=nl_pos[cached_mask_nl],
            cached_ids=nl_ids[cached_mask_nl],
            remote_pos=nl_pos[~cached_mask_nl],
            remote_ids=nl_ids[~cached_mask_nl],
            nonlocal_ids=nl_ids,
        )

    def gather_into(self, machine: int, ids: np.ndarray, out: np.ndarray):
        """:meth:`gather`, filling a caller-owned ``(len(ids), D)`` matrix.

        The arena variant of the gather path: callers that reuse output
        buffers (see :class:`GatherArena`) skip the per-batch feature-matrix
        allocation.  Identical to :meth:`gather` in every observable way —
        features, stats, and dynamic-cache maintenance.
        """
        return self.execute(self.plan_gather(machine, ids), out=out)

    def _output_for(self, plan: FetchPlan, out: Optional[np.ndarray]):
        dtype = self.stores[plan.machine].local_features.dtype
        shape = (len(plan.ids), self.feature_dim)
        if out is None:
            return np.empty(shape, dtype=dtype)
        if out.shape != shape:
            raise ValueError(f"out must have shape {shape}, got {out.shape}")
        if out.dtype != dtype:
            raise ValueError(f"out must have dtype {dtype}, got {out.dtype}")
        return out

    def execute(self, plan: FetchPlan, *, out: Optional[np.ndarray] = None):
        """Execute one :class:`FetchPlan`: assemble the feature matrix, take
        :class:`GatherStats`, then run dynamic-cache maintenance.

        Bit-identical to the pre-split ``gather`` for any id mix (the parity
        property test in ``tests/distributed/test_engine.py`` asserts this).
        ``out``, when given, is the caller-owned output matrix to fill
        (every row is written) and becomes the returned feature matrix.
        """
        store = self.stores[plan.machine]
        if (out is None and not store.has_dynamic_cache
                and len(plan.local_ids) == len(plan.ids)):
            # All-local plan with no caller buffer: the fancy-indexed local
            # rows are already the full output in plan order (local_pos is
            # then arange(len(ids))) — skip the second matrix entirely.
            stats = GatherStats(
                total_rows=len(plan.ids),
                gpu_rows=plan.gpu_rows,
                cpu_rows=plan.cpu_rows,
                cached_rows=0,
                remote_rows=0,
                remote_per_peer=np.zeros(self.num_machines, dtype=np.int64),
            )
            if OBS.enabled:
                _note_gather(stats)
            return store.local_rows(plan.local_ids), stats
        out = self._output_for(plan, out)
        _rows_into(out, plan.local_pos, store.local_features,
                   plan.local_ids - store.lo)
        _scatter_rows(out, plan.cached_pos, store.cached_rows(plan.cached_ids))
        remote_rows, remote_per_peer = self._fetch_remote_rows(
            plan.machine, plan.remote_ids
        )
        _scatter_rows(out, plan.remote_pos, remote_rows)

        stats = GatherStats(
            total_rows=len(plan.ids),
            gpu_rows=plan.gpu_rows,
            cpu_rows=plan.cpu_rows,
            cached_rows=len(plan.cached_ids),
            remote_rows=len(plan.remote_ids),
            remote_per_peer=remote_per_peer,
        )
        if store.has_dynamic_cache:
            self._maintain_dynamic_cache(
                store, stats, plan.cached_ids, plan.remote_ids, out,
                plan.remote_pos, plan.nonlocal_ids,
            )
        if OBS.enabled:
            _note_gather(stats)
        return out, stats

    def execute_coalesced(self, cplan: CoalescedFetchPlan, *,
                          outs: Optional[Sequence[np.ndarray]] = None):
        """Execute the merged plans of several in-flight minibatches.

        One peer exchange serves the deduplicated union of the sub-plans'
        remote ids; each sub-plan's matrix is then assembled from local
        rows, cache rows, and the shared in-flight pool.  Returns a list of
        ``(features, stats)`` in sub-plan order.  Stats attribute each
        unique remote row to the first requesting sub-plan; later requests
        of the same id are that plan's ``coalesced_rows``.  ``outs``, when
        given, supplies one caller-owned output matrix per sub-plan (see
        :class:`GatherArena`).

        With a dynamic cache, all assembly happens against the cache state
        the plans were made with (reads only); maintenance (hits, gated
        admission of the window's misses, due refreshes) runs afterwards,
        sub-plan by sub-plan, so refresh intervals still tick once per
        batch.
        """
        store = self.stores[cplan.machine]
        if outs is not None and len(outs) != len(cplan.plans):
            raise ValueError(
                f"outs must supply one matrix per sub-plan "
                f"({len(cplan.plans)}), got {len(outs)}"
            )
        pool_rows, _ = self._fetch_remote_rows(
            cplan.machine, cplan.unique_remote_ids
        )
        owners = (self.reordered.owner_of(cplan.unique_remote_ids)
                  if len(cplan.unique_remote_ids) else
                  np.empty(0, dtype=np.int64))

        results = []
        for i, (plan, fresh) in enumerate(zip(cplan.plans, cplan.first_request)):
            out = self._output_for(plan, None if outs is None else outs[i])
            _rows_into(out, plan.local_pos, store.local_features,
                       plan.local_ids - store.lo)
            _scatter_rows(out, plan.cached_pos,
                          store.cached_rows(plan.cached_ids))
            slots = cplan.plan_slots(i)
            _rows_into(out, plan.remote_pos, pool_rows, slots)

            per_peer = np.zeros(self.num_machines, dtype=np.int64)
            if fresh.any():
                np.add.at(per_peer, owners[slots[fresh]], 1)
            results.append((out, GatherStats(
                total_rows=len(plan.ids),
                gpu_rows=plan.gpu_rows,
                cpu_rows=plan.cpu_rows,
                cached_rows=len(plan.cached_ids),
                remote_rows=int(fresh.sum()),
                remote_per_peer=per_peer,
                coalesced_rows=int(len(plan.remote_ids) - fresh.sum()),
            )))

        if store.has_dynamic_cache:
            for plan, (out, stats) in zip(cplan.plans, results):
                self._maintain_dynamic_cache_in_flight(store, stats, plan, out)
        if OBS.enabled:
            for _out, stats in results:
                _note_gather(stats)
        return results

    def _maintain_dynamic_cache_in_flight(
        self,
        store: MachineStore,
        stats: GatherStats,
        plan: FetchPlan,
        out: np.ndarray,
    ) -> None:
        """Dynamic-cache maintenance for one sub-plan of a coalesced window.

        The plan's classification may be stale by now (an earlier sub-plan's
        maintenance can admit or evict), so membership is re-checked against
        the *current* cache: still-cached planned hits and since-admitted
        planned misses count as hits; the rest of the planned misses are
        admission candidates.
        """
        cache: DynamicCache = store.cache
        evictions_before = cache.churn.evictions
        still_cached = store.is_cached(plan.cached_ids)
        cache.note_hits(plan.cached_ids[still_cached])
        now_cached = store.is_cached(plan.remote_ids)
        cache.note_hits(plan.remote_ids[now_cached])
        stats.cache_insertions += cache.admit(
            plan.remote_ids[~now_cached], out[plan.remote_pos[~now_cached]]
        )
        if cache.end_batch(plan.nonlocal_ids):
            if self._refresh_score_fn is not None:
                scores = np.asarray(
                    self._refresh_score_fn(store.part_id), dtype=np.float64
                ).copy()
            else:
                scores = cache.observed_scores()
            scores[store.lo:store.hi] = 0.0
            refresh_plan = cache.plan_refresh(
                scores, horizon=cache.spec.refresh_interval
            )
            new_rows, fetch_per_peer = self._fetch_remote_rows(
                store.part_id, refresh_plan.new_ids
            )
            cache.commit_refresh(refresh_plan, new_rows)
            stats.refresh_fetch_per_peer = fetch_per_peer
            stats.cache_insertions += len(refresh_plan.new_ids)
        stats.cache_evictions = cache.churn.evictions - evictions_before

    def _maintain_dynamic_cache(
        self,
        store: MachineStore,
        stats: GatherStats,
        cached_ids: np.ndarray,
        remote_ids: np.ndarray,
        out: np.ndarray,
        remote_pos: np.ndarray,
        accessed_remote_ids: np.ndarray,
    ) -> None:
        """Post-gather cache update: hits, admissions, and due refreshes."""
        cache: DynamicCache = store.cache
        evictions_before = cache.churn.evictions
        cache.note_hits(cached_ids)
        stats.cache_insertions += cache.admit(remote_ids, out[remote_pos])
        if cache.end_batch(accessed_remote_ids):
            if self._refresh_score_fn is not None:
                scores = np.asarray(
                    self._refresh_score_fn(store.part_id), dtype=np.float64
                ).copy()
            else:
                scores = cache.observed_scores()
            scores[store.lo:store.hi] = 0.0  # locals never need caching
            plan = cache.plan_refresh(scores,
                                      horizon=cache.spec.refresh_interval)
            new_rows, fetch_per_peer = self._fetch_remote_rows(
                store.part_id, plan.new_ids
            )
            cache.commit_refresh(plan, new_rows)
            stats.refresh_fetch_per_peer = fetch_per_peer
            stats.cache_insertions += len(plan.new_ids)
        stats.cache_evictions = cache.churn.evictions - evictions_before

    def _fetch_remote_rows(self, machine: int, ids: np.ndarray):
        """Copy rows for remote ``ids`` from their owners (refresh traffic)."""
        rows = np.empty((len(ids), self.feature_dim),
                        dtype=self.stores[machine].local_features.dtype)
        per_peer = np.zeros(self.num_machines, dtype=np.int64)
        if len(ids):
            owners = self.reordered.owner_of(ids)
            for peer in np.unique(owners):
                sel = owners == peer
                rows[sel] = self.stores[peer].local_rows(ids[sel])
                per_peer[peer] = int(sel.sum())
        return rows, per_peer

    # ------------------------------------------------------------------
    @property
    def has_dynamic_caches(self) -> bool:
        return any(s.has_dynamic_cache for s in self.stores)

    def cache_churn(self) -> Optional[List[CacheChurnStats]]:
        """Per-machine cumulative churn snapshots (``None`` for static
        caches).  Snapshot-and-diff with :meth:`CacheChurnStats.delta` to
        attribute churn to an epoch."""
        if not self.has_dynamic_caches:
            return None
        return [s.cache.churn.copy() if s.has_dynamic_cache else CacheChurnStats()
                for s in self.stores]

    # ------------------------------------------------------------------
    def total_feature_memory_bytes(self) -> int:
        """Sum of local + cached feature bytes over all machines (the
        Figure 5 right-plot quantity; full replication would be K·N·D·item)."""
        return int(sum(s.feature_memory_bytes() for s in self.stores))

    def replication_factor(self) -> float:
        """Realized α: cached rows per machine relative to N/K (§3.2)."""
        n = self.reordered.dataset.num_vertices
        cached = sum(s.num_cached for s in self.stores)
        return cached / max(n, 1)

    def memory_multiple(self) -> float:
        """Total feature memory as a multiple of the unreplicated data set
        (the ``1 + α`` axis of Figure 5)."""
        base = self.reordered.dataset.features.nbytes
        return self.total_feature_memory_bytes() / max(base, 1)
