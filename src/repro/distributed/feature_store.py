"""Partitioned feature storage with CPU/GPU tiers and a static remote cache.

Implements §4.1–4.2 of the paper over a :class:`ReorderedDataset` (vertices
contiguous per partition, VIP-ordered within):

* each machine owns the feature rows of its partition, split into a *GPU
  prefix* (the first ``gpu_fraction`` of local rows under the current
  ordering — most-accessed first when VIP reordering is on) and a CPU
  remainder;
* each machine holds a static cache of remote rows selected by a caching
  policy; cache membership is one boolean lookup (the paper uses a hash
  table; a bitmap plus a compact row map is the numpy equivalent);
* gathering features for a sampled neighborhood categorizes every vertex as
  local-GPU / local-CPU / cached-remote / remote-per-peer, returns the
  correctly assembled feature matrix, and reports exact per-category row
  counts — the quantities the performance model charges for.

This is *functional* storage: remote rows are really copied out of the
owning machine's store, so tests can assert bit-identical results against
direct indexing of the monolithic feature array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.partition.reorder import ReorderedDataset


@dataclass
class GatherStats:
    """Exact per-category row counts for one gather (one minibatch).

    ``remote_per_peer[j]`` is the number of rows requested from machine
    ``j`` (0 for self and for fully cached peers).
    """

    total_rows: int
    gpu_rows: int
    cpu_rows: int
    cached_rows: int
    remote_rows: int
    remote_per_peer: np.ndarray

    def remote_fraction(self) -> float:
        return self.remote_rows / max(self.total_rows, 1)


class MachineStore:
    """One machine's feature storage (local split + remote cache)."""

    def __init__(
        self,
        part_id: int,
        lo: int,
        hi: int,
        local_features: np.ndarray,
        gpu_rows: int,
        cache_ids: np.ndarray,
        cache_features: np.ndarray,
        num_vertices: int,
    ):
        if not 0 <= gpu_rows <= hi - lo:
            raise ValueError(f"gpu_rows must be in [0, {hi - lo}], got {gpu_rows}")
        if len(cache_ids) != len(cache_features):
            raise ValueError("cache_ids and cache_features must align")
        self.part_id = part_id
        self.lo, self.hi = lo, hi
        self.local_features = local_features
        self.gpu_rows = gpu_rows
        self.cache_ids = np.asarray(cache_ids, dtype=np.int64)
        self.cache_features = cache_features
        # O(1) membership + row lookup (bitmap stands in for the hash table).
        self._cache_mask = np.zeros(num_vertices, dtype=bool)
        self._cache_row = np.zeros(num_vertices, dtype=np.int64)
        if len(self.cache_ids):
            if self._cache_mask[self.cache_ids].any():
                raise ValueError("duplicate cache ids")
            self._cache_mask[self.cache_ids] = True
            self._cache_row[self.cache_ids] = np.arange(len(self.cache_ids))

    @property
    def num_local(self) -> int:
        return self.hi - self.lo

    @property
    def num_cached(self) -> int:
        return len(self.cache_ids)

    def is_local(self, ids: np.ndarray) -> np.ndarray:
        return (ids >= self.lo) & (ids < self.hi)

    def is_cached(self, ids: np.ndarray) -> np.ndarray:
        return self._cache_mask[ids]

    def local_rows(self, ids: np.ndarray) -> np.ndarray:
        """Feature rows for local vertex ids."""
        return self.local_features[ids - self.lo]

    def cached_rows(self, ids: np.ndarray) -> np.ndarray:
        """Feature rows for cached remote vertex ids."""
        return self.cache_features[self._cache_row[ids]]

    def feature_memory_bytes(self) -> int:
        return int(self.local_features.nbytes + self.cache_features.nbytes)


class PartitionedFeatureStore:
    """The cluster-wide feature store: one :class:`MachineStore` per machine.

    Build with :meth:`build`; query with :meth:`gather` (machine-local view
    of an arbitrary vertex-id set, with remote rows served by peer stores).
    """

    def __init__(self, stores: List[MachineStore], reordered: ReorderedDataset,
                 feature_dim: int, itemsize: int):
        self.stores = stores
        self.reordered = reordered
        self.feature_dim = feature_dim
        self.itemsize = itemsize

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        reordered: ReorderedDataset,
        *,
        gpu_fraction: float = 1.0,
        caches: Optional[Sequence[np.ndarray]] = None,
    ) -> "PartitionedFeatureStore":
        """Partition the reordered dataset's features across machines.

        Parameters
        ----------
        gpu_fraction:
            Fraction β of each machine's local rows stored on GPU (the first
            β·|local| rows in the current ordering — Figure 6's x-axis).
        caches:
            Per-machine arrays of remote vertex ids to replicate (from
            :func:`repro.vip.build_caches`); ``None`` = no caching.
        """
        if not 0.0 <= gpu_fraction <= 1.0:
            raise ValueError(f"gpu_fraction must be in [0, 1], got {gpu_fraction}")
        ds = reordered.dataset
        K = reordered.num_parts
        if caches is None:
            caches = [np.empty(0, dtype=np.int64)] * K
        if len(caches) != K:
            raise ValueError(f"need one cache per machine, got {len(caches)}")

        stores = []
        for k in range(K):
            lo, hi = reordered.part_range(k)
            cache_ids = np.asarray(caches[k], dtype=np.int64)
            if len(cache_ids):
                owners = reordered.owner_of(cache_ids)
                if np.any(owners == k):
                    raise ValueError(f"machine {k} cache contains local vertices")
            local = np.ascontiguousarray(ds.features[lo:hi])
            stores.append(MachineStore(
                part_id=k,
                lo=lo,
                hi=hi,
                local_features=local,
                gpu_rows=int(round(gpu_fraction * (hi - lo))),
                cache_ids=cache_ids,
                cache_features=np.ascontiguousarray(ds.features[cache_ids]),
                num_vertices=ds.num_vertices,
            ))
        return cls(stores, reordered, ds.feature_dim, ds.features.itemsize)

    @classmethod
    def build_replicated(
        cls,
        reordered: ReorderedDataset,
        *,
        gpu_fraction: float = 0.0,
    ) -> "PartitionedFeatureStore":
        """SALIENT-style full replication: every machine sees every feature
        row as local CPU data (sharing one read-only array, so memory stays
        O(N·D) in the simulation while *accounting* reports K·N·D).

        The returned store reports zero remote and cached rows — exactly the
        baseline of Table 1 row 1.
        """
        ds = reordered.dataset
        K = reordered.num_parts
        n = ds.num_vertices
        shared = np.ascontiguousarray(ds.features)
        empty_ids = np.empty(0, dtype=np.int64)
        empty_feats = np.empty((0, ds.feature_dim), dtype=ds.features.dtype)
        stores = [
            MachineStore(
                part_id=k, lo=0, hi=n,
                local_features=shared,
                gpu_rows=int(round(gpu_fraction * n)),
                cache_ids=empty_ids,
                cache_features=empty_feats,
                num_vertices=n,
            )
            for k in range(K)
        ]
        store = cls(stores, reordered, ds.feature_dim, ds.features.itemsize)
        store._replicated = True
        return store

    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return len(self.stores)

    @property
    def is_replicated(self) -> bool:
        return getattr(self, "_replicated", False)

    @property
    def bytes_per_row(self) -> int:
        return self.feature_dim * self.itemsize

    def gather(self, machine: int, ids: np.ndarray):
        """Gather feature rows for ``ids`` as seen from ``machine``.

        Returns ``(features, stats)``: the assembled ``(len(ids), D)`` matrix
        and the exact :class:`GatherStats` for the performance model.  Remote
        rows are copied from the owning peers' local stores (never from any
        monolithic array), so correctness of the distributed layout is
        exercised on every call.
        """
        ids = np.asarray(ids, dtype=np.int64)
        store = self.stores[machine]
        K = self.num_machines
        out = np.empty((len(ids), self.feature_dim), dtype=store.local_features.dtype)

        local_mask = store.is_local(ids)
        local_ids = ids[local_mask]
        out[local_mask] = store.local_rows(local_ids)
        gpu_rows = int(np.count_nonzero(local_ids - store.lo < store.gpu_rows))
        cpu_rows = len(local_ids) - gpu_rows

        nonlocal_mask = ~local_mask
        nl_ids = ids[nonlocal_mask]
        cached_mask_nl = store.is_cached(nl_ids)
        cached_ids = nl_ids[cached_mask_nl]
        cached_pos = np.flatnonzero(nonlocal_mask)[cached_mask_nl]
        out[cached_pos] = store.cached_rows(cached_ids)

        remote_pos = np.flatnonzero(nonlocal_mask)[~cached_mask_nl]
        remote_ids = nl_ids[~cached_mask_nl]
        remote_per_peer = np.zeros(K, dtype=np.int64)
        if len(remote_ids):
            owners = self.reordered.owner_of(remote_ids)
            for peer in np.unique(owners):
                sel = owners == peer
                peer_store = self.stores[peer]
                out[remote_pos[sel]] = peer_store.local_rows(remote_ids[sel])
                remote_per_peer[peer] = int(sel.sum())

        stats = GatherStats(
            total_rows=len(ids),
            gpu_rows=gpu_rows,
            cpu_rows=cpu_rows,
            cached_rows=len(cached_ids),
            remote_rows=len(remote_ids),
            remote_per_peer=remote_per_peer,
        )
        return out, stats

    # ------------------------------------------------------------------
    def total_feature_memory_bytes(self) -> int:
        """Sum of local + cached feature bytes over all machines (the
        Figure 5 right-plot quantity; full replication would be K·N·D·item)."""
        return int(sum(s.feature_memory_bytes() for s in self.stores))

    def replication_factor(self) -> float:
        """Realized α: cached rows per machine relative to N/K (§3.2)."""
        n = self.reordered.dataset.num_vertices
        cached = sum(s.num_cached for s in self.stores)
        return cached / max(n, 1)

    def memory_multiple(self) -> float:
        """Total feature memory as a multiple of the unreplicated data set
        (the ``1 + α`` axis of Figure 5)."""
        base = self.reordered.dataset.features.nbytes
        return self.total_feature_memory_bytes() / max(base, 1)
