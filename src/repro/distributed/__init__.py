"""Simulated distributed runtime: cluster specs, partitioned feature store
with CPU/GPU tiers and static or dynamic remote caches, byte-accounted
collectives, and the bulk-synchronous data-parallel trainer."""

from repro.distributed.cluster import GBPS, ClusterSpec, MachineSpec, NetworkSpec
from repro.distributed.comm import (
    CommLedger,
    all_reduce_gradients,
    average_parameters,
    broadcast_state,
    gradient_nbytes,
)
from repro.distributed.engine import (
    ENGINES,
    AsyncEngine,
    BSPEngine,
    ExecutionEngine,
    PipelinedEngine,
    PrefetchIterator,
    make_engine,
)
from repro.distributed.dynamic_cache import (
    DYNAMIC_CACHE_POLICIES,
    CacheChurnStats,
    DynamicCache,
    DynamicCacheSpec,
    is_dynamic_policy,
)
from repro.distributed.feature_store import (
    CoalescedFetchPlan,
    FetchPlan,
    GatherArena,
    GatherStats,
    MachineStore,
    PartitionedFeatureStore,
    StaticCache,
)
from repro.distributed.executor import DistributedTrainer, EpochReport, StepRecord

__all__ = [
    "GBPS",
    "ClusterSpec",
    "MachineSpec",
    "NetworkSpec",
    "CommLedger",
    "all_reduce_gradients",
    "average_parameters",
    "broadcast_state",
    "gradient_nbytes",
    "ENGINES",
    "AsyncEngine",
    "BSPEngine",
    "ExecutionEngine",
    "PipelinedEngine",
    "PrefetchIterator",
    "make_engine",
    "DYNAMIC_CACHE_POLICIES",
    "CacheChurnStats",
    "DynamicCache",
    "DynamicCacheSpec",
    "is_dynamic_policy",
    "CoalescedFetchPlan",
    "FetchPlan",
    "GatherArena",
    "GatherStats",
    "MachineStore",
    "PartitionedFeatureStore",
    "StaticCache",
    "DistributedTrainer",
    "EpochReport",
    "StepRecord",
]
