"""Simulated distributed runtime: cluster specs, partitioned feature store
with CPU/GPU tiers and static caches, byte-accounted collectives, and the
bulk-synchronous data-parallel trainer."""

from repro.distributed.cluster import GBPS, ClusterSpec, MachineSpec, NetworkSpec
from repro.distributed.comm import (
    CommLedger,
    all_reduce_gradients,
    broadcast_state,
    gradient_nbytes,
)
from repro.distributed.feature_store import (
    GatherStats,
    MachineStore,
    PartitionedFeatureStore,
)
from repro.distributed.executor import DistributedTrainer, EpochReport, StepRecord

__all__ = [
    "GBPS",
    "ClusterSpec",
    "MachineSpec",
    "NetworkSpec",
    "CommLedger",
    "all_reduce_gradients",
    "broadcast_state",
    "gradient_nbytes",
    "GatherStats",
    "MachineStore",
    "PartitionedFeatureStore",
    "DistributedTrainer",
    "EpochReport",
    "StepRecord",
]
