"""Simulated distributed runtime: cluster specs, partitioned feature store
with CPU/GPU tiers and static or dynamic remote caches, byte-accounted
collectives, the bulk-synchronous data-parallel trainer, and the cluster
backends (in-process simulation, or one real worker process per machine
over shared memory)."""

from repro.distributed.cluster import (
    CLUSTER_BACKENDS,
    GBPS,
    ClusterBackend,
    ClusterSpec,
    MachineSpec,
    NetworkSpec,
    make_cluster_backend,
)
from repro.distributed.comm import (
    CommLedger,
    all_reduce_gradients,
    average_gradient_arrays,
    average_parameters,
    broadcast_state,
    gradient_nbytes,
)
from repro.distributed.engine import (
    ENGINES,
    AsyncEngine,
    BSPEngine,
    ExecutionEngine,
    PipelinedEngine,
    PrefetchIterator,
    make_engine,
    train_batch,
)
from repro.distributed.dynamic_cache import (
    DYNAMIC_CACHE_POLICIES,
    CacheChurnStats,
    DynamicCache,
    DynamicCacheSpec,
    is_dynamic_policy,
)
from repro.distributed.feature_store import (
    CoalescedFetchPlan,
    FetchPlan,
    GatherArena,
    GatherStats,
    MachineStore,
    PartitionedFeatureStore,
    StaticCache,
)
from repro.distributed.executor import (
    DistributedTrainer,
    EpochReport,
    InProcessBackend,
    StepRecord,
)
from repro.distributed.faults import FAULT_KINDS, FaultPlan, FaultSpec
from repro.distributed.multiproc import (  # must import after executor
    WORKER_POOL,
    MultiprocBackend,
    WorkerFailedError,
    WorkerPool,
)
from repro.distributed.recovery import (
    RecoveryManager,
    RecoveryPolicy,
    load_checkpoint,
    save_checkpoint,
)
from repro.distributed.shm_plane import (
    GradientPlane,
    GradSlab,
    SlabLayout,
    SlabStateError,
    TornReadError,
)
from repro.distributed.wire import WireError

__all__ = [
    "CLUSTER_BACKENDS",
    "ClusterBackend",
    "make_cluster_backend",
    "InProcessBackend",
    "MultiprocBackend",
    "WorkerFailedError",
    "WorkerPool",
    "WORKER_POOL",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "RecoveryManager",
    "RecoveryPolicy",
    "load_checkpoint",
    "save_checkpoint",
    "GradientPlane",
    "GradSlab",
    "SlabLayout",
    "SlabStateError",
    "TornReadError",
    "WireError",
    "GBPS",
    "ClusterSpec",
    "MachineSpec",
    "NetworkSpec",
    "CommLedger",
    "all_reduce_gradients",
    "average_gradient_arrays",
    "average_parameters",
    "broadcast_state",
    "gradient_nbytes",
    "ENGINES",
    "AsyncEngine",
    "BSPEngine",
    "ExecutionEngine",
    "PipelinedEngine",
    "PrefetchIterator",
    "make_engine",
    "train_batch",
    "DYNAMIC_CACHE_POLICIES",
    "CacheChurnStats",
    "DynamicCache",
    "DynamicCacheSpec",
    "is_dynamic_policy",
    "CoalescedFetchPlan",
    "FetchPlan",
    "GatherArena",
    "GatherStats",
    "MachineStore",
    "PartitionedFeatureStore",
    "StaticCache",
    "DistributedTrainer",
    "EpochReport",
    "StepRecord",
]
