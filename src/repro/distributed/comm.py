"""Simulated collectives with exact byte accounting.

Gradient synchronization really averages the per-machine gradient arrays
(so distributed training is bit-identical across machines), and every
collective reports the bytes it would move, which the performance model
prices using the :class:`~repro.distributed.cluster.NetworkSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.nn.module import Module


@dataclass
class CommLedger:
    """Cumulative communication volumes (bytes) for one epoch/run.

    ``feature_bytes[k, j]`` — feature payload machine ``k`` received from
    machine ``j``; ``request_bytes`` — vertex-id request lists (8 bytes/id);
    ``gradient_bytes[k]`` — all-reduce wire bytes per machine.
    """

    num_machines: int
    feature_bytes: np.ndarray = field(default=None)
    request_bytes: np.ndarray = field(default=None)
    gradient_bytes: np.ndarray = field(default=None)

    def __post_init__(self):
        k = self.num_machines
        if self.feature_bytes is None:
            self.feature_bytes = np.zeros((k, k), dtype=np.float64)
        if self.request_bytes is None:
            self.request_bytes = np.zeros((k, k), dtype=np.float64)
        if self.gradient_bytes is None:
            self.gradient_bytes = np.zeros(k, dtype=np.float64)

    def record_feature_fetch(self, machine: int, remote_per_peer: np.ndarray,
                             bytes_per_row: int) -> None:
        rows = np.asarray(remote_per_peer, dtype=np.float64)
        self.feature_bytes[machine] += rows * bytes_per_row
        self.request_bytes[machine] += rows * 8  # one int64 id per requested row

    def record_all_reduce(self, wire_bytes_per_machine: float) -> None:
        self.gradient_bytes += wire_bytes_per_machine

    def total_feature_bytes(self) -> float:
        return float(self.feature_bytes.sum())

    def total_bytes(self) -> float:
        return float(self.feature_bytes.sum() + self.request_bytes.sum()
                     + self.gradient_bytes.sum())

    def merged(self, other: "CommLedger") -> "CommLedger":
        out = CommLedger(self.num_machines)
        out.feature_bytes = self.feature_bytes + other.feature_bytes
        out.request_bytes = self.request_bytes + other.request_bytes
        out.gradient_bytes = self.gradient_bytes + other.gradient_bytes
        return out


def gradient_nbytes(model: Module) -> int:
    """Wire size of one full gradient (sent as float32, as NCCL would)."""
    return int(sum(p.data.size for p in model.parameters()) * 4)


def average_gradient_arrays(
    per_machine: List[List[Optional[np.ndarray]]],
    templates: List[np.ndarray],
) -> List[np.ndarray]:
    """Average per-machine gradient lists parameter by parameter.

    ``per_machine[k][i]`` is machine ``k``'s gradient for parameter ``i``
    (``None`` if that machine's batch never touched it — it contributes a
    scalar zero); ``templates[i]`` supplies the shape for the all-``None``
    case.  The accumulation order is fixed — machine 0's gradient first,
    then ``+ g_1 + g_2 ...``, then one division by K — and is the *single*
    definition of the collective's floating-point semantics: the in-process
    :func:`all_reduce_gradients` and the multiproc coordinator both call
    this, which is what keeps their losses bit-identical.
    """
    k = len(per_machine)
    if k == 0:
        raise ValueError("no gradient sets to average")
    out = []
    for i, template in enumerate(templates):
        avg = None
        for grads in per_machine:
            g = grads[i] if grads[i] is not None else 0.0
            avg = g if avg is None else avg + g
        avg = avg / k if not np.isscalar(avg) else np.zeros_like(template)
        out.append(avg)
    return out


def average_gradient_fields(
    per_machine: List[List[np.ndarray]],
    out: List[np.ndarray],
) -> None:
    """In-place variant of :func:`average_gradient_arrays` over dense fields.

    ``per_machine[k][i]`` is machine ``k``'s gradient for parameter ``i``
    as a dense array (missing gradients already materialized as zeros —
    which is elementwise exactly what the scalar-``0.0`` contribution in
    :func:`average_gradient_arrays` adds); ``out[i]`` receives the average
    without any intermediate allocation.  The accumulation order is the
    collective's single floating-point definition — machine 0 first, then
    ``+= g_1 + g_2 ...``, one division by K — so results are bit-identical
    to :func:`average_gradient_arrays` on the same values.  The multiproc
    backend's shared-memory gradient plane averages worker slabs with this.
    """
    k = len(per_machine)
    if k == 0:
        raise ValueError("no gradient sets to average")
    for i, acc in enumerate(out):
        acc[...] = per_machine[0][i]
        for fields in per_machine[1:]:
            acc += fields[i]
        acc /= k


def all_reduce_gradients(
    models: List[Module],
    ledger: Optional[CommLedger] = None,
) -> None:
    """Average gradients across per-machine model replicas, in place.

    Parameters missing a gradient on some machine contribute zeros (that
    machine's batch never touched them), matching DDP semantics.  After this
    call every replica holds identical averaged gradients, so identical
    optimizer states yield identical weights — the invariant the test suite
    checks.
    """
    if not models:
        raise ValueError("no models to reduce")
    k = len(models)
    named = [dict(m.named_parameters()) for m in models]
    keys = list(named[0].keys())
    for nd in named[1:]:
        if list(nd.keys()) != keys or any(
            nd[k2].data.shape != named[0][k2].data.shape for k2 in keys
        ):
            raise ValueError("model replicas have mismatched parameters")

    averaged = average_gradient_arrays(
        [[nd[key].grad for key in keys] for nd in named],
        [named[0][key].data for key in keys],
    )
    for nd in named:
        for key, avg in zip(keys, averaged):
            nd[key].grad = np.array(avg, copy=True)

    if ledger is not None and k > 1:
        nbytes = gradient_nbytes(models[0])
        ledger.record_all_reduce(2.0 * (k - 1) / k * nbytes)


def average_parameters(
    models: List[Module],
    ledger: Optional[CommLedger] = None,
) -> None:
    """Average model *parameters* (not gradients) across replicas, in place.

    The synchronization point of the bounded-staleness ``async`` execution
    engine: replicas apply their local gradients immediately and re-converge
    by parameter averaging every ``staleness + 1`` steps.  The wire cost is
    the same ring all-reduce as a gradient reduction (parameters and
    gradients have identical shapes), which the ledger records.
    """
    if not models:
        raise ValueError("no models to average")
    k = len(models)
    named = [dict(m.named_parameters()) for m in models]
    keys = list(named[0].keys())
    for nd in named[1:]:
        if list(nd.keys()) != keys or any(
            nd[k2].data.shape != named[0][k2].data.shape for k2 in keys
        ):
            raise ValueError("model replicas have mismatched parameters")

    for key in keys:
        params = [nd[key] for nd in named]
        avg = params[0].data.copy()
        for p in params[1:]:
            avg += p.data
        avg /= k
        for p in params:
            p.data[...] = avg

    if ledger is not None and k > 1:
        nbytes = gradient_nbytes(models[0])
        ledger.record_all_reduce(2.0 * (k - 1) / k * nbytes)


def broadcast_state(models: List[Module], source: int = 0) -> None:
    """Copy machine ``source``'s weights to all replicas (training start)."""
    state = models[source].state_dict()
    for i, m in enumerate(models):
        if i != source:
            m.load_state_dict(state)
