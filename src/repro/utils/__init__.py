"""Shared utilities: seeded RNG management, validation, table rendering.

These helpers keep the rest of the codebase free of boilerplate around
reproducible randomness (every stochastic component takes an explicit seed or
:class:`numpy.random.Generator`) and consistent experiment reporting.
"""

from repro.utils.registry import Registry
from repro.utils.rng import (
    as_generator,
    derive_seed,
    machine_stream_seed,
    spawn_generators,
)
from repro.utils.tables import Table, format_bytes, format_seconds, format_count
from repro.utils.validation import (
    check_array,
    check_in_range,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "Registry",
    "as_generator",
    "spawn_generators",
    "derive_seed",
    "machine_stream_seed",
    "Table",
    "format_bytes",
    "format_seconds",
    "format_count",
    "check_array",
    "check_in_range",
    "check_positive",
    "check_probability_vector",
]
