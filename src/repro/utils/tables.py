"""Plain-text table rendering for experiment reports.

The benchmark harness prints paper-vs-measured tables for every reproduced
table/figure; this module renders them with box-drawing-free ASCII so output
survives log files and CI consoles.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


class Table:
    """A simple left/right-aligned ASCII table.

    Example
    -------
    >>> t = Table(["system", "epoch (s)"], title="Table 1")
    >>> t.add_row(["SALIENT", 20.7])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: Optional[str] = None,
                 float_fmt: str = "{:.3f}"):
        self.columns = [str(c) for c in columns]
        self.title = title
        self.float_fmt = float_fmt
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[Cell]) -> "Table":
        self.rows.append([self._fmt(c) for c in cells])
        return self

    def add_rows(self, rows: Iterable[Iterable[Cell]]) -> "Table":
        for row in rows:
            self.add_row(row)
        return self

    def _fmt(self, cell: Cell) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            return self.float_fmt.format(cell)
        return str(cell)

    def render(self) -> str:
        ncol = len(self.columns)
        rows = [row + [""] * (ncol - len(row)) for row in self.rows]
        widths = [
            max(len(self.columns[j]), *(len(r[j]) for r in rows)) if rows else len(self.columns[j])
            for j in range(ncol)
        ]

        def line(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        sep = "-+-".join("-" * w for w in widths)
        out = []
        if self.title:
            out.append(self.title)
            out.append("=" * max(len(self.title), len(sep)))
        out.append(line(self.columns))
        out.append(sep)
        out.extend(line(r) for r in rows)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def format_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.2f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(s: float) -> str:
    """Human-readable duration."""
    if s < 1e-3:
        return f"{s * 1e6:.1f} us"
    if s < 1.0:
        return f"{s * 1e3:.2f} ms"
    if s < 120.0:
        return f"{s:.2f} s"
    return f"{s / 60.0:.1f} min"


def format_count(n: float) -> str:
    """Human-readable count (decimal units)."""
    n = float(n)
    for unit, div in (("B", 1e9), ("M", 1e6), ("K", 1e3)):
        if abs(n) >= div:
            return f"{n / div:.2f}{unit}"
    return f"{int(n)}"
