"""Reproducible random-number management.

Every stochastic component in the library (graph generators, the neighborhood
sampler, weight initialization, dropout) accepts either an integer seed or a
:class:`numpy.random.Generator`.  These helpers normalize the two and derive
statistically independent child streams, so that e.g. the K logical machines
of a simulated cluster each sample minibatches from their own stream while the
whole run stays deterministic under a single top-level seed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int``, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, n: int) -> list:
    """Derive ``n`` independent generators from a single seed.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees
    non-overlapping streams.  Passing a ``Generator`` spawns from its
    underlying bit generator's seed sequence when available, otherwise from
    integers drawn from it.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the generator's stream.
        children = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(c)) for c in children]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def derive_seed(seed: SeedLike, *keys: Union[int, str]) -> int:
    """Derive a stable 63-bit integer seed from ``seed`` and context ``keys``.

    The same ``(seed, keys)`` pair always yields the same derived seed, which
    lets far-apart components (e.g. the sampler on machine 3 at epoch 7)
    re-create their stream without threading generator objects through every
    call site.
    """
    material = [0 if seed is None else _seed_entropy(seed)]
    for key in keys:
        if isinstance(key, str):
            material.append(int.from_bytes(key.encode("utf8"), "little") % (2**61))
        else:
            material.append(int(key))
    ss = np.random.SeedSequence(material)
    return int(ss.generate_state(1, dtype=np.uint64)[0] >> 1)


def machine_stream_seed(seed: SeedLike, stream: str, machine: int) -> int:
    """Seed of one logical machine's named RNG stream.

    Every cluster backend — the in-process trainer and the multiproc
    workers alike — seeds machine ``k``'s per-role generators with
    ``derive_seed(seed, stream, k)``.  The derivation depends only on the
    run seed, the stream name, and the machine id: never on process spawn
    order, pids, or import order, so K worker processes reproduce the
    in-process sampler streams bit-for-bit regardless of which worker
    starts first.  Streams in use:

    ``"sampler"``
        The machine's :class:`~repro.sampling.neighbor.NeighborSampler`
        (its persistent per-hop randomness).
    ``"order"``
        The machine's epoch shuffle (combined with the epoch number inside
        :meth:`NeighborSampler.batches`).
    """
    return derive_seed(seed, stream, machine)


def _seed_entropy(seed: SeedLike) -> int:
    if isinstance(seed, int):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        ent = seed.entropy
        if isinstance(ent, (list, tuple)):
            return int(ent[0]) if ent else 0
        return int(ent or 0)
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    raise TypeError(f"unsupported seed type: {type(seed)!r}")


def permutation_from_order(order: Sequence[int], n: Optional[int] = None) -> np.ndarray:
    """Return the inverse permutation of ``order``.

    ``order[i]`` is the old index placed at new position ``i``; the returned
    array maps old index -> new position, convenient for relabeling edges.
    """
    order = np.asarray(order)
    n = len(order) if n is None else n
    inv = np.empty(n, dtype=np.int64)
    inv[order] = np.arange(len(order), dtype=np.int64)
    return inv
