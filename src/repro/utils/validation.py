"""Input validation helpers shared across subpackages.

Raising early with precise messages keeps the numeric kernels free of
defensive branching; validation lives at public API boundaries only.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def check_array(x, name: str, *, dtype=None, ndim: Optional[int] = None,
                shape: Optional[Tuple[Optional[int], ...]] = None) -> np.ndarray:
    """Coerce ``x`` to an ``ndarray`` and validate dtype kind / rank / shape.

    ``shape`` entries of ``None`` match any extent.
    """
    arr = np.asarray(x) if dtype is None else np.asarray(x, dtype=dtype)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must have ndim={ndim}, got ndim={arr.ndim}")
    if shape is not None:
        if arr.ndim != len(shape):
            raise ValueError(f"{name} must have shape {shape}, got {arr.shape}")
        for want, got in zip(shape, arr.shape):
            if want is not None and want != got:
                raise ValueError(f"{name} must have shape {shape}, got {arr.shape}")
    return arr


def check_positive(value, name: str, *, strict: bool = True) -> None:
    """Validate a scalar is > 0 (or >= 0 with ``strict=False``)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def check_in_range(value, name: str, lo, hi, *, inclusive: bool = True) -> None:
    """Validate ``lo <= value <= hi`` (or strict with ``inclusive=False``)."""
    ok = (lo <= value <= hi) if inclusive else (lo < value < hi)
    if not ok:
        bounds = f"[{lo}, {hi}]" if inclusive else f"({lo}, {hi})"
        raise ValueError(f"{name} must be in {bounds}, got {value}")


def check_probability_vector(p, name: str, *, allow_improper: bool = True) -> np.ndarray:
    """Validate entries of ``p`` are probabilities in [0, 1].

    With ``allow_improper=True`` (the default) the vector need not sum to 1 —
    VIP vectors are per-vertex inclusion probabilities, not a distribution.
    """
    arr = check_array(p, name, dtype=np.float64, ndim=1)
    if arr.size and (np.min(arr) < -1e-12 or np.max(arr) > 1 + 1e-12):
        raise ValueError(
            f"{name} entries must lie in [0, 1]; "
            f"got range [{np.min(arr)}, {np.max(arr)}]"
        )
    if not allow_improper and arr.size and abs(float(arr.sum()) - 1.0) > 1e-8:
        raise ValueError(f"{name} must sum to 1, got {arr.sum()}")
    return np.clip(arr, 0.0, 1.0)
