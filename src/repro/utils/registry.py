"""Decorator-based name registries shared by the pluggable subsystems.

Three extension points dispatch by name from a :class:`RunConfig`:
partitioners (``config.partitioner``), static cache policies and dynamic
cache policies (``config.cache_policy``).  They all share this one registry
type so that registration, lookup, and — crucially — *error reporting* are
uniform: an unknown name always raises ``ValueError`` naming the registry
kind and the sorted list of valid names, and
:meth:`repro.core.config.RunConfig.validate` surfaces the same lists at
config-construction time instead of deep inside a preprocessing stage.

Registering a new implementation is one decorator::

    from repro.partition.registry import PARTITIONERS

    @PARTITIONERS.register("spectral")
    def spectral_partition(dataset, config):
        ...
        return Partition(assignment, config.num_machines)

and the name immediately becomes valid in configs, error messages, and
``RunConfig.validate``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class Registry:
    """An ordered name -> factory mapping with decorator registration.

    Iteration follows registration order (the "zoo order" used by tables and
    examples); :meth:`names` is sorted for stable error messages.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, Any] = {}

    # -- registration ---------------------------------------------------
    def register(self, name: str, obj: Optional[Any] = None):
        """Register ``obj`` under ``name``; usable as a decorator.

        ``@REG.register("x")`` on a class or function registers it and
        returns it unchanged; ``REG.register("x", obj)`` registers directly.
        """
        if obj is not None:
            self._add(name, obj)
            return obj

        def decorator(target):
            self._add(name, target)
            return target

        return decorator

    def _add(self, name: str, obj: Any) -> None:
        if name in self._entries:
            raise ValueError(f"duplicate {self.kind} registration {name!r}")
        self._entries[name] = obj

    # -- lookup ---------------------------------------------------------
    def get(self, name: str) -> Any:
        """Entry for ``name``; unknown names raise ``ValueError`` listing
        the sorted valid names."""
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; valid: {self.names()}"
            ) from None

    def names(self) -> List[str]:
        """Sorted registered names (the error-message order)."""
        return sorted(self._entries)

    def items(self) -> List[Tuple[str, Any]]:
        return list(self._entries.items())

    def __getitem__(self, name: str) -> Any:
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, names={self.names()})"
