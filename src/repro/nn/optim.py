"""Optimizers: SGD (with momentum) and Adam.

Matches the usual PyTorch semantics: ``step()`` consumes ``p.grad`` as
accumulated by the autograd engine; ``zero_grad()`` between steps is the
caller's responsibility (the trainers do it).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    def __init__(self, params: Sequence[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum and weight decay."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data = p.data - self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction; the paper's training setup
    (fixed lr 0.001) maps onto the defaults here."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def state_dict(self) -> dict:
        """Copy of the moment estimates and step count, in parameter order
        (the order ``params`` was constructed in — both sides of a
        checkpoint must build the optimizer over the same model walk)."""
        return {
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
            "t": int(self._t),
        }

    def load_state_dict(self, state: dict) -> None:
        m, v = list(state["m"]), list(state["v"])
        if len(m) != len(self.params) or len(v) != len(self.params):
            raise ValueError(
                f"optimizer state has {len(m)}/{len(v)} moment arrays, "
                f"expected {len(self.params)}")
        for i, p in enumerate(self.params):
            for name, src in (("m", m[i]), ("v", v[i])):
                arr = np.asarray(src, dtype=p.data.dtype)
                if arr.shape != p.data.shape:
                    raise ValueError(f"{name}[{i}]: shape {arr.shape} != "
                                     f"{p.data.shape}")
        self._m = [np.asarray(a, dtype=np.float64).copy() for a in m]
        self._v = [np.asarray(a, dtype=np.float64).copy() for a in v]
        self._t = int(state["t"])

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1 ** self._t
        bc2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * (g * g)
            p.data = p.data - self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
