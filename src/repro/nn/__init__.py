"""Numpy GNN substrate: autograd, layers, models, optimizers, losses."""

from repro.nn.autograd import Tensor
from repro.nn.module import Module, Parameter
from repro.nn import functional
from repro.nn.functional import accuracy, cross_entropy
from repro.nn.layers import Dropout, GATConv, GINConv, Linear, SAGEConv
from repro.nn.models import (
    GAT,
    GIN,
    GraphSAGE,
    MFGModel,
    MLP,
    MODEL_REGISTRY,
    build_model,
)
from repro.nn.optim import Adam, Optimizer, SGD

__all__ = [
    "Tensor",
    "Module",
    "Parameter",
    "functional",
    "accuracy",
    "cross_entropy",
    "Dropout",
    "GATConv",
    "GINConv",
    "Linear",
    "SAGEConv",
    "GAT",
    "GIN",
    "GraphSAGE",
    "MFGModel",
    "MLP",
    "MODEL_REGISTRY",
    "build_model",
    "Adam",
    "Optimizer",
    "SGD",
]
