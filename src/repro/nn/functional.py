"""Functional ops on :class:`~repro.nn.autograd.Tensor`: segment reductions,
concatenation, dropout, and losses.

Segment ops operate on CSR-style contiguous segments (an MFG block's
``dst_ptr``), which keeps both the forward (``reduceat``) and the backward
(``repeat`` / scatter) passes fully vectorized.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.autograd import Tensor


def _segment_sum_data(data: np.ndarray, ptr: np.ndarray) -> np.ndarray:
    n_seg = len(ptr) - 1
    out = np.zeros((n_seg,) + data.shape[1:], dtype=data.dtype)
    lengths = np.diff(ptr)
    rows = np.flatnonzero(lengths > 0)
    if len(rows):
        out[rows] = np.add.reduceat(data, ptr[rows], axis=0)
    return out


def segment_sum(x: Tensor, ptr: np.ndarray) -> Tensor:
    """Sum rows of ``x`` within each contiguous segment ``[ptr[i], ptr[i+1])``.

    Empty segments produce zero rows (a vertex whose sampled neighborhood is
    empty aggregates to zeros, matching PyG semantics).
    """
    ptr = np.asarray(ptr, dtype=np.int64)
    if ptr[-1] != len(x.data):
        raise ValueError(f"ptr[-1] ({ptr[-1]}) must equal len(x) ({len(x.data)})")
    out_data = _segment_sum_data(x.data, ptr)

    def backward():
        x._accumulate(np.repeat(out.grad, np.diff(ptr), axis=0))

    out = Tensor._make(out_data, (x,), backward)
    return out


def segment_mean(x: Tensor, ptr: np.ndarray) -> Tensor:
    """Mean over contiguous segments (empty segments produce zeros)."""
    ptr = np.asarray(ptr, dtype=np.int64)
    counts = np.maximum(np.diff(ptr), 1).astype(x.data.dtype)
    total = segment_sum(x, ptr)
    return total * Tensor((1.0 / counts)[:, None])


def segment_softmax(x: Tensor, ptr: np.ndarray) -> Tensor:
    """Softmax within each contiguous segment (per-destination attention).

    ``x`` has one row per edge; the result sums to 1 within each destination's
    edge segment.  Numerically stabilized with a per-segment max shift.
    """
    ptr = np.asarray(ptr, dtype=np.int64)
    if ptr[-1] != len(x.data):
        raise ValueError("ptr[-1] must equal len(x)")
    lengths = np.diff(ptr)
    rows = np.flatnonzero(lengths > 0)
    seg_max = np.zeros((len(ptr) - 1,) + x.data.shape[1:], dtype=x.data.dtype)
    if len(rows):
        seg_max[rows] = np.maximum.reduceat(x.data, ptr[rows], axis=0)
    shifted = x.data - np.repeat(seg_max, lengths, axis=0)
    e = np.exp(shifted)
    denom = np.repeat(_segment_sum_data(e, ptr), lengths, axis=0)
    out_data = e / np.maximum(denom, 1e-30)

    def backward():
        g = out.grad
        # d softmax: s * (g - sum_j g_j s_j) within each segment.
        dot = _segment_sum_data(g * out_data, ptr)
        x._accumulate(out_data * (g - np.repeat(dot, lengths, axis=0)))

    out = Tensor._make(out_data, (x,), backward)
    return out


def concat(tensors: Sequence[Tensor], axis: int = 1) -> Tensor:
    """Concatenate along ``axis`` (backward splits the gradient)."""
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    offsets = np.cumsum([0] + [d.shape[axis] for d in datas])

    def backward():
        g = out.grad
        slicer = [slice(None)] * g.ndim
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer[axis] = slice(int(lo), int(hi))
                t._accumulate(g[tuple(slicer)])

    out = Tensor._make(out_data, tuple(tensors), backward)
    return out


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero entries with probability ``p``, scale by
    ``1/(1-p)`` during training; identity in eval mode."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask.astype(x.data.dtype))


def log_softmax(x: Tensor) -> Tensor:
    """Row-wise log-softmax (stable)."""
    shift = x.data - x.data.max(axis=1, keepdims=True)
    e = np.exp(shift)
    logsumexp = np.log(e.sum(axis=1, keepdims=True))
    out_data = shift - logsumexp
    softmax = e / e.sum(axis=1, keepdims=True)

    def backward():
        g = out.grad
        x._accumulate(g - softmax * g.sum(axis=1, keepdims=True))

    out = Tensor._make(out_data, (x,), backward)
    return out


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of row-wise logits against integer labels."""
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2 or len(labels) != logits.shape[0]:
        raise ValueError("logits must be (N, C) with one label per row")
    n = logits.shape[0]
    lsm = log_softmax(logits)
    picked_data = lsm.data[np.arange(n), labels]
    out_data = np.asarray(-picked_data.mean())

    def backward():
        g = np.zeros_like(lsm.data)
        g[np.arange(n), labels] = -out.grad / n
        lsm._accumulate(g)

    out = Tensor._make(out_data, (lsm,), backward)
    return out


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of logits (or a Tensor's data) against labels."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    pred = data.argmax(axis=1)
    labels = np.asarray(labels)
    if len(labels) == 0:
        return float("nan")
    return float((pred == labels).mean())
