"""GNN models over MFGs: GraphSAGE (the paper's evaluation architecture),
GAT, and GIN.

A model's :meth:`forward` takes the feature matrix for an MFG's source set
(rows aligned with ``mfg.n_id``) and the MFG blocks, consuming blocks
outermost-first so the final output has one row per seed.
"""

from __future__ import annotations

from typing import List, Sequence, Type

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn import functional as F
from repro.nn.layers import Dropout, GATConv, GINConv, Linear, SAGEConv
from repro.nn.module import Module
from repro.sampling.mfg import MFG
from repro.utils.rng import SeedLike, as_generator, spawn_generators


class MFGModel(Module):
    """Shared skeleton: a stack of per-hop convolutions with ReLU+dropout
    between layers (none after the last)."""

    conv_cls: Type[Module] = SAGEConv

    def __init__(self, in_dim: int, hidden_dim: int, out_dim: int,
                 num_layers: int, *, dropout: float = 0.0, seed: SeedLike = None,
                 **conv_kwargs):
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        rngs = spawn_generators(seed, num_layers + 1)
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
        self.convs = [
            self.conv_cls(dims[i], dims[i + 1], seed=rngs[i], **conv_kwargs)
            for i in range(num_layers)
        ]
        self.dropout = Dropout(dropout, seed=rngs[-1])
        self.num_layers = num_layers

    def forward(self, x, mfg: MFG) -> Tensor:
        """Compute seed logits from source features.

        Parameters
        ----------
        x:
            Feature matrix with one row per ``mfg.n_id`` entry (array or
            Tensor).
        """
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x))
        if len(x) != mfg.num_vertices:
            raise ValueError(
                f"x has {len(x)} rows but the MFG involves {mfg.num_vertices} vertices"
            )
        if len(mfg.blocks) != self.num_layers:
            raise ValueError(
                f"model has {self.num_layers} layers but MFG has {len(mfg.blocks)} blocks"
            )
        h = x
        # blocks[-1] is the outermost hop: it feeds the first conv layer.
        for layer, block in enumerate(reversed(mfg.blocks)):
            h = self.convs[layer](h, block)
            if layer < self.num_layers - 1:
                h = self.dropout(h.relu())
        return h


class GraphSAGE(MFGModel):
    """The 3-layer / 2-layer SAGE architecture of Table 3."""

    conv_cls = SAGEConv


class GAT(MFGModel):
    """Graph attention stack (single-head GATConv layers)."""

    conv_cls = GATConv


class GIN(MFGModel):
    """Graph isomorphism network stack."""

    conv_cls = GINConv


class MLP(Module):
    """Graph-free baseline: per-vertex MLP on raw features (used by tests to
    confirm the GNN's structural signal is real)."""

    def __init__(self, in_dim: int, hidden_dim: int, out_dim: int,
                 *, dropout: float = 0.0, seed: SeedLike = None):
        super().__init__()
        rngs = spawn_generators(seed, 3)
        self.fc1 = Linear(in_dim, hidden_dim, seed=rngs[0])
        self.fc2 = Linear(hidden_dim, out_dim, seed=rngs[1])
        self.dropout = Dropout(dropout, seed=rngs[2])

    def forward(self, x, mfg: MFG = None) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x))
        if mfg is not None:
            x = x.slice_rows(0, mfg.batch_size)
        return self.fc2(self.dropout(self.fc1(x).relu()))


MODEL_REGISTRY = {
    "sage": GraphSAGE,
    "gat": GAT,
    "gin": GIN,
}


def build_model(arch: str, in_dim: int, hidden_dim: int, out_dim: int,
                num_layers: int, *, dropout: float = 0.0,
                seed: SeedLike = None) -> MFGModel:
    """Build a registered architecture by name."""
    try:
        cls = MODEL_REGISTRY[arch]
    except KeyError:
        raise KeyError(f"unknown architecture {arch!r}; "
                       f"available: {sorted(MODEL_REGISTRY)}") from None
    return cls(in_dim, hidden_dim, out_dim, num_layers, dropout=dropout, seed=seed)
