"""Minimal reverse-mode automatic differentiation over numpy arrays.

The GNN substrate needs a small, predictable op set — dense matmul, broadcast
arithmetic, activations, gathers, and segment reductions — so this engine
favors clarity over generality: a :class:`Tensor` wraps an ``ndarray``, ops
record closures, and :meth:`Tensor.backward` replays them in reverse
topological order.  All gradient math is vectorized numpy; there is no
per-element Python work anywhere.

Gradient correctness for every op is pinned by numerical-difference tests in
``tests/nn/test_autograd.py``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from extent 1.
    for axis, extent in enumerate(shape):
        if extent == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with an optional gradient tape entry.

    Parameters
    ----------
    data:
        Array (coerced to ``float64`` by default for gradcheck-friendly
        precision; pass ``float32`` data explicitly for bulk feature math).
    requires_grad:
        Track operations on this tensor for backpropagation.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            raise TypeError("cannot nest Tensor in Tensor")
        self.data = np.asarray(data, dtype=np.float64) if not isinstance(data, np.ndarray) \
            else data
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # Copy: incoming grads may alias another node's buffer.
            self.grad = np.array(grad, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (defaults to ∂self/∂self = 1)."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(f"grad shape {grad.shape} != tensor shape {self.data.shape}")

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited and p.requires_grad:
                    stack.append((p, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Optional[Callable[[], None]]) -> "Tensor":
        out = Tensor(data)
        tracked = tuple(p for p in parents if p.requires_grad)
        if tracked:
            out.requires_grad = True
            out._parents = tracked
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(np.asarray(other))
        out_data = self.data + other.data

        def backward():
            g = out.grad
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.data.shape))

        out = Tensor._make(out_data, (self, other), backward)
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward():
            self._accumulate(-out.grad)

        out = Tensor._make(-self.data, (self,), backward)
        return out

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(np.asarray(other))
        return self + (-other)

    def __rsub__(self, other) -> "Tensor":
        return (-self) + other

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(np.asarray(other))
        out_data = self.data * other.data

        def backward():
            g = out.grad
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.data.shape))

        out = Tensor._make(out_data, (self, other), backward)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        if isinstance(other, Tensor):
            return self * other.reciprocal()
        return self * (1.0 / np.asarray(other))

    def reciprocal(self) -> "Tensor":
        out_data = 1.0 / self.data

        def backward():
            self._accumulate(-out.grad * out_data * out_data)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        if not isinstance(other, Tensor):
            other = Tensor(np.asarray(other))
        if self.ndim != 2 or other.ndim != 2:
            raise ValueError("matmul supports 2-D tensors only")
        out_data = self.data @ other.data

        def backward():
            g = out.grad
            if self.requires_grad:
                self._accumulate(g @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ g)

        out = Tensor._make(out_data, (self, other), backward)
        return out

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward():
            g = out.grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        out = Tensor._make(out_data, (self,), backward)
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape) -> "Tensor":
        out_data = self.data.reshape(*shape)

        def backward():
            self._accumulate(out.grad.reshape(self.data.shape))

        out = Tensor._make(out_data, (self,), backward)
        return out

    @property
    def T(self) -> "Tensor":
        def backward():
            self._accumulate(out.grad.T)

        out = Tensor._make(self.data.T, (self,), backward)
        return out

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, 0.0)

        def backward():
            self._accumulate(out.grad * mask)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, negative_slope * self.data)

        def backward():
            self._accumulate(out.grad * np.where(mask, 1.0, negative_slope))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward():
            self._accumulate(out.grad * out_data)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward():
            self._accumulate(out.grad / self.data)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward():
            self._accumulate(out.grad * (1.0 - out_data * out_data))

        out = Tensor._make(out_data, (self,), backward)
        return out

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def gather_rows(self, index: np.ndarray) -> "Tensor":
        """Row gather ``out[i] = self[index[i]]`` (scatter-add backward)."""
        index = np.asarray(index, dtype=np.int64)
        out_data = self.data[index]

        def backward():
            g = np.zeros_like(self.data)
            np.add.at(g, index, out.grad)
            self._accumulate(g)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def slice_rows(self, start: int, stop: int) -> "Tensor":
        """Contiguous row slice (cheaper backward than gather)."""
        out_data = self.data[start:stop]

        def backward():
            g = np.zeros_like(self.data)
            g[start:stop] = out.grad
            self._accumulate(g)

        out = Tensor._make(out_data, (self,), backward)
        return out
