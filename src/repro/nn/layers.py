"""Neural layers: Linear, Dropout, and the three GNN convolutions the paper
names (GraphSAGE, GAT, GIN — §2.1), all consuming MFG blocks.

Each convolution maps source representations ``x`` (rows aligned with the
block's source set) to destination representations (rows aligned with the
destination prefix), following equation (1): ``h_v = UPD(h_v, AGG({h_u}))``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn import functional as F
from repro.nn.module import Module, Parameter
from repro.sampling.mfg import MFGBlock
from repro.utils.rng import SeedLike, as_generator


def glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


class Linear(Module):
    """Affine map ``y = x W + b``."""

    def __init__(self, in_dim: int, out_dim: int, *, bias: bool = True,
                 seed: SeedLike = None):
        super().__init__()
        rng = as_generator(seed)
        self.in_dim, self.out_dim = in_dim, out_dim
        self.weight = Parameter(glorot(rng, in_dim, out_dim))
        self.bias = Parameter(np.zeros(out_dim)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout with a module-owned RNG stream."""

    def __init__(self, p: float = 0.5, seed: SeedLike = None):
        super().__init__()
        self.p = p
        self._rng = as_generator(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)


class SAGEConv(Module):
    """GraphSAGE convolution with mean aggregation (Hamilton et al.).

    ``h_v = W_self h_v + W_neigh * mean({h_u : u sampled for v}) + b`` —
    the PyG ``SAGEConv`` formulation the paper's models use.
    """

    def __init__(self, in_dim: int, out_dim: int, seed: SeedLike = None):
        super().__init__()
        rng = as_generator(seed)
        self.lin_self = Linear(in_dim, out_dim, bias=True, seed=rng)
        self.lin_neigh = Linear(in_dim, out_dim, bias=False, seed=rng)

    def forward(self, x: Tensor, block: MFGBlock) -> Tensor:
        x_dst = x.slice_rows(0, block.num_dst)
        neigh = x.gather_rows(block.src_index)
        agg = F.segment_mean(neigh, block.dst_ptr)
        return self.lin_self(x_dst) + self.lin_neigh(agg)


class GATConv(Module):
    """Graph attention convolution (Velickovic et al.), single head.

    Attention logits ``e_uv = LeakyReLU(a_src . Wh_u + a_dst . Wh_v)`` are
    softmax-normalized over each destination's sampled neighborhood
    (self-edge included, as in the reference implementation).
    """

    def __init__(self, in_dim: int, out_dim: int, *, negative_slope: float = 0.2,
                 seed: SeedLike = None):
        super().__init__()
        rng = as_generator(seed)
        self.lin = Linear(in_dim, out_dim, bias=False, seed=rng)
        self.att_src = Parameter(glorot(rng, out_dim, 1))
        self.att_dst = Parameter(glorot(rng, out_dim, 1))
        self.bias = Parameter(np.zeros(out_dim))
        self.negative_slope = negative_slope

    def forward(self, x: Tensor, block: MFGBlock) -> Tensor:
        h = self.lin(x)  # (num_src, out)
        # Append a self-edge per destination: neighborhood = {v} ∪ sampled.
        counts = np.diff(block.dst_ptr)
        num_dst = block.num_dst
        self_idx = np.arange(num_dst, dtype=np.int64)
        # Interleave: per dst, its sampled edges then the self edge.
        src_index = np.empty(len(block.src_index) + num_dst, dtype=np.int64)
        # Segment i grows by one self edge, shifting its start by i.
        new_ptr = block.dst_ptr + np.arange(num_dst + 1, dtype=np.int64)
        # Vectorized interleave: the last slot of each segment is the self
        # edge, the rest keep the sampled sources in order.
        is_self = np.zeros(len(src_index), dtype=bool)
        is_self[new_ptr[1:] - 1] = True
        src_index[is_self] = self_idx
        src_index[~is_self] = block.src_index
        dst_of_edge = np.repeat(self_idx, counts + 1)

        e_src = h.gather_rows(src_index) @ self.att_src  # (E, 1)
        h_dst = h.slice_rows(0, num_dst)
        e_dst_rows = (h_dst @ self.att_dst).gather_rows(dst_of_edge)
        logits = (e_src + e_dst_rows).leaky_relu(self.negative_slope)
        alpha = F.segment_softmax(logits, new_ptr)  # (E, 1)
        msgs = h.gather_rows(src_index) * alpha
        out = F.segment_sum(msgs, new_ptr)
        return out + self.bias


class GINConv(Module):
    """Graph isomorphism convolution (Xu et al.):
    ``h_v = MLP((1 + eps) h_v + sum({h_u}))``."""

    def __init__(self, in_dim: int, out_dim: int, *, hidden_dim: Optional[int] = None,
                 eps: float = 0.0, train_eps: bool = True, seed: SeedLike = None):
        super().__init__()
        rng = as_generator(seed)
        hidden_dim = hidden_dim or out_dim
        self.mlp1 = Linear(in_dim, hidden_dim, seed=rng)
        self.mlp2 = Linear(hidden_dim, out_dim, seed=rng)
        if train_eps:
            self.eps = Parameter(np.array([eps]))
        else:
            self.eps = None
            self._fixed_eps = eps

    def forward(self, x: Tensor, block: MFGBlock) -> Tensor:
        x_dst = x.slice_rows(0, block.num_dst)
        agg = F.segment_sum(x.gather_rows(block.src_index), block.dst_ptr)
        if self.eps is not None:
            scaled = x_dst * (self.eps + 1.0)
        else:
            scaled = x_dst * (1.0 + self._fixed_eps)
        return self.mlp2(self.mlp1(scaled + agg).relu())
