"""Module/Parameter containers (a deliberately small torch.nn.Module clone).

Modules register parameters and submodules by attribute assignment; only the
pieces the GNN stack needs (parameter iteration, train/eval mode, state
(de)serialization for the distributed executor's weight broadcast) exist.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.autograd import Tensor


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data):
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True)


class Module:
    """Base class with parameter/submodule registration via attributes."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        elif isinstance(value, (list, tuple)) and value and all(
            isinstance(v, Module) for v in value
        ):
            for i, v in enumerate(value):
                self._modules[f"{name}.{i}"] = v
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mname, m in self._modules.items():
            yield from m.named_parameters(prefix=f"{prefix}{mname}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def num_parameters(self) -> int:
        return int(sum(p.data.size for p in self.parameters()))

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(extra)}")
        for name, p in own.items():
            arr = np.asarray(state[name], dtype=p.data.dtype)
            if arr.shape != p.data.shape:
                raise ValueError(f"{name}: shape {arr.shape} != {p.data.shape}")
            p.data = arr.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError
