"""Graph partitioning: METIS-like multilevel partitioner, baselines, metrics,
and the partition-contiguous (VIP-ordered) dataset reordering of paper §4.1."""

from repro.partition.interface import (
    Partition,
    PartitionReport,
    balance,
    edge_cut,
    evaluate_partition,
)
from repro.partition.multilevel import metis_like_partition
from repro.partition.baselines import (
    bfs_partition,
    hash_partition,
    ldg_partition,
    random_partition,
)
from repro.partition.registry import PARTITIONERS, make_partition
from repro.partition.reorder import ReorderedDataset, apply_reorder, reorder_dataset

__all__ = [
    "PARTITIONERS",
    "make_partition",
    "Partition",
    "PartitionReport",
    "balance",
    "edge_cut",
    "evaluate_partition",
    "metis_like_partition",
    "bfs_partition",
    "hash_partition",
    "ldg_partition",
    "random_partition",
    "ReorderedDataset",
    "apply_reorder",
    "reorder_dataset",
]
