"""The ``PARTITIONERS`` registry: named ``(dataset, config) -> Partition``.

Replaces the old if-chain in ``repro.core.system.make_partition`` with the
same decorator-based registration API used by the static and dynamic cache
policy zoos (see :mod:`repro.utils.registry`).  Each entry takes the dataset
and the (resolved) :class:`~repro.core.config.RunConfig` and returns a
:class:`~repro.partition.interface.Partition` with ``config.num_machines``
parts; new partitioners plug in with one decorator and are immediately
accepted by ``RunConfig.validate`` and the preprocessing planner.
"""

from __future__ import annotations

import numpy as np

from repro.partition.baselines import (
    bfs_partition,
    hash_partition,
    ldg_partition,
    random_partition,
)
from repro.partition.interface import Partition
from repro.partition.multilevel import metis_like_partition
from repro.utils.registry import Registry
from repro.utils.rng import derive_seed

#: Named graph partitioners (``RunConfig.partitioner``).
PARTITIONERS = Registry("partitioner")


@PARTITIONERS.register("metis")
def _metis(dataset, config) -> Partition:
    """METIS-like multilevel cut with the paper's multi-constraint balancing
    on overall/train/val/test vertex counts (§4.1)."""
    role = np.zeros((dataset.num_vertices, 4))
    role[:, 0] = 1.0
    role[dataset.train_idx, 1] = 1.0
    role[dataset.val_idx, 2] = 1.0
    role[dataset.test_idx, 3] = 1.0
    return metis_like_partition(
        dataset.graph, config.num_machines, vertex_weights=role,
        seed=derive_seed(config.seed, "partition"),
    )


@PARTITIONERS.register("random")
def _random(dataset, config) -> Partition:
    return random_partition(dataset.num_vertices, config.num_machines,
                            seed=derive_seed(config.seed, "partition"))


@PARTITIONERS.register("ldg")
def _ldg(dataset, config) -> Partition:
    return ldg_partition(dataset.graph, config.num_machines,
                         seed=derive_seed(config.seed, "partition"))


@PARTITIONERS.register("bfs")
def _bfs(dataset, config) -> Partition:
    return bfs_partition(dataset.graph, config.num_machines,
                         seed=derive_seed(config.seed, "partition"))


@PARTITIONERS.register("hash")
def _hash(dataset, config) -> Partition:
    return hash_partition(dataset.num_vertices, config.num_machines)


def make_partition(dataset, config) -> Partition:
    """Partition per the config, dispatching through :data:`PARTITIONERS`.

    A single machine short-circuits to the trivial one-part partition
    regardless of the configured partitioner.
    """
    if config.num_machines == 1:
        return Partition(np.zeros(dataset.num_vertices, dtype=np.int64), 1)
    return PARTITIONERS.get(config.partitioner)(dataset, config)
