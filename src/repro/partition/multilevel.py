"""METIS-like multilevel k-way graph partitioner.

The paper partitions OGB graphs with METIS using an edge-cut minimization
objective plus balancing constraints on the number of training, validation,
test, and overall vertices as well as edges per partition (§1, §4.1).  METIS
is unavailable here, so this module implements the same three-phase multilevel
scheme from scratch:

1. **Coarsening** — repeated randomized heavy-edge matching contracts the
   graph until it is small; contracted vertices carry summed multi-constraint
   weight vectors and contracted parallel edges carry summed edge weights.
2. **Initial partitioning** — greedy balanced growth on the coarsest graph,
   preferring the partition with the strongest edge connection among those
   with balance headroom.
3. **Uncoarsening with refinement** — the partition is projected back level
   by level; at each level a boundary Fiduccia–Mattheyses-style pass moves
   vertices with positive cut gain to their most connected feasible part,
   respecting every balance constraint.

All heavy loops are vectorized; only the coarsest-level initial partition and
the per-pass move application (over the handful of positive-gain boundary
vertices) iterate in Python, in line with the repo's numpy-first idiom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.interface import Partition
from repro.utils.rng import SeedLike, as_generator


@dataclass
class _Level:
    """One level of the coarsening hierarchy."""

    indptr: np.ndarray      # CSR over coarse vertices
    indices: np.ndarray
    edge_weights: np.ndarray
    vertex_weights: np.ndarray  # (n, C) multi-constraint weights
    fine_to_coarse: Optional[np.ndarray]  # map from previous level (None at finest)

    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1


def metis_like_partition(
    graph: CSRGraph,
    num_parts: int,
    *,
    vertex_weights: Optional[np.ndarray] = None,
    balance_tolerance: float = 1.08,
    coarsen_until: Optional[int] = None,
    matching_rounds: int = 3,
    refine_passes: int = 4,
    seed: SeedLike = 0,
) -> Partition:
    """Partition ``graph`` into ``num_parts`` parts minimizing edge cut.

    Parameters
    ----------
    graph:
        Undirected graph (both edge directions present).
    vertex_weights:
        ``(N, C)`` multi-constraint weights; every constraint column is kept
        within ``balance_tolerance`` of its ideal per-part share.  Defaults to
        unit weights (vertex-count balance only).  Callers reproducing the
        paper pass columns for total/train/val/test vertices; edge balance is
        added automatically as an extra column of vertex degrees.
    balance_tolerance:
        Maximum allowed ``part_weight / ideal_weight`` per constraint.
    coarsen_until:
        Stop coarsening below this many vertices.  The default
        ``max(128*k, n/8)`` stops early enough that community-scale structure
        survives contraction (aggressive coarsening merges across communities
        once supernodes approach community size, which permanently degrades
        the achievable cut).

    Returns
    -------
    Partition
    """
    n = graph.num_vertices
    if num_parts <= 0:
        raise ValueError(f"num_parts must be positive, got {num_parts}")
    if num_parts > max(n, 1):
        raise ValueError(f"cannot split {n} vertices into {num_parts} parts")
    if num_parts == 1 or n == 0:
        return Partition(np.zeros(n, dtype=np.int64), num_parts)
    if balance_tolerance < 1.0:
        raise ValueError(f"balance_tolerance must be >= 1, got {balance_tolerance}")

    rng = as_generator(seed)
    vw = _normalize_vertex_weights(graph, vertex_weights)
    if coarsen_until is None:
        coarsen_until = max(128 * num_parts, n // 8)

    levels = _coarsen(graph, vw, coarsen_until, matching_rounds, rng)
    coarsest = levels[-1]

    # Balance tolerances are relaxed at coarse levels (where single
    # supernodes carry large weight and a tight cap may be infeasible) and
    # tightened to the requested tolerance by level 0, as in METIS.
    def tol_at(level_idx: int) -> float:
        if len(levels) == 1:
            return balance_tolerance
        frac = level_idx / (len(levels) - 1)
        return balance_tolerance + 0.5 * frac

    part = _initial_partition(coarsest, num_parts, tol_at(len(levels) - 1), rng)
    part = _refine(coarsest, part, num_parts, tol_at(len(levels) - 1), refine_passes, rng)

    # Project back through the hierarchy, refining at every level.
    for level_idx in range(len(levels) - 2, -1, -1):
        fine = levels[level_idx]
        part = part[levels[level_idx + 1].fine_to_coarse]
        part = _refine(fine, part, num_parts, tol_at(level_idx), refine_passes, rng)

    return Partition(part.astype(np.int64), num_parts)


# ----------------------------------------------------------------------
# Phase 1: coarsening
# ----------------------------------------------------------------------

def _normalize_vertex_weights(graph: CSRGraph, vw: Optional[np.ndarray]) -> np.ndarray:
    if vw is None:
        out = np.ones((graph.num_vertices, 1), dtype=np.float64)
    else:
        out = np.asarray(vw, dtype=np.float64)
        if out.ndim == 1:
            out = out[:, None]
        if out.shape[0] != graph.num_vertices:
            raise ValueError(
                f"vertex_weights rows ({out.shape[0]}) != vertices ({graph.num_vertices})"
            )
        if np.any(out < 0):
            raise ValueError("vertex_weights must be non-negative")
    # Edge balance as an extra constraint column (paper balances edges too).
    return np.column_stack([out, graph.degrees.astype(np.float64)])


def _coarsen(
    graph: CSRGraph,
    vertex_weights: np.ndarray,
    coarsen_until: int,
    matching_rounds: int,
    rng: np.random.Generator,
) -> List[_Level]:
    level = _Level(
        indptr=graph.indptr,
        indices=graph.indices,
        edge_weights=np.ones(graph.num_edges, dtype=np.float64),
        vertex_weights=vertex_weights,
        fine_to_coarse=None,
    )
    levels = [level]
    while level.num_vertices > coarsen_until:
        matched = _heavy_edge_matching(level, matching_rounds, rng)
        coarse, reduction = _contract(level, matched)
        if reduction > 0.95:  # matching stalled; further levels won't help
            break
        levels.append(coarse)
        level = coarse
    return levels


def _heavy_edge_matching(level: _Level, rounds: int, rng: np.random.Generator) -> np.ndarray:
    """Randomized heavy-edge matching via weighted proposals + acceptance.

    Per round: every unmatched vertex proposes to one unmatched neighbor,
    sampled with probability proportional to edge weight (exponential race);
    each vertex accepts its highest-priority proposer; conflicts (a vertex in
    both an accepted pair and its own accepted proposal) are resolved Luby
    style by keeping pairs that hold the max random priority at both
    endpoints.  This matches a large constant fraction per round even on
    power-law graphs, where naive mutual-proposal matching herds onto hubs
    and stalls.
    """
    n = level.num_vertices
    indptr, indices, ew = level.indptr, level.indices, level.edge_weights
    m = len(indices)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    mate = np.full(n, -1, dtype=np.int64)
    nonempty_rows = np.flatnonzero(np.diff(indptr) > 0)
    # Starts of non-empty CSR segments; because skipped segments are empty,
    # reduceat over these starts reduces exactly each vertex's edge range.
    seg_starts = indptr[nonempty_rows]

    for _ in range(rounds):
        unmatched = mate < 0
        if not unmatched.any():
            break
        # Eligible edges: both endpoints unmatched, not a self loop.
        elig = unmatched[src] & unmatched[indices] & (src != indices)
        # Exponential race: argmax of ew/Exp(1) samples a neighbor with
        # probability proportional to edge weight.
        race = ew / rng.exponential(1.0, size=m)
        key = np.where(elig, race, -1.0)
        cand = np.full(n, -1, dtype=np.int64)
        if len(seg_starts):
            seg_len = np.diff(indptr)[nonempty_rows]
            seg_max = np.maximum.reduceat(key, seg_starts)
            # Every edge lies in some non-empty segment, so broadcasting the
            # per-segment max back over edges covers the whole edge array.
            seg_max_per_edge = np.repeat(seg_max, seg_len)
            # Position of the per-segment argmax: min edge index attaining it.
            pos_of_max = np.where(key == seg_max_per_edge,
                                  np.arange(m, dtype=np.int64), m)
            best_pos = np.minimum.reduceat(pos_of_max, seg_starts)
            valid = (seg_max > 0) & (best_pos < m)
            cand[nonempty_rows[valid]] = indices[best_pos[valid]]

        proposers = np.flatnonzero(cand >= 0)
        if len(proposers) == 0:
            break
        targets = cand[proposers]
        # Acceptance: each target keeps its max-priority proposer.
        prio = rng.random(n)
        max_prio = np.zeros(n)
        np.maximum.at(max_prio, targets, prio[proposers])
        accepted = proposers[prio[proposers] == max_prio[targets]]
        pa, pb = accepted, cand[accepted]
        # Conflict resolution: a vertex may sit in two tentative pairs (as
        # proposer and as acceptor); keep pairs that are max-priority at both
        # endpoints.
        pair_prio = rng.random(len(pa))
        best = np.full(n, -1.0)
        np.maximum.at(best, pa, pair_prio)
        np.maximum.at(best, pb, pair_prio)
        keep = (pair_prio == best[pa]) & (pair_prio == best[pb])
        a, b = pa[keep], pb[keep]
        mate[a] = b
        mate[b] = a
    return mate


def _contract(level: _Level, mate: np.ndarray) -> Tuple[_Level, float]:
    """Contract matched pairs into coarse vertices; returns (level, n_c/n)."""
    n = level.num_vertices
    # Representative of each vertex: min(v, mate) for matched, self otherwise.
    rep = np.where(mate >= 0, np.minimum(np.arange(n), mate), np.arange(n))
    is_rep = rep == np.arange(n)
    coarse_of_rep = np.cumsum(is_rep) - 1
    fine_to_coarse = coarse_of_rep[rep]
    nc = int(is_rep.sum())

    # Aggregate multi-constraint vertex weights.
    cvw = np.zeros((nc, level.vertex_weights.shape[1]), dtype=np.float64)
    np.add.at(cvw, fine_to_coarse, level.vertex_weights)

    # Contract edges: relabel endpoints, drop self loops, sum parallels.
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(level.indptr))
    csrc = fine_to_coarse[src]
    cdst = fine_to_coarse[level.indices]
    keep = csrc != cdst
    csrc, cdst, cew = csrc[keep], cdst[keep], level.edge_weights[keep]
    key = csrc * nc + cdst
    uniq, inverse = np.unique(key, return_inverse=True)
    weights = np.bincount(inverse, weights=cew)
    usrc = (uniq // nc).astype(np.int64)
    udst = (uniq % nc).astype(np.int64)
    indptr = np.zeros(nc + 1, dtype=np.int64)
    np.cumsum(np.bincount(usrc, minlength=nc), out=indptr[1:])

    coarse = _Level(
        indptr=indptr,
        indices=udst,
        edge_weights=weights,
        vertex_weights=cvw,
        fine_to_coarse=fine_to_coarse,
    )
    return coarse, nc / max(n, 1)


# ----------------------------------------------------------------------
# Phase 2: initial partition of the coarsest graph
# ----------------------------------------------------------------------

def _initial_partition(
    level: _Level,
    k: int,
    tol: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy graph growing (GGGP): grow each part breadth-first from a seed,
    always absorbing the unassigned vertex with the strongest connection to
    the growing region, until the part reaches its ideal share on any
    constraint.  Leftover vertices join the least-loaded part; refinement
    cleans up afterwards."""
    import heapq

    n = level.num_vertices
    vw = level.vertex_weights
    ideal = np.maximum(vw.sum(axis=0) / k, 1e-12)
    loads = np.zeros((k, vw.shape[1]), dtype=np.float64)
    part = np.full(n, -1, dtype=np.int64)
    indptr, indices, ew = level.indptr, level.indices, level.edge_weights
    conn = np.zeros(n, dtype=np.float64)  # connection to the current region

    unassigned_order = rng.permutation(n)
    cursor = 0

    for p in range(k - 1):
        # Seed: first unassigned vertex in random order.
        while cursor < n and part[unassigned_order[cursor]] >= 0:
            cursor += 1
        if cursor >= n:
            break
        seed = int(unassigned_order[cursor])
        heap = [(-1.0, seed)]
        conn[seed] = 1.0
        while heap and np.all(loads[p] < ideal):
            neg_c, v = heapq.heappop(heap)
            if part[v] >= 0 or -neg_c < conn[v]:
                continue  # stale entry
            part[v] = p
            loads[p] += vw[v]
            for pos in range(indptr[v], indptr[v + 1]):
                u = int(indices[pos])
                if part[u] < 0:
                    conn[u] += ew[pos]
                    heapq.heappush(heap, (-conn[u], u))

    # Remaining vertices: the last part, unless it would blow past the cap,
    # in which case spill to the least-loaded (normalized) part.
    rest = np.flatnonzero(part < 0)
    cap = tol * ideal
    for v in rest:
        p = k - 1
        if np.any(loads[p] + vw[v] > cap):
            p = int(np.argmin(loads[:, 0] / ideal[0]))
        part[v] = p
        loads[p] += vw[v]
    return part


# ----------------------------------------------------------------------
# Phase 3: boundary FM refinement
# ----------------------------------------------------------------------

def _refine(
    level: _Level,
    part: np.ndarray,
    k: int,
    tol: float,
    passes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Boundary refinement: move positive-gain vertices to their most
    connected part while all balance constraints stay within tolerance.

    Vertices in over-cap parts are also moved (to the best *feasible* part)
    regardless of gain sign — this doubles as the balance-repair step after
    projection from a coarser level, where supernode granularity may have
    left parts outside tolerance.
    """
    part = part.copy()
    n = level.num_vertices
    vw = level.vertex_weights
    ideal = np.maximum(vw.sum(axis=0) / k, 1e-12)
    cap = tol * ideal
    floor = max(2.0 - tol, 0.25) * ideal  # keep source parts from draining
    loads = np.zeros((k, vw.shape[1]), dtype=np.float64)
    np.add.at(loads, part, vw)

    indptr, indices, ew = level.indptr, level.indices, level.edge_weights
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))

    for _ in range(passes):
        crossing = part[src] != part[indices]
        if not crossing.any():
            break
        boundary = np.unique(src[crossing])
        pos = np.full(n, -1, dtype=np.int64)
        pos[boundary] = np.arange(len(boundary))

        # Connection weight of each boundary vertex to every part.
        conn = np.zeros((len(boundary), k), dtype=np.float64)
        on_b = pos[src] >= 0
        np.add.at(conn, (pos[src[on_b]], part[indices[on_b]]), ew[on_b])

        own_part = part[boundary]
        own = conn[np.arange(len(boundary)), own_part]
        gains = conn - own[:, None]
        gains[np.arange(len(boundary)), own_part] = -np.inf
        best_gain = gains.max(axis=1)

        src_over = np.any(loads[own_part] > cap[None, :] * (1 + 1e-9), axis=1)
        movers = np.flatnonzero((best_gain > 1e-12) | src_over)
        if len(movers) == 0:
            break
        # Apply in descending-gain order; gains are not recomputed within the
        # pass (standard one-sided FM approximation), so only strictly
        # positive moves are taken for balanced sources and the outer loop
        # re-evaluates.  The loop body uses plain Python scalars: per-mover
        # numpy calls would dominate the partitioner's runtime.
        order = movers[np.argsort(-best_gain[movers], kind="stable")]
        target_rank = np.argsort(-gains[order], axis=1, kind="stable")
        gains_ord = gains[order]
        vs = boundary[order]
        vw_rows = vw[vs].tolist()
        loads_py = loads.tolist()
        cap_py = cap.tolist()
        floor_py = floor.tolist()
        ncon = vw.shape[1]
        part_py = part  # direct int64 array access is fine for scalar reads

        moved = 0
        for j in range(len(order)):
            v = int(vs[j])
            cur = int(part_py[v])
            w = vw_rows[j]
            lcur = loads_py[cur]
            over = any(lcur[c] > cap_py[c] * (1 + 1e-9) for c in range(ncon))
            # Try targets in descending-gain order; for balanced sources only
            # strictly positive gains qualify, over-cap sources may move at a
            # loss to restore balance.
            grow = gains_ord[j]
            for tgt in target_rank[j]:
                tgt = int(tgt)
                g = grow[tgt]
                if tgt == cur or g == -np.inf:
                    break
                if g <= 1e-12 and not over:
                    break
                ltgt = loads_py[tgt]
                if any(ltgt[c] + w[c] > cap_py[c] for c in range(ncon)):
                    continue
                if not over and any(
                    lcur[c] - w[c] < min(floor_py[c], lcur[c]) for c in range(ncon)
                ):
                    continue
                part_py[v] = tgt
                for c in range(ncon):
                    ltgt[c] += w[c]
                    lcur[c] -= w[c]
                moved += 1
                break
        loads = np.asarray(loads_py)
        if moved == 0:
            break
    return part
