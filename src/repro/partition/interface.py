"""Partition representation and quality metrics.

SALIENT++ consumes a k-way vertex partition (the paper uses METIS with an
edge-cut objective and multi-constraint balancing on train/val/test vertex
counts and edge counts — §1 and §4.1).  This module defines the partition
datatype shared by the METIS-like partitioner and the baselines, plus the
quality metrics used by tests and the partitioner-ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass
class Partition:
    """A k-way vertex partition.

    Attributes
    ----------
    assignment:
        ``int64`` array mapping vertex id -> partition id in ``[0, num_parts)``.
    num_parts:
        Number of partitions K.
    """

    assignment: np.ndarray
    num_parts: int
    _members: Optional[List[np.ndarray]] = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        self.assignment = np.asarray(self.assignment, dtype=np.int64)
        if self.num_parts <= 0:
            raise ValueError(f"num_parts must be positive, got {self.num_parts}")
        if self.assignment.size and (
            self.assignment.min() < 0 or self.assignment.max() >= self.num_parts
        ):
            raise ValueError("assignment entries must be in [0, num_parts)")

    @property
    def num_vertices(self) -> int:
        return len(self.assignment)

    def members(self, part: int) -> np.ndarray:
        """Vertex ids in ``part`` (ascending), cached."""
        if self._members is None:
            order = np.argsort(self.assignment, kind="stable")
            sizes = self.sizes()
            bounds = np.concatenate([[0], np.cumsum(sizes)])
            self._members = [
                np.sort(order[bounds[k]:bounds[k + 1]]) for k in range(self.num_parts)
            ]
        return self._members[part]

    def sizes(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.num_parts)

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        return self.assignment[np.asarray(vertices, dtype=np.int64)]

    def __repr__(self) -> str:
        return f"Partition(num_parts={self.num_parts}, num_vertices={self.num_vertices})"


def edge_cut(graph: CSRGraph, partition: Partition) -> int:
    """Number of undirected edges crossing partition boundaries.

    Assumes an undirected graph (each edge stored in both directions), so the
    directed crossing count is halved.
    """
    src, dst = graph.edges()
    crossing = int(np.sum(partition.assignment[src] != partition.assignment[dst]))
    return crossing // 2


def balance(
    partition: Partition,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Load imbalance: max over parts of (part weight / ideal weight).

    ``weights`` is per-vertex (default 1.0).  A perfectly balanced partition
    scores 1.0; METIS-style tolerances are typically 1.01-1.1.
    """
    w = np.ones(partition.num_vertices) if weights is None else np.asarray(weights, dtype=np.float64)
    part_w = np.bincount(partition.assignment, weights=w, minlength=partition.num_parts)
    ideal = w.sum() / partition.num_parts
    if ideal == 0:
        return 1.0
    return float(part_w.max() / ideal)


@dataclass
class PartitionReport:
    """Quality summary used by tests and the partitioner ablation bench."""

    num_parts: int
    edge_cut: int
    edge_cut_fraction: float
    vertex_balance: float
    edge_balance: float
    role_balance: Dict[str, float]

    def as_rows(self):
        rows = [
            ["parts", self.num_parts],
            ["edge cut", self.edge_cut],
            ["edge cut fraction", f"{self.edge_cut_fraction:.4f}"],
            ["vertex balance", f"{self.vertex_balance:.3f}"],
            ["edge balance", f"{self.edge_balance:.3f}"],
        ]
        rows.extend([f"{k} balance", f"{v:.3f}"] for k, v in sorted(self.role_balance.items()))
        return rows


def evaluate_partition(
    graph: CSRGraph,
    partition: Partition,
    role_indices: Optional[Dict[str, np.ndarray]] = None,
) -> PartitionReport:
    """Compute the metrics the paper's partitioning pipeline balances.

    ``role_indices`` maps role name (e.g. "train") -> vertex ids; the balance
    of each role across parts mirrors the METIS balancing constraints used in
    the paper (training/validation/test vertices and edges per partition).
    """
    cut = edge_cut(graph, partition)
    undirected_edges = graph.num_edges // 2
    role_balance = {}
    for name, idx in (role_indices or {}).items():
        w = np.zeros(partition.num_vertices)
        w[np.asarray(idx, dtype=np.int64)] = 1.0
        role_balance[name] = balance(partition, w)
    return PartitionReport(
        num_parts=partition.num_parts,
        edge_cut=cut,
        edge_cut_fraction=cut / max(undirected_edges, 1),
        vertex_balance=balance(partition),
        edge_balance=balance(partition, graph.degrees.astype(np.float64)),
        role_balance=role_balance,
    )
