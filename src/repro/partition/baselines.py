"""Baseline partitioners: random, hash, BFS region growing, streaming LDG.

These serve two purposes: (a) the partitioner-quality ablation benchmark
(multilevel vs cheap alternatives), and (b) fast partitions for unit tests
that do not care about cut quality.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.interface import Partition
from repro.utils.rng import SeedLike, as_generator


def random_partition(
    num_vertices: int,
    num_parts: int,
    seed: SeedLike = 0,
) -> Partition:
    """Balanced random partition (shuffled round-robin)."""
    if num_parts <= 0:
        raise ValueError(f"num_parts must be positive, got {num_parts}")
    rng = as_generator(seed)
    assignment = np.arange(num_vertices, dtype=np.int64) % num_parts
    rng.shuffle(assignment)
    return Partition(assignment, num_parts)


def hash_partition(num_vertices: int, num_parts: int) -> Partition:
    """Deterministic modulo partition (what naive distributed stores use)."""
    if num_parts <= 0:
        raise ValueError(f"num_parts must be positive, got {num_parts}")
    assignment = np.arange(num_vertices, dtype=np.int64) % num_parts
    return Partition(assignment, num_parts)


def bfs_partition(
    graph: CSRGraph,
    num_parts: int,
    seed: SeedLike = 0,
) -> Partition:
    """Grow K balanced regions breadth-first from random seeds.

    Regions claim unvisited vertices in round-robin BFS order until all
    vertices are assigned (isolated vertices are scattered round-robin).
    """
    rng = as_generator(seed)
    n = graph.num_vertices
    if num_parts > max(n, 1):
        raise ValueError(f"cannot split {n} vertices into {num_parts} parts")
    assignment = np.full(n, -1, dtype=np.int64)
    capacity = int(np.ceil(n / num_parts))
    sizes = np.zeros(num_parts, dtype=np.int64)

    seeds = rng.choice(n, size=num_parts, replace=False)
    queues = []
    for k, s in enumerate(seeds):
        assignment[s] = k
        sizes[k] += 1
        queues.append(deque([int(s)]))

    active = True
    while active:
        active = False
        for k in range(num_parts):
            if sizes[k] >= capacity:
                continue
            q = queues[k]
            while q and sizes[k] < capacity:
                v = q.popleft()
                claimed = False
                for u in graph.neighbors(v):
                    if assignment[u] < 0:
                        assignment[u] = k
                        sizes[k] += 1
                        q.append(int(u))
                        claimed = True
                        if sizes[k] >= capacity:
                            break
                if claimed:
                    active = True
                    break  # round-robin to next part to keep growth balanced

    # Unreached vertices (other components / full regions): round-robin into
    # the lightest parts.
    rest = np.flatnonzero(assignment < 0)
    for v in rest:
        k = int(np.argmin(sizes))
        assignment[v] = k
        sizes[k] += 1
    return Partition(assignment, num_parts)


def ldg_partition(
    graph: CSRGraph,
    num_parts: int,
    seed: SeedLike = 0,
    *,
    order: Optional[np.ndarray] = None,
) -> Partition:
    """Linear Deterministic Greedy streaming partitioner.

    Each vertex (in random or supplied ``order``) goes to the part maximizing
    ``|N(v) ∩ P_k| * (1 - size_k / capacity)`` — the classic streaming
    heuristic balancing locality against load.
    """
    rng = as_generator(seed)
    n = graph.num_vertices
    if num_parts > max(n, 1):
        raise ValueError(f"cannot split {n} vertices into {num_parts} parts")
    if order is None:
        order = rng.permutation(n)
    assignment = np.full(n, -1, dtype=np.int64)
    sizes = np.zeros(num_parts, dtype=np.float64)
    capacity = max(1.0, 1.1 * n / num_parts)

    for v in order:
        nbrs = graph.neighbors(int(v))
        conn = np.zeros(num_parts, dtype=np.float64)
        placed = assignment[nbrs] >= 0
        if placed.any():
            np.add.at(conn, assignment[nbrs[placed]], 1.0)
        score = conn * np.maximum(1.0 - sizes / capacity, 0.0)
        if np.all(score <= 0):
            k = int(np.argmin(sizes))
        else:
            k = int(np.argmax(score))
        assignment[v] = k
        sizes[k] += 1.0
    return Partition(assignment, num_parts)
