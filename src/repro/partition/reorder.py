"""Partition-contiguous vertex reordering with per-partition score ordering.

Reproduces §4.1 of the paper: the graph is relabeled so that (a) vertices of
the same partition have contiguous ids, and (b) within a partition, vertices
are ordered by how beneficial it is to store them on the GPU (descending VIP
value when VIP reordering is enabled; original order otherwise — the
"no reorder" baseline of Figure 6).

The contiguous layout is what makes the runtime cheap: whether a vertex is
remote or local, and its row in the local feature tensor, are computed from
its id and the K+1 partition offsets with O(1) extra memory.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.graph.datasets import GraphDataset
from repro.partition.interface import Partition
from repro.utils.rng import permutation_from_order


@dataclass
class ReorderedDataset:
    """A dataset relabeled to the partition-contiguous order.

    Attributes
    ----------
    dataset:
        Relabeled copy of the input dataset (graph, features, labels, splits
        all permuted consistently).
    partition:
        Partition over *new* vertex ids; ``assignment`` is non-decreasing.
    part_offsets:
        ``(K+1,)`` — new ids of partition k occupy
        ``[part_offsets[k], part_offsets[k+1])``.
    new_of_old / old_of_new:
        The relabeling permutation and its inverse.
    """

    dataset: GraphDataset
    partition: Partition
    part_offsets: np.ndarray
    new_of_old: np.ndarray
    old_of_new: np.ndarray

    @property
    def num_parts(self) -> int:
        return self.partition.num_parts

    def part_range(self, k: int):
        """Half-open new-id range of partition ``k``."""
        return int(self.part_offsets[k]), int(self.part_offsets[k + 1])

    def part_size(self, k: int) -> int:
        lo, hi = self.part_range(k)
        return hi - lo

    def owner_of(self, new_ids: np.ndarray) -> np.ndarray:
        """Owning partition of each (new) vertex id — O(log K) searchsorted,
        no per-vertex table (the constant-memory lookup of §4.1)."""
        ids = np.asarray(new_ids, dtype=np.int64)
        return np.searchsorted(self.part_offsets, ids, side="right") - 1

    def local_index(self, new_ids: np.ndarray) -> np.ndarray:
        """Row of each vertex within its owner's local feature tensor."""
        ids = np.asarray(new_ids, dtype=np.int64)
        return ids - self.part_offsets[self.owner_of(ids)]

    def local_train_ids(self, k: int) -> np.ndarray:
        """New ids of training vertices owned by partition ``k``."""
        lo, hi = self.part_range(k)
        t = self.dataset.train_idx
        return t[(t >= lo) & (t < hi)]


def reorder_dataset(
    dataset: GraphDataset,
    partition: Partition,
    within_part_score: Optional[np.ndarray] = None,
) -> ReorderedDataset:
    """Relabel ``dataset`` to the partition-contiguous order.

    Parameters
    ----------
    within_part_score:
        Optional per-vertex score over *old* ids; within each partition,
        vertices are ordered by descending score (VIP reordering uses the
        partition's own VIP vector).  ``None`` keeps the original id order —
        the "no reorder" baseline.
    """
    n = dataset.num_vertices
    if partition.num_vertices != n:
        raise ValueError(
            f"partition covers {partition.num_vertices} vertices, dataset has {n}"
        )
    if within_part_score is not None:
        within_part_score = np.asarray(within_part_score, dtype=np.float64)
        if within_part_score.shape != (n,):
            raise ValueError("within_part_score must have one entry per vertex")

    # Order = partition id major; then descending score (stable) or old id.
    if within_part_score is None:
        order = np.lexsort((np.arange(n), partition.assignment))
    else:
        order = np.lexsort((-within_part_score, partition.assignment))
    return apply_reorder(dataset, partition, order)


def apply_reorder(
    dataset: GraphDataset,
    partition: Partition,
    order: np.ndarray,
) -> ReorderedDataset:
    """Relabel ``dataset`` with a precomputed ``order`` (old ids, new-id
    position ascending — i.e. the ``old_of_new`` map).

    This is the deterministic second half of :func:`reorder_dataset`, split
    out so a serialized reorder map can rebuild the identical
    :class:`ReorderedDataset` without recomputing partition or VIP scores
    (the planner's artifact-cache path).  ``order`` must list every vertex
    exactly once and be partition-major with respect to ``partition``.
    """
    n = dataset.num_vertices
    order = np.asarray(order, dtype=np.int64)
    if order.shape != (n,):
        raise ValueError(f"order must have shape ({n},), got {order.shape}")
    if n and (order.min() < 0 or order.max() >= n
              or np.bincount(order, minlength=n).max() != 1):
        raise ValueError("order must be a permutation of [0, num_vertices)")
    if np.any(np.diff(partition.assignment[order]) < 0):
        raise ValueError("order must be partition-major for the given partition")
    new_of_old = permutation_from_order(order)

    sizes = np.bincount(partition.assignment, minlength=partition.num_parts)
    part_offsets = np.zeros(partition.num_parts + 1, dtype=np.int64)
    np.cumsum(sizes, out=part_offsets[1:])

    new_graph = dataset.graph.relabel(new_of_old)
    new_assignment = np.repeat(
        np.arange(partition.num_parts, dtype=np.int64), sizes
    )
    new_dataset = replace(
        dataset,
        graph=new_graph,
        features=np.ascontiguousarray(dataset.features[order]),
        labels=dataset.labels[order],
        train_idx=np.sort(new_of_old[dataset.train_idx]),
        val_idx=np.sort(new_of_old[dataset.val_idx]),
        test_idx=np.sort(new_of_old[dataset.test_idx]),
        community=None if dataset.community is None else dataset.community[order],
    )
    return ReorderedDataset(
        dataset=new_dataset,
        partition=Partition(new_assignment, partition.num_parts),
        part_offsets=part_offsets,
        new_of_old=new_of_old,
        old_of_new=order,
    )
