"""Run configuration for the SALIENT / SALIENT++ systems.

One :class:`RunConfig` captures everything that distinguishes the systems
compared in the paper's evaluation: replication strategy (full vs
partitioned), caching policy and replication factor α, local GPU fraction β,
VIP reordering, pipeline mode/depth, partitioner, cluster size, and network
bandwidth.  Table 1's progressive ladder and Figure 4's bars are just four
configs differing in three flags (see :func:`progressive_variants`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.distributed.cluster import ClusterSpec, MachineSpec, NetworkSpec
from repro.pipeline.simulator import PipelineMode


@dataclass(frozen=True)
class RunConfig:
    """Configuration of one system variant on one cluster.

    ``fanouts`` / ``batch_size`` / ``hidden_dim`` / ``num_layers`` default to
    the dataset's Table-3-analog metadata when ``None``.
    """

    num_machines: int = 2
    fanouts: Optional[Tuple[int, ...]] = None
    batch_size: Optional[int] = None
    hidden_dim: Optional[int] = None
    arch: str = "sage"
    dropout: float = 0.0
    lr: float = 1e-3

    # Storage strategy (§4.1, §4.2).
    full_replication: bool = False          # SALIENT baseline
    replication_factor: float = 0.0         # α — remote cache size ~ αN/K
    cache_policy: str = "vip"               # static or dynamic registry name
    gpu_fraction: float = 0.0               # β — local rows resident on GPU
    vip_reorder: bool = True                # §4.1 local ordering
    # Dynamic caching (cache_policy in {"lru", "lfu", "clock", "vip-refresh"}):
    # batches between vip-refresh cache swaps (ignored by other policies), and
    # batches between frequency-aging steps of the replacement policies.
    refresh_interval: int = 50
    cache_aging_interval: int = 64

    # Pipeline (§4.3).
    pipeline: PipelineMode = PipelineMode.FULL
    pipeline_depth: int = 10

    # Substrate.
    partitioner: str = "metis"              # "metis" | "random" | "ldg" | "bfs"
    network_gbps: float = 25.0
    machine_spec: MachineSpec = field(default_factory=MachineSpec)
    seed: int = 0

    def cluster(self) -> ClusterSpec:
        return ClusterSpec(
            num_machines=self.num_machines,
            machine=self.machine_spec,
            network=NetworkSpec().with_bandwidth(self.network_gbps),
        )

    def resolve(self, dataset) -> "RunConfig":
        """Fill ``None`` hyperparameters from the dataset's default
        experiment metadata (the Table 3 analog)."""
        defaults = dataset.metadata.get("default_experiment", {})
        updates = {}
        if self.fanouts is None:
            updates["fanouts"] = tuple(defaults.get("fanouts", (5, 4, 3)))
        if self.batch_size is None:
            updates["batch_size"] = int(defaults.get("batch_size", 64))
        if self.hidden_dim is None:
            updates["hidden_dim"] = int(defaults.get("hidden_dim", 64))
        return replace(self, **updates) if updates else self

    def describe(self) -> str:
        if self.full_replication:
            storage = "full replication"
        elif self.replication_factor > 0:
            storage = f"partitioned + {self.cache_policy} cache (a={self.replication_factor:g})"
            if self.cache_policy == "vip-refresh":
                storage += f" every {self.refresh_interval} batches"
        else:
            storage = "partitioned"
        return (f"{storage}, pipeline={self.pipeline.value}, K={self.num_machines}, "
                f"net={self.network_gbps:g}Gbps")


def progressive_variants(num_machines: int,
                         cache_alpha: float) -> List[Tuple[str, RunConfig]]:
    """The Table 1 / Figure 4 ladder of progressively optimized systems.

    ``cache_alpha`` follows the paper's per-K schedule for Table 1
    (8% at K=2, 16% at K=4, 32% at K=8).
    """
    base = RunConfig(num_machines=num_machines)
    return [
        ("SALIENT (full replication)",
         replace(base, full_replication=True, pipeline=PipelineMode.FULL)),
        ("+ Partitioned features",
         replace(base, pipeline=PipelineMode.BLOCKING_COMM)),
        ("+ Pipelined communication",
         replace(base, pipeline=PipelineMode.FULL)),
        ("+ Feature caching",
         replace(base, pipeline=PipelineMode.FULL,
                 replication_factor=cache_alpha, cache_policy="vip")),
    ]


def table1_alpha(num_machines: int) -> float:
    """Table 1's cache sizes: 8% (2 machines), 16% (4), 32% (8+)."""
    if num_machines <= 2:
        return 0.08
    if num_machines <= 4:
        return 0.16
    return 0.32
