"""Run configuration for the SALIENT / SALIENT++ systems.

One :class:`RunConfig` captures everything that distinguishes the systems
compared in the paper's evaluation: replication strategy (full vs
partitioned), caching policy and replication factor α, local GPU fraction β,
VIP reordering, pipeline mode/depth, partitioner, cluster size, and network
bandwidth.  Table 1's progressive ladder and Figure 4's bars are just four
configs differing in three flags (see :func:`progressive_variants`).

Configs are validated *early*: :meth:`RunConfig.validate` (called by
:meth:`RunConfig.resolve`, i.e. at system construction) checks every name
against the partitioner / cache-policy registries and every numeric knob
against its legal range, so a typo'd policy fails with the full sorted list
of valid names instead of deep inside preprocessing stage 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.distributed.cluster import ClusterSpec, MachineSpec, NetworkSpec
from repro.distributed.dynamic_cache import is_dynamic_policy
from repro.pipeline.simulator import PipelineMode


@dataclass(frozen=True)
class ServingConfig:
    """Online-inference serving knobs (the ``config.serving`` slice).

    Consumed by :class:`repro.serving.InferenceService`; irrelevant to
    training, so no preprocessing stage fingerprints it — serving sweeps
    over batchers or SLOs reuse every partition/VIP/cache artifact.

    Attributes
    ----------
    batcher:
        Micro-batching policy name (see :data:`repro.serving.BATCHERS`):
        ``"fixed-size"`` flushes only full batches, ``"deadline"`` flushes
        when the oldest queued request has waited ``max_wait_ms``, and
        ``"cache-affinity"`` is deadline-triggered but packs micro-batches
        by feature-residency affinity.
    max_batch:
        Maximum requests per micro-batch (one MFG per micro-batch).
    max_wait_ms:
        Queueing SLO: no request waits longer than this (simulated
        milliseconds) for its micro-batch to form.  Ignored by
        ``fixed-size``.
    max_in_flight:
        Micro-batches per flush window; the window's fetch plans are
        coalesced (:meth:`FetchPlan.coalesce`) into one peer exchange.
    router:
        Request → machine routing: ``"round-robin"`` or ``"owner"`` (the
        machine owning the plurality of a request's seeds).
    fanouts:
        Inference sampling fanouts; ``None`` reuses the training fanouts.
    """

    batcher: str = "deadline"
    max_batch: int = 16
    max_wait_ms: float = 20.0
    max_in_flight: int = 4
    router: str = "round-robin"
    fanouts: Optional[Tuple[int, ...]] = None
    #: Degraded-mode serving: what to do with a request whose fetch plan
    #: touches a down machine, per SLO class — ``"retry"`` (requeue with
    #: backoff until the partition returns or ``retry_limit`` is spent,
    #: then degrade), ``"degrade"`` (serve immediately from resident
    #: state, remote rows zero-filled, the request marked ``degraded``),
    #: or ``"shed"`` (refuse, no prediction).  Unlisted SLO classes
    #: degrade.  Never silently wrong: every choice lands in the
    #: availability ledger.
    slo_policies: Tuple[Tuple[str, str], ...] = (
        ("interactive", "retry"),
        ("standard", "degrade"),
        ("batch", "shed"),
    )
    retry_backoff_ms: float = 5.0
    retry_limit: int = 3

    def validate(self) -> "ServingConfig":
        """Fail fast on malformed serving knobs; returns ``self``."""
        from repro.serving.batcher import BATCHERS, ROUTERS

        BATCHERS.get(self.batcher)  # raises with the sorted valid names
        if self.router not in ROUTERS:
            raise ValueError(
                f"unknown router {self.router!r}; valid: {sorted(ROUTERS)}"
            )
        valid_actions = ("retry", "degrade", "shed")
        for entry in self.slo_policies:
            if len(entry) != 2:
                raise ValueError(
                    f"slo_policies entries must be (slo, action) pairs, "
                    f"got {entry!r}"
                )
            if entry[1] not in valid_actions:
                raise ValueError(
                    f"unknown degraded-mode action {entry[1]!r} for SLO "
                    f"{entry[0]!r}; valid: {valid_actions}"
                )
        if self.retry_backoff_ms <= 0:
            raise ValueError(
                f"retry_backoff_ms must be positive, got {self.retry_backoff_ms}"
            )
        if self.retry_limit < 0:
            raise ValueError(
                f"retry_limit must be non-negative, got {self.retry_limit}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms <= 0:
            raise ValueError(
                f"max_wait_ms must be positive, got {self.max_wait_ms}"
            )
        if self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if self.fanouts is not None:
            if len(self.fanouts) == 0 or any(f < 1 for f in self.fanouts):
                raise ValueError(
                    f"serving fanouts must be a non-empty tuple of positive "
                    f"ints, got {self.fanouts!r}"
                )
        return self

    @property
    def max_wait_s(self) -> float:
        return self.max_wait_ms / 1000.0


@dataclass(frozen=True)
class StreamingConfig:
    """Streaming-graph knobs (the ``config.streaming`` slice).

    Consumed wherever a :class:`repro.graph.mutable.MutableGraph` backs a
    live system — serving on a mutating graph
    (:meth:`repro.serving.InferenceService.run` with ``mutations``) and
    continual training (:meth:`repro.core.system.SalientPP.
    apply_graph_updates`).  Like :class:`ServingConfig`, no preprocessing
    stage fingerprints it.

    Attributes
    ----------
    churn_cutoff:
        Fraction of the dense sweep's total edge volume
        (``num_hops * num_edges``) an incremental VIP refresh may touch
        before it falls back to a full Proposition-1 recompute on the
        materialized graph (see :func:`repro.vip.incremental.
        incremental_vip`).  0 forces full recomputes, 1 never falls back.
    compact_cutoff:
        Overlay size (fraction of base directed edges) past which the
        delta-CSR overlay is compacted into a clean base CSR
        (:meth:`repro.graph.mutable.MutableGraph.compact`); ``0`` compacts
        after every batch.
    refresh_on_mutation:
        Serving only: invalidate per-machine VIP snapshots as soon as a
        mutation batch lands (the next refresh window recomputes from the
        dirty frontier).  ``False`` keeps serving rankings stale until the
        next scheduled vip-refresh — the stale-cache baseline the
        streaming benchmark measures against.
    """

    churn_cutoff: float = 0.5
    compact_cutoff: float = 0.25
    refresh_on_mutation: bool = True

    def validate(self) -> "StreamingConfig":
        """Fail fast on malformed streaming knobs; returns ``self``."""
        if not 0.0 <= self.churn_cutoff <= 1.0:
            raise ValueError(
                f"churn_cutoff must be in [0, 1], got {self.churn_cutoff}"
            )
        if self.compact_cutoff < 0:
            raise ValueError(
                f"compact_cutoff must be non-negative, got {self.compact_cutoff}"
            )
        return self


@dataclass(frozen=True)
class RecoveryConfig:
    """Fault-tolerance knobs (the ``config.recovery`` slice).

    Consumed by :class:`repro.distributed.recovery.RecoveryManager` when
    training runs on the multiproc backend with ``recoverable=True``.
    Like the serving/streaming slices, no preprocessing stage fingerprints
    it — turning recovery on or off reuses every cached artifact.

    Attributes
    ----------
    enabled:
        Drive training through the recovery manager (epoch-boundary
        checkpoints; on a worker failure, respawn the failed ranks and
        replay the interrupted epoch from the last checkpoint).
    max_restarts:
        Total recovery budget for one training run; the failure that
        exhausts it tears the cluster down and re-raises machine-attributed.
    backoff_base_s / backoff_factor / backoff_max_s:
        Exponential backoff between detection and respawn: attempt ``i``
        sleeps ``min(max, base * factor**i)``, jittered.
    jitter:
        Fractional backoff jitter in ``[0, 1)``; the draw is deterministic
        in ``(seed, attempt)`` so recovery timing is reproducible.
    checkpoint_interval:
        Epochs between checkpoints (1 = every epoch boundary).  Replay
        restarts from the newest checkpoint, so a larger interval trades
        checkpoint cost against replay length.
    """

    enabled: bool = False
    max_restarts: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter: float = 0.25
    checkpoint_interval: int = 1

    def validate(self) -> "RecoveryConfig":
        """Fail fast on malformed recovery knobs; returns ``self``."""
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be non-negative, got {self.max_restarts}"
            )
        if self.backoff_base_s <= 0:
            raise ValueError(
                f"backoff_base_s must be positive, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError(
                f"backoff_max_s ({self.backoff_max_s}) must be >= "
                f"backoff_base_s ({self.backoff_base_s})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1 epoch, got "
                f"{self.checkpoint_interval}"
            )
        return self


@dataclass(frozen=True)
class RunConfig:
    """Configuration of one system variant on one cluster.

    The ``None``-defaulted model hyperparameters — ``fanouts``,
    ``batch_size``, and ``hidden_dim`` — are filled from the dataset's
    Table-3-analog metadata by :meth:`resolve`.  There is no ``num_layers``
    field: the layer count of the GNN (and the sampling depth) is always
    ``len(fanouts)``.
    """

    num_machines: int = 2
    fanouts: Optional[Tuple[int, ...]] = None
    batch_size: Optional[int] = None
    hidden_dim: Optional[int] = None
    arch: str = "sage"
    dropout: float = 0.0
    lr: float = 1e-3

    # Storage strategy (§4.1, §4.2).
    full_replication: bool = False          # SALIENT baseline
    replication_factor: float = 0.0         # α — remote cache size ~ αN/K
    cache_policy: str = "vip"               # static or dynamic registry name
    gpu_fraction: float = 0.0               # β — local rows resident on GPU
    vip_reorder: bool = True                # §4.1 local ordering
    # Dynamic caching (cache_policy in {"lru", "lfu", "clock", "vip-refresh"}):
    # batches between vip-refresh cache swaps (ignored by other policies), and
    # batches between frequency-aging steps of the replacement policies.
    refresh_interval: int = 50
    cache_aging_interval: int = 64

    # Execution engine (§4.3 made functional): how the epoch actually runs.
    # "bsp" = lock-step (the paper's loop); "pipelined" = pipeline_depth
    # in-flight batches per machine with coalesced (deduplicated) remote
    # fetches; "async" = bounded-staleness local applies with parameter
    # re-convergence every `staleness + 1` steps.
    engine: str = "bsp"
    staleness: int = 0

    # Cluster backend: how the K machines actually execute.  "inprocess"
    # (default) simulates them inside this interpreter — the semantics every
    # other backend must reproduce bit-for-bit; "multiproc" runs one worker
    # process per machine over shared-memory feature segments (bsp/pipelined
    # engines with static caches and partitioned storage only).
    backend: str = "inprocess"

    # Pipeline (§4.3): simulated overlap mode, and the in-flight depth used
    # both by the simulator's gating and by the "pipelined" engine.
    pipeline: PipelineMode = PipelineMode.FULL
    pipeline_depth: int = 10

    # Online inference serving (consumed by repro.serving.InferenceService;
    # does not enter any preprocessing-stage fingerprint).
    serving: ServingConfig = field(default_factory=ServingConfig)

    # Streaming-graph mutation (delta-CSR overlay + incremental VIP; see
    # repro.graph.mutable / repro.vip.incremental).  Serving- and
    # continual-training-time only, so also outside stage fingerprints.
    streaming: StreamingConfig = field(default_factory=StreamingConfig)

    # Fault tolerance (checkpoint/replay recovery on the multiproc backend;
    # see repro.distributed.recovery).  Training-runtime only — outside
    # every stage fingerprint.
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)

    # Substrate.
    partitioner: str = "metis"              # see repro.partition.PARTITIONERS
    network_gbps: float = 25.0
    machine_spec: MachineSpec = field(default_factory=MachineSpec)
    seed: int = 0

    def cluster(self) -> ClusterSpec:
        return ClusterSpec(
            num_machines=self.num_machines,
            machine=self.machine_spec,
            network=NetworkSpec().with_bandwidth(self.network_gbps),
        )

    def validate(self) -> "RunConfig":
        """Fail fast on malformed configs; returns ``self`` for chaining.

        Registry names (``partitioner``, ``cache_policy``) are checked
        against the live registries, so the error for an unknown name lists
        every valid (including plugin-registered) alternative, sorted.
        Numeric knobs are range-checked: α ≥ 0, β ∈ [0, 1], positive
        intervals and depths.
        """
        # Local imports: the registries live in packages that are heavier
        # than this module and must stay importable without repro.core.
        from repro.distributed import CLUSTER_BACKENDS  # registers backends
        from repro.distributed.dynamic_cache import DYNAMIC_CACHE_POLICIES
        from repro.distributed.engine import ENGINES
        from repro.partition.registry import PARTITIONERS
        from repro.vip.policies import STATIC_CACHE_POLICIES

        if self.num_machines < 1:
            raise ValueError(f"num_machines must be >= 1, got {self.num_machines}")
        PARTITIONERS.get(self.partitioner)  # raises with the sorted valid names
        ENGINES.get(self.engine)            # ditto (execution engine names)
        CLUSTER_BACKENDS.get(self.backend)  # ditto (cluster backend names)
        if self.backend == "multiproc":
            from repro.distributed.multiproc import SUPPORTED_ENGINES

            if self.engine not in SUPPORTED_ENGINES:
                raise ValueError(
                    f"the multiproc backend supports engines "
                    f"{SUPPORTED_ENGINES}, got {self.engine!r}"
                )
            if is_dynamic_policy(self.cache_policy):
                raise ValueError(
                    f"the multiproc backend requires a static cache policy "
                    f"(workers attach feature segments read-only), got "
                    f"{self.cache_policy!r}"
                )
            if self.full_replication:
                raise ValueError(
                    "the multiproc backend requires partitioned storage; "
                    "full replication would copy the whole feature matrix "
                    "into every machine's segment"
                )
        if self.staleness < 0:
            raise ValueError(
                f"staleness must be non-negative, got {self.staleness}"
            )
        if self.engine == "pipelined" and self.pipeline is not PipelineMode.FULL:
            raise ValueError(
                "the pipelined engine is the functional §4.3 pipeline; "
                "simulating it serialized is contradictory — use "
                "pipeline=PipelineMode.FULL (or engine='bsp' for the "
                "OFF/BLOCKING_COMM ablations)"
            )
        if (self.cache_policy not in STATIC_CACHE_POLICIES
                and self.cache_policy not in DYNAMIC_CACHE_POLICIES):
            raise ValueError(
                f"unknown cache policy {self.cache_policy!r}; "
                f"static: {STATIC_CACHE_POLICIES.names()}, "
                f"dynamic: {DYNAMIC_CACHE_POLICIES.names()}"
            )
        if self.fanouts is not None:
            if len(self.fanouts) == 0 or any(f < 1 for f in self.fanouts):
                raise ValueError(
                    f"fanouts must be a non-empty tuple of positive ints, "
                    f"got {self.fanouts!r}"
                )
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.hidden_dim is not None and self.hidden_dim < 1:
            raise ValueError(f"hidden_dim must be >= 1, got {self.hidden_dim}")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {self.dropout}")
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        if self.replication_factor < 0:
            raise ValueError(
                f"replication_factor (alpha) must be non-negative, "
                f"got {self.replication_factor}"
            )
        if not 0.0 <= self.gpu_fraction <= 1.0:
            raise ValueError(
                f"gpu_fraction (beta) must be in [0, 1], got {self.gpu_fraction}"
            )
        if self.refresh_interval < 1:
            raise ValueError(
                f"refresh_interval must be >= 1 batch, got {self.refresh_interval}"
            )
        if self.cache_aging_interval < 0:
            raise ValueError(
                f"cache_aging_interval must be non-negative (0 disables "
                f"aging), got {self.cache_aging_interval}"
            )
        if self.pipeline_depth < 1:
            raise ValueError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}"
            )
        if self.network_gbps <= 0:
            raise ValueError(
                f"network_gbps must be positive, got {self.network_gbps}"
            )
        self.serving.validate()
        self.streaming.validate()
        self.recovery.validate()
        if self.recovery.enabled and self.backend != "multiproc":
            raise ValueError(
                "recovery.enabled requires backend='multiproc' (the "
                "in-process simulator has no worker processes to lose)"
            )
        return self

    def resolve(self, dataset) -> "RunConfig":
        """Fill the ``None`` hyperparameters — ``fanouts``, ``batch_size``,
        ``hidden_dim`` — from the dataset's default experiment metadata (the
        Table 3 analog), then :meth:`validate` the result."""
        defaults = dataset.metadata.get("default_experiment", {})
        updates = {}
        if self.fanouts is None:
            updates["fanouts"] = tuple(defaults.get("fanouts", (5, 4, 3)))
        if self.batch_size is None:
            updates["batch_size"] = int(defaults.get("batch_size", 64))
        if self.hidden_dim is None:
            updates["hidden_dim"] = int(defaults.get("hidden_dim", 64))
        cfg = replace(self, **updates) if updates else self
        return cfg.validate()

    def describe(self) -> str:
        if self.full_replication:
            storage = "full replication"
        elif self.replication_factor > 0:
            storage = f"partitioned + {self.cache_policy} cache (a={self.replication_factor:g})"
            if self.cache_policy == "vip-refresh":
                storage += f" every {self.refresh_interval} batches"
            elif is_dynamic_policy(self.cache_policy):  # replacement family
                if self.cache_aging_interval > 0:
                    storage += f", aging every {self.cache_aging_interval} batches"
                else:
                    storage += ", no aging"
        else:
            storage = "partitioned"
        engine = self.engine
        if engine == "pipelined":
            engine += f"(depth={self.pipeline_depth})"
        elif engine == "async":
            engine += f"(staleness={self.staleness})"
        backend = "" if self.backend == "inprocess" else f", backend={self.backend}"
        return (f"{storage}, engine={engine}, pipeline={self.pipeline.value}, "
                f"K={self.num_machines}, net={self.network_gbps:g}Gbps{backend}")


def progressive_variants(num_machines: int,
                         cache_alpha: float) -> List[Tuple[str, RunConfig]]:
    """The Table 1 / Figure 4 ladder of progressively optimized systems.

    ``cache_alpha`` follows the paper's per-K schedule for Table 1
    (8% at K=2, 16% at K=4, 32% at K=8).
    """
    base = RunConfig(num_machines=num_machines)
    return [
        ("SALIENT (full replication)",
         replace(base, full_replication=True, pipeline=PipelineMode.FULL)),
        ("+ Partitioned features",
         replace(base, pipeline=PipelineMode.BLOCKING_COMM)),
        ("+ Pipelined communication",
         replace(base, pipeline=PipelineMode.FULL)),
        ("+ Feature caching",
         replace(base, pipeline=PipelineMode.FULL,
                 replication_factor=cache_alpha, cache_policy="vip")),
    ]


def table1_alpha(num_machines: int) -> float:
    """Table 1's cache sizes: 8% (2 machines), 16% (4), 32% (8+)."""
    if num_machines <= 2:
        return 0.08
    if num_machines <= 4:
        return 0.16
    return 0.32
