"""SALIENT / SALIENT++ system layer: configuration, staged preprocessing
planner, and end-to-end systems."""

from repro.core.config import (
    RunConfig,
    ServingConfig,
    StreamingConfig,
    progressive_variants,
    table1_alpha,
)
from repro.core.planner import (
    ArtifactCache,
    PREPROCESS_STAGES,
    Plan,
    Planner,
    STAGE_CONFIG_FIELDS,
    STAGE_ORDER,
    StageNode,
    StageStats,
    dataset_fingerprint,
    load_artifact,
    save_artifact,
)
from repro.core.system import (
    EpochResult,
    Salient,
    SalientPP,
    make_partition,
)

__all__ = [
    "RunConfig",
    "ServingConfig",
    "StreamingConfig",
    "progressive_variants",
    "table1_alpha",
    "ArtifactCache",
    "PREPROCESS_STAGES",
    "Plan",
    "Planner",
    "STAGE_CONFIG_FIELDS",
    "STAGE_ORDER",
    "StageNode",
    "StageStats",
    "dataset_fingerprint",
    "load_artifact",
    "save_artifact",
    "EpochResult",
    "Salient",
    "SalientPP",
    "make_partition",
]
