"""SALIENT / SALIENT++ system layer: configuration and end-to-end systems."""

from repro.core.config import RunConfig, progressive_variants, table1_alpha
from repro.core.system import (
    EpochResult,
    Salient,
    SalientPP,
    make_partition,
)

__all__ = [
    "RunConfig",
    "progressive_variants",
    "table1_alpha",
    "EpochResult",
    "Salient",
    "SalientPP",
    "make_partition",
]
