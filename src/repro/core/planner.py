"""Staged preprocessing planner with a content-addressed artifact cache.

The paper's preprocessing pipeline (§4.1–4.2) — partition → Proposition-1
VIP → contiguous reorder → cache selection → feature-store build — is the
expensive part of every experiment, and the evaluation is all *sweeps*
(Table 1's ladder, Figure 2's policy zoo, Figure 5's α-grid) whose variants
differ in only one or two stages.  This module makes the stage graph an
explicit API:

* a :class:`Plan` is a DAG of named stages::

      partition ──► vip ──► reorder ──► cache-select ──► store ──► trainer
          │          ╲________▲   ▲________╱                ▲
          └───────────────────┴────────────────────────────(deps vary
                                                            with config)

  Each stage is keyed by a deterministic *fingerprint* of (dataset id,
  upstream stage fingerprints, the slice of :class:`RunConfig` the stage
  actually reads — see :data:`STAGE_CONFIG_FIELDS`).  Two configs that agree
  on a stage's inputs share that stage's fingerprint, so sweeps share work
  structurally instead of by hand-threading ``partition=`` kwargs.

* a :class:`Planner` executes plans through an :class:`ArtifactCache`
  (in-memory, plus optional on-disk npz/JSON persistence for the four
  preprocessing artifacts: :class:`Partition`, VIP matrices, reorder maps,
  cache selections).  Building the four-variant Table-1 ladder computes
  partition / VIP / reorder exactly once; a warm on-disk cache rebuilds a
  variant without recomputing any preprocessing stage, byte-identically.

``SalientPP.build`` is a thin wrapper over :meth:`Planner.build`, so every
existing call site gets the in-memory reuse for free when it passes a shared
planner, and stays exactly as before when it does not.
"""

from __future__ import annotations

import hashlib
import json
import os
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import RunConfig
from repro.distributed.dynamic_cache import DynamicCacheSpec, is_dynamic_policy
from repro.obs import OBS
from repro.distributed.executor import DistributedTrainer
from repro.distributed.feature_store import PartitionedFeatureStore
from repro.partition.interface import Partition
from repro.partition.registry import make_partition
from repro.partition.reorder import ReorderedDataset, apply_reorder, reorder_dataset
from repro.pipeline.costmodel import ModelDims
from repro.utils.rng import derive_seed
from repro.vip.analytic import (
    partitionwise_vip,
    transition_table,
    vip_for_training_set,
)
from repro.vip.policies import (
    CacheContext,
    OraclePolicy,
    STATIC_CACHE_POLICIES,
    build_caches,
    cache_budget,
)

#: Preprocessing stages — content-addressed, cacheable in memory and on disk.
PREPROCESS_STAGES: Tuple[str, ...] = ("partition", "vip", "reorder", "cache-select")

#: All stages in topological order.  ``store`` and ``trainer`` are rebuilt on
#: every build (they hold mutable runtime state: dynamic caches, optimizer
#: moments) but still carry fingerprints so the DAG is complete.
STAGE_ORDER: Tuple[str, ...] = PREPROCESS_STAGES + ("store", "trainer")

#: The slice of :class:`RunConfig` each stage actually reads — the *only*
#: config fields that enter its fingerprint.  Changing any other field
#: leaves the stage's artifact reusable (e.g. an α-sweep re-keys only
#: ``cache-select`` and the rebuild-always stages).
STAGE_CONFIG_FIELDS: Dict[str, Tuple[str, ...]] = {
    "partition": ("num_machines", "partitioner", "seed"),
    "vip": ("fanouts", "batch_size"),
    "reorder": ("vip_reorder",),
    "cache-select": ("full_replication", "replication_factor", "cache_policy",
                     "fanouts", "batch_size", "seed"),
    "store": ("gpu_fraction", "full_replication", "cache_policy",
              "refresh_interval", "cache_aging_interval"),
    "trainer": ("hidden_dim", "arch", "dropout", "lr", "fanouts",
                "batch_size", "seed", "engine", "pipeline_depth", "staleness"),
}

_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Fingerprints.

def _digest(*parts) -> str:
    """16-hex-char SHA-256 digest over heterogeneous parts (arrays by
    dtype + shape + raw bytes; everything else by ``repr``)."""
    h = hashlib.sha256()
    for p in parts:
        if isinstance(p, np.ndarray):
            arr = np.ascontiguousarray(p)
            h.update(str(arr.dtype).encode())
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        else:
            h.update(repr(p).encode())
        h.update(b"|")
    return h.hexdigest()[:16]


def dataset_fingerprint(dataset) -> str:
    """Deterministic id of a dataset: name, sizes, generator seed, the full
    graph structure (indptr *and* indices — two graphs with equal degree
    sequences must not collide), and splits.  Features are assumed
    determined by (name, seed) — true for every registered generator."""
    return _digest(
        "dataset", dataset.name, dataset.num_vertices, dataset.graph.num_edges,
        dataset.feature_dim, dataset.num_classes, dataset.metadata.get("seed"),
        dataset.graph.indptr, dataset.graph.indices, dataset.train_idx,
        dataset.val_idx, dataset.test_idx,
    )


# ----------------------------------------------------------------------
# Plans.

@dataclass(frozen=True)
class StageNode:
    """One named stage of a :class:`Plan`.

    ``fingerprint`` is the cache key: a digest of the dataset fingerprint,
    the fingerprints of ``deps``, and ``config_slice`` (the stage's fields
    from :data:`STAGE_CONFIG_FIELDS` with their values).
    """

    name: str
    fingerprint: str
    deps: Tuple[str, ...]
    config_slice: Tuple[Tuple[str, object], ...]
    enabled: bool = True


@dataclass
class Plan:
    """A resolved stage DAG for (dataset, config): what :class:`Planner`
    executes.  ``stages`` is topologically ordered per :data:`STAGE_ORDER`;
    disabled stages (e.g. ``vip`` when nothing consumes it) keep a node so
    :meth:`describe` shows the full graph."""

    dataset: object
    dataset_fingerprint: str
    config: RunConfig
    stages: Dict[str, StageNode]

    def fingerprint(self, stage: str) -> str:
        return self.stages[stage].fingerprint

    def enabled(self, stage: str) -> bool:
        return self.stages[stage].enabled

    def describe(self) -> str:
        """Human-readable DAG listing: stage, fingerprint, deps, config slice."""
        lines = [f"Plan[{self.dataset_fingerprint}] {self.config.describe()}"]
        for node in self.stages.values():
            deps = " <- " + ", ".join(node.deps) if node.deps else ""
            slc = ", ".join(f"{k}={v!r}" for k, v in node.config_slice)
            flag = "" if node.enabled else "  (disabled)"
            lines.append(f"  {node.name}[{node.fingerprint}]{deps}  ({slc}){flag}")
        return "\n".join(lines)


@dataclass
class StageStats:
    """Execution counters for one stage across a planner's lifetime."""

    computed: int = 0
    memory_hits: int = 0
    disk_hits: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


# ----------------------------------------------------------------------
# Artifact serialization (npz arrays + JSON sidecar metadata).

def _encode_partition(p: Partition):
    return {"assignment": p.assignment}, {"num_parts": int(p.num_parts)}


def _decode_partition(arrays, meta) -> Partition:
    return Partition(arrays["assignment"], int(meta["num_parts"]))


def _encode_array(a: np.ndarray):
    return {"matrix": np.asarray(a)}, {}


def _decode_array(arrays, meta) -> np.ndarray:
    return arrays["matrix"]


def _encode_cache_selection(caches: Sequence[np.ndarray]):
    arrays = {f"cache_{k}": np.asarray(c, dtype=np.int64)
              for k, c in enumerate(caches)}
    return arrays, {"num_machines": len(caches)}


def _decode_cache_selection(arrays, meta) -> List[np.ndarray]:
    return [arrays[f"cache_{k}"] for k in range(int(meta["num_machines"]))]


#: kind -> (encode, decode).  The on-disk artifact of ``reorder`` is the
#: ``old_of_new`` order map (the :class:`ReorderedDataset` is rebuilt from it
#: with :func:`apply_reorder`); ``vip`` is the (K, N) matrix in *old* ids.
_CODECS: Dict[str, Tuple[Callable, Callable]] = {
    "partition": (_encode_partition, _decode_partition),
    "vip": (_encode_array, _decode_array),
    "reorder": (_encode_array, _decode_array),
    "cache-select": (_encode_cache_selection, _decode_cache_selection),
}


def save_artifact(path: str, kind: str, artifact) -> None:
    """Serialize a preprocessing artifact to ``path.npz`` + ``path.json``.

    ``kind`` is one of :data:`PREPROCESS_STAGES`; for ``reorder`` pass the
    ``old_of_new`` order array.  The JSON sidecar records kind and schema
    version so stale or mismatched files are rejected on load.
    """
    if kind not in _CODECS:
        raise ValueError(f"unknown artifact kind {kind!r}; valid: {sorted(_CODECS)}")
    encode, _ = _CODECS[kind]
    arrays, meta = encode(artifact)
    # Atomic-rename writes (npz first, json last): a crash mid-save leaves
    # either nothing or an entry missing its sidecar, never a torn file.
    tmp_npz, tmp_json = path + ".tmp.npz", path + ".tmp.json"
    np.savez_compressed(tmp_npz, **arrays)
    os.replace(tmp_npz, path + ".npz")
    with open(tmp_json, "w") as fh:
        json.dump({"kind": kind, "version": _SCHEMA_VERSION, **meta}, fh)
    os.replace(tmp_json, path + ".json")


def load_artifact(path: str, kind: str):
    """Inverse of :func:`save_artifact`; round-trips byte-identically."""
    if kind not in _CODECS:
        raise ValueError(f"unknown artifact kind {kind!r}; valid: {sorted(_CODECS)}")
    _, decode = _CODECS[kind]
    with open(path + ".json") as fh:
        meta = json.load(fh)
    if meta.get("kind") != kind:
        raise ValueError(f"artifact at {path} is {meta.get('kind')!r}, not {kind!r}")
    if meta.get("version") != _SCHEMA_VERSION:
        raise ValueError(f"artifact schema v{meta.get('version')} != v{_SCHEMA_VERSION}")
    with np.load(path + ".npz") as z:
        arrays = {k: z[k] for k in z.files}
    return decode(arrays, meta)


#: Default per-kind caps on the memory tier.  ``reorder`` entries pin a full
#: relabeled dataset (a feature-matrix copy) each, so a long sweep session
#: must not accumulate them without bound; the small artifacts are uncapped.
_DEFAULT_MEMORY_CAPS: Dict[str, int] = {"reorder": 8, "vip": 16}


class ArtifactCache:
    """Two-tier artifact store: an in-memory memo plus an optional on-disk
    directory (``<dir>/<kind>-<fingerprint>.npz`` + ``.json``).

    The memory tier holds live objects (for ``reorder``, the full
    :class:`ReorderedDataset`) with per-kind FIFO caps so heavyweight
    entries stay bounded over a long session; the disk tier holds the
    serialized artifact per :func:`save_artifact` and survives across
    processes — the warm-start path benchmark sweeps and CI use.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 memory_caps: Optional[Dict[str, int]] = None):
        self.cache_dir = cache_dir
        self.memory_caps = dict(_DEFAULT_MEMORY_CAPS if memory_caps is None
                                else memory_caps)
        self._memory: Dict[Tuple[str, str], object] = {}

    # -- memory tier ----------------------------------------------------
    def get_memory(self, kind: str, fingerprint: str):
        return self._memory.get((kind, fingerprint))

    def put_memory(self, kind: str, fingerprint: str, artifact) -> None:
        self._memory[(kind, fingerprint)] = artifact
        cap = self.memory_caps.get(kind)
        if cap is not None:
            held = [k for k in self._memory if k[0] == kind]
            for key in held[:max(len(held) - cap, 0)]:  # FIFO (dict order)
                del self._memory[key]

    def clear_memory(self) -> None:
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)

    # -- disk tier ------------------------------------------------------
    def _disk_path(self, kind: str, fingerprint: str) -> str:
        return os.path.join(self.cache_dir, f"{kind}-{fingerprint}")

    def load_disk(self, kind: str, fingerprint: str):
        """Deserialized artifact, or ``None`` if disk is disabled/missing.

        Requires *both* files of an entry, and treats any unreadable /
        mismatched entry as a miss (healed by the recompute's save) rather
        than an error — a cache must degrade, not wedge."""
        if self.cache_dir is None:
            return None
        path = self._disk_path(kind, fingerprint)
        if not (os.path.exists(path + ".npz") and os.path.exists(path + ".json")):
            return None
        try:
            return load_artifact(path, kind)
        except Exception:  # corrupt entry (torn write, stale schema, ...)
            return None

    def save_disk(self, kind: str, fingerprint: str, artifact) -> None:
        if self.cache_dir is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        save_artifact(self._disk_path(kind, fingerprint), kind, artifact)


# ----------------------------------------------------------------------
# The planner.

class Planner:
    """Plans and executes the staged preprocessing DAG through a cache.

    One planner shared across a sweep gives structural artifact reuse:
    stages whose fingerprints match are computed once.  ``stats`` holds a
    :class:`StageStats` per stage (the counters benchmark assertions and the
    CI warm-cache job check).
    """

    def __init__(self, cache: Optional[ArtifactCache] = None):
        self.cache = cache if cache is not None else ArtifactCache()
        self.stats: Dict[str, StageStats] = {s: StageStats() for s in STAGE_ORDER}
        # Per-dataset fingerprint memo: hashing the graph structure is
        # O(|E|), and plan() runs once per sweep variant.  Weak references
        # so the memo never extends a dataset's lifetime; entries evict
        # themselves when the dataset is collected (which also retires the
        # id() key before it can be reused).
        self._dataset_fps: Dict[int, Tuple[weakref.ref, str]] = {}

    def _dataset_fingerprint(self, dataset) -> str:
        key = id(dataset)
        entry = self._dataset_fps.get(key)
        if entry is not None and entry[0]() is dataset:
            return entry[1]
        fp = dataset_fingerprint(dataset)
        memo = self._dataset_fps
        ref = weakref.ref(dataset, lambda _r, k=key, m=memo: m.pop(k, None))
        memo[key] = (ref, fp)
        return fp

    # -- planning -------------------------------------------------------
    def plan(
        self,
        dataset,
        config: RunConfig,
        *,
        partition: Optional[Partition] = None,
        vip_matrix: Optional[np.ndarray] = None,
    ) -> Plan:
        """Resolve (and validate) the config and fingerprint every stage.

        Injected artifacts are *content-addressed*: an explicit ``partition``
        / ``vip_matrix`` replaces the config-derived fingerprint with a
        digest of the artifact itself, so downstream stages key off what
        they actually consume and the shared cache is never poisoned by
        out-of-band inputs.
        """
        config = config.resolve(dataset)
        ds_fp = self._dataset_fingerprint(dataset)
        dynamic = is_dynamic_policy(config.cache_policy)
        vip_scored_cache = config.cache_policy == "vip" or dynamic
        needs_vip = config.vip_reorder or (
            config.replication_factor > 0 and vip_scored_cache
        )
        needs_cache = config.replication_factor > 0 and not config.full_replication

        deps: Dict[str, Tuple[str, ...]] = {
            "partition": (),
            "vip": ("partition",),
            "reorder": ("partition", "vip") if (config.vip_reorder and needs_vip)
                       else ("partition",),
            "cache-select": ("reorder", "vip") if (needs_vip and vip_scored_cache)
                            else ("reorder",),
            "store": ("reorder", "cache-select") if needs_cache else ("reorder",),
            "trainer": ("reorder", "store"),
        }
        enabled = {
            "partition": True,
            "vip": needs_vip,
            "reorder": True,
            "cache-select": needs_cache,
            "store": True,
            "trainer": True,
        }

        stages: Dict[str, StageNode] = {}
        for name in STAGE_ORDER:
            slc = tuple((f, getattr(config, f)) for f in STAGE_CONFIG_FIELDS[name])
            if name == "cache-select" and vip_scored_cache:
                # Every VIP-warm-started policy (static "vip" and all dynamic
                # policies) selects the identical analytic-VIP set, so they
                # share one artifact: normalize the policy key to "vip".
                slc = tuple(
                    (f, "vip") if f == "cache_policy" else (f, v)
                    for f, v in slc
                )
            if name == "partition" and partition is not None:
                fp = _digest("partition-injected", ds_fp,
                             partition.assignment, partition.num_parts)
            elif name == "vip" and vip_matrix is not None:
                fp = _digest("vip-injected", stages["partition"].fingerprint,
                             np.asarray(vip_matrix))
            else:
                dep_fps = tuple(stages[d].fingerprint for d in deps[name])
                fp = _digest(name, ds_fp, dep_fps, slc)
            stages[name] = StageNode(
                name=name, fingerprint=fp, deps=deps[name],
                config_slice=slc, enabled=enabled[name],
            )
        return Plan(dataset=dataset, dataset_fingerprint=ds_fp,
                    config=config, stages=stages)

    # -- stage execution ------------------------------------------------
    def _stage(
        self,
        plan: Plan,
        name: str,
        compute: Callable[[], object],
        *,
        to_disk: Optional[Callable] = None,
        from_disk: Optional[Callable] = None,
    ):
        """Run one cacheable stage: memory hit → disk hit → compute.

        ``to_disk`` / ``from_disk`` convert between the live (memory-tier)
        object and the serialized artifact when they differ (``reorder``).
        """
        fp = plan.fingerprint(name)
        stats = self.stats[name]
        with OBS.span(f"planner.{name}", hist="planner.stage_wall_s") as sp:
            cached = self.cache.get_memory(name, fp)
            if cached is not None:
                stats.memory_hits += 1
                sp.set(tier="memory")
                return cached
            raw = self.cache.load_disk(name, fp)
            if raw is not None:
                artifact = from_disk(raw) if from_disk else raw
                stats.disk_hits += 1
                self.cache.put_memory(name, fp, artifact)
                sp.set(tier="disk")
                return artifact
            artifact = compute()
            stats.computed += 1
            self.cache.put_memory(name, fp, artifact)
            self.cache.save_disk(name, fp,
                                 to_disk(artifact) if to_disk else artifact)
            sp.set(tier="computed")
            return artifact

    def _preprocess(
        self,
        plan: Plan,
        *,
        partition: Optional[Partition] = None,
        vip_matrix: Optional[np.ndarray] = None,
        upto: Optional[str] = None,
    ) -> Dict[str, object]:
        """Execute the preprocessing stages of ``plan`` (optionally only up
        to ``upto``) and return ``{stage: artifact}``."""
        dataset, config = plan.dataset, plan.config
        K = config.num_machines
        arts: Dict[str, object] = {}

        # partition ----------------------------------------------------
        if partition is not None:
            if partition.num_parts != K:
                raise ValueError(
                    f"partition has {partition.num_parts} parts, config wants {K}"
                )
            expected = _digest("partition-injected", plan.dataset_fingerprint,
                               partition.assignment, partition.num_parts)
            if expected != plan.fingerprint("partition"):
                raise ValueError(
                    "injected partition does not match the plan's partition "
                    "fingerprint; pass the same artifact to plan() so the "
                    "stage is content-addressed"
                )
            # Content-addressed fingerprint (verified above): seeding the
            # shared cache is safe.
            self.cache.put_memory("partition", plan.fingerprint("partition"),
                                  partition)
        part = self._stage(plan, "partition",
                           lambda: make_partition(dataset, config))
        if part.num_parts != K:
            raise ValueError(
                f"partition has {part.num_parts} parts, config wants {K}"
            )
        arts["partition"] = part
        if upto == "partition":
            return arts

        # vip ----------------------------------------------------------
        vip = None
        if plan.enabled("vip"):
            if vip_matrix is not None:
                expected = _digest("vip-injected", plan.fingerprint("partition"),
                                   np.asarray(vip_matrix))
                if expected != plan.fingerprint("vip"):
                    raise ValueError(
                        "injected vip_matrix does not match the plan's vip "
                        "fingerprint; pass the same artifact to plan() so "
                        "the stage is content-addressed"
                    )
                self.cache.put_memory("vip", plan.fingerprint("vip"),
                                      np.asarray(vip_matrix))
            vip = self._stage(plan, "vip", lambda: partitionwise_vip(
                dataset.graph, part, dataset.train_idx,
                config.fanouts, config.batch_size,
            ))
        arts["vip"] = vip
        if upto == "vip":
            return arts

        # reorder (§4.1: partition-contiguous, VIP-descending within) ---
        def compute_reorder() -> ReorderedDataset:
            score = None
            if config.vip_reorder and vip is not None:
                score = np.zeros(dataset.num_vertices)
                for k in range(K):
                    mask = part.assignment == k
                    score[mask] = vip[k][mask]
            return reorder_dataset(dataset, part, within_part_score=score)

        reordered = self._stage(
            plan, "reorder", compute_reorder,
            to_disk=lambda rd: rd.old_of_new,
            from_disk=lambda order: apply_reorder(dataset, part, order),
        )
        arts["reorder"] = reordered
        if upto == "reorder":
            return arts

        # cache-select (§4.2, ids in the *new* numbering) ---------------
        caches = None
        if plan.enabled("cache-select"):
            def compute_caches() -> List[np.ndarray]:
                ctx = CacheContext(
                    graph=reordered.dataset.graph,
                    partition=reordered.partition,
                    train_idx=reordered.dataset.train_idx,
                    fanouts=config.fanouts,
                    batch_size=config.batch_size,
                    seed=derive_seed(config.seed, "cache"),
                )
                if vip is not None and (config.cache_policy == "vip"
                                        or is_dynamic_policy(config.cache_policy)):
                    # Reuse the already-computed VIP matrix (new ids).
                    policy = OraclePolicy(vip[:, reordered.old_of_new])
                    policy.name = "vip"
                else:
                    policy = STATIC_CACHE_POLICIES.get(config.cache_policy)()
                return build_caches(policy, ctx, config.replication_factor)

            caches = self._stage(plan, "cache-select", compute_caches)
        arts["cache-select"] = caches
        return arts

    # -- public API -----------------------------------------------------
    def artifact(self, dataset, config: RunConfig, stage: str):
        """Compute (or fetch) one preprocessing artifact through the cache.

        ``stage`` is one of :data:`PREPROCESS_STAGES`; upstream stages run
        (or hit the cache) as needed.  Returns ``None`` for stages the
        config disables (e.g. ``cache-select`` with α = 0).
        """
        if stage not in PREPROCESS_STAGES:
            raise ValueError(
                f"unknown preprocessing stage {stage!r}; "
                f"valid: {sorted(PREPROCESS_STAGES)}"
            )
        plan = self.plan(dataset, config)
        return self._preprocess(plan, upto=stage)[stage]

    def build(
        self,
        dataset,
        config: RunConfig,
        *,
        partition: Optional[Partition] = None,
        vip_matrix: Optional[np.ndarray] = None,
        system_cls=None,
    ):
        """Build a full system (default :class:`~repro.core.system.SalientPP`)
        by executing the plan for (dataset, config) through the cache."""
        plan = self.plan(dataset, config, partition=partition,
                         vip_matrix=vip_matrix)
        return self.execute(plan, partition=partition, vip_matrix=vip_matrix,
                            system_cls=system_cls)

    def build_service(
        self,
        dataset,
        config: RunConfig,
        *,
        partition: Optional[Partition] = None,
        vip_matrix: Optional[np.ndarray] = None,
    ):
        """Build an :class:`~repro.serving.InferenceService` over the
        planned substrate.

        The serving substrate *is* a system build (store + model + cost
        model), so serving runs get the same structural artifact reuse as
        training sweeps — and because no preprocessing stage lists
        ``serving`` in its :data:`STAGE_CONFIG_FIELDS`, sweeping batchers /
        SLO knobs re-keys nothing: partition, VIP, reorder, and
        cache-selection artifacts are all cache hits.
        """
        from repro.serving.service import InferenceService

        system = self.build(dataset, config, partition=partition,
                            vip_matrix=vip_matrix)
        return InferenceService.from_system(system)

    def execute(
        self,
        plan: Plan,
        *,
        partition: Optional[Partition] = None,
        vip_matrix: Optional[np.ndarray] = None,
        system_cls=None,
    ):
        """Execute every stage of ``plan`` and assemble the system.

        Injected artifacts must be the ones the plan was made with
        (:meth:`plan` content-addresses them); a mismatch raises rather
        than poisoning the shared cache.
        """
        if system_cls is None:
            from repro.core.system import SalientPP as system_cls

        dataset, config = plan.dataset, plan.config
        K = config.num_machines
        arts = self._preprocess(plan, partition=partition, vip_matrix=vip_matrix)
        part: Partition = arts["partition"]
        vip: Optional[np.ndarray] = arts["vip"]
        reordered: ReorderedDataset = arts["reorder"]
        caches = arts["cache-select"]

        # store (always rebuilt: holds per-system mutable cache state) --
        dynamic = is_dynamic_policy(config.cache_policy)
        vip_new = None
        if vip is not None and caches is not None and (
                config.cache_policy == "vip" or dynamic):
            vip_new = vip[:, reordered.old_of_new]
        dynamic_spec = None
        if dynamic and caches is not None:
            # The static VIP selection is only the warm start; contents
            # evolve at runtime under the configured policy.
            dynamic_spec = DynamicCacheSpec(
                policy=config.cache_policy,
                capacity=cache_budget(
                    dataset.num_vertices, K, config.replication_factor
                ),
                refresh_interval=config.refresh_interval,
                aging_interval=config.cache_aging_interval,
                warm_scores=vip_new,
            )
        if config.full_replication:
            store = PartitionedFeatureStore.build_replicated(
                reordered, gpu_fraction=config.gpu_fraction,
            )
        else:
            store = PartitionedFeatureStore.build(
                reordered, gpu_fraction=config.gpu_fraction, caches=caches,
                dynamic=dynamic_spec,
            )
        self.stats["store"].computed += 1

        # trainer -------------------------------------------------------
        trainer = DistributedTrainer(
            reordered, store,
            fanouts=config.fanouts,
            batch_size=config.batch_size,
            hidden_dim=config.hidden_dim,
            arch=config.arch,
            dropout=config.dropout,
            lr=config.lr,
            seed=derive_seed(config.seed, "trainer"),
            engine=config.engine,
            pipeline_depth=config.pipeline_depth,
            staleness=config.staleness,
        )
        self.stats["trainer"].computed += 1
        if config.cache_policy == "vip-refresh" and dynamic_spec is not None:
            # Refreshes re-run Proposition 1 against the machine's *current*
            # training set (it may have drifted via update_training_set), so
            # the cache tracks the workload instead of the build-time one.
            graph = reordered.dataset.graph
            # Prime the graph's shared TransitionTable for the configured
            # fanouts — transitions, the structure memos (incoming
            # adjacency, reduceat row starts), and the edge scratch — so
            # every runtime refresh (training-set VIP here, or the
            # request-VIP provider InferenceService swaps in) reuses cached
            # state instead of paying the one-time O(N+M) passes on the
            # serving/refresh critical path.
            table = transition_table(graph)
            for fanout in config.fanouts:
                table.vertex_transition(fanout)
            table.incoming()
            table.nonempty_rows()
            table.edge_scratch()

            def refresh_scores(machine: int) -> np.ndarray:
                return vip_for_training_set(
                    graph, trainer.local_train[machine],
                    config.fanouts, config.batch_size,
                ).access

            store.set_refresh_score_provider(refresh_scores)

        dims = ModelDims(dataset.feature_dim, config.hidden_dim,
                         dataset.num_classes)
        cost_model = system_cls._cost_model_for(config, store, dims, trainer)
        return system_cls(dataset, config, reordered, store, trainer,
                          cost_model, vip)
