"""End-to-end SALIENT / SALIENT++ systems.

:class:`SalientPP` wires the whole stack together the way the real system's
preprocessing + runtime does:

1. partition the graph (METIS-like, multi-constraint balanced);
2. compute partition-wise VIP vectors (Proposition 1);
3. reorder vertices partition-contiguously, VIP-descending within partitions;
4. select each machine's remote-feature cache with the configured policy
   (static rankings, or a dynamic LRU/LFU/CLOCK/vip-refresh cache
   warm-started from the analytic-VIP selection);
5. build the partitioned feature store (GPU prefix β, cache α);
6. train with the bulk-synchronous distributed executor (functionally real
   numpy GNN training), recording exact per-step workload volumes;
7. replay those volumes through the discrete-event pipeline simulator to
   obtain epoch times on the configured cluster.

Steps 1–5 are the staged preprocessing DAG executed by
:class:`~repro.core.planner.Planner`; :meth:`SalientPP.build` is a thin
wrapper over :meth:`Planner.build`.  Pass a shared planner (or let a
benchmark harness do it) and every stage unchanged between system variants
is fetched from the artifact cache instead of recomputed.

:class:`Salient` is the same object built with full feature replication (the
paper's baseline, Table 1 row 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import RunConfig
from repro.core.planner import Planner
from repro.distributed.executor import DistributedTrainer, EpochReport
from repro.distributed.feature_store import PartitionedFeatureStore
from repro.graph.datasets import GraphDataset
from repro.obs import OBS
from repro.partition.interface import Partition
from repro.partition.registry import make_partition  # noqa: F401  (re-export)
from repro.partition.reorder import ReorderedDataset
from repro.pipeline.costmodel import CostModel, ModelDims
from repro.pipeline.simulator import PipelineResult, simulate_epoch, simulate_trace


@dataclass
class EpochResult:
    """Functional + simulated-timing outcome of one epoch."""

    report: EpochReport
    timing: PipelineResult

    @property
    def epoch_time(self) -> float:
        return self.timing.epoch_time

    @property
    def loss(self) -> Optional[float]:
        return self.report.mean_loss


class SalientPP:
    """The SALIENT++ system (or its ablations, per the config).

    Use :meth:`build` (which runs the preprocessing pipeline through a
    :class:`~repro.core.planner.Planner`) rather than the constructor.
    Heavyweight artifacts (partition, VIP matrix) can still be injected to
    amortize preprocessing across system variants; with a shared planner the
    same reuse happens automatically via stage fingerprints.
    """

    def __init__(
        self,
        dataset: GraphDataset,
        config: RunConfig,
        reordered: ReorderedDataset,
        store: PartitionedFeatureStore,
        trainer: DistributedTrainer,
        cost_model: CostModel,
        vip_matrix: Optional[np.ndarray],
    ):
        self.dataset = dataset
        self.config = config
        self.reordered = reordered
        self.store = store
        self.trainer = trainer
        self.cost_model = cost_model
        self.vip_matrix = vip_matrix
        self._backend = None
        # Per-partition VIP snapshots for streaming-graph refreshes
        # (populated lazily by apply_graph_updates).
        self._vip_snapshots = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: GraphDataset,
        config: RunConfig,
        *,
        partition: Optional[Partition] = None,
        vip_matrix: Optional[np.ndarray] = None,
        planner: Optional[Planner] = None,
    ) -> "SalientPP":
        """Build the system by executing the preprocessing plan.

        Without ``planner`` a fresh one (in-memory cache only) is used, so a
        single build behaves exactly as before; a shared planner reuses
        every stage whose fingerprint matches a previous build.  Injected
        ``partition`` / ``vip_matrix`` are content-addressed by the planner.
        """
        if planner is None:
            planner = Planner()
        return planner.build(dataset, config, partition=partition,
                             vip_matrix=vip_matrix, system_cls=cls)

    @staticmethod
    def _cost_model_for(config: RunConfig, store: PartitionedFeatureStore,
                        dims: ModelDims, trainer: DistributedTrainer) -> CostModel:
        return CostModel(
            cluster=config.cluster(),
            bytes_per_row=store.bytes_per_row,
            dims=dims,
            grad_nbytes=trainer.gradient_nbytes(),
        )

    # ------------------------------------------------------------------
    def backend(self):
        """The configured :class:`~repro.distributed.cluster.ClusterBackend`,
        built lazily (a multiproc backend spawns workers on first use)."""
        if self._backend is None:
            from repro.distributed.cluster import make_cluster_backend

            self._backend = make_cluster_backend(self.config.backend, self)
        return self._backend

    def shutdown(self) -> None:
        """Release backend resources (worker processes, shared memory).

        Idempotent; a no-op for the in-process backend.  Systems used as
        context managers shut down on exit."""
        if self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "SalientPP":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False

    # ------------------------------------------------------------------
    def train_epoch(self, epoch: int = 0, *, dry_run: bool = False) -> EpochResult:
        """One functional epoch + its simulated wall time.

        The engine's emitted stage-event schedule is priced directly
        (:func:`simulate_trace`) — identical to the record-based
        :func:`simulate_epoch` for the lock-step ``bsp`` engine, and the
        only faithful option for engines whose schedule differs from what
        step records alone imply (coalesced comm windows, thinned
        allreduce barriers).  Reports without a trace fall back to the
        record-based reconstruction.
        """
        with OBS.span("system.train_epoch", epoch=epoch, dry_run=dry_run,
                      backend=self.config.backend):
            report = self.backend().run_epoch(epoch, dry_run=dry_run)
            with OBS.span("system.simulate"):
                if report.events is not None:
                    timing = simulate_trace(
                        report.events, self.cost_model,
                        mode=self.config.pipeline,
                        depth=self.config.pipeline_depth,
                    )
                else:
                    timing = simulate_epoch(
                        report, self.cost_model,
                        mode=self.config.pipeline,
                        depth=self.config.pipeline_depth,
                    )
            return EpochResult(report=report, timing=timing)

    def train(self, epochs: int, *, dry_run: bool = False) -> List[EpochResult]:
        return [self.train_epoch(e, dry_run=dry_run) for e in range(epochs)]

    def mean_epoch_time(self, epochs: int = 2, *, dry_run: bool = True) -> float:
        """Simulated per-epoch runtime averaged over ``epochs`` epochs (dry
        runs by default: timing needs volumes, not gradients)."""
        results = self.train(epochs, dry_run=dry_run)
        return float(np.mean([r.epoch_time for r in results]))

    def evaluate(self, split: str = "test", **kwargs) -> float:
        return self.trainer.evaluate(split, **kwargs)

    def update_training_set(self, train_idx: np.ndarray) -> None:
        """Swap the active training vertices (reordered ids) — the
        non-stationary-workload hook; see
        :meth:`repro.distributed.DistributedTrainer.update_training_set`.

        Refused while a live external backend is running: its workers hold
        their own copies of the training split, so a coordinator-side swap
        would silently diverge from what the workers sample.  Call
        :meth:`shutdown` first."""
        if self._backend is not None and self._backend.is_live:
            raise RuntimeError(
                "cannot swap the training set while a live cluster backend "
                "is running; call shutdown() first"
            )
        self.trainer.update_training_set(train_idx)

    def apply_graph_updates(self, batch, *, refresh_vip: bool = True):
        """Apply a streaming edge batch to the training graph (continual
        training over a mutating graph).

        On the first call the reordered dataset's graph is wrapped in a
        :class:`~repro.graph.mutable.MutableGraph` (delta-CSR overlay) and
        the trainer's samplers are re-pointed at it; subsequent calls apply
        straight to the overlay.  Endpoints are in **reordered** numbering —
        the same vocabulary as :meth:`update_training_set` — and must name
        existing vertices: the feature store has no rows for vertices the
        dataset has never seen, so vertex additions go through
        :meth:`~repro.graph.mutable.MutableGraph.add_vertices` on the graph
        directly (with features handled by the caller) rather than here.

        With ``refresh_vip`` (the default) each partition's row of
        :attr:`vip_matrix` is refreshed through a per-partition
        :class:`~repro.vip.incremental.VIPSnapshot` — a full Proposition-1
        evaluation the first time, dirty-frontier incremental afterwards —
        and the feature store is asked to re-rank its dynamic caches at the
        next epoch boundary (``store.request_refresh()``), mirroring the
        non-stationary-workload hook.

        Refused while a live external backend is running, for the same
        reason as :meth:`update_training_set`: workers hold their own graph
        copies, and a coordinator-side mutation would silently diverge from
        what they sample.  Call :meth:`shutdown` first.

        Returns the :class:`~repro.graph.mutable.DeltaRecord` describing
        the applied batch.
        """
        if self._backend is not None and self._backend.is_live:
            raise RuntimeError(
                "cannot mutate the graph while a live cluster backend is "
                "running; call shutdown() first"
            )
        from repro.graph.mutable import MutableGraph
        from repro.vip.analytic import uniform_minibatch_probability
        from repro.vip.incremental import incremental_vip, snapshot_vip

        ds = self.reordered.dataset
        graph = ds.graph
        if not isinstance(graph, MutableGraph):
            graph = MutableGraph(
                graph, compact_cutoff=self.config.streaming.compact_cutoff)
            ds.graph = graph
            for sampler in self.trainer.samplers:
                sampler.graph = graph
            self._vip_snapshots = {}
        n = graph.num_vertices
        for arr in (batch.add_src, batch.add_dst, batch.del_src,
                    batch.del_dst):
            if len(arr) and (arr.min() < 0 or arr.max() >= n):
                raise ValueError(
                    f"edge endpoints must be existing reordered vertex ids "
                    f"in [0, {n}); use MutableGraph.add_vertices to grow "
                    f"the graph"
                )
        graph.apply(batch)
        if refresh_vip and self.vip_matrix is not None:
            # The trainer holds the dataset-resolved hyperparameters (the
            # config's may still be None placeholders).
            fanouts = self.trainer.fanouts
            batch_size = self.trainer.batch_size
            cutoff = self.config.streaming.churn_cutoff
            for k in range(len(self.trainer.local_train)):
                local = self.trainer.local_train[k]
                if len(local) == 0:
                    continue
                p0 = uniform_minibatch_probability(
                    graph.num_vertices, local, batch_size)
                snap = self._vip_snapshots.get(k)
                if snap is None:
                    snap = snapshot_vip(graph, p0, fanouts)
                else:
                    snap = incremental_vip(graph, snap, p0,
                                           churn_cutoff=cutoff)
                self._vip_snapshots[k] = snap
                access = snap.access
                if self.vip_matrix.shape[1] < len(access):
                    pad = np.zeros(
                        (self.vip_matrix.shape[0],
                         len(access) - self.vip_matrix.shape[1]))
                    self.vip_matrix = np.hstack([self.vip_matrix, pad])
                self.vip_matrix[k, : len(access)] = access
            self.store.request_refresh()
        return graph.log[-1]

    # ------------------------------------------------------------------
    @property
    def memory_multiple(self) -> float:
        """Total feature memory across machines, as a multiple of the
        unreplicated dataset (Figure 5's right axis)."""
        return self.store.memory_multiple()

    @property
    def realized_alpha(self) -> float:
        return self.store.replication_factor()

    def describe(self) -> str:
        return f"{type(self).__name__}[{self.config.describe()}]"


class Salient(SalientPP):
    """The SALIENT baseline: full feature replication on every machine."""

    @classmethod
    def build(cls, dataset: GraphDataset, config: RunConfig, **kwargs) -> "Salient":
        from dataclasses import replace

        config = replace(config, full_replication=True, replication_factor=0.0)
        return super().build(dataset, config, **kwargs)
