"""End-to-end SALIENT / SALIENT++ systems.

:class:`SalientPP` wires the whole stack together the way the real system's
preprocessing + runtime does:

1. partition the graph (METIS-like, multi-constraint balanced);
2. compute partition-wise VIP vectors (Proposition 1);
3. reorder vertices partition-contiguously, VIP-descending within partitions;
4. select each machine's remote-feature cache with the configured policy
   (static rankings, or a dynamic LRU/LFU/CLOCK/vip-refresh cache
   warm-started from the analytic-VIP selection);
5. build the partitioned feature store (GPU prefix β, cache α);
6. train with the bulk-synchronous distributed executor (functionally real
   numpy GNN training), recording exact per-step workload volumes;
7. replay those volumes through the discrete-event pipeline simulator to
   obtain epoch times on the configured cluster.

:class:`Salient` is the same object built with full feature replication (the
paper's baseline, Table 1 row 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import RunConfig
from repro.distributed.cluster import ClusterSpec
from repro.distributed.dynamic_cache import (
    DYNAMIC_CACHE_POLICIES,
    DynamicCacheSpec,
    is_dynamic_policy,
)
from repro.distributed.executor import DistributedTrainer, EpochReport
from repro.distributed.feature_store import PartitionedFeatureStore
from repro.graph.datasets import GraphDataset
from repro.partition.baselines import bfs_partition, ldg_partition, random_partition
from repro.partition.interface import Partition
from repro.partition.multilevel import metis_like_partition
from repro.partition.reorder import ReorderedDataset, reorder_dataset
from repro.pipeline.costmodel import CostModel, ModelDims
from repro.pipeline.simulator import PipelineMode, PipelineResult, simulate_epoch
from repro.utils.rng import derive_seed
from repro.vip.analytic import partitionwise_vip, vip_for_training_set
from repro.vip.policies import (
    CacheContext,
    OraclePolicy,
    build_caches,
    cache_budget,
    default_policies,
)


def make_partition(dataset: GraphDataset, config: RunConfig) -> Partition:
    """Partition per the config (METIS-like with the paper's balancing
    constraints by default)."""
    K = config.num_machines
    if K == 1:
        return Partition(np.zeros(dataset.num_vertices, dtype=np.int64), 1)
    if config.partitioner == "metis":
        role = np.zeros((dataset.num_vertices, 4))
        role[:, 0] = 1.0
        role[dataset.train_idx, 1] = 1.0
        role[dataset.val_idx, 2] = 1.0
        role[dataset.test_idx, 3] = 1.0
        return metis_like_partition(
            dataset.graph, K, vertex_weights=role,
            seed=derive_seed(config.seed, "partition"),
        )
    if config.partitioner == "random":
        return random_partition(dataset.num_vertices, K,
                                seed=derive_seed(config.seed, "partition"))
    if config.partitioner == "ldg":
        return ldg_partition(dataset.graph, K,
                             seed=derive_seed(config.seed, "partition"))
    if config.partitioner == "bfs":
        return bfs_partition(dataset.graph, K,
                             seed=derive_seed(config.seed, "partition"))
    raise ValueError(f"unknown partitioner {config.partitioner!r}")


@dataclass
class EpochResult:
    """Functional + simulated-timing outcome of one epoch."""

    report: EpochReport
    timing: PipelineResult

    @property
    def epoch_time(self) -> float:
        return self.timing.epoch_time

    @property
    def loss(self) -> Optional[float]:
        return self.report.mean_loss


class SalientPP:
    """The SALIENT++ system (or its ablations, per the config).

    Use :meth:`build` (which runs the preprocessing pipeline) rather than the
    constructor.  Heavyweight artifacts (partition, VIP matrix) can be
    injected to amortize preprocessing across system variants sharing a
    dataset and machine count — exactly how the benchmark harness reproduces
    Table 1's ladder.
    """

    def __init__(
        self,
        dataset: GraphDataset,
        config: RunConfig,
        reordered: ReorderedDataset,
        store: PartitionedFeatureStore,
        trainer: DistributedTrainer,
        cost_model: CostModel,
        vip_matrix: Optional[np.ndarray],
    ):
        self.dataset = dataset
        self.config = config
        self.reordered = reordered
        self.store = store
        self.trainer = trainer
        self.cost_model = cost_model
        self.vip_matrix = vip_matrix

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: GraphDataset,
        config: RunConfig,
        *,
        partition: Optional[Partition] = None,
        vip_matrix: Optional[np.ndarray] = None,
    ) -> "SalientPP":
        config = config.resolve(dataset)
        K = config.num_machines
        if partition is None:
            partition = make_partition(dataset, config)
        if partition.num_parts != K:
            raise ValueError(
                f"partition has {partition.num_parts} parts, config wants {K}"
            )

        # Dynamic caches warm-start from the analytic-VIP selection, so they
        # need the VIP matrix just like the static "vip" policy does.
        dynamic = is_dynamic_policy(config.cache_policy)
        needs_vip = config.vip_reorder or (
            config.replication_factor > 0
            and (config.cache_policy == "vip" or dynamic)
        )
        if vip_matrix is None and needs_vip:
            vip_matrix = partitionwise_vip(
                dataset.graph, partition, dataset.train_idx,
                config.fanouts, config.batch_size,
            )

        # §4.1: partition-contiguous order, VIP-descending within partitions.
        score = None
        if config.vip_reorder and vip_matrix is not None:
            score = np.zeros(dataset.num_vertices)
            for k in range(K):
                mask = partition.assignment == k
                score[mask] = vip_matrix[k][mask]
        reordered = reorder_dataset(dataset, partition, within_part_score=score)

        # §4.2: remote-feature caches (ids in the *new* vertex numbering).
        caches = None
        dynamic_spec = None
        if config.replication_factor > 0 and not config.full_replication:
            ctx = CacheContext(
                graph=reordered.dataset.graph,
                partition=reordered.partition,
                train_idx=reordered.dataset.train_idx,
                fanouts=config.fanouts,
                batch_size=config.batch_size,
                seed=derive_seed(config.seed, "cache"),
            )
            if (config.cache_policy == "vip" or dynamic) and vip_matrix is not None:
                # Reuse the already-computed VIP matrix (relabel to new ids).
                vip_new = vip_matrix[:, reordered.old_of_new]
                policy = OraclePolicy(vip_new)  # ranking by injected scores
                policy.name = "vip"
            else:
                registry = default_policies()
                if config.cache_policy not in registry:
                    raise ValueError(
                        f"unknown cache policy {config.cache_policy!r}; static: "
                        f"{sorted(registry)}, dynamic: {list(DYNAMIC_CACHE_POLICIES)}"
                    )
                policy = registry[config.cache_policy]()
            caches = build_caches(policy, ctx, config.replication_factor)
            if dynamic:
                # The VIP selection above is only the warm start; contents
                # evolve at runtime under the configured policy.
                dynamic_spec = DynamicCacheSpec(
                    policy=config.cache_policy,
                    capacity=cache_budget(
                        dataset.num_vertices, K, config.replication_factor
                    ),
                    refresh_interval=config.refresh_interval,
                    aging_interval=config.cache_aging_interval,
                    warm_scores=vip_new if vip_matrix is not None else None,
                )

        if config.full_replication:
            store = PartitionedFeatureStore.build_replicated(
                reordered, gpu_fraction=config.gpu_fraction,
            )
        else:
            store = PartitionedFeatureStore.build(
                reordered, gpu_fraction=config.gpu_fraction, caches=caches,
                dynamic=dynamic_spec,
            )

        trainer = DistributedTrainer(
            reordered, store,
            fanouts=config.fanouts,
            batch_size=config.batch_size,
            hidden_dim=config.hidden_dim,
            arch=config.arch,
            dropout=config.dropout,
            lr=config.lr,
            seed=derive_seed(config.seed, "trainer"),
        )
        if config.cache_policy == "vip-refresh" and dynamic_spec is not None:
            # Refreshes re-run Proposition 1 against the machine's *current*
            # training set (it may have drifted via update_training_set), so
            # the cache tracks the workload instead of the build-time one.
            graph = reordered.dataset.graph

            def refresh_scores(machine: int) -> np.ndarray:
                return vip_for_training_set(
                    graph, trainer.local_train[machine],
                    config.fanouts, config.batch_size,
                ).access

            store.set_refresh_score_provider(refresh_scores)
        dims = ModelDims(dataset.feature_dim, config.hidden_dim, dataset.num_classes)
        cost_model = cls._cost_model_for(config, store, dims, trainer)
        return cls(dataset, config, reordered, store, trainer, cost_model, vip_matrix)

    @staticmethod
    def _cost_model_for(config: RunConfig, store: PartitionedFeatureStore,
                        dims: ModelDims, trainer: DistributedTrainer) -> CostModel:
        return CostModel(
            cluster=config.cluster(),
            bytes_per_row=store.bytes_per_row,
            dims=dims,
            grad_nbytes=trainer.gradient_nbytes(),
        )

    # ------------------------------------------------------------------
    def train_epoch(self, epoch: int = 0, *, dry_run: bool = False) -> EpochResult:
        """One functional epoch + its simulated wall time."""
        report = self.trainer.train_epoch(epoch, dry_run=dry_run)
        timing = simulate_epoch(
            report, self.cost_model,
            mode=self.config.pipeline,
            depth=self.config.pipeline_depth,
        )
        return EpochResult(report=report, timing=timing)

    def train(self, epochs: int, *, dry_run: bool = False) -> List[EpochResult]:
        return [self.train_epoch(e, dry_run=dry_run) for e in range(epochs)]

    def mean_epoch_time(self, epochs: int = 2, *, dry_run: bool = True) -> float:
        """Simulated per-epoch runtime averaged over ``epochs`` epochs (dry
        runs by default: timing needs volumes, not gradients)."""
        results = self.train(epochs, dry_run=dry_run)
        return float(np.mean([r.epoch_time for r in results]))

    def evaluate(self, split: str = "test", **kwargs) -> float:
        return self.trainer.evaluate(split, **kwargs)

    def update_training_set(self, train_idx: np.ndarray) -> None:
        """Swap the active training vertices (reordered ids) — the
        non-stationary-workload hook; see
        :meth:`repro.distributed.DistributedTrainer.update_training_set`."""
        self.trainer.update_training_set(train_idx)

    # ------------------------------------------------------------------
    @property
    def memory_multiple(self) -> float:
        """Total feature memory across machines, as a multiple of the
        unreplicated dataset (Figure 5's right axis)."""
        return self.store.memory_multiple()

    @property
    def realized_alpha(self) -> float:
        return self.store.replication_factor()

    def describe(self) -> str:
        return f"{type(self).__name__}[{self.config.describe()}]"


class Salient(SalientPP):
    """The SALIENT baseline: full feature replication on every machine."""

    @classmethod
    def build(cls, dataset: GraphDataset, config: RunConfig, **kwargs) -> "Salient":
        from dataclasses import replace

        config = replace(config, full_replication=True, replication_factor=0.0)
        return super().build(dataset, config, **kwargs)
