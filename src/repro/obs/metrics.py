"""Counters, gauges, and streaming log-bucket histograms.

Instruments are registered (get-or-create, keyed by dotted name) on a
:class:`MetricsRegistry`.  Naming convention: ``<layer>.<thing>`` with
dotted segments — ``store.remote_rows``, ``mp.wire_sent_bytes``,
``serving.latency_s`` — which the Prometheus exporter flattens to
``repro_store_remote_rows_total`` style.

:class:`Histogram` keeps geometric ("log") buckets: bucket ``i`` covers
``(lo * g**(i-1), lo * g**i]`` for growth factor ``g``, with one underflow
bucket for values ``<= lo``.  Memory is O(occupied buckets) regardless of
sample count, and any quantile is off by at most one bucket width (a
bounded *relative* error of ``g - 1``) — that bound is what the serving
percentile regression test pins.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def to_dict(self) -> dict:
        return {"kind": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A point-in-time value (set/inc/dec)."""

    __slots__ = ("name", "help", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def reset(self) -> None:
        self.value = 0.0

    def to_dict(self) -> dict:
        return {"kind": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Streaming log-bucket histogram.

    ``lo`` is the underflow edge (everything ``<= lo`` lands in bucket 0)
    and ``growth`` the geometric bucket ratio.  The defaults — 1 µs floor,
    ``2 ** 0.125`` (≈ 9.05 % per bucket) — suit second-scale latencies:
    ~300 buckets span 1 µs..1000 s and quantiles carry < 10 % relative
    error.  Exact ``min``/``max``/``sum``/``count`` are tracked alongside,
    so means are exact and quantile estimates are clamped into the true
    value range.
    """

    __slots__ = ("name", "help", "lo", "growth", "_log_g", "buckets",
                 "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, name: str = "", help: str = "",
                 lo: float = 1e-6, growth: float = 2.0 ** 0.125) -> None:
        if lo <= 0:
            raise ValueError("histogram lo edge must be positive")
        if growth <= 1.0:
            raise ValueError("histogram growth factor must exceed 1")
        self.name = name
        self.help = help
        self.lo = float(lo)
        self.growth = float(growth)
        self._log_g = math.log(self.growth)
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording ------------------------------------------------------
    def bucket_index(self, v: float) -> int:
        """Index of the bucket covering ``v`` (0 = underflow)."""
        if v <= self.lo:
            return 0
        # ceil(log_g(v / lo)), nudged so exact upper edges stay put.
        idx = math.ceil(math.log(v / self.lo) / self._log_g - 1e-12)
        return max(idx, 1)

    def upper_edge(self, idx: int) -> float:
        """Inclusive upper bound of bucket ``idx``."""
        return self.lo * self.growth ** idx

    def observe(self, v: float) -> None:
        v = float(v)
        idx = self.bucket_index(v)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    # -- queries --------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``).

        Returns the upper edge of the bucket holding the target rank,
        clamped into the exact observed ``[min, max]`` — so the estimate
        is within one bucket width (relative error < ``growth - 1``) of
        the true order statistic.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * (self.count - 1) + 1  # 1-based rank, linear convention
        seen = 0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= target:
                edge = self.upper_edge(idx)
                return min(max(edge, self.min), self.max)
        return self.max

    def percentile(self, p: float) -> float:
        """``quantile(p / 100)`` — numpy-style percentile argument."""
        return self.quantile(p / 100.0)

    # -- maintenance ----------------------------------------------------
    def reset(self) -> None:
        self.buckets = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same ``lo``/``growth``) into this one."""
        if (other.lo, other.growth) != (self.lo, self.growth):
            raise ValueError("cannot merge histograms with different buckets")
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_edge, cumulative_count)`` pairs, Prometheus-style."""
        out: List[Tuple[float, int]] = []
        seen = 0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            out.append((self.upper_edge(idx), seen))
        return out

    def to_dict(self) -> dict:
        return {
            "kind": "histogram", "name": self.name, "lo": self.lo,
            "growth": self.growth, "count": self.count, "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Get-or-create instrument registry, keyed by dotted metric name.

    Lookups are a single dict hit, so instrumented sites may fetch
    instruments inline (guarded by ``OBS.enabled``) without caching them.
    Registering the same name with a different instrument kind raises —
    names are a global contract.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get(self, cls, name: str, help: str, **kwargs):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, help, **kwargs)
            self._instruments[name] = inst
            return inst
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}, "
                f"requested {cls.kind}"
            )
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  lo: float = 1e-6,
                  growth: float = 2.0 ** 0.125) -> Histogram:
        return self._get(Histogram, name, help, lo=lo, growth=growth)

    def get(self, name: str) -> Optional[Any]:
        return self._instruments.get(name)

    def instruments(self) -> List[Any]:
        """All instruments in registration order."""
        return list(self._instruments.values())

    def snapshot(self) -> Dict[str, dict]:
        """``name -> to_dict()`` for every instrument (JSONL/report food)."""
        return {name: inst.to_dict()
                for name, inst in self._instruments.items()}

    def merge_snapshot(self, snap: Dict[str, dict]) -> None:
        """Fold a remote registry's :meth:`snapshot` into this one.

        Counters and histogram contents accumulate; gauges adopt the
        remote value (last writer wins).  This is how worker-process
        metrics land in the coordinator's registry at epoch end.
        """
        for name, d in snap.items():
            kind = d.get("kind")
            if kind == "counter":
                self.counter(name).inc(int(d["value"]))
            elif kind == "gauge":
                self.gauge(name).set(float(d["value"]))
            elif kind == "histogram":
                lo, growth = float(d["lo"]), float(d["growth"])
                other = Histogram(name, lo=lo, growth=growth)
                other.buckets = {int(k): int(v)
                                 for k, v in d["buckets"].items()}
                other.count = int(d["count"])
                other.sum = float(d["sum"])
                if d.get("min") is not None:
                    other.min = float(d["min"])
                    other.max = float(d["max"])
                self.histogram(name, lo=lo, growth=growth).merge(other)
            else:
                raise ValueError(
                    f"snapshot entry {name!r} has unknown kind {kind!r}")

    def reset(self) -> None:
        """Zero every instrument (registrations survive)."""
        for inst in self._instruments.values():
            inst.reset()

    def clear(self) -> None:
        """Drop every instrument registration (a fresh registry)."""
        self._instruments = {}
